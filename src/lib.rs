//! # mcs — Massivizing Computer Systems
//!
//! A computer-ecosystem simulation and resource-management platform: the
//! reproduction of *"Massivizing Computer Systems: a Vision to Understand,
//! Design, and Engineer Computer Ecosystems through and beyond Modern
//! Distributed Systems"* (Iosup et al., ICDCS 2018).
//!
//! This facade crate re-exports every subsystem of the workspace:
//!
//! | Module | Crate | Implements |
//! |---|---|---|
//! | [`simcore`] | `mcs-simcore` | Deterministic discrete-event kernel, RNG streams, distributions, metrics |
//! | [`infra`] | `mcs-infra` | Heterogeneous machines, clusters, datacenters, WAN topology, power/cost |
//! | [`workload`] | `mcs-workload` | Tasks, workflows, bursty/diurnal arrivals, GWA-style traces, generators |
//! | [`failure`] | `mcs-failure` | Independent / space- / time-correlated failure models, availability analysis |
//! | [`net`] | `mcs-net` | Flow-level network model: rack topology, max-min fair sharing, cut/degraded links |
//! | [`rms`] | `mcs-rms` | The dual scheduling problem: allocation, provisioning, federation, portfolio |
//! | [`dag`] | `mcs-dag` | DAG workflows: science-shape generators, HEFT ranks, per-class portfolio scheduling |
//! | [`autoscale`] | `mcs-autoscale` | Autoscaler portfolio, elastic-service simulator, SPEC elasticity metrics |
//! | [`faas`] | `mcs-faas` | Serverless platform: cold/warm starts, keep-alive, composition (Fig. 5) |
//! | [`graph`] | `mcs-graph` | BSP/Pregel engine, Graphalytics-six algorithms, generators (§6.6) |
//! | [`bigdata`] | `mcs-bigdata` | Fig. 1 stack: block store, MapReduce, dataflow, Pregel sub-ecosystem |
//! | [`gaming`] | `mcs-gaming` | Fig. 4: virtual world, social analytics, procedural content (§6.3) |
//! | [`core`] | `mcs-core` | NFR calculus, SLAs, recursive ecosystems, MAPE-K, navigation, evolution |
//! | [`chaos`] | `mcs-chaos` | Scripted fault schedules, trace invariants, campaigns, ddmin shrinking |
//!
//! ## Quickstart
//! ```
//! use mcs::prelude::*;
//!
//! // Build a small heterogeneous cluster.
//! let cluster = Cluster::homogeneous(
//!     ClusterId(0), "batch", MachineSpec::commodity("std-8", 8.0, 32.0), 8,
//! );
//! // Generate a bursty grid workload.
//! let mut generator = BatchWorkloadGenerator::new(BatchWorkloadConfig::default());
//! let mut rng = RngStream::new(42, "quickstart");
//! let jobs = generator.generate(SimTime::from_secs(4 * 3600), 200, &mut rng);
//! // Schedule it.
//! let mut scheduler = ClusterScheduler::new(cluster, SchedulerConfig::default(), 42);
//! let outcome = scheduler.run(jobs, SimTime::from_secs(7 * 86_400));
//! assert_eq!(outcome.unfinished, 0);
//! ```

pub mod experiment;

pub use mcs_autoscale as autoscale;
pub use mcs_bigdata as bigdata;
pub use mcs_chaos as chaos;
pub use mcs_core as core;
pub use mcs_dag as dag;
pub use mcs_faas as faas;
pub use mcs_failure as failure;
pub use mcs_gaming as gaming;
pub use mcs_graph as graph;
pub use mcs_infra as infra;
pub use mcs_net as net;
pub use mcs_rms as rms;
pub use mcs_simcore as simcore;
pub use mcs_workload as workload;

/// One-stop prelude combining every subsystem prelude.
pub mod prelude {
    pub use crate::experiment::{Experiment, Report, Section};
    pub use mcs_autoscale::prelude::*;
    pub use mcs_bigdata::prelude::*;
    pub use mcs_core::prelude::*;
    pub use mcs_dag::prelude::*;
    pub use mcs_faas::prelude::*;
    pub use mcs_failure::prelude::*;
    pub use mcs_gaming::prelude::*;
    pub use mcs_graph::prelude::*;
    pub use mcs_infra::prelude::*;
    pub use mcs_net::prelude::*;
    pub use mcs_rms::prelude::*;
    pub use mcs_simcore::prelude::*;
    pub use mcs_workload::prelude::*;
}
