//! The unified experiment facade: every figure and table of the paper is an
//! [`Experiment`] producing a structured [`Report`].
//!
//! The paper's methodology (Table 1, C15/C16) asks for experiments that are
//! *reproducible instruments*: one seed in, one artifact out. The trait
//! makes that contract first-class — `run(seed)` must be a pure function of
//! its seed for every simulated quantity — and the [`Report`] it returns is
//! both renderable for humans ([`Report::render`]) and serializable to JSON
//! ([`Report::to_json_string`]) so reruns can be compared byte-for-byte.
//!
//! # Examples
//! ```
//! use mcs::experiment::{Experiment, Report, Section};
//!
//! struct Coin;
//! impl Experiment for Coin {
//!     fn name(&self) -> &'static str { "coin" }
//!     fn run(&self, seed: u64) -> Report {
//!         let mut rng = mcs::simcore::rng::RngStream::new(seed, "coin");
//!         Report::new("coin", "A fair coin")
//!             .with_section(Section::new("flips").line(format!("{}", rng.next_u64() % 2)))
//!     }
//! }
//! let a = Coin.run(7).to_json_string();
//! let b = Coin.run(7).to_json_string();
//! assert_eq!(a, b);
//! ```

use mcs_simcore::codec;

/// An aligned table: a header row plus data rows of equal arity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each must have the same arity as `headers`.
    pub rows: Vec<Vec<String>>,
}

mcs_simcore::impl_json!(struct Table { headers, rows });

impl Table {
    /// Builds a table from borrowed headers and owned rows.
    pub fn new(headers: &[&str], rows: Vec<Vec<String>>) -> Self {
        Table { headers: headers.iter().map(|h| (*h).to_owned()).collect(), rows }
    }

    /// Renders with right-aligned, width-padded columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let mut line = |cells: Vec<String>| {
            let mut s = String::new();
            for (w, c) in widths.iter().zip(cells) {
                let pad = w.saturating_sub(c.chars().count());
                s.push_str(&" ".repeat(pad));
                s.push_str(&c);
                s.push_str("  ");
            }
            out.push_str(s.trim_end());
            out.push('\n');
        };
        line(self.headers.clone());
        line(widths.iter().map(|w| "-".repeat(*w)).collect());
        for row in &self.rows {
            line(row.clone());
        }
        out
    }
}

/// One ordered element of a section: free text or a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// A paragraph / free-form line.
    Line {
        /// The text (may contain embedded newlines).
        text: String,
    },
    /// An aligned table.
    Table {
        /// The table.
        table: Table,
    },
}

mcs_simcore::impl_json!(enum Item {
    Line { text },
    Table { table },
});

/// A titled block of report content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Section heading (rendered as `## title`); empty for preamble text.
    pub title: String,
    /// Lines and tables, in order.
    pub items: Vec<Item>,
}

mcs_simcore::impl_json!(struct Section { title, items });

impl Section {
    /// An empty section with a heading.
    pub fn new(title: impl Into<String>) -> Self {
        Section { title: title.into(), items: Vec::new() }
    }

    /// Appends a free-form line.
    pub fn line(mut self, text: impl Into<String>) -> Self {
        self.items.push(Item::Line { text: text.into() });
        self
    }

    /// Appends an aligned table.
    pub fn table(mut self, headers: &[&str], rows: Vec<Vec<String>>) -> Self {
        self.items.push(Item::Table { table: Table::new(headers, rows) });
        self
    }
}

/// The artifact an [`Experiment`] produces: a named, sectioned document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Machine name, matching [`Experiment::name`].
    pub name: String,
    /// Human title (rendered as `# title`).
    pub title: String,
    /// The seed the experiment ran with.
    pub seed: u64,
    /// Content blocks in order.
    pub sections: Vec<Section>,
}

mcs_simcore::impl_json!(struct Report { name, title, seed, sections });

impl Report {
    /// An empty report (seed 0; set by [`Experiment`] runners via
    /// [`Report::with_seed`]).
    pub fn new(name: impl Into<String>, title: impl Into<String>) -> Self {
        Report { name: name.into(), title: title.into(), seed: 0, sections: Vec::new() }
    }

    /// Records the seed the experiment ran with.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Appends a section.
    pub fn with_section(mut self, section: Section) -> Self {
        self.sections.push(section);
        self
    }

    /// Renders the whole report as the text the experiment binaries print.
    pub fn render(&self) -> String {
        let mut out = format!("# {}\n", self.title);
        for section in &self.sections {
            out.push('\n');
            if !section.title.is_empty() {
                out.push_str(&format!("## {}\n", section.title));
            }
            for item in &section.items {
                match item {
                    Item::Line { text } => {
                        out.push_str(text);
                        out.push('\n');
                    }
                    Item::Table { table } => out.push_str(&table.render()),
                }
            }
        }
        out
    }

    /// Deterministic JSON encoding of the full report (insertion-ordered
    /// keys, exact integers), suitable for byte-for-byte comparison of
    /// same-seed reruns.
    pub fn to_json_string(&self) -> String {
        codec::to_string(self)
    }
}

/// A reproducible experiment: one paper artifact regenerated from one seed.
///
/// Implementations must derive every random quantity from `seed` (through
/// [`mcs_simcore::rng::RngStream`]), so two calls with equal seeds return
/// reports whose simulated columns are identical. Wall-clock measurements
/// (throughput columns) are exempt and documented per experiment.
pub trait Experiment {
    /// Stable machine name (e.g. `"table5_paradigms"`), unique across the
    /// registry.
    fn name(&self) -> &'static str;

    /// Runs the experiment and returns its report.
    fn run(&self, seed: u64) -> Report;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report::new("demo", "Demo report")
            .with_seed(9)
            .with_section(Section::new("").line("preamble"))
            .with_section(
                Section::new("numbers")
                    .table(&["k", "v"], vec![vec!["a".into(), "1".into()]])
                    .line("done"),
            )
    }

    #[test]
    fn render_contains_title_sections_and_cells() {
        let text = sample().render();
        assert!(text.starts_with("# Demo report\n"));
        assert!(text.contains("## numbers"));
        assert!(text.contains("preamble"));
        assert!(text.contains('a'));
        assert!(text.contains("done"));
    }

    #[test]
    fn table_alignment_pads_to_widest_cell() {
        let t = Table::new(&["col", "x"], vec![vec!["a".into(), "wide-cell".into()]]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains("---"));
        assert!(lines[2].ends_with("wide-cell"));
    }

    #[test]
    fn json_round_trip_preserves_report() {
        use mcs_simcore::codec::from_str;
        let r = sample();
        let json = r.to_json_string();
        let back: Report = from_str(&json).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn equal_reports_encode_identically() {
        assert_eq!(sample().to_json_string(), sample().to_json_string());
    }
}
