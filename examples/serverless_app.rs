//! Serverless application operation (§6.5, Figure 5): deploy a function
//! pipeline, sweep the keep-alive policy, and read the provider-vs-customer
//! cost trade-off.
//!
//! Run with: `cargo run --example serverless_app`

use mcs::prelude::*;

fn deploy(platform: &mut FaasPlatform) {
    platform.deploy(FunctionSpec::api_handler("validate"));
    platform.deploy(FunctionSpec::api_handler("enrich"));
    platform.deploy(FunctionSpec::data_processor("transcode"));
}

fn main() {
    println!("== serverless image pipeline (Fig. 5 layers) ==");

    // Function Composition Layer: validate -> enrich -> transcode.
    let workflow = Composition::chain("image-pipeline", &["validate", "enrich", "transcode"]);
    let mut platform = FaasPlatform::new(
        KeepAlivePolicy::Fixed(SimDuration::from_mins(10)),
        5,
    );
    deploy(&mut platform);
    let cold_run = execute_composition(&mut platform, &workflow, SimTime::ZERO);
    let warm_run =
        execute_composition(&mut platform, &workflow, SimTime::from_secs(60));
    println!(
        "workflow depth {}: cold run {:.2}s ({} cold starts), warm run {:.2}s ({} cold starts)",
        workflow.depth(),
        cold_run.latency_secs,
        cold_run.cold_starts,
        warm_run.latency_secs,
        warm_run.cold_starts,
    );

    // Function Management Layer: keep-alive sweep under Poisson traffic.
    println!("-- keep-alive sweep (rate 0.05/s for 8 h) --");
    println!(
        "{:>12} {:>12} {:>12} {:>14} {:>14}",
        "keep-alive", "cold-frac", "p95 latency", "billed GB-s", "provider GB-s"
    );
    for window_secs in [0u64, 60, 300, 1800, 7200] {
        let policy = if window_secs == 0 {
            KeepAlivePolicy::None
        } else {
            KeepAlivePolicy::Fixed(SimDuration::from_secs(window_secs))
        };
        let mut p = FaasPlatform::new(policy, 5);
        deploy(&mut p);
        let invocations =
            poisson_invocations("transcode", 0.05, SimTime::from_secs(8 * 3600), 5);
        let report = p.run(invocations);
        println!(
            "{:>11}s {:>12.3} {:>11.2}s {:>14.1} {:>14.1}",
            window_secs,
            report.cold_fraction,
            report.latency.as_ref().map(|l| l.p95).unwrap_or(0.0),
            report.billed_gb_secs,
            report.provider_gb_secs,
        );
    }

    // The Fig. 5 coverage check: which layers does this deployment cover?
    let arch = faas_refarch();
    let deployment =
        ["workflow-engine", "mcs-faas-platform", "kubernetes", "vms"];
    println!(
        "reference architecture '{}': executable = {}",
        arch.name,
        arch.is_executable(&deployment),
    );
}
