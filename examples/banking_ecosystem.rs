//! The future of banking (§6.4): deadline-bound transaction clearing under
//! PSD2-style SLAs, across a multi-owner ecosystem with failures.
//!
//! Run with: `cargo run --example banking_ecosystem`

use mcs::prelude::*;

fn main() {
    println!("== banking ecosystem: PSD2-style clearing ==");

    // The ecosystem: the bank's core, a fintech payment provider, and a
    // cloud region — three owners, one collective responsibility (§2.1).
    let eco = Ecosystem::new("retail-banking")
        .with_system(SystemNode::new(
            "core-ledger",
            "the-bank",
            "clearing",
            NfrProfile::new()
                .with(NfrKind::Availability, 0.999)
                .with(NfrKind::LatencyP95, 0.8)
                .with(NfrKind::Security, 0.95),
        ))
        .with_system(SystemNode::new(
            "fintech-pay",
            "fintech-co",
            "clearing",
            NfrProfile::new()
                .with(NfrKind::Availability, 0.99)
                .with(NfrKind::LatencyP95, 0.2)
                .with(NfrKind::Security, 0.85),
        ))
        .with_ecosystem(
            Ecosystem::new("cloud-region").with_system(SystemNode::new(
                "cloud-clearing",
                "hyperscaler",
                "clearing",
                NfrProfile::new()
                    .with(NfrKind::Availability, 0.995)
                    .with(NfrKind::LatencyP95, 0.3)
                    .with(NfrKind::Security, 0.9),
            )),
        )
        .with_collective(CollectiveFunction {
            name: "resilient-clearing".into(),
            requires: "clearing".into(),
            quorum_fraction: 0.6,
        });
    println!(
        "ecosystem: {} systems, depth {}, owners {:?}",
        eco.system_count(),
        eco.depth(),
        eco.owners(),
    );
    println!(
        "collective 'resilient-clearing' available: {:?}",
        eco.collective_available("resilient-clearing"),
    );
    let collective = eco.collective_profile("clearing").unwrap();
    println!(
        "collective clearing profile: availability {:.6}, p95 {:.2}s, security {:.2}",
        collective.get(NfrKind::Availability).unwrap(),
        collective.get(NfrKind::LatencyP95).unwrap(),
        collective.get(NfrKind::Security).unwrap(),
    );

    // The workload: transactions with hard clearing deadlines.
    let horizon = SimTime::from_secs(2 * 3600);
    let mut generator = TransactionWorkloadGenerator::new(60.0, 2.0);
    let mut rng = RngStream::new(13, "banking");
    let mut jobs = generator.generate(horizon, 600_000, &mut rng);
    // Two customer classes: instant payments (2 s) and batch clearing (10 min).
    for (i, job) in jobs.iter_mut().enumerate() {
        if i % 2 == 1 {
            job.tasks[0].deadline = Some(SimDuration::from_mins(10));
        }
    }
    println!(
        "workload: {} transactions over {:.1} h, deadlines 2 s / 10 min",
        jobs.len(),
        jobs.last().map(|j| j.submit.as_secs_f64() / 3600.0).unwrap_or(0.0),
    );

    // Clearing cluster with failures; EDF vs FCFS under load.
    let cluster = || {
        Cluster::homogeneous(
            ClusterId(0),
            "clearing",
            MachineSpec::commodity("std-4", 4.0, 16.0),
            2,
        )
    };
    // A 20-minute outage of one clearing node at 10:00 (half the capacity
    // gone while transactions keep arriving).
    let outages = vec![Outage {
        machine: 0,
        fail_at: SimTime::from_secs(3_600),
        repair_at: SimTime::from_secs(4_800),
    }];
    for queue in [QueuePolicy::Fcfs, QueuePolicy::EarliestDeadline] {
        let config = SchedulerConfig { queue, backfill: false, ..Default::default() };
        let mut sched =
            ClusterScheduler::new(cluster(), config, 13).with_outages(outages.clone());
        let out = sched.run(jobs.clone(), horizon + SimDuration::from_hours(1));
        let misses_pct = 100.0 * out.deadline_misses as f64 / out.completions.len().max(1) as f64;
        println!(
            "queue[{:>4}]: {} cleared, deadline misses {:.2}%, p-mean response {:.3}s",
            queue.name(),
            out.completions.len(),
            misses_pct,
            out.mean_response_secs(),
        );
    }

    // The SLA verdict on the measured profile.
    let sla = Sla {
        name: "psd2-clearing".into(),
        slos: vec![
            Slo {
                name: "availability ≥ 99.9%".into(),
                target: NfrTarget::new(NfrKind::Availability, 0.999),
                penalty: 10_000.0,
            },
            Slo {
                name: "p95 clearing < 1 s".into(),
                target: NfrTarget::new(NfrKind::LatencyP95, 1.0),
                penalty: 5_000.0,
            },
        ],
        penalty_cap: 12_000.0,
    };
    let report = sla.evaluate(&collective);
    println!(
        "SLA '{}': compliant = {}, violations = {}, penalty = {:.0}",
        sla.name, report.compliant, report.violations, report.penalty,
    );
}
