//! Quickstart: build a cluster, generate a grid workload, schedule it, and
//! compose non-functional guarantees — the MCS platform in sixty lines.
//!
//! Run with: `cargo run --example quickstart`

use mcs::prelude::*;

fn main() {
    // 1. Infrastructure: a small heterogeneous cluster (C4).
    let mut cluster = Cluster::new(ClusterId(0), "quickstart");
    for _ in 0..6 {
        cluster.add_machine(MachineSpec::commodity("std-8", 8.0, 32.0));
    }
    for _ in 0..2 {
        cluster.add_machine(MachineSpec::gpu("gpu-8", 8.0, 64.0, 2.0));
    }
    println!("cluster: {} machines, capacity {}", cluster.len(), cluster.capacity());

    // 2. Workload: bursty bag-of-tasks arrivals (C7).
    let mut generator = BatchWorkloadGenerator::new(BatchWorkloadConfig {
        arrival_rate: 0.05,
        accelerator_fraction: 0.1,
        ..Default::default()
    });
    let mut rng = RngStream::new(42, "quickstart");
    let jobs = generator.generate(SimTime::from_secs(4 * 3600), 200, &mut rng);
    println!("workload: {} jobs over 4 simulated hours", jobs.len());

    // 3. Schedule with EASY backfilling and best-fit allocation (P4).
    let mut scheduler = ClusterScheduler::new(cluster, SchedulerConfig::default(), 42);
    let outcome = scheduler.run(jobs, SimTime::from_secs(7 * 86_400));
    println!(
        "scheduled: {} done, {} rejected, makespan {:.1} h, mean slowdown {:.2}, mean utilization {:.1}%",
        outcome.completions.len(),
        outcome.rejected,
        outcome.makespan.as_secs_f64() / 3600.0,
        outcome.mean_slowdown(),
        outcome.mean_utilization * 100.0,
    );

    // 4. Non-functional requirements compose (P3): replicating a service
    // turns two nines into four, without re-measuring anything.
    let single = NfrProfile::new()
        .with(NfrKind::Availability, 0.99)
        .with(NfrKind::LatencyP95, 0.020)
        .with(NfrKind::CostPerHour, 2.0);
    let replicated = single.compose_parallel(&single);
    println!(
        "NFR calculus: availability {:.4} -> {:.6}, cost {:.0}/h -> {:.0}/h",
        single.get(NfrKind::Availability).unwrap(),
        replicated.get(NfrKind::Availability).unwrap(),
        single.get(NfrKind::CostPerHour).unwrap(),
        replicated.get(NfrKind::CostPerHour).unwrap(),
    );

    // 5. Ecosystem navigation (C9): pick components against targets, and
    // get the decision explained.
    let catalog = Catalog::new()
        .with("redis-like", "cache", NfrProfile::new().with(NfrKind::LatencyP95, 0.001).with(NfrKind::CostPerHour, 2.0))
        .with("disk-cache", "cache", NfrProfile::new().with(NfrKind::LatencyP95, 0.01).with(NfrKind::CostPerHour, 0.3))
        .with("pg-like", "database", NfrProfile::new().with(NfrKind::LatencyP95, 0.02).with(NfrKind::CostPerHour, 3.0));
    let selection = navigate_best_effort(
        &catalog,
        &["cache", "database"],
        &[NfrTarget::new(NfrKind::LatencyP95, 0.05)],
    )
    .expect("pipeline has providers");
    println!("navigation: {}", selection.explanation);
}
