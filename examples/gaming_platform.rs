//! Online gaming (§6.3, Figure 4): elastic virtual-world zones, implicit
//! social analytics, and procedural content generation.
//!
//! Run with: `cargo run --example gaming_platform`

use mcs::prelude::*;

fn main() {
    println!("== online gaming platform (Fig. 4 functions) ==");

    // Virtual World: a patch-day flash crowd, static vs elastic hosting.
    let model = PlayerModel {
        base_rate: 0.8,
        amplitude: 0.6,
        period: SimDuration::from_hours(24),
        flash: Some((SimTime::from_secs(6 * 3600), SimDuration::from_hours(2), 3.0)),
        ..Default::default()
    };
    let day = SimTime::from_secs(86_400);
    let static_small = simulate_world(&model, ZoneProvisioning::Static { zones: 12 }, 100, day, 1);
    let static_big = simulate_world(&model, ZoneProvisioning::Static { zones: 80 }, 100, day, 1);
    let elastic = simulate_world(
        &model,
        ZoneProvisioning::Elastic {
            min_zones: 4,
            max_zones: 80,
            high_watermark: 0.8,
            low_watermark: 0.3,
            boot_delay: SimDuration::from_secs(90),
        },
        100,
        day,
        1,
    );
    println!(
        "{:<16} {:>10} {:>10} {:>12} {:>12}",
        "virtual world", "admitted", "rejected", "peak online", "zone-hours"
    );
    for (name, out) in [
        ("static (small)", &static_small),
        ("static (big)", &static_big),
        ("elastic", &elastic),
    ] {
        println!(
            "{:<16} {:>10} {:>10} {:>12.0} {:>12.0}",
            name, out.admitted, out.rejected, out.peak_concurrent, out.zone_hours
        );
    }

    // Gaming Analytics: recover communities and toxicity from match logs.
    let population = PopulationModel::default();
    let log = generate_matches(&population, 20_000, 2);
    let graph = implicit_social_graph(&log, population.players, 3);
    let f1 = community_recovery_f1(&log, population.players, 10);
    let (precision, recall) = toxicity_detector(&log, population.players, 0.5);
    println!(
        "analytics: implicit tie graph {} edges; community recovery F1 {:.2}; toxicity P {:.2} / R {:.2}",
        graph.edge_count(),
        f1,
        precision,
        recall,
    );

    // Procedural Content Generation: verified-solvable puzzle instances.
    let generator = PuzzleGenerator { side: 3, scramble_moves: 30 };
    let mut rng = RngStream::new(3, "pcg");
    let batch = generator.generate_batch(25, 2_000_000, &mut rng);
    let solvable = batch.iter().filter(|(p, _)| p.is_solvable()).count();
    let mean_difficulty =
        batch.iter().map(|(_, d)| *d as f64).sum::<f64>() / batch.len() as f64;
    println!(
        "PCG: {} instances, {} solvable (guaranteed), mean optimal solution {:.1} moves",
        batch.len(),
        solvable,
        mean_difficulty,
    );

    // Social Meta-Gaming: a 32-player tournament and its stream bill.
    let mut rng = RngStream::new(4, "meta");
    let tournament = Tournament::seeded(5, &mut rng);
    let outcome = tournament.play(50.0, &mut rng);
    let (static_cost, elastic_cost) = stream_capacity_plan(&outcome, 1_000);
    println!(
        "meta-gaming: {} matches, champion p{}, peak {} viewers; stream cost {} static vs {} elastic server-rounds",
        outcome.matches.len(),
        outcome.champion,
        outcome.peak_spectators,
        static_cost,
        elastic_cost,
    );
}
