//! e-Science across a federation (§6.2 + C10): Montage-like workflow
//! ensembles from multiple labs, scheduled across geo-distributed clusters
//! with overload offloading.
//!
//! Run with: `cargo run --example escience_federation`

use mcs::prelude::*;

fn make_clusters() -> (Vec<Cluster>, Vec<DatacenterId>, Topology) {
    let big = Cluster::homogeneous(
        ClusterId(0),
        "university-hpc",
        MachineSpec::commodity("std-16", 16.0, 64.0),
        16,
    );
    let small = Cluster::homogeneous(
        ClusterId(0),
        "lab-cluster",
        MachineSpec::commodity("std-8", 8.0, 32.0),
        4,
    );
    let ams = GeoLocation { lat_deg: 52.37, lon_deg: 4.89 };
    let lyon = GeoLocation { lat_deg: 45.76, lon_deg: 4.84 };
    let mut topology = Topology::new(2);
    topology.connect(DatacenterId(0), DatacenterId(1), Link::wan_between(ams, lyon, 10.0));
    (vec![big, small], vec![DatacenterId(0), DatacenterId(1)], topology)
}

fn workflows(seed: u64) -> Vec<Job> {
    let mut generator = WorkflowWorkloadGenerator::new(WorkflowWorkloadConfig {
        arrival_rate: 0.01,
        width: 12,
        users: 6,
        task_demand: mcs::simcore::dist::Dist::LogNormal { mu: 6.0, sigma: 1.0 },
    });
    let mut rng = RngStream::new(seed, "escience");
    generator
        .generate(SimTime::from_secs(86_400), 240, &mut rng)
        .into_iter()
        .map(|w| {
            let mut job = w.into_job();
            // Every lab submits from the small campus cluster (home = 1):
            // the C10 question is whether the federation relieves it.
            job.user = UserId(1);
            job
        })
        .collect()
}

fn main() {
    let jobs = workflows(11);
    let tasks: usize = jobs.iter().map(|j| j.tasks.len()).sum();
    println!("== e-science federation: {} workflows, {} tasks ==", jobs.len(), tasks);

    let horizon = SimTime::from_secs(14 * 86_400);
    for policy in [
        RoutingPolicy::HomeOnly,
        RoutingPolicy::RoundRobin,
        RoutingPolicy::LeastBacklog,
        RoutingPolicy::LocalFirstOffload { threshold_secs: 900.0 },
    ] {
        let (clusters, sites, topology) = make_clusters();
        let mut federation = Federation::new(
            clusters,
            sites,
            topology,
            SchedulerConfig::default(),
            policy,
            11,
        );
        let out = federation.run(jobs.clone(), horizon);
        println!(
            "routing[{:>13}]: mean response {:>8.1}s, offloaded {:>3} jobs, transfer delay {:>6.1}s, split {:?}",
            policy.name(),
            out.mean_response_secs(),
            out.offloaded_jobs,
            out.transfer_delay_secs,
            out.jobs_per_cluster,
        );
    }

    // Critical-path analysis of one ensemble member (the e-science
    // scheduling lower bound).
    let mut shapes = WorkflowShapes::new();
    let mut rng = RngStream::new(3, "cp");
    let wf = shapes.montage_like(
        JobId(9_999),
        UserId(0),
        SimTime::ZERO,
        12,
        120.0,
        mcs::infra::resource::ResourceVector::new(1.0, 2.0),
        &mut rng,
    );
    println!(
        "example montage-like DAG: {} tasks, depth {}, max width {}, critical path {:.0}s",
        wf.job().tasks.len(),
        wf.depth(),
        wf.max_width(),
        wf.critical_path_seconds(),
    );
}
