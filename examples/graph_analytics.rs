//! Generalized graph processing (§6.6): a Graphalytics-style run of the six
//! algorithms over an R-MAT graph, through the Figure 1 stack.
//!
//! Run with: `cargo run --example graph_analytics --release`

use mcs::prelude::*;

fn main() {
    let mut rng = RngStream::new(21, "graph-analytics");
    let graph = rmat(16, 16, (0.57, 0.19, 0.19), &mut rng);
    println!(
        "== graph analytics: R-MAT scale 16 ({} vertices, {} edges) ==",
        graph.vertex_count(),
        graph.edge_count(),
    );

    // The Graphalytics suite.
    println!("{:<10} {:>10} {:>14}", "algorithm", "runtime", "EVPS");
    for row in run_suite(&graph, 4) {
        println!(
            "{:<10} {:>9.3}s {:>14.0}",
            row.algorithm.name(),
            row.runtime_secs,
            row.evps,
        );
    }

    // Strong scalability of PageRank (heavy enough to amortize threads).
    println!("-- PageRank strong scalability --");
    let rows = strong_scalability(&graph, Algorithm::PageRank, &[1, 2, 4, 8]);
    let base = rows[0].runtime_secs;
    for row in &rows {
        println!(
            "threads {:>2}: {:>8.3}s (speedup {:.2}x)",
            row.threads,
            row.runtime_secs,
            base / row.runtime_secs,
        );
    }

    // The Fig. 1 crossover: iterative PageRank favours the Pregel
    // sub-ecosystem; one-shot aggregation favours MapReduce.
    let mut store = BlockStore::new(8, 4, 3, 21);
    let file = store.put("edges", graph.edge_count() * 8, 64 << 20).clone();
    let (_, pregel_t) = pagerank_pregel(&store, &file, &graph, 10, &BspEngine::parallel(4));
    let (_, mr_t) = pagerank_mapreduce(
        &store,
        &file,
        &graph,
        10,
        &MapReduceEngine { threads: 4, combine: false },
    );
    let (_, hist_t) = degree_histogram_mapreduce(
        &store,
        &file,
        &graph,
        &MapReduceEngine { threads: 4, combine: true },
    );
    println!("-- Fig. 1 sub-ecosystem comparison (10-iteration PageRank) --");
    println!(
        "pregel    : storage {:>7.2}s + compute {:>6.2}s = {:>7.2}s",
        pregel_t.storage_secs,
        pregel_t.compute_secs,
        pregel_t.total_secs(),
    );
    println!(
        "mapreduce : storage {:>7.2}s + compute {:>6.2}s = {:>7.2}s (re-reads input every iteration)",
        mr_t.storage_secs,
        mr_t.compute_secs,
        mr_t.total_secs(),
    );
    println!(
        "mapreduce one-shot degree histogram: {:>6.2}s total (its home turf)",
        hist_t.total_secs(),
    );
}
