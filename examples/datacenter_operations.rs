//! Datacenter management (§6.1): operating the "digital factory" — elastic
//! provisioning, portfolio scheduling, correlated failures, and the
//! power/cost bill.
//!
//! Run with: `cargo run --example datacenter_operations`

use mcs::prelude::*;

const MACHINES: u32 = 32;
const CORES: f64 = 8.0;

fn cluster() -> Cluster {
    Cluster::homogeneous(
        ClusterId(0),
        "factory",
        MachineSpec::commodity("std-8", CORES, 32.0),
        MACHINES,
    )
}

fn main() {
    let horizon = SimTime::from_secs(86_400);
    let mut generator = BatchWorkloadGenerator::new(BatchWorkloadConfig {
        arrival_rate: 0.1,
        cpus: mcs::simcore::dist::Dist::LogNormal { mu: 0.5, sigma: 0.7 },
        ..Default::default()
    });
    let mut rng = RngStream::new(7, "dc-ops");
    let jobs = generator.generate(horizon, 4_000, &mut rng);
    println!("== datacenter operations: {} jobs over 1 day on {MACHINES} machines ==", jobs.len());

    // -- Failures: space-correlated bursts vs independent, equal MTBF (C1/C2).
    let mtbf = 200.0 * 3600.0;
    for (name, outages) in [
        (
            "independent",
            IndependentFailures::with_mtbf(mtbf).generate(
                MACHINES as usize,
                horizon,
                &mut RngStream::new(7, "fail-ind"),
            ),
        ),
        (
            "space-correlated",
            SpaceCorrelatedFailures::with_mtbf(mtbf, MACHINES as usize, 8).generate(
                MACHINES as usize,
                horizon,
                &mut RngStream::new(7, "fail-space"),
            ),
        ),
    ] {
        let report = analyze(&outages, MACHINES as usize, horizon);
        let mut sched = ClusterScheduler::new(cluster(), SchedulerConfig::default(), 7)
            .with_outages(outages);
        let outcome = sched.run(jobs.clone(), horizon + SimDuration::from_hours(48));
        println!(
            "failures[{name:>16}]: availability {:.4}, peak concurrent down {}, requeues {}, mean slowdown {:.2}",
            report.availability,
            report.peak_concurrent_failures,
            outcome.failure_requeues,
            outcome.mean_slowdown(),
        );
    }

    // -- Portfolio scheduling vs fixed policies (C6 approach iv).
    println!("-- scheduling policies --");
    for config in default_portfolio() {
        let out = ClusterScheduler::new(cluster(), config, 7)
            .run(jobs.clone(), horizon + SimDuration::from_hours(48));
        println!(
            "fixed[{:>5}/{:<13}]: mean response {:>8.1}s, utilization {:.1}%",
            config.queue.name(),
            config.allocation.name(),
            out.mean_response_secs(),
            out.mean_utilization * 100.0,
        );
    }
    let mut selector = PortfolioSelector::new(default_portfolio(), Objective::MeanResponse, 7);
    let out = ClusterScheduler::new(cluster(), SchedulerConfig::default(), 7).run_adaptive(
        jobs.clone(),
        horizon + SimDuration::from_hours(48),
        &mut selector,
        SimDuration::from_mins(30),
    );
    println!(
        "portfolio          : mean response {:>8.1}s, utilization {:.1}%, {} policy switches",
        out.mean_response_secs(),
        out.mean_utilization * 100.0,
        selector.decisions().len(),
    );

    // -- Elastic provisioning vs static (the dual problem's first half).
    println!("-- provisioning --");
    let mut backlog_policy = BacklogDriven { drain_target_secs: 1800.0 };
    let plan = plan_provisioning(
        &jobs,
        CORES,
        2,
        MACHINES as usize,
        SimDuration::from_mins(15),
        horizon,
        &mut backlog_policy,
    );
    let mut sched = ClusterScheduler::new(cluster(), SchedulerConfig::default(), 7)
        .with_outages(plan.outages.clone());
    let elastic = sched.run(jobs.clone(), horizon + SimDuration::from_hours(48));
    let static_hours = MACHINES as f64 * horizon.as_secs_f64() / 3600.0;
    println!(
        "static : {:>8.0} machine-hours, mean response baseline",
        static_hours
    );
    println!(
        "elastic: {:>8.0} machine-hours ({:.0}% of static), mean response {:.1}s, requeue-kills {}",
        plan.machine_hours,
        100.0 * plan.machine_hours / static_hours,
        elastic.mean_response_secs(),
        elastic.failure_requeues,
    );

    // -- The bill (power + machine-hours).
    let cost_model = CostModel::default_cloud();
    let spec = MachineSpec::commodity("std-8", CORES, 32.0);
    let mean_util = elastic.mean_utilization;
    let kwh = plan.machine_hours * spec.power.watts(mean_util) / 1000.0;
    let money = cost_model.cost(
        kwh,
        SimDuration::from_secs_f64(plan.machine_hours * 3600.0),
        spec.cost_per_hour,
    );
    println!("bill   : {kwh:.0} kWh, {money:.2} currency units over the day");
}
