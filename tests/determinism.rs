//! Reproducibility as an essential service (P8): identical seeds must yield
//! bit-identical results across every stochastic subsystem.

use mcs::prelude::*;

#[test]
fn scheduler_runs_are_bit_identical() {
    let run = || {
        let cluster = Cluster::homogeneous(
            ClusterId(0),
            "det",
            MachineSpec::commodity("std-8", 8.0, 32.0),
            8,
        );
        let mut generator = BatchWorkloadGenerator::new(BatchWorkloadConfig::default());
        let mut rng = RngStream::new(1234, "determinism");
        let jobs = generator.generate(SimTime::from_secs(6 * 3600), 300, &mut rng);
        let config = SchedulerConfig {
            allocation: AllocationPolicy::Random, // stresses the RNG path
            ..Default::default()
        };
        ClusterScheduler::new(cluster, config, 1234).run(jobs, SimTime::from_secs(30 * 86_400))
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_differ() {
    let run = |seed: u64| {
        let mut generator = BatchWorkloadGenerator::new(BatchWorkloadConfig::default());
        let mut rng = RngStream::new(seed, "determinism");
        generator.generate(SimTime::from_secs(3_600), 100, &mut rng)
    };
    assert_ne!(run(1), run(2));
}

#[test]
fn failure_schedules_are_reproducible() {
    let gen = |seed: u64| {
        SpaceCorrelatedFailures::with_mtbf(100.0 * 3600.0, 64, 8).generate(
            64,
            SimTime::from_secs(30 * 86_400),
            &mut RngStream::new(seed, "failures"),
        )
    };
    assert_eq!(gen(5), gen(5));
    assert_ne!(gen(5), gen(6));
}

#[test]
fn graph_pipeline_is_reproducible_across_thread_counts() {
    let mut rng = RngStream::new(9, "graph");
    let g = rmat(10, 8, (0.57, 0.19, 0.19), &mut rng);
    let serial = pagerank(&g, 15, &BspEngine::serial());
    for threads in [2, 4, 8] {
        // Same configuration twice: bit-identical.
        let a = pagerank(&g, 15, &BspEngine::parallel(threads));
        let b = pagerank(&g, 15, &BspEngine::parallel(threads));
        assert_eq!(a, b, "PageRank must be bit-identical at {threads} threads");
        // Across thread counts the float summation order changes, so only
        // numerical equality is promised.
        for (x, y) in a.iter().zip(&serial) {
            assert!((x - y).abs() < 1e-12, "{x} vs {y} at {threads} threads");
        }
    }
}

#[test]
fn faas_platform_is_reproducible() {
    let run = || {
        let mut p = FaasPlatform::new(KeepAlivePolicy::Fixed(SimDuration::from_mins(5)), 3);
        p.deploy(FunctionSpec::api_handler("f"));
        p.run(poisson_invocations("f", 0.5, SimTime::from_secs(3_600), 3))
    };
    assert_eq!(run(), run());
}

#[test]
fn virtual_world_is_reproducible() {
    let model = PlayerModel::default();
    let run = || {
        simulate_world(
            &model,
            ZoneProvisioning::Static { zones: 10 },
            100,
            SimTime::from_secs(6 * 3600),
            77,
        )
    };
    assert_eq!(run(), run());
}
