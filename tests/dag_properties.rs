//! Property-based tests on the workflow substrate (`mcs-dag`): generator
//! validity, HEFT rank monotonicity, fan-out determinism, and the E8
//! portfolio-dominance shape. Randomized properties run on the in-house
//! seeded harness ([`mcs::simcore::check::Check`]), so a failure prints the
//! exact seed needed to replay it.

use mcs::core::scenario::{DagConfig, DagPolicy, NetworkConfig, Scenario, ScenarioConfig};
use mcs::prelude::*;
use mcs::simcore::par;
use mcs_simcore::prop_assert;

/// Every generated workflow is a valid DAG: a complete topological order
/// exists (acyclic), every edge points forward in it, and regeneration from
/// the same seed is bit-identical — for arbitrary classes, widths, and
/// shape parameters. Weak connectivity is enforced by `DagJob::new` at
/// construction, so merely returning is already half the property.
#[test]
fn generated_workflows_are_valid_and_deterministic() {
    Check::new("generated_workflows_are_valid_and_deterministic").cases(96).run(|rng| {
        let class = DagClass::ALL[rng.uniform_usize(DagClass::ALL.len())];
        let shape = DagShape {
            width: 1 + rng.uniform_usize(12),
            work: rng.uniform_f64(10.0, 500.0),
            cores: rng.uniform_f64(0.5, 4.0),
            memory_gb: rng.uniform_f64(0.5, 8.0),
            edge_bytes: 1 + rng.uniform_usize(64 << 20) as u64,
        };
        let seed = rng.uniform_usize(1 << 20) as u64;
        let dag = generate(class, &shape, &mut RngStream::new(seed, "dag-prop"));

        // Acyclic: Kahn's algorithm covered every task.
        let order = dag.topo_order();
        prop_assert!(order.len() == dag.len(), "topo order misses tasks: cycle");
        let mut position = vec![0usize; dag.len()];
        for (pos, &task) in order.iter().enumerate() {
            position[task] = pos;
        }
        for edge in dag.edges() {
            prop_assert!(
                position[edge.from] < position[edge.to],
                "edge {}->{} points backward in topo order",
                edge.from,
                edge.to
            );
        }
        for task in dag.tasks() {
            prop_assert!(task.work > 0.0 && task.cores > 0.0 && task.memory_gb > 0.0);
        }

        // Deterministic: the (seed, class, shape) triple pins the workflow.
        let again = generate(class, &shape, &mut RngStream::new(seed, "dag-prop"));
        prop_assert!(dag == again, "same seed produced a different workflow");
        Ok(())
    });
}

/// HEFT upward ranks are strictly monotone along every edge: a parent's
/// rank exceeds its child's by at least the parent's own execution time,
/// for every class and arbitrary shapes/bandwidths.
#[test]
fn heft_upward_ranks_strictly_dominate_children() {
    Check::new("heft_upward_ranks_strictly_dominate_children").cases(64).run(|rng| {
        let class = DagClass::ALL[rng.uniform_usize(DagClass::ALL.len())];
        let shape = DagShape {
            width: 1 + rng.uniform_usize(10),
            work: rng.uniform_f64(10.0, 300.0),
            cores: rng.uniform_f64(0.5, 4.0),
            memory_gb: 2.0,
            edge_bytes: 1 + rng.uniform_usize(32 << 20) as u64,
        };
        let seed = rng.uniform_usize(1 << 20) as u64;
        let dag = generate(class, &shape, &mut RngStream::new(seed, "dag-rank"));
        let ref_bandwidth = rng.uniform_f64(1.0, 1_000.0) * 1024.0 * 1024.0;
        let ranks = dag.upward_ranks(ref_bandwidth);
        for edge in dag.edges() {
            let parent_exec = dag.tasks()[edge.from].exec_secs();
            prop_assert!(
                ranks[edge.from] >= ranks[edge.to] + parent_exec - 1e-9,
                "rank({}) = {} does not dominate rank({}) = {} + exec {}",
                edge.from,
                ranks[edge.from],
                edge.to,
                ranks[edge.to],
                parent_exec
            );
            prop_assert!(ranks[edge.from] > ranks[edge.to], "parent must strictly outrank child");
        }
        // The rank of a source bounds the compute-only critical path from
        // below once transfers are free (infinite bandwidth ranks ignore
        // edges entirely).
        let free = dag.upward_ranks(f64::INFINITY);
        let top = free.iter().cloned().fold(0.0, f64::max);
        prop_assert!(
            (top - dag.critical_path_secs(f64::INFINITY)).abs() < 1e-6,
            "max upward rank {} must equal the compute-only critical path {}",
            top,
            dag.critical_path_secs(f64::INFINITY)
        );
        Ok(())
    });
}

/// A DAG-tenant scenario — workflows whose edges ride the shared fabric —
/// is deterministic and worker-count independent: sweeping seeds at any
/// `MCS_PAR_WORKERS` width returns identical traces in identical order.
#[test]
fn dag_scenario_fanout_is_worker_count_independent() {
    fn replicate(seed: u64) -> (u64, u64, String) {
        let config = ScenarioConfig::bare(seed, SimTime::from_secs(2 * 3600), 16)
            .with_dag(DagConfig { jobs: 4, ..DagConfig::default() })
            .with_network(NetworkConfig::default());
        let out = Scenario::new(config).run();
        (out.events_handled, out.dag_tasks_finished, out.trace.to_json_string())
    }

    let seeds: Vec<u64> = (42..46).collect();
    let reference: Vec<(u64, u64, String)> = seeds.iter().map(|&s| replicate(s)).collect();
    for (seed, (_, tasks, _)) in seeds.iter().zip(&reference) {
        assert!(*tasks > 0, "seed {seed} finished no workflow tasks");
    }
    for workers in [1, 2, 4] {
        let got = par::run_indexed_with(workers, seeds.len(), |i| replicate(seeds[i]));
        assert!(got == reference, "dag sweep diverged at workers={workers}");
    }
}

/// The E8 dominance shape at the pinned seed: the per-class portfolio's
/// mixed-class mean makespan meets or beats every fixed policy, with the
/// same jobs finished, on the same fabric.
#[test]
fn portfolio_meets_or_beats_every_fixed_policy_at_seed_42() {
    fn run(policy: DagPolicy) -> (u64, f64) {
        let config = ScenarioConfig::bare(42, SimTime::from_secs(4 * 3600), 32)
            .with_dag(DagConfig { edge_mb: 128.0, policy, ..DagConfig::default() })
            .with_network(NetworkConfig {
                node_bandwidth_mbs: 50.0,
                rack_bandwidth_mbs: 200.0,
                ..NetworkConfig::default()
            });
        let out = Scenario::new(config).run();
        (out.dag_jobs_finished, out.dag_mean_makespan_secs)
    }

    let (jobs, portfolio) = run(DagPolicy::Portfolio);
    assert!(jobs > 0, "portfolio run must finish workflows");
    for fixed in [DagPolicy::Heft, DagPolicy::Greedy, DagPolicy::Locality] {
        let (fixed_jobs, makespan) = run(fixed);
        assert_eq!(fixed_jobs, jobs, "{} finished a different job count", fixed.name());
        assert!(
            portfolio <= makespan + 1e-9,
            "portfolio {portfolio:.1}s must meet or beat {} {makespan:.1}s",
            fixed.name()
        );
    }
}
