//! Golden regression gate for the composed scenario.
//!
//! The `ScenarioConfig` redesign (nested per-subsystem sub-configs) promised
//! that the *default* configuration keeps producing byte-identical traces.
//! This test pins the default-config trace JSON to a digest captured before
//! the redesign; any drift in actor registration order, RNG stream labels,
//! or zero-time scheduling shows up here as a digest mismatch.

use mcs::prelude::*;
use std::hash::Hasher;

/// FNV-1a over the rendered trace JSON via simcore's deterministic hasher.
fn trace_digest(trace: &TraceBus) -> u64 {
    let json = trace.to_json_string();
    let mut h = mcs_simcore::intern::FastHasher::default();
    h.write(json.as_bytes());
    h.finish()
}

/// Digest of `Scenario::new(ScenarioConfig::default()).run().trace`, captured
/// on the flat-config implementation immediately before the nested redesign.
const GOLDEN_DEFAULT_TRACE_DIGEST: u64 = 1913211282799844796;

#[test]
fn default_config_trace_matches_pre_redesign_golden() {
    let out = Scenario::new(ScenarioConfig::default()).run();
    let digest = trace_digest(&out.trace);
    assert_eq!(
        digest, GOLDEN_DEFAULT_TRACE_DIGEST,
        "default-config trace drifted from the pre-redesign golden digest"
    );
}
