//! Full-stack integration: scenarios that cross three or more crates, the
//! ecosystem-wide view of challenge C1.

use mcs::prelude::*;

/// Workload → RMS → failures: a grid day survives correlated failures with
/// every admitted task completing.
#[test]
fn grid_day_with_correlated_failures_completes() {
    let machines = 24u32;
    let horizon = SimTime::from_secs(86_400);
    let cluster = Cluster::homogeneous(
        ClusterId(0),
        "grid",
        MachineSpec::commodity("std-8", 8.0, 32.0),
        machines,
    );
    let mut generator = BatchWorkloadGenerator::new(BatchWorkloadConfig {
        arrival_rate: 0.03,
        ..Default::default()
    });
    let mut rng = RngStream::new(42, "fullstack");
    let jobs = generator.generate(horizon, 800, &mut rng);
    let submitted_tasks: usize = jobs.iter().map(|j| j.tasks.len()).sum();

    let outages = SpaceCorrelatedFailures::with_mtbf(50.0 * 3600.0, machines as usize, 8)
        .generate(machines as usize, horizon, &mut RngStream::new(42, "fs-fail"));
    let config = SchedulerConfig { checkpoint_factor: 0.5, ..Default::default() };
    let mut sched = ClusterScheduler::new(cluster, config, 42).with_outages(outages);
    let out = sched.run(jobs, SimTime::from_secs(30 * 86_400));

    assert_eq!(out.unfinished, 0, "all feasible tasks must finish");
    assert_eq!(out.completions.len() + out.rejected, submitted_tasks);
    assert!(out.mean_utilization > 0.0 && out.mean_utilization <= 1.0);
}

/// Workflows respect dependencies end-to-end through the scheduler.
#[test]
fn workflow_dependencies_hold_under_load() {
    let cluster = Cluster::homogeneous(
        ClusterId(0),
        "wf",
        MachineSpec::commodity("std-4", 4.0, 16.0),
        8,
    );
    let mut generator = WorkflowWorkloadGenerator::new(WorkflowWorkloadConfig {
        arrival_rate: 0.01,
        width: 6,
        ..Default::default()
    });
    let mut rng = RngStream::new(7, "wf-int");
    let workflows = generator.generate(SimTime::from_secs(4 * 3600), 30, &mut rng);
    let jobs: Vec<Job> = workflows.iter().map(|w| w.job().clone()).collect();
    // Record dependency pairs for post-hoc verification.
    let mut dep_pairs = Vec::new();
    for j in &jobs {
        for t in &j.tasks {
            for d in &t.dependencies {
                dep_pairs.push((*d, t.id));
            }
        }
    }
    let mut sched = ClusterScheduler::new(cluster, SchedulerConfig::default(), 7);
    let out = sched.run(jobs, SimTime::from_secs(90 * 86_400));
    assert_eq!(out.unfinished, 0);
    let finish_of = |id: TaskId| {
        out.completions.iter().find(|c| c.task == id).map(|c| c.finish)
    };
    let start_of = |id: TaskId| {
        out.completions.iter().find(|c| c.task == id).map(|c| c.start)
    };
    for (dep, dependent) in dep_pairs {
        let (Some(f), Some(s)) = (finish_of(dep), start_of(dependent)) else {
            panic!("missing completion records");
        };
        assert!(s >= f, "task started before its dependency finished");
    }
}

/// Provisioning plan + scheduler + cost: elasticity saves machine-hours
/// without losing work.
#[test]
fn elastic_provisioning_preserves_work_and_saves_hours() {
    let horizon = SimTime::from_secs(86_400);
    let mut generator = BatchWorkloadGenerator::new(BatchWorkloadConfig {
        arrival_rate: 0.02,
        bursty: true,
        ..Default::default()
    });
    let mut rng = RngStream::new(5, "elastic");
    let jobs = generator.generate(horizon, 600, &mut rng);

    let mut policy = BacklogDriven { drain_target_secs: 3_600.0 };
    let plan = plan_provisioning(
        &jobs,
        8.0,
        2,
        32,
        SimDuration::from_mins(15),
        horizon,
        &mut policy,
    );
    let cluster = Cluster::homogeneous(
        ClusterId(0),
        "elastic",
        MachineSpec::commodity("std-8", 8.0, 32.0),
        32,
    );
    let mut sched = ClusterScheduler::new(cluster, SchedulerConfig::default(), 5)
        .with_outages(plan.outages.clone());
    let out = sched.run(jobs, SimTime::from_secs(30 * 86_400));
    assert_eq!(out.unfinished, 0);
    let static_hours = 32.0 * horizon.as_secs_f64() / 3600.0;
    assert!(plan.machine_hours < static_hours, "elastic must not exceed static");
}

/// NFR calculus + ecosystem + SLA: an SLA that a single system violates is
/// met by the ecosystem's collective (replicated) profile.
#[test]
fn ecosystem_collective_meets_sla_single_system_cannot() {
    let single = NfrProfile::new()
        .with(NfrKind::Availability, 0.99)
        .with(NfrKind::Throughput, 500.0);
    let eco = Ecosystem::new("pair")
        .with_system(SystemNode::new("a", "org1", "serve", single.clone()))
        .with_system(SystemNode::new("b", "org2", "serve", single.clone()));
    let sla = Sla {
        name: "three-nines".into(),
        slos: vec![Slo {
            name: "availability".into(),
            target: NfrTarget::new(NfrKind::Availability, 0.999),
            penalty: 1.0,
        }],
        penalty_cap: 1.0,
    };
    assert!(!sla.evaluate(&single).compliant);
    let collective = eco.collective_profile("serve").unwrap();
    assert!(sla.evaluate(&collective).compliant);
}

/// Autoscaling + workload: every standard autoscaler beats static-minimum
/// provisioning on unserved demand under a diurnal load.
#[test]
fn autoscalers_beat_static_minimum() {
    let rate = |t: SimTime| {
        200.0 + 150.0 * (t.as_secs_f64() / 86_400.0 * std::f64::consts::TAU).sin()
    };
    let config = ServiceConfig::default();
    let horizon = SimTime::from_secs(2 * 86_400);
    let mut static_min = StaticAutoscaler(1);
    let baseline = simulate_service(&rate, horizon, config, &mut static_min);
    for mut scaler in standard_autoscalers(24 * 60) {
        let out = simulate_service(&rate, horizon, config, scaler.as_mut());
        assert!(
            out.unserved_fraction < baseline.unserved_fraction / 2.0,
            "{} unserved {} vs static {}",
            scaler.name(),
            out.unserved_fraction,
            baseline.unserved_fraction
        );
    }
}

/// Graph + gaming: the analytics pipeline consumes the game's match logs.
#[test]
fn gaming_analytics_over_graph_substrate() {
    let model = PopulationModel { players: 200, communities: 4, ..Default::default() };
    let log = generate_matches(&model, 10_000, 3);
    let g = implicit_social_graph(&log, model.players, 3);
    // The implicit graph is a real mcs-graph Graph: run WCC on it.
    let components = wcc(&g, &BspEngine::parallel(2));
    assert_eq!(components.len(), model.players as usize);
    // The giant component should cover most active players.
    let mut counts = std::collections::HashMap::new();
    for c in &components {
        *counts.entry(*c).or_insert(0usize) += 1;
    }
    let giant = counts.values().copied().max().unwrap();
    assert!(giant > model.players as usize / 2);
}

/// Reference architectures validate the workspace's own deployments.
#[test]
fn workspace_deployments_cover_refarchs() {
    assert!(bigdata_refarch().is_executable(&["mcs-mapreduce", "mcs-mapreduce-engine", "mcs-blockstore"]));
    assert!(faas_refarch().is_executable(&["mcs-faas-platform", "mcs-rms", "mcs-infra"]));
    assert!(gaming_refarch().is_executable(&["mcs-world"]));
    assert!(datacenter_refarch()
        .is_executable(&["api-gateway", "mcs-scheduler", "mcs-provisioner", "mcs-infra"]));
}
