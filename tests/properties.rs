//! Property-based tests on the core invariants of the workspace, run on the
//! in-house seeded harness ([`mcs::simcore::check::Check`]). Each property
//! draws its inputs from the per-case `RngStream`, so a failure prints the
//! exact seed needed to replay it.

use mcs::prelude::*;
use mcs_simcore::{prop_assert, prop_assert_eq};

/// The scheduler conserves tasks: completed + rejected + unfinished equals
/// submitted, for arbitrary workloads.
#[test]
fn scheduler_conserves_tasks() {
    Check::new("scheduler_conserves_tasks").cases(48).run(|rng| {
        let seed = rng.uniform_usize(500) as u64;
        let n_jobs = 1 + rng.uniform_usize(39);
        let cores = 1 + rng.uniform_usize(3) as u32;
        let cluster = Cluster::homogeneous(
            ClusterId(0),
            "p",
            MachineSpec::commodity("m", 4.0, 16.0),
            cores,
        );
        let mut wl_rng = RngStream::new(seed, "prop-sched");
        let jobs: Vec<Job> = (0..n_jobs)
            .map(|i| {
                let id = JobId(i as u64);
                let tasks = (0..1 + wl_rng.uniform_usize(3))
                    .map(|k| {
                        Task::independent(
                            TaskId((i * 10 + k) as u64),
                            id,
                            wl_rng.uniform_f64(1.0, 500.0),
                            mcs::infra::resource::ResourceVector::new(
                                1.0 + wl_rng.uniform_usize(6) as f64, // may exceed capacity
                                wl_rng.uniform_f64(0.5, 8.0),
                            ),
                        )
                    })
                    .collect();
                Job {
                    id,
                    user: UserId(0),
                    kind: JobKind::BagOfTasks,
                    submit: SimTime::from_secs(wl_rng.uniform_usize(3_600) as u64),
                    tasks,
                }
            })
            .collect();
        let submitted: usize = jobs.iter().map(|j| j.tasks.len()).sum();
        let mut sched = ClusterScheduler::new(cluster, SchedulerConfig::default(), seed);
        let out = sched.run(jobs, SimTime::from_secs(30 * 86_400));
        prop_assert_eq!(out.completions.len() + out.rejected + out.unfinished, submitted);
        prop_assert_eq!(out.unfinished, 0);
        // Start/finish sanity.
        for c in &out.completions {
            prop_assert!(c.start >= c.submit);
            prop_assert!(c.finish > c.start);
        }
        Ok(())
    });
}

/// Resource vectors: fits_in is consistent with checked_sub.
#[test]
fn resource_fits_iff_checked_sub() {
    use mcs::infra::resource::ResourceVector;
    Check::new("resource_fits_iff_checked_sub").cases(256).run(|rng| {
        let mut draw = |scale: f64| -> [f64; 4] {
            [
                rng.uniform_f64(0.0, scale),
                rng.uniform_f64(0.0, scale),
                rng.uniform_f64(0.0, scale),
                rng.uniform_f64(0.0, scale),
            ]
        };
        let a = draw(64.0);
        let b = draw(64.0);
        let want = ResourceVector::new(a[0], a[1]).with_storage_gb(a[2]).with_network_gbps(a[3]);
        let have = ResourceVector::new(b[0], b[1]).with_storage_gb(b[2]).with_network_gbps(b[3]);
        prop_assert_eq!(want.fits_in(&have), have.checked_sub(&want).is_some());
        Ok(())
    });
}

/// NFR serial composition is associative for every kind.
#[test]
fn nfr_serial_composition_associative() {
    Check::new("nfr_serial_composition_associative").cases(256).run(|rng| {
        let x = rng.uniform_f64(0.01, 10.0);
        let y = rng.uniform_f64(0.01, 10.0);
        let z = rng.uniform_f64(0.01, 10.0);
        let av1 = rng.uniform_f64(0.5, 1.0);
        let av2 = rng.uniform_f64(0.5, 1.0);
        let av3 = rng.uniform_f64(0.5, 1.0);
        let p = |lat: f64, avail: f64| {
            NfrProfile::new()
                .with(NfrKind::LatencyP95, lat)
                .with(NfrKind::Availability, avail)
                .with(NfrKind::Throughput, lat * 100.0)
        };
        let (a, b, c) = (p(x, av1), p(y, av2), p(z, av3));
        let left = a.compose_serial(&b).compose_serial(&c);
        let right = a.compose_serial(&b.compose_serial(&c));
        for kind in NfrKind::ALL {
            match (left.get(kind), right.get(kind)) {
                (Some(l), Some(r)) => prop_assert!((l - r).abs() < 1e-9),
                (None, None) => {}
                other => prop_assert!(false, "asymmetric kinds {other:?}"),
            }
        }
        Ok(())
    });
}

/// Parallel composition never lowers availability.
#[test]
fn replication_never_hurts_availability() {
    Check::new("replication_never_hurts_availability").cases(256).run(|rng| {
        let a = rng.uniform_f64(0.0, 1.0);
        let b = rng.uniform_f64(0.0, 1.0);
        let pa = NfrProfile::new().with(NfrKind::Availability, a);
        let pb = NfrProfile::new().with(NfrKind::Availability, b);
        let c = pa.compose_parallel(&pb).get(NfrKind::Availability).unwrap();
        prop_assert!(c >= a - 1e-12);
        prop_assert!(c >= b - 1e-12);
        prop_assert!(c <= 1.0 + 1e-12);
        Ok(())
    });
}

/// Elasticity metrics are bounded and perfect tracking scores 1.
#[test]
fn elasticity_metrics_bounded() {
    Check::new("elasticity_metrics_bounded").cases(128).run(|rng| {
        let len = 1 + rng.uniform_usize(99);
        let demand: Vec<f64> = (0..len).map(|_| rng.uniform_f64(0.0, 100.0)).collect();
        let m = ElasticityMetrics::compute(&demand, &demand).unwrap();
        prop_assert_eq!(m.timeshare_under, 0.0);
        prop_assert_eq!(m.timeshare_over, 0.0);
        prop_assert!((m.score() - 1.0).abs() < 1e-12);
        // Against an arbitrary supply (shifted), everything stays bounded.
        let supply: Vec<f64> = demand.iter().map(|d| (d - 5.0).max(0.0)).collect();
        let m2 = ElasticityMetrics::compute(&demand, &supply).unwrap();
        prop_assert!((0.0..=1.0).contains(&m2.timeshare_under));
        prop_assert!((0.0..=1.0).contains(&m2.timeshare_over));
        prop_assert!((0.0..=1.0).contains(&m2.instability));
        prop_assert!(unserved_fraction(&demand, &supply) <= 1.0 + 1e-12);
        Ok(())
    });
}

/// Workflow validation accepts every generated DAG and its topological order
/// respects dependencies.
#[test]
fn generated_workflows_are_valid() {
    Check::new("generated_workflows_are_valid").cases(64).run(|rng| {
        let seed = rng.uniform_usize(200) as u64;
        let width = 2 + rng.uniform_usize(8);
        let mut shapes = WorkflowShapes::new();
        let mut wf_rng = RngStream::new(seed, "prop-wf");
        let wf = shapes.montage_like(
            JobId(0),
            UserId(0),
            SimTime::ZERO,
            width,
            10.0,
            mcs::infra::resource::ResourceVector::cores(1.0),
            &mut wf_rng,
        );
        let pos: std::collections::HashMap<TaskId, usize> = wf
            .topological_order()
            .iter()
            .enumerate()
            .map(|(rank, &idx)| (wf.job().tasks[idx].id, rank))
            .collect();
        for t in &wf.job().tasks {
            for d in &t.dependencies {
                prop_assert!(pos[d] < pos[&t.id]);
            }
        }
        prop_assert!(wf.critical_path_seconds() > 0.0);
        Ok(())
    });
}

/// Trace JSON-lines round-trips preserve record counts and fields.
#[test]
fn trace_roundtrip() {
    Check::new("trace_roundtrip").cases(64).run(|rng| {
        let seed = rng.uniform_usize(200) as u64;
        let n = 1 + rng.uniform_usize(49);
        let mut generator = BatchWorkloadGenerator::new(BatchWorkloadConfig::default());
        let mut tr_rng = RngStream::new(seed, "prop-trace");
        let trace = generator.generate_trace(SimTime::from_secs(100_000), n, &mut tr_rng);
        let bytes = trace.to_jsonl().map_err(|e| e.to_string())?;
        let back = Trace::from_jsonl(&bytes).map_err(|e| e.to_string())?;
        prop_assert_eq!(trace.len(), back.len());
        for (a, b) in trace.records().iter().zip(back.records()) {
            prop_assert_eq!(a.job_id, b.job_id);
            prop_assert_eq!(a.user, b.user);
            prop_assert!((a.runtime_secs - b.runtime_secs).abs() < 1e-9);
        }
        Ok(())
    });
}

/// Graph invariants: undirected() is symmetric; WCC labels are component
/// minima; BFS depths grow by at most 1 along edges.
#[test]
fn graph_invariants() {
    Check::new("graph_invariants").cases(32).run(|rng| {
        let seed = rng.uniform_usize(100) as u64;
        let mut g_rng = RngStream::new(seed, "prop-graph");
        let g = erdos_renyi(80, 160, &mut g_rng);
        let u = g.undirected();
        for v in u.vertices() {
            for &t in u.neighbors(v) {
                prop_assert!(u.neighbors(t).binary_search(&v).is_ok());
            }
        }
        let labels = wcc(&g, &BspEngine::serial());
        for v in g.vertices() {
            prop_assert!(labels[v as usize] <= v);
        }
        let depth = bfs(&g, 0, &BspEngine::serial());
        for v in g.vertices() {
            if depth[v as usize] >= 0 {
                for &t in g.neighbors(v) {
                    prop_assert!(depth[t as usize] >= 0);
                    prop_assert!(depth[t as usize] <= depth[v as usize] + 1);
                }
            }
        }
        Ok(())
    });
}

/// Outage analysis: availability is in [0, 1] and decreases with more
/// outages.
#[test]
fn availability_bounded() {
    Check::new("availability_bounded").cases(48).run(|rng| {
        let seed = rng.uniform_usize(100) as u64;
        let machines = 1 + rng.uniform_usize(49);
        let horizon = SimTime::from_secs(30 * 86_400);
        let model = IndependentFailures::with_mtbf(200.0 * 3600.0);
        let mut f_rng = RngStream::new(seed, "prop-fail");
        let outages = model.generate(machines, horizon, &mut f_rng);
        let report = analyze(&outages, machines, horizon);
        prop_assert!((0.0..=1.0).contains(&report.availability));
        prop_assert!(report.peak_concurrent_failures <= machines);
        prop_assert!(report.mean_concurrent_failures <= machines as f64);
        Ok(())
    });
}

/// M/M/c predictions are internally consistent (Little's Law) and monotone
/// in the number of servers.
#[test]
fn mmc_consistency() {
    Check::new("mmc_consistency").cases(256).run(|rng| {
        let lambda = rng.uniform_f64(0.1, 20.0);
        let mu = rng.uniform_f64(0.5, 5.0);
        let c_min = (lambda / mu).ceil() as u32 + 1;
        if let Some(p) = mmc(lambda, mu, c_min) {
            prop_assert!(
                (littles_law(lambda, p.mean_response_secs) - p.mean_in_system).abs() < 1e-9
            );
            prop_assert!((0.0..1.0).contains(&p.utilization));
            prop_assert!((0.0..=1.0).contains(&p.wait_probability));
            if let Some(p2) = mmc(lambda, mu, c_min + 4) {
                prop_assert!(p2.mean_wait_secs <= p.mean_wait_secs + 1e-12);
            }
        }
        Ok(())
    });
}

/// The engine delivers same-timestamp messages in a deterministic order:
/// a mesh of actors flooding each other with zero-delay messages produces
/// an identical delivery log and a byte-identical trace across two runs
/// with the same seed, for arbitrary mesh sizes and flood depths.
#[test]
fn same_timestamp_mesh_delivery_is_deterministic() {
    use mcs::simcore::codec::Json;
    use mcs::simcore::engine::{Actor, ActorId, Context, Simulation};
    use std::cell::RefCell;
    use std::rc::Rc;

    #[derive(Debug, Clone, Copy, PartialEq)]
    struct Flood {
        ttl: u32,
    }

    struct MeshActor {
        index: usize,
        peers: usize,
        log: Rc<RefCell<Vec<(usize, u32)>>>,
    }

    impl Actor<Flood> for MeshActor {
        fn handle(&mut self, ctx: &mut Context<'_, Flood>, msg: Flood) {
            self.log.borrow_mut().push((self.index, msg.ttl));
            ctx.emit(
                "mesh",
                "recv",
                Json::Obj(vec![
                    ("actor".into(), Json::UInt(self.index as u64)),
                    ("ttl".into(), Json::UInt(u64::from(msg.ttl))),
                ]),
            );
            if msg.ttl > 0 {
                for offset in [1usize, 2] {
                    let peer = ActorId::from_index((self.index + offset) % self.peers);
                    ctx.send(peer, SimDuration::ZERO, Flood { ttl: msg.ttl - 1 });
                }
            }
        }
    }

    fn run_mesh(seed: u64, peers: usize, ttl: u32) -> (Vec<(usize, u32)>, String) {
        let log: Rc<RefCell<Vec<(usize, u32)>>> = Rc::new(RefCell::new(Vec::new()));
        let mut sim: Simulation<'_, Flood> = Simulation::new(seed);
        for index in 0..peers {
            let id = sim.add_actor(MeshActor { index, peers, log: Rc::clone(&log) });
            assert_eq!(id, ActorId::from_index(index));
        }
        // Every root message lands at the same instant: delivery order is
        // pure tie-breaking inside the engine.
        for index in 0..peers {
            sim.schedule(SimTime::ZERO, ActorId::from_index(index), Flood { ttl });
        }
        sim.run();
        let trace = sim.take_trace().to_json_string();
        let events = log.borrow().clone();
        (events, trace)
    }

    Check::new("same_timestamp_mesh_delivery_is_deterministic").cases(32).run(|rng| {
        let seed = rng.uniform_usize(1_000) as u64;
        let peers = 2 + rng.uniform_usize(5);
        let ttl = 1 + rng.uniform_usize(3) as u32;
        let (log_a, trace_a) = run_mesh(seed, peers, ttl);
        let (log_b, trace_b) = run_mesh(seed, peers, ttl);
        // No message lost: each of the `peers` roots floods a binary tree
        // of depth `ttl`.
        let expected = peers * (2usize.pow(ttl + 1) - 1);
        prop_assert_eq!(log_a.len(), expected);
        prop_assert_eq!(&log_a, &log_b);
        prop_assert!(!trace_a.is_empty());
        prop_assert_eq!(trace_a, trace_b);
        Ok(())
    });
}

/// The composed ecosystem scenario is deterministic end to end: identical
/// configurations yield byte-identical traces and identical outcomes, and
/// every subsystem appears on the shared trace bus.
#[test]
fn composed_scenario_trace_is_deterministic() {
    use mcs::core::scenario::{
        BatchConfig, FaasConfig, FailureConfig, Scenario, ScenarioConfig,
    };

    Check::new("composed_scenario_trace_is_deterministic").cases(4).run(|rng| {
        let config = ScenarioConfig {
            seed: rng.uniform_usize(1_000) as u64,
            horizon: SimTime::from_secs(1_800),
            machines: 8,
            ..ScenarioConfig::default()
        }
        .with_batch(BatchConfig { jobs: 12, ..BatchConfig::default() })
        .with_faas(FaasConfig { arrival_rate: 0.3, ..FaasConfig::default() })
        .with_failures(FailureConfig { mtbf_secs: 3_600.0, ..FailureConfig::default() });
        let a = Scenario::new(config.clone()).run();
        let b = Scenario::new(config).run();
        prop_assert_eq!(a.trace.to_json_string(), b.trace.to_json_string());
        prop_assert_eq!(a.events_handled, b.events_handled);
        prop_assert_eq!(a.schedule, b.schedule);
        prop_assert_eq!(a.faas, b.faas);
        prop_assert!(a.trace.components().iter().any(|c| c == "workload"));
        Ok(())
    });
}

/// Interning is invisible in the serialized artifact: a trace bus encodes
/// byte-identically to the reference un-interned encoding (a plain JSON
/// object per event with owned-string identity), at arbitrary seeds,
/// vocabularies, and payload shapes.
#[test]
fn interned_trace_serializes_byte_identically() {
    use mcs::simcore::trace::{payload, TraceBus};

    const COMPONENTS: [&str; 5] = ["rms", "faas", "autoscale", "failure", "workload"];
    const EVENTS: [&str; 5] = ["task_finish", "invoke", "outage", "scale", "retry_scheduled"];
    const KEYS: [&str; 4] = ["latency_secs", "capacity", "kind", "ok"];

    Check::new("interned_trace_serializes_byte_identically").cases(32).run(|rng| {
        let n = rng.uniform_usize(120);
        let mut bus = TraceBus::new();
        let mut reference = Vec::with_capacity(n);
        for i in 0..n {
            let at = SimTime::from_nanos(i as u64 * 1_000 + rng.uniform_usize(999) as u64);
            let component = COMPONENTS[rng.uniform_usize(COMPONENTS.len())];
            let event = EVENTS[rng.uniform_usize(EVENTS.len())];
            let fields: Vec<(&'static str, Json)> = KEYS
                .iter()
                .take(rng.uniform_usize(KEYS.len() + 1))
                .map(|&k| {
                    let v = match rng.uniform_usize(4) {
                        0 => Json::Float(rng.uniform_f64(-10.0, 10.0)),
                        1 => Json::UInt(rng.uniform_usize(1_000_000) as u64),
                        2 => Json::Str(format!("v{}", rng.uniform_usize(50))),
                        _ => Json::Bool(rng.uniform_usize(2) == 0),
                    };
                    (k, v)
                })
                .collect();
            let body = payload(fields);
            bus.record(at, component, event, body.clone());
            reference.push(Json::Obj(vec![
                ("at".into(), at.to_json()),
                ("component".into(), Json::Str(component.to_owned())),
                ("event".into(), Json::Str(event.to_owned())),
                ("payload".into(), body),
            ]));
        }
        let expected = Json::Arr(reference).encode();
        prop_assert_eq!(bus.to_json_string(), expected.clone());
        // And the round trip through the parser is lossless.
        let back = TraceBus::from_json_str(&expected).map_err(|e| e.to_string())?;
        prop_assert_eq!(back.to_json_string(), expected);
        prop_assert_eq!(back, bus);
        Ok(())
    });
}

/// The lazily built `(component, event)` query index agrees with a naive
/// full scan — including when records keep arriving after the index exists.
#[test]
fn indexed_trace_queries_match_naive_scans() {
    use mcs::simcore::trace::{payload, TraceBus, TraceEvent};

    const COMPONENTS: [&str; 4] = ["rms", "faas", "autoscale", "failure"];
    const EVENTS: [&str; 3] = ["task_finish", "invoke", "outage"];

    fn naive_select<'b>(bus: &'b TraceBus, component: &str, event: &str) -> Vec<&'b TraceEvent> {
        bus.events()
            .iter()
            .filter(|e| {
                bus.interner().resolve(e.component) == component
                    && bus.interner().resolve(e.event) == event
            })
            .collect()
    }

    Check::new("indexed_trace_queries_match_naive_scans").cases(32).run(|rng| {
        let mut bus = TraceBus::new();
        let record = |bus: &mut TraceBus, rng: &mut RngStream, i: usize| {
            bus.record(
                SimTime::from_nanos(i as u64),
                COMPONENTS[rng.uniform_usize(COMPONENTS.len())],
                EVENTS[rng.uniform_usize(EVENTS.len())],
                payload(vec![("x", Json::Float(rng.uniform_f64(0.0, 1.0)))]),
            );
        };
        let first = rng.uniform_usize(200);
        for i in 0..first {
            record(&mut bus, rng, i);
        }
        // Query battery; the first call builds the index.
        for component in COMPONENTS {
            for event in EVENTS {
                prop_assert_eq!(bus.count(component, event), naive_select(&bus, component, event).len());
                prop_assert_eq!(bus.select(component, event), naive_select(&bus, component, event));
                let series = bus.series(component, event, "x");
                let naive: Vec<(SimTime, f64)> = naive_select(&bus, component, event)
                    .iter()
                    .filter_map(|e| e.field_f64("x").map(|v| (e.at, v)))
                    .collect();
                prop_assert_eq!(series, naive);
            }
        }
        // Keep recording into the (now live) index, then re-check.
        let extra = 1 + rng.uniform_usize(100);
        for i in first..first + extra {
            record(&mut bus, rng, i);
        }
        for component in COMPONENTS {
            for event in EVENTS {
                prop_assert_eq!(bus.count(component, event), naive_select(&bus, component, event).len());
                prop_assert_eq!(bus.select(component, event), naive_select(&bus, component, event));
            }
        }
        let mut total = 0usize;
        for component in COMPONENTS {
            for event in EVENTS {
                total += bus.count(component, event);
            }
        }
        prop_assert_eq!(total, bus.len());
        Ok(())
    });
}

/// Parallel seed fan-out is worker-count independent: each seed runs its own
/// deterministic simulation, and the merged results (including serialized
/// traces) are identical at 1, 2, and 4 workers.
#[test]
fn seed_fanout_is_worker_count_independent() {
    use mcs::simcore::par;
    use std::cell::Cell;

    struct Pinger {
        left: Cell<u32>,
    }
    enum Ping {
        Ping,
    }
    impl Actor<Ping> for Pinger {
        fn handle(&mut self, ctx: &mut Context<'_, Ping>, _msg: Ping) {
            let jitter = ctx.rng().uniform_f64(0.0, 1.0);
            ctx.emit("pinger", "ping", Json::Obj(vec![("jitter".into(), Json::Float(jitter))]));
            let left = self.left.get();
            if left > 0 {
                self.left.set(left - 1);
                ctx.send_self(SimDuration::from_millis(10), Ping::Ping);
            }
        }
    }

    fn replicate(seed: u64, hops: u32) -> (u64, String) {
        let mut sim: Simulation<'_, Ping> = Simulation::new(seed);
        let id = sim.add_actor(Pinger { left: Cell::new(hops) });
        sim.schedule(SimTime::ZERO, id, Ping::Ping);
        let handled = sim.run();
        (handled, sim.take_trace().to_json_string())
    }

    Check::new("seed_fanout_is_worker_count_independent").cases(12).run(|rng| {
        let base = rng.uniform_usize(10_000) as u64;
        let n = 1 + rng.uniform_usize(10);
        let hops = 1 + rng.uniform_usize(20) as u32;
        let seeds: Vec<u64> = (0..n as u64).map(|i| base + i).collect();
        let reference: Vec<(u64, String)> =
            seeds.iter().map(|&s| replicate(s, hops)).collect();
        for workers in [1, 2, 4] {
            let got = par::run_indexed_with(workers, seeds.len(), |i| replicate(seeds[i], hops));
            prop_assert!(got == reference, "mismatch at workers={workers}");
        }
        Ok(())
    });
}

/// Each migrated subsystem actor behaves identically standalone and
/// composed: running the thin single-actor wrapper and running a bare
/// `Scenario` hosting only that subsystem produce byte-identical traces
/// (the composed run's trace *is* the component slice when nothing else is
/// attached).
#[test]
fn standalone_wrappers_match_bare_composed_runs() {
    use mcs::bigdata::actor::run_bigdata_standalone;
    use mcs::core::scenario::{Scenario, ScenarioConfig};
    use mcs::gaming::actor::run_gaming_standalone;
    use mcs::graph::actor::run_graph_standalone;

    Check::new("standalone_wrappers_match_bare_composed_runs").cases(4).run(|rng| {
        let seed = rng.uniform_usize(1_000) as u64;
        let machines = 4 + rng.uniform_usize(12);
        let horizon = SimTime::from_secs(2 * 3600);

        let bigdata = mcs::core::scenario::BigdataConfig {
            jobs: 1 + rng.uniform_usize(3),
            ..Default::default()
        };
        let solo = run_bigdata_standalone(&bigdata, machines as u32, seed, horizon);
        let composed = Scenario::new(
            ScenarioConfig::bare(seed, horizon, machines).with_bigdata(bigdata),
        )
        .run();
        prop_assert_eq!(solo.to_json_string(), composed.trace.to_json_string());

        let graph = mcs::core::scenario::GraphConfig {
            queries: 1 + rng.uniform_usize(3),
            vertices: 100 + rng.uniform_usize(200) as u32,
            edges: 800,
            ..Default::default()
        };
        let solo = run_graph_standalone(&graph, machines as u32, seed, horizon);
        let composed = Scenario::new(
            ScenarioConfig::bare(seed, horizon, machines).with_graph(graph),
        )
        .run();
        prop_assert_eq!(solo.to_json_string(), composed.trace.to_json_string());

        let gaming = mcs::core::scenario::GamingConfig::default();
        let solo = run_gaming_standalone(&gaming, seed, horizon);
        let composed = Scenario::new(
            ScenarioConfig::bare(seed, horizon, machines).with_gaming(gaming),
        )
        .run();
        prop_assert_eq!(solo.to_json_string(), composed.trace.to_json_string());
        Ok(())
    });
}

/// The full-stack composed scenario (all eight actors) is deterministic and
/// its parallel fan-out is worker-count independent: sweeping seeds at any
/// `MCS_PAR_WORKERS` width returns identical traces in identical order.
#[test]
fn full_stack_fanout_is_worker_count_independent() {
    use mcs::core::scenario::{
        BatchConfig, BigdataConfig, FaasConfig, FailureConfig, GamingConfig, GraphConfig,
        Scenario, ScenarioConfig,
    };
    use mcs::simcore::par;

    fn replicate(seed: u64) -> (u64, String) {
        let config = ScenarioConfig {
            seed,
            horizon: SimTime::from_secs(1_800),
            machines: 8,
            ..ScenarioConfig::default()
        }
        .with_batch(BatchConfig { jobs: 8, ..BatchConfig::default() })
        .with_faas(FaasConfig { arrival_rate: 0.2, ..FaasConfig::default() })
        .with_failures(FailureConfig { mtbf_secs: 3_600.0, ..FailureConfig::default() })
        .with_bigdata(BigdataConfig { jobs: 1, ..BigdataConfig::default() })
        .with_graph(GraphConfig {
            queries: 1,
            vertices: 120,
            edges: 500,
            ..GraphConfig::default()
        })
        .with_gaming(GamingConfig::default());
        let out = Scenario::new(config).run();
        (out.events_handled, out.trace.to_json_string())
    }

    let seeds: Vec<u64> = (40..44).collect();
    let reference: Vec<(u64, String)> = seeds.iter().map(|&s| replicate(s)).collect();
    for workers in [1, 2, 4] {
        let got = par::run_indexed_with(workers, seeds.len(), |i| replicate(seeds[i]));
        assert!(got == reference, "full-stack sweep diverged at workers={workers}");
    }
}

/// Max-min fair sharing never oversubscribes a link: for arbitrary flow
/// sets over arbitrary capacities, the per-link sum of allocated rates
/// stays within capacity, and no flow over live links starves.
#[test]
fn max_min_allocation_never_oversubscribes_links() {
    use mcs::net::flow::max_min_rates;

    Check::new("max_min_allocation_never_oversubscribes_links").cases(128).run(|rng| {
        let links = 1 + rng.uniform_usize(12);
        let capacity: Vec<f64> = (0..links).map(|_| rng.uniform_f64(0.5, 1_000.0)).collect();
        let n_flows = 1 + rng.uniform_usize(24);
        let flows: Vec<Vec<u32>> = (0..n_flows)
            .map(|_| {
                // A path is a set of distinct links: include each link with
                // probability ~1/3, guaranteeing at least one.
                let mut path: Vec<u32> = (0..links as u32)
                    .filter(|_| rng.uniform_usize(3) == 0)
                    .collect();
                if path.is_empty() {
                    path.push(rng.uniform_usize(links) as u32);
                }
                path
            })
            .collect();
        let rates = max_min_rates(&flows, &capacity);
        prop_assert_eq!(rates.len(), flows.len());
        for (link, &cap) in capacity.iter().enumerate() {
            let load: f64 = flows
                .iter()
                .zip(&rates)
                .filter(|(path, _)| path.contains(&(link as u32)))
                .map(|(_, &rate)| rate)
                .sum();
            prop_assert!(
                load <= cap * (1.0 + 1e-9) + 1e-9,
                "link {link} oversubscribed: load {load} > capacity {cap}"
            );
        }
        // All capacities are positive here, so every flow makes progress.
        for (i, &rate) in rates.iter().enumerate() {
            prop_assert!(rate > 0.0, "flow {i} starved on a healthy fabric");
        }
        Ok(())
    });
}

/// A network-attached composed scenario — where every tenant's transfers
/// ride the shared fabric — is deterministic and worker-count independent:
/// sweeping seeds at any `MCS_PAR_WORKERS` width returns identical traces
/// in identical order.
#[test]
fn networked_scenario_fanout_is_worker_count_independent() {
    use mcs::core::scenario::{
        BatchConfig, BigdataConfig, FaasConfig, FailureConfig, GamingConfig, NetworkConfig,
        Scenario, ScenarioConfig,
    };
    use mcs::simcore::par;

    fn replicate(seed: u64) -> (u64, u64, String) {
        let config = ScenarioConfig {
            seed,
            horizon: SimTime::from_secs(1_800),
            machines: 8,
            ..ScenarioConfig::default()
        }
        .with_batch(BatchConfig { jobs: 8, ..BatchConfig::default() })
        .with_faas(FaasConfig { arrival_rate: 0.2, ..FaasConfig::default() })
        .with_failures(FailureConfig { mtbf_secs: 3_600.0, ..FailureConfig::default() })
        .with_bigdata(BigdataConfig { jobs: 1, ..BigdataConfig::default() })
        .with_gaming(GamingConfig::default())
        .with_network(NetworkConfig::default());
        let out = Scenario::new(config).run();
        (out.events_handled, out.net_flows_delivered, out.trace.to_json_string())
    }

    let seeds: Vec<u64> = (42..45).collect();
    let reference: Vec<(u64, u64, String)> = seeds.iter().map(|&s| replicate(s)).collect();
    assert!(
        reference.iter().all(|(_, flows, _)| *flows > 0),
        "networked sweep moved no flows"
    );
    for workers in [1, 2, 4] {
        let got = par::run_indexed_with(workers, seeds.len(), |i| replicate(seeds[i]));
        assert!(got == reference, "networked sweep diverged at workers={workers}");
    }
}

/// The streaming quantile sketch stays inside its documented rank-error
/// bound (~`2n / centroid-budget` ranks, doubled for merge slack) on
/// adversarial input shapes: sorted, reverse-sorted, constant, bimodal,
/// and heavy-tailed streams are exactly the distributions that break
/// naive compaction heuristics.
#[test]
fn quantile_sketch_honours_rank_error_on_adversarial_streams() {
    Check::new("quantile_sketch_honours_rank_error_on_adversarial_streams").cases(24).run(
        |rng| {
            let n = 2_000 + rng.uniform_usize(6_000);
            let shape = rng.uniform_usize(5);
            let mut xs: Vec<f64> = (0..n)
                .map(|i| match shape {
                    0 => i as f64,                       // sorted ascending
                    1 => (n - i) as f64,                 // sorted descending
                    2 => 42.0,                           // constant
                    3 => {
                        // bimodal: two far-apart clusters
                        if rng.bernoulli(0.5) {
                            rng.uniform_f64(0.0, 1.0)
                        } else {
                            rng.uniform_f64(1.0e6, 1.0e6 + 1.0)
                        }
                    }
                    _ => {
                        // heavy tail: x = u^-2 explodes as u -> 0
                        let u = rng.uniform_f64(1.0e-4, 1.0);
                        u.powi(-2)
                    }
                })
                .collect();

            let budget = 64 + rng.uniform_usize(3) * 64; // 64, 128, 192
            let mut sketch = QuantileSketch::new(budget);
            for &x in &xs {
                sketch.record(x);
            }
            xs.sort_by(|a, b| a.total_cmp(b));

            let max_rank_err = (4 * n).div_ceil(budget); // 2 * (2n / budget)
            for q in [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
                let got = sketch.quantile(q).expect("non-empty sketch");
                let target = (q * (n - 1) as f64).round() as usize;
                let lo = xs[target.saturating_sub(max_rank_err)];
                let hi = xs[(target + max_rank_err).min(n - 1)];
                prop_assert!(
                    got >= lo && got <= hi,
                    "shape {shape} n {n} budget {budget} q {q}: {got} outside [{lo}, {hi}]"
                );
            }
            prop_assert_eq!(sketch.count(), n as u64);
            prop_assert!(sketch.retained_points() <= 2 * budget + 2);
            Ok(())
        },
    );
}

/// Merging sketches is associative within the error bound, and exact for
/// count/min/max: `(a + b) + c` and `a + (b + c)` summarize the same
/// stream, so both must agree with a single-pass sketch to within the
/// documented rank error.
#[test]
fn quantile_sketch_merge_is_associative_within_bounds() {
    Check::new("quantile_sketch_merge_is_associative_within_bounds").cases(24).run(|rng| {
        let budget = 128;
        let n = 3_000 + rng.uniform_usize(3_000);
        let mut xs: Vec<f64> = (0..n).map(|_| rng.uniform_f64(-1.0e3, 1.0e3)).collect();
        let cut1 = n / 3 + rng.uniform_usize(n / 3);
        let cut2 = cut1 + (n - cut1) / 2;

        let sketch_of = |slice: &[f64]| {
            let mut s = QuantileSketch::new(budget);
            for &x in slice {
                s.record(x);
            }
            s
        };
        let (a, b, c) = (sketch_of(&xs[..cut1]), sketch_of(&xs[cut1..cut2]), sketch_of(&xs[cut2..]));
        let single = sketch_of(&xs);

        // (a + b) + c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a + (b + c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);

        for s in [&left, &right] {
            prop_assert_eq!(s.count(), single.count());
            prop_assert_eq!(s.min(), single.min());
            prop_assert_eq!(s.max(), single.max());
        }

        xs.sort_by(|x, y| x.total_cmp(y));
        // Each merge can add one compaction's worth of slack on top of the
        // single-pass bound.
        let max_rank_err = 2 * (4 * n).div_ceil(budget);
        for q in [0.05, 0.25, 0.5, 0.75, 0.95] {
            let target = (q * (n - 1) as f64).round() as usize;
            let lo = xs[target.saturating_sub(max_rank_err)];
            let hi = xs[(target + max_rank_err).min(n - 1)];
            for (label, s) in [("left", &left), ("right", &right)] {
                let got = s.quantile(q).expect("non-empty merge");
                prop_assert!(
                    got >= lo && got <= hi,
                    "{label} q {q}: {got} outside [{lo}, {hi}] (n {n})"
                );
            }
        }
        Ok(())
    });
}

/// The streaming sink is an exact aggregator for everything but quantiles:
/// for arbitrary seeds, a streaming run of the composed scenario reports
/// the same per-(component, event) counts, per-field statistics (bitwise),
/// and time spans as a full-retention run — and the equality survives
/// parallel fan-out at any worker count.
#[test]
fn streaming_rollups_match_full_retention_across_seeds_and_workers() {
    use mcs::core::scenario::{
        FaasConfig, GamingConfig, ObservabilityConfig, Scenario, ScenarioConfig,
    };
    use mcs::simcore::par;

    fn config(seed: u64, streaming: bool) -> ScenarioConfig {
        let mut cfg = ScenarioConfig {
            seed,
            horizon: SimTime::from_secs(1_800),
            machines: 8,
            ..ScenarioConfig::default()
        }
        .with_faas(FaasConfig { arrival_rate: 0.5, ..FaasConfig::default() })
        .with_gaming(GamingConfig::default());
        if streaming {
            cfg = cfg.with_observability(ObservabilityConfig {
                window: Some(SimDuration::from_secs(300)),
                ..ObservabilityConfig::default()
            });
        }
        cfg
    }

    fn aggregates(seed: u64, streaming: bool) -> Vec<String> {
        let out = Scenario::new(config(seed, streaming)).run();
        let mut rows: Vec<String> = Vec::new();
        for (component, event, count) in out.trace.counts() {
            let mut row = format!("{component}/{event}: {count}");
            if let Some((first, last)) = out.trace.time_span(&component, &event) {
                row.push_str(&format!(" [{} .. {}]", first.as_nanos(), last.as_nanos()));
            }
            rows.push(row);
        }
        for (component, event, field) in [
            ("faas", "invoke", "latency_secs"),
            ("workload", "arrival", "index"),
            ("gaming", "join", "online"),
        ] {
            if let Some(s) = out.trace.field_stats(component, event, field) {
                // {:?} on the floats keeps full precision: the claim is
                // bitwise equality, not approximate agreement.
                rows.push(format!(
                    "{component}/{event}.{field}: n={} mean={:?} sd={:?}",
                    s.count(),
                    s.mean(),
                    s.std_dev()
                ));
            }
        }
        rows
    }

    Check::new("streaming_rollups_match_full_retention_across_seeds_and_workers")
        .cases(4)
        .run(|rng| {
            let base = rng.uniform_usize(10_000) as u64;
            let seeds: Vec<u64> = (0..3).map(|i| base + i).collect();
            let full: Vec<Vec<String>> =
                seeds.iter().map(|&s| aggregates(s, false)).collect();
            prop_assert!(
                full.iter().all(|rows| !rows.is_empty()),
                "full-retention runs must record events"
            );
            for workers in [1, 4] {
                let streamed =
                    par::run_indexed_with(workers, seeds.len(), |i| aggregates(seeds[i], true));
                prop_assert!(
                    streamed == full,
                    "streaming aggregates diverged from full retention at workers={workers}"
                );
            }
            Ok(())
        });
}
