//! Integration tests for the extension modules: memory scavenging (C7),
//! operational transparency (C13), meta-gaming (Fig. 4), and the Roofline
//! model (§3.5).

use mcs::prelude::*;

#[test]
fn scavenging_widens_the_feasible_region() {
    // A cluster whose machines individually cannot host a 40 GiB job.
    let mut cluster = Cluster::homogeneous(
        ClusterId(0),
        "scv",
        MachineSpec::commodity("std-8", 8.0, 32.0),
        4,
    );
    let req = mcs::infra::resource::ResourceVector::new(2.0, 40.0);
    assert!(!cluster.machines().iter().any(|m| req.fits_in(&m.capacity())));
    let plan = plan_scavenge(&cluster, &req, &ScavengeConfig::default())
        .expect("scavenging must admit the job");
    assert!(plan.slowdown > 1.0 && plan.slowdown < 1.15);
    assert!(apply_scavenge(&mut cluster, &req, &plan));
    // Borrowed memory is really held on the donors.
    let used: f64 = cluster.machines().iter().map(|m| m.allocated().memory_gb).sum();
    assert!((used - 40.0).abs() < 1e-9);
    release_scavenge(&mut cluster, &req, &plan);
    assert!(cluster.available().memory_gb > 127.9);
}

#[test]
fn transparency_reports_built_from_measured_pipeline() {
    // Failure analysis + SLA evaluation feed one stakeholder report (C13).
    let machines = 16usize;
    let horizon = SimTime::from_secs(30 * 86_400);
    let outages = IndependentFailures::with_mtbf(300.0 * 3600.0).generate(
        machines,
        horizon,
        &mut RngStream::new(9, "transparency"),
    );
    let availability = analyze(&outages, machines, horizon);
    let degraded = longest_degradation(&outages, machines, horizon, 2);
    let sla = Sla {
        name: "weekly".into(),
        slos: vec![Slo {
            name: "availability".into(),
            target: NfrTarget::new(NfrKind::Availability, 0.999),
            penalty: 250.0,
        }],
        penalty_cap: 1_000.0,
    };
    let measured = NfrProfile::new().with(NfrKind::Availability, availability.availability);
    let report = OperationalReport {
        window_hours: horizon.as_secs_f64() / 3600.0,
        availability: availability.availability,
        incidents: availability.outages,
        longest_incident_mins: degraded.as_secs_f64() / 60.0,
        energy_kwh: 100.0,
        cost: 42.0,
        sla: Some(sla.evaluate(&measured)),
    };
    for audience in [Audience::Operator, Audience::Customer, Audience::Public] {
        let text = report.render(audience);
        assert!(text.contains('%'), "{audience:?} report lacks availability: {text}");
    }
    // Operator sees cost; public does not.
    assert!(report.render(Audience::Operator).contains("cost"));
    assert!(!report.render(Audience::Public).contains("cost"));
}

#[test]
fn metagame_streams_feed_the_elasticity_story() {
    let mut rng = RngStream::new(11, "meta-int");
    let tournament = Tournament::seeded(6, &mut rng);
    let outcome = tournament.play(100.0, &mut rng);
    assert_eq!(outcome.matches.len(), 63);
    let (static_cost, elastic_cost) = stream_capacity_plan(&outcome, 500);
    assert!(elastic_cost <= static_cost);
    assert!(static_cost > 0);
}

#[test]
fn roofline_ranks_machines_like_their_specs() {
    let cpu = Roofline { peak_gflops: 500.0, mem_bandwidth_gbs: 100.0 };
    let gpu = Roofline { peak_gflops: 10_000.0, mem_bandwidth_gbs: 900.0 };
    // A bandwidth-bound kernel gains only the bandwidth ratio ...
    let streaming = 0.5;
    let s_gain = gpu.attainable_gflops(streaming) / cpu.attainable_gflops(streaming);
    assert!((s_gain - 9.0).abs() < 1e-9);
    // ... while a compute-bound kernel gains the FLOP ratio.
    let dense = 64.0;
    let d_gain = gpu.attainable_gflops(dense) / cpu.attainable_gflops(dense);
    assert!((d_gain - 20.0).abs() < 1e-9);
}

#[test]
fn distribution_means_match_theory() {
    use mcs::simcore::dist::{Dist, Sample};
    let cases = vec![
        Dist::Uniform { lo: 1.0, hi: 5.0 },
        Dist::Exponential { rate: 0.5 },
        Dist::Normal { mean: 7.0, std_dev: 2.0 },
        Dist::LogNormal { mu: 1.0, sigma: 0.5 },
        Dist::Weibull { shape: 1.2, scale: 3.0 },
        Dist::Pareto { x_min: 2.0, alpha: 4.0 },
        Dist::Gamma { shape: 3.0, scale: 1.5 },
        Dist::Zipf { n: 20, s: 1.1 },
        Dist::HyperExponential { p: 0.4, rate1: 2.0, rate2: 0.2 },
    ];
    for dist in cases {
        let theory = dist.mean().expect("finite mean");
        let mut rng = RngStream::new(99, "dist-mean");
        let n = 200_000;
        let empirical: f64 =
            (0..n).map(|_| dist.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!(
            (empirical - theory).abs() / theory.abs().max(1e-9) < 0.05,
            "{dist:?}: empirical {empirical} vs theory {theory}"
        );
    }
}
