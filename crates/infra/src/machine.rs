//! Machines: the leaf resources of a datacenter.

use crate::power::PowerModel;
use crate::resource::{AcceleratorKind, ResourceVector};
use std::fmt;

/// Identifies a machine within a [`Cluster`](crate::cluster::Cluster).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MachineId(pub u32);

impl fmt::Display for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// The hardware description of a machine model (C4: heterogeneous machine
/// types — different core counts, speeds, memory tiers, accelerators).
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSpec {
    /// Human-readable model name (e.g. `"std-16"`, `"gpu-8"`).
    pub model: String,
    /// Total capacity of the machine.
    pub capacity: ResourceVector,
    /// Relative per-core speed (1.0 = reference core). Heterogeneity in
    /// *speed*, not just count, is what makes scheduling hard.
    pub core_speed: f64,
    /// The accelerator family installed, if any.
    pub accelerator: Option<AcceleratorKind>,
    /// Relative accelerator speed-up for accelerator-friendly work.
    pub accelerator_speedup: f64,
    /// Power draw model.
    pub power: PowerModel,
    /// Price of one machine-hour, in abstract currency units.
    pub cost_per_hour: f64,
}

impl MachineSpec {
    /// A commodity CPU node: `cores` reference-speed cores, `memory_gb` GiB.
    pub fn commodity(model: &str, cores: f64, memory_gb: f64) -> Self {
        MachineSpec {
            model: model.to_owned(),
            capacity: ResourceVector::new(cores, memory_gb)
                .with_storage_gb(memory_gb * 16.0)
                .with_network_gbps(10.0),
            core_speed: 1.0,
            accelerator: None,
            accelerator_speedup: 1.0,
            power: PowerModel::linear(100.0, 100.0 + 15.0 * cores),
            cost_per_hour: 0.05 * cores,
        }
    }

    /// A GPU node: commodity base plus `gpus` accelerators.
    pub fn gpu(model: &str, cores: f64, memory_gb: f64, gpus: f64) -> Self {
        let mut spec = MachineSpec::commodity(model, cores, memory_gb);
        spec.model = model.to_owned();
        spec.capacity = spec.capacity.with_accelerators(gpus);
        spec.accelerator = Some(AcceleratorKind::Gpu);
        spec.accelerator_speedup = 10.0;
        spec.power = PowerModel::linear(150.0, 150.0 + 15.0 * cores + 300.0 * gpus);
        spec.cost_per_hour = 0.05 * cores + 0.9 * gpus;
        spec
    }
}

/// Whether the machine is powered and reachable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MachineState {
    /// Serving allocations.
    Up,
    /// Crashed or unreachable (failure model); allocations are lost.
    Down,
    /// Administratively drained: existing allocations finish, no new ones.
    Draining,
}

/// A concrete machine: a spec plus live allocation state.
#[derive(Debug, Clone, PartialEq)]
pub struct Machine {
    id: MachineId,
    spec: MachineSpec,
    allocated: ResourceVector,
    state: MachineState,
    allocations: u32,
}

impl Machine {
    /// Creates an empty, powered-up machine.
    pub fn new(id: MachineId, spec: MachineSpec) -> Self {
        Machine { id, spec, allocated: ResourceVector::ZERO, state: MachineState::Up, allocations: 0 }
    }

    /// The machine id.
    pub fn id(&self) -> MachineId {
        self.id
    }

    /// The hardware description.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// Current lifecycle state.
    pub fn state(&self) -> MachineState {
        self.state
    }

    /// Total capacity.
    pub fn capacity(&self) -> ResourceVector {
        self.spec.capacity
    }

    /// Resources currently allocated.
    pub fn allocated(&self) -> ResourceVector {
        self.allocated
    }

    /// Resources still available (zero when not `Up`).
    pub fn available(&self) -> ResourceVector {
        match self.state {
            MachineState::Up => self.spec.capacity - self.allocated,
            _ => ResourceVector::ZERO,
        }
    }

    /// Number of live allocations.
    pub fn allocation_count(&self) -> u32 {
        self.allocations
    }

    /// Dominant-share utilization in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        self.allocated.dominant_share(&self.spec.capacity).min(1.0)
    }

    /// Attempts to allocate `req`; returns `false` (and changes nothing) when
    /// the machine is not `Up` or `req` does not fit.
    pub fn try_allocate(&mut self, req: &ResourceVector) -> bool {
        if self.state != MachineState::Up || !req.fits_in(&self.available()) {
            return false;
        }
        self.allocated += *req;
        self.allocations += 1;
        true
    }

    /// Releases a previous allocation.
    ///
    /// # Panics
    /// Panics (debug builds) if more is released than was allocated.
    pub fn release(&mut self, req: &ResourceVector) {
        debug_assert!(
            req.fits_in(&self.allocated),
            "releasing more than allocated on {}",
            self.id
        );
        self.allocated -= *req;
        self.allocations = self.allocations.saturating_sub(1);
    }

    /// Crashes the machine: state becomes `Down` and all allocations are
    /// dropped. Returns the resource volume that was lost.
    pub fn fail(&mut self) -> ResourceVector {
        self.state = MachineState::Down;
        let lost = self.allocated;
        self.allocated = ResourceVector::ZERO;
        self.allocations = 0;
        lost
    }

    /// Repairs a `Down` machine back to `Up`.
    pub fn repair(&mut self) {
        if self.state == MachineState::Down {
            self.state = MachineState::Up;
        }
    }

    /// Starts draining: running work may finish but nothing new is placed.
    pub fn drain(&mut self) {
        if self.state == MachineState::Up {
            self.state = MachineState::Draining;
        }
    }

    /// Reverses a drain (or keeps `Up` as-is).
    pub fn undrain(&mut self) {
        if self.state == MachineState::Draining {
            self.state = MachineState::Up;
        }
    }

    /// Instantaneous power draw in watts at the current utilization.
    pub fn power_watts(&self) -> f64 {
        match self.state {
            MachineState::Down => 0.0,
            _ => self.spec.power.watts(self.utilization()),
        }
    }

    /// The wall-clock speed-up this machine gives a task: per-core speed,
    /// times accelerator speed-up when the task wants accelerators and the
    /// machine has them.
    pub fn speedup_for(&self, req: &ResourceVector) -> f64 {
        let accel = if req.accelerators > 0.0 && self.spec.capacity.accelerators > 0.0 {
            self.spec.accelerator_speedup
        } else {
            1.0
        };
        self.spec.core_speed * accel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> Machine {
        Machine::new(MachineId(0), MachineSpec::commodity("std-8", 8.0, 32.0))
    }

    #[test]
    fn allocate_release_cycle() {
        let mut machine = m();
        let req = ResourceVector::new(4.0, 8.0);
        assert!(machine.try_allocate(&req));
        assert_eq!(machine.allocation_count(), 1);
        assert!((machine.utilization() - 0.5).abs() < 1e-9);
        machine.release(&req);
        assert!(machine.allocated().is_zero());
        assert_eq!(machine.allocation_count(), 0);
    }

    #[test]
    fn over_allocation_rejected() {
        let mut machine = m();
        assert!(machine.try_allocate(&ResourceVector::new(6.0, 8.0)));
        assert!(!machine.try_allocate(&ResourceVector::new(3.0, 8.0)));
        assert!(machine.try_allocate(&ResourceVector::new(2.0, 8.0)));
    }

    #[test]
    fn failure_drops_allocations() {
        let mut machine = m();
        machine.try_allocate(&ResourceVector::new(4.0, 8.0));
        let lost = machine.fail();
        assert_eq!(lost, ResourceVector::new(4.0, 8.0));
        assert_eq!(machine.state(), MachineState::Down);
        assert!(machine.available().is_zero());
        assert!(!machine.try_allocate(&ResourceVector::cores(1.0)));
        machine.repair();
        assert!(machine.try_allocate(&ResourceVector::cores(1.0)));
    }

    #[test]
    fn drain_blocks_new_work_only() {
        let mut machine = m();
        machine.try_allocate(&ResourceVector::cores(2.0));
        machine.drain();
        assert_eq!(machine.state(), MachineState::Draining);
        assert!(!machine.try_allocate(&ResourceVector::cores(1.0)));
        // Release of existing work is still allowed.
        machine.release(&ResourceVector::cores(2.0));
        machine.undrain();
        assert!(machine.try_allocate(&ResourceVector::cores(1.0)));
    }

    #[test]
    fn power_tracks_utilization() {
        let mut machine = m();
        let idle = machine.power_watts();
        machine.try_allocate(&ResourceVector::new(8.0, 1.0));
        assert!(machine.power_watts() > idle);
        machine.fail();
        assert_eq!(machine.power_watts(), 0.0);
    }

    #[test]
    fn gpu_speedup_applies_only_to_accel_requests() {
        let gpu = Machine::new(MachineId(1), MachineSpec::gpu("gpu-8", 8.0, 64.0, 2.0));
        let plain = ResourceVector::new(2.0, 4.0);
        let accel = ResourceVector::new(2.0, 4.0).with_accelerators(1.0);
        assert_eq!(gpu.speedup_for(&plain), 1.0);
        assert_eq!(gpu.speedup_for(&accel), 10.0);
        let cpu = m();
        assert_eq!(cpu.speedup_for(&accel), 1.0);
    }
}
