//! Inter-datacenter network topology.
//!
//! Challenge C10 (geo-distributed, federated, multi-DC operation) needs a
//! network model: sites connected by links with latency and bandwidth,
//! shortest-latency routing, and transfer-time estimation for wide-area
//! analytics and offloading.

use crate::cluster::{DatacenterId, GeoLocation};
use mcs_simcore::time::SimDuration;
use std::collections::BinaryHeap;

/// A directed link between two sites.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// One-way propagation latency.
    pub latency: SimDuration,
    /// Usable bandwidth, Gbit/s.
    pub bandwidth_gbps: f64,
}

impl Link {
    /// A wide-area link whose latency follows from great-circle distance:
    /// light in fibre travels at ~200 000 km/s and real routes are ~1.6×
    /// longer than the geodesic.
    pub fn wan_between(a: GeoLocation, b: GeoLocation, bandwidth_gbps: f64) -> Link {
        let km = a.distance_km(&b) * 1.6;
        let secs = km / 200_000.0;
        Link { latency: SimDuration::from_secs_f64(secs.max(0.000_1)), bandwidth_gbps }
    }
}

/// A network of datacenters with latency/bandwidth links and
/// shortest-latency routing.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    /// adjacency\[a\] = list of (b, link)
    adjacency: Vec<Vec<(u32, Link)>>,
}

impl Topology {
    /// An empty topology over `sites` datacenters (ids `0..sites`).
    pub fn new(sites: u32) -> Self {
        Topology { adjacency: vec![Vec::new(); sites as usize] }
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Adds a bidirectional link.
    ///
    /// # Panics
    /// Panics if either site is unknown.
    pub fn connect(&mut self, a: DatacenterId, b: DatacenterId, link: Link) {
        assert!((a.0 as usize) < self.adjacency.len(), "unknown site {a}");
        assert!((b.0 as usize) < self.adjacency.len(), "unknown site {b}");
        self.adjacency[a.0 as usize].push((b.0, link));
        self.adjacency[b.0 as usize].push((a.0, link));
    }

    /// Shortest-latency path from `from` to `to` (Dijkstra). Returns the
    /// total latency and the bottleneck bandwidth along the path, or `None`
    /// when unreachable.
    pub fn route(&self, from: DatacenterId, to: DatacenterId) -> Option<Route> {
        if from == to {
            return Some(Route {
                latency: SimDuration::ZERO,
                bottleneck_gbps: f64::INFINITY,
                hops: 0,
            });
        }
        let n = self.adjacency.len();
        if from.0 as usize >= n || to.0 as usize >= n {
            return None;
        }
        #[derive(PartialEq, Eq)]
        struct Entry {
            cost: u64,
            node: u32,
        }
        impl Ord for Entry {
            fn cmp(&self, o: &Self) -> std::cmp::Ordering {
                o.cost.cmp(&self.cost).then_with(|| o.node.cmp(&self.node))
            }
        }
        impl PartialOrd for Entry {
            fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(o))
            }
        }
        let mut dist = vec![u64::MAX; n];
        let mut best_bw = vec![0.0f64; n];
        let mut hops = vec![0u32; n];
        let mut heap = BinaryHeap::new();
        dist[from.0 as usize] = 0;
        best_bw[from.0 as usize] = f64::INFINITY;
        heap.push(Entry { cost: 0, node: from.0 });
        while let Some(Entry { cost, node }) = heap.pop() {
            if cost > dist[node as usize] {
                continue;
            }
            if node == to.0 {
                return Some(Route {
                    latency: SimDuration::from_nanos(cost),
                    bottleneck_gbps: best_bw[node as usize],
                    hops: hops[node as usize],
                });
            }
            for &(next, link) in &self.adjacency[node as usize] {
                let ncost = cost + link.latency.as_nanos();
                if ncost < dist[next as usize] {
                    dist[next as usize] = ncost;
                    best_bw[next as usize] = best_bw[node as usize].min(link.bandwidth_gbps);
                    hops[next as usize] = hops[node as usize] + 1;
                    heap.push(Entry { cost: ncost, node: next });
                }
            }
        }
        None
    }

    /// End-to-end time to move `bytes` from `from` to `to`: path latency plus
    /// serialization at the bottleneck bandwidth. `None` when unreachable.
    pub fn transfer_time(&self, from: DatacenterId, to: DatacenterId, bytes: u64) -> Option<SimDuration> {
        let route = self.route(from, to)?;
        let serialization = if route.bottleneck_gbps.is_finite() && route.bottleneck_gbps > 0.0 {
            SimDuration::from_secs_f64(bytes as f64 * 8.0 / (route.bottleneck_gbps * 1e9))
        } else {
            SimDuration::ZERO
        };
        Some(route.latency + serialization)
    }
}

/// The result of routing between two sites.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Route {
    /// Sum of link latencies along the chosen path.
    pub latency: SimDuration,
    /// Minimum bandwidth along the path, Gbit/s.
    pub bottleneck_gbps: f64,
    /// Number of links traversed.
    pub hops: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    fn triangle() -> Topology {
        // 0 --10ms/10G-- 1 --10ms/10G-- 2, plus slow direct 0--2 (50ms/1G)
        let mut t = Topology::new(3);
        t.connect(DatacenterId(0), DatacenterId(1), Link { latency: ms(10), bandwidth_gbps: 10.0 });
        t.connect(DatacenterId(1), DatacenterId(2), Link { latency: ms(10), bandwidth_gbps: 10.0 });
        t.connect(DatacenterId(0), DatacenterId(2), Link { latency: ms(50), bandwidth_gbps: 1.0 });
        t
    }

    #[test]
    fn dijkstra_prefers_low_latency_path() {
        let t = triangle();
        let r = t.route(DatacenterId(0), DatacenterId(2)).unwrap();
        assert_eq!(r.latency, ms(20));
        assert_eq!(r.hops, 2);
        assert_eq!(r.bottleneck_gbps, 10.0);
    }

    #[test]
    fn self_route_is_free() {
        let t = triangle();
        let r = t.route(DatacenterId(1), DatacenterId(1)).unwrap();
        assert_eq!(r.latency, SimDuration::ZERO);
        assert_eq!(r.hops, 0);
    }

    #[test]
    fn unreachable_is_none() {
        let t = Topology::new(2); // no links
        assert!(t.route(DatacenterId(0), DatacenterId(1)).is_none());
        assert!(t.transfer_time(DatacenterId(0), DatacenterId(1), 1).is_none());
    }

    #[test]
    fn transfer_time_includes_serialization() {
        let t = triangle();
        // 1 GiB over the 10 Gbps path: 2^30 * 8 / 10^10 s ≈ 0.859 s + 20 ms.
        let dt = t.transfer_time(DatacenterId(0), DatacenterId(2), 1 << 30).unwrap();
        let secs = dt.as_secs_f64();
        assert!((secs - (0.8589934592 + 0.020)).abs() < 1e-6, "secs = {secs}");
    }

    #[test]
    fn wan_link_latency_scales_with_distance() {
        let ams = GeoLocation { lat_deg: 52.37, lon_deg: 4.89 };
        let nyc = GeoLocation { lat_deg: 40.71, lon_deg: -74.01 };
        let fra = GeoLocation { lat_deg: 50.11, lon_deg: 8.68 };
        let far = Link::wan_between(ams, nyc, 100.0);
        let near = Link::wan_between(ams, fra, 100.0);
        assert!(far.latency > near.latency);
        // Transatlantic one-way should be tens of milliseconds.
        let ms_far = far.latency.as_secs_f64() * 1e3;
        assert!((30.0..80.0).contains(&ms_far), "ms = {ms_far}");
    }
}
