//! Clusters and datacenters: hierarchical aggregations of machines (the
//! "Infrastructure" layer of the paper's Figure 3 reference architecture).

use crate::machine::{Machine, MachineId, MachineSpec, MachineState};
use crate::resource::ResourceVector;
use std::fmt;

/// Identifies a cluster within a [`Datacenter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClusterId(pub u32);

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A homogeneous-or-not group of machines managed as one scheduling domain.
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster {
    id: ClusterId,
    name: String,
    machines: Vec<Machine>,
}

impl Cluster {
    /// Creates an empty cluster.
    pub fn new(id: ClusterId, name: &str) -> Self {
        Cluster { id, name: name.to_owned(), machines: Vec::new() }
    }

    /// Creates a cluster of `n` identical machines.
    pub fn homogeneous(id: ClusterId, name: &str, spec: MachineSpec, n: u32) -> Self {
        let mut c = Cluster::new(id, name);
        for i in 0..n {
            c.add_machine(spec.clone());
            debug_assert_eq!(c.machines.last().unwrap().id(), MachineId(i));
        }
        c
    }

    /// The cluster id.
    pub fn id(&self) -> ClusterId {
        self.id
    }

    /// The cluster name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds one machine of the given spec; returns its id.
    pub fn add_machine(&mut self, spec: MachineSpec) -> MachineId {
        let id = MachineId(self.machines.len() as u32);
        self.machines.push(Machine::new(id, spec));
        id
    }

    /// All machines, in id order.
    pub fn machines(&self) -> &[Machine] {
        &self.machines
    }

    /// Mutable access to one machine.
    ///
    /// # Panics
    /// Panics on an unknown id.
    pub fn machine_mut(&mut self, id: MachineId) -> &mut Machine {
        &mut self.machines[id.0 as usize]
    }

    /// Shared access to one machine.
    ///
    /// # Panics
    /// Panics on an unknown id.
    pub fn machine(&self, id: MachineId) -> &Machine {
        &self.machines[id.0 as usize]
    }

    /// Number of machines (any state).
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// True when the cluster has no machines.
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// Aggregate capacity of `Up` machines.
    pub fn capacity(&self) -> ResourceVector {
        self.machines
            .iter()
            .filter(|m| m.state() == MachineState::Up)
            .fold(ResourceVector::ZERO, |acc, m| acc + m.capacity())
    }

    /// Aggregate still-free resources of `Up` machines.
    pub fn available(&self) -> ResourceVector {
        self.machines.iter().fold(ResourceVector::ZERO, |acc, m| acc + m.available())
    }

    /// Machines that are `Up` and can fit `req` right now.
    pub fn feasible_machines(&self, req: &ResourceVector) -> impl Iterator<Item = &Machine> {
        let req = *req;
        self.machines.iter().filter(move |m| req.fits_in(&m.available()))
    }

    /// Cluster-wide dominant-share utilization over `Up` machines, in `[0,1]`.
    pub fn utilization(&self) -> f64 {
        let cap = self.capacity();
        let used = self
            .machines
            .iter()
            .filter(|m| m.state() == MachineState::Up)
            .fold(ResourceVector::ZERO, |acc, m| acc + m.allocated());
        used.dominant_share(&cap).min(1.0)
    }

    /// Number of machines in the `Up` state.
    pub fn up_count(&self) -> usize {
        self.machines.iter().filter(|m| m.state() == MachineState::Up).count()
    }

    /// Total instantaneous power draw, watts.
    pub fn power_watts(&self) -> f64 {
        self.machines.iter().map(Machine::power_watts).sum()
    }
}

/// Geographic location, for geo-distributed federation latency (C10).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoLocation {
    /// Degrees latitude, positive north.
    pub lat_deg: f64,
    /// Degrees longitude, positive east.
    pub lon_deg: f64,
}

impl GeoLocation {
    /// Great-circle distance to `other`, kilometres (haversine).
    pub fn distance_km(&self, other: &GeoLocation) -> f64 {
        const R_KM: f64 = 6371.0;
        let (lat1, lon1) = (self.lat_deg.to_radians(), self.lon_deg.to_radians());
        let (lat2, lon2) = (other.lat_deg.to_radians(), other.lon_deg.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * R_KM * a.sqrt().atan2((1.0 - a).sqrt())
    }
}

/// Identifies a datacenter within a federation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DatacenterId(pub u32);

impl fmt::Display for DatacenterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dc{}", self.0)
    }
}

/// A datacenter: clusters at one site, from hyperscale to edge
/// micro-datacenter (paper §6.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Datacenter {
    id: DatacenterId,
    name: String,
    location: GeoLocation,
    clusters: Vec<Cluster>,
}

impl Datacenter {
    /// Creates an empty datacenter at a location.
    pub fn new(id: DatacenterId, name: &str, location: GeoLocation) -> Self {
        Datacenter { id, name: name.to_owned(), location, clusters: Vec::new() }
    }

    /// The datacenter id.
    pub fn id(&self) -> DatacenterId {
        self.id
    }

    /// The datacenter name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Site location.
    pub fn location(&self) -> GeoLocation {
        self.location
    }

    /// Adds a cluster; returns its id.
    pub fn add_cluster(&mut self, name: &str) -> ClusterId {
        let id = ClusterId(self.clusters.len() as u32);
        self.clusters.push(Cluster::new(id, name));
        id
    }

    /// Adds a pre-built cluster (its id is rewritten to the local sequence).
    pub fn push_cluster(&mut self, mut cluster: Cluster) -> ClusterId {
        let id = ClusterId(self.clusters.len() as u32);
        cluster.id = id;
        self.clusters.push(cluster);
        id
    }

    /// All clusters, in id order.
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// Mutable access to one cluster.
    ///
    /// # Panics
    /// Panics on an unknown id.
    pub fn cluster_mut(&mut self, id: ClusterId) -> &mut Cluster {
        &mut self.clusters[id.0 as usize]
    }

    /// Shared access to one cluster.
    ///
    /// # Panics
    /// Panics on an unknown id.
    pub fn cluster(&self, id: ClusterId) -> &Cluster {
        &self.clusters[id.0 as usize]
    }

    /// Aggregate up-capacity across clusters.
    pub fn capacity(&self) -> ResourceVector {
        self.clusters.iter().fold(ResourceVector::ZERO, |acc, c| acc + c.capacity())
    }

    /// Aggregate free resources across clusters.
    pub fn available(&self) -> ResourceVector {
        self.clusters.iter().fold(ResourceVector::ZERO, |acc, c| acc + c.available())
    }

    /// Total machine count.
    pub fn machine_count(&self) -> usize {
        self.clusters.iter().map(Cluster::len).sum()
    }

    /// Total instantaneous power draw, watts.
    pub fn power_watts(&self) -> f64 {
        self.clusters.iter().map(Cluster::power_watts).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> Cluster {
        Cluster::homogeneous(ClusterId(0), "batch", MachineSpec::commodity("std-4", 4.0, 16.0), 4)
    }

    #[test]
    fn homogeneous_cluster_capacity() {
        let c = cluster();
        assert_eq!(c.len(), 4);
        assert_eq!(c.capacity().cpu_cores, 16.0);
        assert_eq!(c.available().memory_gb, 64.0);
        assert!(!c.is_empty());
    }

    #[test]
    fn feasible_machines_filters() {
        let mut c = cluster();
        c.machine_mut(MachineId(0)).try_allocate(&ResourceVector::new(4.0, 1.0));
        let feasible: Vec<MachineId> =
            c.feasible_machines(&ResourceVector::new(2.0, 2.0)).map(|m| m.id()).collect();
        assert_eq!(feasible, vec![MachineId(1), MachineId(2), MachineId(3)]);
    }

    #[test]
    fn utilization_reflects_allocations() {
        let mut c = cluster();
        assert_eq!(c.utilization(), 0.0);
        c.machine_mut(MachineId(0)).try_allocate(&ResourceVector::new(4.0, 4.0));
        c.machine_mut(MachineId(1)).try_allocate(&ResourceVector::new(4.0, 4.0));
        assert!((c.utilization() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn failed_machines_leave_capacity() {
        let mut c = cluster();
        c.machine_mut(MachineId(3)).fail();
        assert_eq!(c.capacity().cpu_cores, 12.0);
        assert_eq!(c.up_count(), 3);
    }

    #[test]
    fn datacenter_aggregates_clusters() {
        let mut dc = Datacenter::new(
            DatacenterId(0),
            "ams-1",
            GeoLocation { lat_deg: 52.37, lon_deg: 4.89 },
        );
        dc.push_cluster(cluster());
        dc.push_cluster(Cluster::homogeneous(
            ClusterId(9), // will be rewritten
            "gpu",
            MachineSpec::gpu("gpu-8", 8.0, 64.0, 2.0),
            2,
        ));
        assert_eq!(dc.clusters().len(), 2);
        assert_eq!(dc.clusters()[1].id(), ClusterId(1));
        assert_eq!(dc.machine_count(), 6);
        assert_eq!(dc.capacity().cpu_cores, 32.0);
        assert_eq!(dc.capacity().accelerators, 4.0);
    }

    #[test]
    fn haversine_known_distance() {
        // Amsterdam to New York is roughly 5 860 km.
        let ams = GeoLocation { lat_deg: 52.37, lon_deg: 4.89 };
        let nyc = GeoLocation { lat_deg: 40.71, lon_deg: -74.01 };
        let d = ams.distance_km(&nyc);
        assert!((5700.0..6050.0).contains(&d), "d = {d}");
        assert_eq!(ams.distance_km(&ams), 0.0);
    }
}
