//! Multi-dimensional resource vectors.
//!
//! Challenge C4 of the paper ("extreme heterogeneity") requires machines
//! whose capacity spans CPU cores, memory, accelerators, storage, and
//! network. [`ResourceVector`] is the common currency: requests, capacities,
//! and allocations are all vectors, compared dimension-wise.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// Accelerator families from the paper's heterogeneity discussion (C4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AcceleratorKind {
    /// General-purpose GPUs (machine learning, graph processing).
    Gpu,
    /// Tensor-processing ASICs.
    Tpu,
    /// Field-programmable gate arrays (datacenter-internal offload).
    Fpga,
}

impl fmt::Display for AcceleratorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AcceleratorKind::Gpu => write!(f, "GPU"),
            AcceleratorKind::Tpu => write!(f, "TPU"),
            AcceleratorKind::Fpga => write!(f, "FPGA"),
        }
    }
}

/// A point in resource space: how much of each dimension is requested,
/// available, or allocated.
///
/// All quantities are non-negative `f64`s so fractional allocations
/// (e.g. 0.5 cores for a function instance) are expressible.
///
/// # Examples
/// ```
/// use mcs_infra::resource::ResourceVector;
/// let capacity = ResourceVector::new(16.0, 64.0);
/// let req = ResourceVector::new(4.0, 8.0);
/// assert!(req.fits_in(&capacity));
/// let rest = capacity.checked_sub(&req).unwrap();
/// assert_eq!(rest.cpu_cores, 12.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResourceVector {
    /// CPU cores (fractional allowed).
    pub cpu_cores: f64,
    /// Memory in GiB.
    pub memory_gb: f64,
    /// Accelerator devices.
    pub accelerators: f64,
    /// Local storage in GiB.
    pub storage_gb: f64,
    /// Network bandwidth in Gbit/s.
    pub network_gbps: f64,
}

mcs_simcore::impl_json!(struct ResourceVector {
    cpu_cores, memory_gb, accelerators, storage_gb, network_gbps,
});

impl ResourceVector {
    /// The zero vector.
    pub const ZERO: ResourceVector = ResourceVector {
        cpu_cores: 0.0,
        memory_gb: 0.0,
        accelerators: 0.0,
        storage_gb: 0.0,
        network_gbps: 0.0,
    };

    /// A CPU+memory vector, the common case.
    pub fn new(cpu_cores: f64, memory_gb: f64) -> Self {
        ResourceVector { cpu_cores, memory_gb, ..ResourceVector::ZERO }
    }

    /// A CPU-only vector.
    pub fn cores(cpu_cores: f64) -> Self {
        ResourceVector { cpu_cores, ..ResourceVector::ZERO }
    }

    /// Adds accelerator devices to the vector (builder style).
    pub fn with_accelerators(mut self, n: f64) -> Self {
        self.accelerators = n;
        self
    }

    /// Adds storage to the vector (builder style).
    pub fn with_storage_gb(mut self, gb: f64) -> Self {
        self.storage_gb = gb;
        self
    }

    /// Adds network bandwidth to the vector (builder style).
    pub fn with_network_gbps(mut self, gbps: f64) -> Self {
        self.network_gbps = gbps;
        self
    }

    /// True when every dimension of `self` is ≤ the corresponding dimension
    /// of `capacity` (within a small epsilon to absorb float drift).
    pub fn fits_in(&self, capacity: &ResourceVector) -> bool {
        const EPS: f64 = 1e-9;
        self.cpu_cores <= capacity.cpu_cores + EPS
            && self.memory_gb <= capacity.memory_gb + EPS
            && self.accelerators <= capacity.accelerators + EPS
            && self.storage_gb <= capacity.storage_gb + EPS
            && self.network_gbps <= capacity.network_gbps + EPS
    }

    /// Dimension-wise subtraction; `None` if any dimension would go negative.
    pub fn checked_sub(&self, rhs: &ResourceVector) -> Option<ResourceVector> {
        if rhs.fits_in(self) {
            Some(ResourceVector {
                cpu_cores: (self.cpu_cores - rhs.cpu_cores).max(0.0),
                memory_gb: (self.memory_gb - rhs.memory_gb).max(0.0),
                accelerators: (self.accelerators - rhs.accelerators).max(0.0),
                storage_gb: (self.storage_gb - rhs.storage_gb).max(0.0),
                network_gbps: (self.network_gbps - rhs.network_gbps).max(0.0),
            })
        } else {
            None
        }
    }

    /// The largest per-dimension utilization fraction of `self` relative to
    /// `capacity`; dimensions with zero capacity are skipped. This is the
    /// "dominant share" of DRF-style fair allocation.
    pub fn dominant_share(&self, capacity: &ResourceVector) -> f64 {
        let frac = |used: f64, cap: f64| if cap > 0.0 { used / cap } else { 0.0 };
        frac(self.cpu_cores, capacity.cpu_cores)
            .max(frac(self.memory_gb, capacity.memory_gb))
            .max(frac(self.accelerators, capacity.accelerators))
            .max(frac(self.storage_gb, capacity.storage_gb))
            .max(frac(self.network_gbps, capacity.network_gbps))
    }

    /// True when every dimension is (approximately) zero.
    pub fn is_zero(&self) -> bool {
        const EPS: f64 = 1e-9;
        self.cpu_cores < EPS
            && self.memory_gb < EPS
            && self.accelerators < EPS
            && self.storage_gb < EPS
            && self.network_gbps < EPS
    }

    /// Scales every dimension by a non-negative factor.
    pub fn scaled(&self, factor: f64) -> ResourceVector {
        ResourceVector {
            cpu_cores: self.cpu_cores * factor,
            memory_gb: self.memory_gb * factor,
            accelerators: self.accelerators * factor,
            storage_gb: self.storage_gb * factor,
            network_gbps: self.network_gbps * factor,
        }
    }
}

impl Add for ResourceVector {
    type Output = ResourceVector;
    fn add(self, rhs: ResourceVector) -> ResourceVector {
        ResourceVector {
            cpu_cores: self.cpu_cores + rhs.cpu_cores,
            memory_gb: self.memory_gb + rhs.memory_gb,
            accelerators: self.accelerators + rhs.accelerators,
            storage_gb: self.storage_gb + rhs.storage_gb,
            network_gbps: self.network_gbps + rhs.network_gbps,
        }
    }
}

impl AddAssign for ResourceVector {
    fn add_assign(&mut self, rhs: ResourceVector) {
        *self = *self + rhs;
    }
}

impl Sub for ResourceVector {
    type Output = ResourceVector;
    /// Saturating subtraction: dimensions clamp at zero. Use
    /// [`ResourceVector::checked_sub`] when underflow must be detected.
    fn sub(self, rhs: ResourceVector) -> ResourceVector {
        ResourceVector {
            cpu_cores: (self.cpu_cores - rhs.cpu_cores).max(0.0),
            memory_gb: (self.memory_gb - rhs.memory_gb).max(0.0),
            accelerators: (self.accelerators - rhs.accelerators).max(0.0),
            storage_gb: (self.storage_gb - rhs.storage_gb).max(0.0),
            network_gbps: (self.network_gbps - rhs.network_gbps).max(0.0),
        }
    }
}

impl SubAssign for ResourceVector {
    fn sub_assign(&mut self, rhs: ResourceVector) {
        *self = *self - rhs;
    }
}

impl fmt::Display for ResourceVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.1} cores, {:.1} GiB, {:.0} accel, {:.0} GiB disk, {:.1} Gbps]",
            self.cpu_cores, self.memory_gb, self.accelerators, self.storage_gb, self.network_gbps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_in_is_dimension_wise() {
        let cap = ResourceVector::new(8.0, 32.0).with_accelerators(2.0);
        assert!(ResourceVector::new(8.0, 32.0).fits_in(&cap));
        assert!(!ResourceVector::new(9.0, 1.0).fits_in(&cap));
        assert!(!ResourceVector::new(1.0, 33.0).fits_in(&cap));
        assert!(!ResourceVector::new(1.0, 1.0).with_accelerators(3.0).fits_in(&cap));
        assert!(ResourceVector::ZERO.fits_in(&cap));
    }

    #[test]
    fn checked_sub_detects_underflow() {
        let cap = ResourceVector::new(4.0, 16.0);
        assert!(cap.checked_sub(&ResourceVector::new(5.0, 1.0)).is_none());
        let rest = cap.checked_sub(&ResourceVector::new(1.0, 4.0)).unwrap();
        assert_eq!(rest, ResourceVector::new(3.0, 12.0));
    }

    #[test]
    fn add_sub_round_trip() {
        let a = ResourceVector::new(2.0, 8.0).with_storage_gb(100.0);
        let b = ResourceVector::new(1.0, 2.0).with_network_gbps(10.0);
        let sum = a + b;
        assert_eq!(sum.cpu_cores, 3.0);
        assert_eq!(sum.network_gbps, 10.0);
        let back = sum - b;
        assert!((back.cpu_cores - a.cpu_cores).abs() < 1e-12);
        assert!((back.storage_gb - a.storage_gb).abs() < 1e-12);
    }

    #[test]
    fn saturating_sub_clamps() {
        let a = ResourceVector::new(1.0, 1.0);
        let diff = a - ResourceVector::new(5.0, 0.5);
        assert_eq!(diff.cpu_cores, 0.0);
        assert_eq!(diff.memory_gb, 0.5);
    }

    #[test]
    fn dominant_share_picks_max_dimension() {
        let cap = ResourceVector::new(10.0, 100.0);
        let use1 = ResourceVector::new(5.0, 20.0);
        assert!((use1.dominant_share(&cap) - 0.5).abs() < 1e-12);
        let use2 = ResourceVector::new(1.0, 90.0);
        assert!((use2.dominant_share(&cap) - 0.9).abs() < 1e-12);
        // Zero-capacity dimensions are ignored, not division by zero.
        let accel_req = ResourceVector::cores(1.0).with_accelerators(1.0);
        assert!((accel_req.dominant_share(&cap) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn is_zero_and_scaled() {
        assert!(ResourceVector::ZERO.is_zero());
        assert!(!ResourceVector::cores(0.1).is_zero());
        let v = ResourceVector::new(2.0, 4.0).scaled(2.5);
        assert_eq!(v, ResourceVector::new(5.0, 10.0));
    }

    #[test]
    fn display_mentions_all_dimensions() {
        let s = format!("{}", ResourceVector::new(1.0, 2.0));
        assert!(s.contains("cores") && s.contains("GiB") && s.contains("Gbps"));
    }
}
