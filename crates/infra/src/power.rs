//! Power and cost models.
//!
//! The paper lists energy-proportionality (C6 class v) and cost (C13) among
//! the first-class non-functional concerns of ecosystems; these models make
//! them measurable in every simulation.

use mcs_simcore::time::{SimDuration, SimTime};

/// Maps utilization to instantaneous power draw.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PowerModel {
    /// The classic linear model: `idle + (max - idle) * utilization`.
    Linear {
        /// Draw at zero utilization, watts.
        idle_watts: f64,
        /// Draw at full utilization, watts.
        max_watts: f64,
    },
    /// Energy-proportional square-root model, `idle + (max-idle) * sqrt(u)`:
    /// pessimistic at low utilization, as measured on real servers.
    SquareRoot {
        /// Draw at zero utilization, watts.
        idle_watts: f64,
        /// Draw at full utilization, watts.
        max_watts: f64,
    },
}

impl PowerModel {
    /// A linear model from idle and peak draw.
    pub fn linear(idle_watts: f64, max_watts: f64) -> PowerModel {
        PowerModel::Linear { idle_watts, max_watts }
    }

    /// Instantaneous draw at `utilization ∈ [0, 1]` (clamped).
    pub fn watts(&self, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        match *self {
            PowerModel::Linear { idle_watts, max_watts } => {
                idle_watts + (max_watts - idle_watts) * u
            }
            PowerModel::SquareRoot { idle_watts, max_watts } => {
                idle_watts + (max_watts - idle_watts) * u.sqrt()
            }
        }
    }
}

/// Integrates power over virtual time into energy (kWh).
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyMeter {
    last_at: SimTime,
    watts: f64,
    joules: f64,
}

impl EnergyMeter {
    /// Starts metering at `t0` with an initial draw.
    pub fn new(t0: SimTime, initial_watts: f64) -> Self {
        EnergyMeter { last_at: t0, watts: initial_watts, joules: 0.0 }
    }

    /// Records a change in draw at instant `at`.
    ///
    /// # Panics
    /// Panics if `at` precedes the previous update.
    pub fn set_watts(&mut self, at: SimTime, watts: f64) {
        assert!(at >= self.last_at, "energy meter updates must be monotone");
        self.joules += self.watts * (at - self.last_at).as_secs_f64();
        self.last_at = at;
        self.watts = watts;
    }

    /// Total energy consumed up to `at`, in kilowatt-hours.
    pub fn kwh_until(&self, at: SimTime) -> f64 {
        let tail = self.watts * at.saturating_since(self.last_at).as_secs_f64();
        (self.joules + tail) / 3_600_000.0
    }
}

/// Converts machine-time and energy into money.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Price of one kWh.
    pub per_kwh: f64,
    /// Datacenter power-usage effectiveness (total facility power divided by
    /// IT power); ≥ 1.0.
    pub pue: f64,
}

impl CostModel {
    /// A typical cloud-provider cost model.
    pub fn default_cloud() -> Self {
        CostModel { per_kwh: 0.12, pue: 1.4 }
    }

    /// Money spent on `kwh` of IT energy, including facility overhead, plus
    /// the machine-hour price for `machine_time` at `per_machine_hour`.
    pub fn cost(&self, kwh: f64, machine_time: SimDuration, per_machine_hour: f64) -> f64 {
        self.per_kwh * self.pue * kwh + per_machine_hour * machine_time.as_secs_f64() / 3600.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_power_endpoints() {
        let p = PowerModel::linear(100.0, 300.0);
        assert_eq!(p.watts(0.0), 100.0);
        assert_eq!(p.watts(1.0), 300.0);
        assert_eq!(p.watts(0.5), 200.0);
        assert_eq!(p.watts(-1.0), 100.0);
        assert_eq!(p.watts(2.0), 300.0);
    }

    #[test]
    fn sqrt_power_above_linear_mid_range() {
        let lin = PowerModel::linear(100.0, 300.0);
        let sq = PowerModel::SquareRoot { idle_watts: 100.0, max_watts: 300.0 };
        assert!(sq.watts(0.25) > lin.watts(0.25));
        assert_eq!(sq.watts(1.0), lin.watts(1.0));
    }

    #[test]
    fn energy_meter_integrates() {
        let mut m = EnergyMeter::new(SimTime::ZERO, 1000.0);
        m.set_watts(SimTime::from_secs(3600), 2000.0); // 1 kW for 1 h = 1 kWh
        let kwh = m.kwh_until(SimTime::from_secs(7200)); // + 2 kW for 1 h
        assert!((kwh - 3.0).abs() < 1e-9);
    }

    #[test]
    fn cost_combines_energy_and_machine_hours() {
        let c = CostModel { per_kwh: 0.10, pue: 1.5 };
        let money = c.cost(10.0, SimDuration::from_hours(2), 0.5);
        // 10 kWh * 1.5 * 0.10 + 2 h * 0.5 = 1.5 + 1.0
        assert!((money - 2.5).abs() < 1e-9);
    }
}
