//! # mcs-infra — heterogeneous infrastructure model
//!
//! Machines, clusters, datacenters, geo-distributed network topology, and
//! power/cost models: the "Infrastructure" and "Resources" layers of the
//! paper's Figure 3 datacenter reference architecture, with the extreme
//! heterogeneity of challenge C4 (CPU/GPU/TPU/FPGA machine types, different
//! core speeds, memory and network capacities).
//!
//! ## Example: a small federated infrastructure
//! ```
//! use mcs_infra::prelude::*;
//!
//! let mut dc = Datacenter::new(
//!     DatacenterId(0),
//!     "ams-1",
//!     GeoLocation { lat_deg: 52.4, lon_deg: 4.9 },
//! );
//! dc.push_cluster(Cluster::homogeneous(
//!     ClusterId(0), "batch", MachineSpec::commodity("std-16", 16.0, 64.0), 8,
//! ));
//! assert_eq!(dc.capacity().cpu_cores, 128.0);
//! ```

pub mod cluster;
pub mod machine;
pub mod network;
pub mod power;
pub mod resource;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::cluster::{Cluster, ClusterId, Datacenter, DatacenterId, GeoLocation};
    pub use crate::machine::{Machine, MachineId, MachineSpec, MachineState};
    pub use crate::network::{Link, Route, Topology};
    pub use crate::power::{CostModel, EnergyMeter, PowerModel};
    pub use crate::resource::{AcceleratorKind, ResourceVector};
}
