//! Failure models for large-scale distributed systems.
//!
//! The paper's second fundamental problem (§2.2) is maintaining ecosystems
//! under failures, and it cites the authors' own failure-modelling work:
//! *space-correlated* failures (Gallet et al., Euro-Par 2010 \[26\]) where one
//! trigger takes down groups of machines, and *time-correlated* failures
//! (Yigitbasi et al., GRID 2010 \[27\]) where failure rates have strong
//! autocorrelation (failures cluster in time). Both are implemented here
//! alongside the classic independent-failure baseline, so experiments can
//! show how much correlation changes availability at identical MTBF.

use mcs_simcore::dist::{Dist, Sample};
use mcs_simcore::rng::RngStream;
use mcs_simcore::time::{SimDuration, SimTime};

/// One machine outage: the machine fails at `fail_at` and is repaired at
/// `repair_at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outage {
    /// Index of the affected machine in the modelled population.
    pub machine: usize,
    /// Failure instant.
    pub fail_at: SimTime,
    /// Repair instant (strictly after `fail_at`).
    pub repair_at: SimTime,
}

impl Outage {
    /// Downtime of this outage.
    pub fn duration(&self) -> SimDuration {
        self.repair_at.saturating_since(self.fail_at)
    }
}

/// What a fault *does* to its victim — the vocabulary beyond crash-stop.
///
/// Real failure studies (and the SimGrid line of simulators) show that
/// crash-stop is only one corner of the fault space: machines also *limp*
/// (stragglers), *lie* (gray failures that fail work without dying), and
/// get *cut off* (network partitions). Each kind is delivered through the
/// same injector cursor, so mixed-fault schedules stay one sorted list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Classic crash-stop: the machine is down until repair.
    Crash,
    /// A straggler window: the victim's work runs `factor`× slower
    /// (`factor > 1`).
    Slowdown {
        /// Latency multiplier while the fault is active.
        factor: f64,
    },
    /// A gray failure: the machine looks alive but fails work with this
    /// probability until repair.
    Gray {
        /// Probability that a unit of work fails, in `[0, 1]`.
        error_rate: f64,
    },
    /// A network-partition window: requests to the victim never arrive.
    Partition,
}

impl FaultKind {
    /// A stable lowercase name for trace payloads.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Crash => "crash",
            FaultKind::Slowdown { .. } => "slowdown",
            FaultKind::Gray { .. } => "gray",
            FaultKind::Partition => "partition",
        }
    }
}

/// One scheduled fault: an [`Outage`] window plus what happens inside it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fault {
    /// The affected machine and the `[fail_at, repair_at)` window.
    pub outage: Outage,
    /// What the fault does during the window.
    pub kind: FaultKind,
}

impl Fault {
    /// A crash-stop fault over `outage` (the legacy behaviour).
    pub fn crash(outage: Outage) -> Self {
        Fault { outage, kind: FaultKind::Crash }
    }
}

/// A probability mix over fault kinds, used to lift a crash-only outage
/// schedule into a mixed-fault schedule deterministically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultMix {
    /// Weight of crash-stop faults.
    pub crash: f64,
    /// Weight of slowdown (straggler) windows.
    pub slowdown: f64,
    /// Weight of gray-failure windows.
    pub gray: f64,
    /// Weight of partition windows.
    pub partition: f64,
    /// Latency multiplier of slowdown windows.
    pub slowdown_factor: f64,
    /// Per-unit-of-work failure probability of gray windows.
    pub gray_error_rate: f64,
}

/// The default is [`FaultMix::crash_only`]: the `partition` (and `gray`,
/// `slowdown`) weights are `0.0`, so **topology faults are silently
/// disabled** — a default-mix schedule never cuts or degrades a network
/// link, even when a scenario attaches a network model. Opt into
/// partitions by giving `partition` a positive weight; conversely, a
/// positive `partition` weight without a network model attached falls back
/// to service-level fault windows (composed scenarios print a stderr
/// warning for that combination).
impl Default for FaultMix {
    fn default() -> Self {
        FaultMix::crash_only()
    }
}

impl FaultMix {
    /// Every fault is a crash (the legacy, crash-stop-only vocabulary).
    pub fn crash_only() -> Self {
        FaultMix {
            crash: 1.0,
            slowdown: 0.0,
            gray: 0.0,
            partition: 0.0,
            slowdown_factor: 4.0,
            gray_error_rate: 0.8,
        }
    }

    /// Assigns a kind to every outage by a weighted draw from this mix
    /// (weights are normalized; all-zero weights degrade to crash-only).
    pub fn assign(&self, outages: Vec<Outage>, rng: &mut RngStream) -> Vec<Fault> {
        let total = self.crash + self.slowdown + self.gray + self.partition;
        outages
            .into_iter()
            .map(|outage| {
                let kind = if total <= 0.0 {
                    FaultKind::Crash
                } else {
                    let x = rng.next_f64() * total;
                    if x < self.crash {
                        FaultKind::Crash
                    } else if x < self.crash + self.slowdown {
                        FaultKind::Slowdown { factor: self.slowdown_factor.max(1.0) }
                    } else if x < self.crash + self.slowdown + self.gray {
                        FaultKind::Gray { error_rate: self.gray_error_rate.clamp(0.0, 1.0) }
                    } else {
                        FaultKind::Partition
                    }
                };
                Fault { outage, kind }
            })
            .collect()
    }
}

/// A generator of outage schedules over a machine population.
pub trait FailureModel {
    /// Generates all outages for `machines` machines in `[0, horizon)`,
    /// sorted by failure instant. Overlapping outages of the *same* machine
    /// are merged by the caller-facing helpers in [`crate::analysis`].
    fn generate(&self, machines: usize, horizon: SimTime, rng: &mut RngStream) -> Vec<Outage>;
}

fn sort_outages(mut v: Vec<Outage>) -> Vec<Outage> {
    v.sort_by_key(|o| (o.fail_at, o.machine));
    v
}

/// Independent failures: each machine fails on its own renewal process.
#[derive(Debug, Clone)]
pub struct IndependentFailures {
    /// Time-between-failures distribution, seconds (Weibull with shape < 1
    /// matches the decreasing hazard rates observed on real grids).
    pub tbf: Dist,
    /// Repair-time distribution, seconds (lognormal in the cited studies).
    pub repair: Dist,
}

impl IndependentFailures {
    /// A model with the Weibull/lognormal fits typical of grid traces, with
    /// the given mean time between failures (seconds).
    pub fn with_mtbf(mtbf_secs: f64) -> Self {
        // Weibull shape 0.7: scale chosen so the mean equals mtbf.
        let shape = 0.7;
        let scale = mtbf_secs / gamma_mean_factor(shape);
        IndependentFailures {
            tbf: Dist::Weibull { shape, scale },
            repair: Dist::LogNormal { mu: 6.0, sigma: 1.0 }, // median ~6.7 min
        }
    }
}

/// `E[Weibull(shape, 1)] = Γ(1 + 1/shape)`; helper to invert the mean.
fn gamma_mean_factor(shape: f64) -> f64 {
    Dist::Weibull { shape, scale: 1.0 }.mean().unwrap_or(1.0)
}

impl FailureModel for IndependentFailures {
    fn generate(&self, machines: usize, horizon: SimTime, rng: &mut RngStream) -> Vec<Outage> {
        let mut out = Vec::new();
        for m in 0..machines {
            let mut rng_m = rng.derive(&format!("machine-{m}"));
            let mut t = SimTime::ZERO;
            loop {
                let gap = SimDuration::from_secs_f64(self.tbf.sample(&mut rng_m).max(1.0));
                let Some(fail_at) = t.checked_add(gap) else { break };
                if fail_at >= horizon {
                    break;
                }
                let down = SimDuration::from_secs_f64(self.repair.sample(&mut rng_m).max(1.0));
                let repair_at = fail_at + down;
                out.push(Outage { machine: m, fail_at, repair_at });
                t = repair_at;
            }
        }
        sort_outages(out)
    }
}

/// Space-correlated failures (Gallet et al.): failures arrive as *bursts*;
/// each burst takes down a group of machines that are near each other in the
/// population order (a rack, a power domain, a network segment).
#[derive(Debug, Clone)]
pub struct SpaceCorrelatedFailures {
    /// Inter-burst time distribution, seconds.
    pub inter_burst: Dist,
    /// Burst-size distribution (number of machines; heavy-tailed in the
    /// measured traces).
    pub burst_size: Dist,
    /// Repair-time distribution, seconds.
    pub repair: Dist,
    /// Size of the correlation domain (e.g. machines per rack): the burst
    /// hits consecutive machines within one randomly chosen domain.
    pub domain_size: usize,
}

impl SpaceCorrelatedFailures {
    /// A model tuned so the *per-machine* MTBF matches `mtbf_secs` for the
    /// given population size, concentrating failures in bursts.
    pub fn with_mtbf(mtbf_secs: f64, machines: usize, domain_size: usize) -> Self {
        // Mean burst size under Pareto(1.5) truncated at domain_size:
        // approximate by its untruncated mean (alpha/(alpha-1) = 3).
        let mean_burst = 3.0f64.min(domain_size as f64);
        let burst_rate = machines as f64 / (mtbf_secs * mean_burst);
        SpaceCorrelatedFailures {
            inter_burst: Dist::Exponential { rate: burst_rate },
            burst_size: Dist::Pareto { x_min: 1.0, alpha: 1.5 },
            repair: Dist::LogNormal { mu: 6.0, sigma: 1.0 },
            domain_size: domain_size.max(1),
        }
    }
}

impl FailureModel for SpaceCorrelatedFailures {
    fn generate(&self, machines: usize, horizon: SimTime, rng: &mut RngStream) -> Vec<Outage> {
        let mut out = Vec::new();
        if machines == 0 {
            return out;
        }
        let mut t = SimTime::ZERO;
        loop {
            let gap = SimDuration::from_secs_f64(self.inter_burst.sample(rng).max(1.0));
            let Some(burst_at) = t.checked_add(gap) else { break };
            if burst_at >= horizon {
                break;
            }
            t = burst_at;
            let size = (self.burst_size.sample(rng).round() as usize)
                .clamp(1, self.domain_size.min(machines));
            // Pick a correlation domain and fail `size` consecutive machines.
            let domains = machines.div_ceil(self.domain_size);
            let domain = rng.uniform_usize(domains);
            let base = domain * self.domain_size;
            let span = self.domain_size.min(machines - base);
            let start = base + rng.uniform_usize(span.saturating_sub(size).max(1).min(span));
            for m in start..(start + size).min(machines) {
                let down = SimDuration::from_secs_f64(self.repair.sample(rng).max(1.0));
                out.push(Outage { machine: m, fail_at: burst_at, repair_at: burst_at + down });
            }
        }
        sort_outages(out)
    }
}

/// Time-correlated failures (Yigitbasi et al.): the failure rate itself
/// switches between a calm and a stormy regime (high autocorrelation), so
/// failures cluster in time even though each failure hits a random machine.
#[derive(Debug, Clone)]
pub struct TimeCorrelatedFailures {
    /// Failure rate in the calm regime, failures/second over the population.
    pub calm_rate: f64,
    /// Failure rate in the stormy regime.
    pub storm_rate: f64,
    /// Mean sojourn in calm, seconds.
    pub calm_sojourn: f64,
    /// Mean sojourn in storm, seconds.
    pub storm_sojourn: f64,
    /// Repair-time distribution, seconds.
    pub repair: Dist,
}

impl TimeCorrelatedFailures {
    /// A model whose long-run per-machine MTBF matches `mtbf_secs` while
    /// concentrating most failures in storms.
    pub fn with_mtbf(mtbf_secs: f64, machines: usize) -> Self {
        let avg_rate = machines as f64 / mtbf_secs;
        // Storms are 5% of time but carry 10x rate.
        let p_storm = 0.05;
        let storm_rate = avg_rate * 10.0;
        let calm_rate =
            ((avg_rate - p_storm * storm_rate) / (1.0 - p_storm)).max(avg_rate * 0.01);
        TimeCorrelatedFailures {
            calm_rate,
            storm_rate,
            calm_sojourn: 19.0 * 3600.0,
            storm_sojourn: 3600.0,
            repair: Dist::LogNormal { mu: 6.0, sigma: 1.0 },
        }
    }
}

impl FailureModel for TimeCorrelatedFailures {
    fn generate(&self, machines: usize, horizon: SimTime, rng: &mut RngStream) -> Vec<Outage> {
        let mut out = Vec::new();
        if machines == 0 {
            return out;
        }
        let mut t = SimTime::ZERO;
        let mut stormy = false;
        let mut regime_until = SimTime::ZERO
            + SimDuration::from_secs_f64(
                Dist::exponential_mean(self.calm_sojourn).sample(rng).max(1.0),
            );
        loop {
            let rate = if stormy { self.storm_rate } else { self.calm_rate };
            let gap =
                SimDuration::from_secs_f64(Dist::Exponential { rate }.sample(rng).max(1e-3));
            let Some(candidate) = t.checked_add(gap) else { break };
            if candidate >= horizon {
                break;
            }
            if candidate > regime_until {
                // Switch regime at the boundary and continue from there.
                t = regime_until;
                stormy = !stormy;
                let mean = if stormy { self.storm_sojourn } else { self.calm_sojourn };
                regime_until =
                    t + SimDuration::from_secs_f64(Dist::exponential_mean(mean).sample(rng).max(1.0));
                continue;
            }
            t = candidate;
            let m = rng.uniform_usize(machines);
            let down = SimDuration::from_secs_f64(self.repair.sample(rng).max(1.0));
            out.push(Outage { machine: m, fail_at: t, repair_at: t + down });
        }
        sort_outages(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOUR: f64 = 3600.0;

    fn horizon_days(d: u64) -> SimTime {
        SimTime::from_secs(d * 24 * 3600)
    }

    #[test]
    fn outage_duration() {
        let o = Outage {
            machine: 0,
            fail_at: SimTime::from_secs(10),
            repair_at: SimTime::from_secs(70),
        };
        assert_eq!(o.duration(), SimDuration::from_secs(60));
    }

    #[test]
    fn default_mix_zero_partition_weight_disables_topology_faults() {
        // The documented contract of `FaultMix::default()`: with the
        // partition weight at 0.0, a schedule of any size contains no
        // partition (and no slowdown/gray) windows — topology faults are
        // silently off unless opted into.
        let mix = FaultMix::default();
        assert_eq!(mix.partition, 0.0);
        let model = IndependentFailures::with_mtbf(20.0 * HOUR);
        let mut rng = RngStream::new(9, "mix-outages");
        let outages = model.generate(100, horizon_days(120), &mut rng);
        assert!(outages.len() > 500, "need a large schedule to trust the sweep");
        let mut mix_rng = RngStream::new(9, "mix-assign");
        let faults = mix.assign(outages, &mut mix_rng);
        assert!(faults.iter().all(|f| f.kind == FaultKind::Crash));
    }

    #[test]
    fn independent_mtbf_approximately_met() {
        let mtbf = 100.0 * HOUR;
        let model = IndependentFailures::with_mtbf(mtbf);
        let mut rng = RngStream::new(1, "ind");
        let machines = 200;
        let horizon = horizon_days(365);
        let outages = model.generate(machines, horizon, &mut rng);
        let expected = machines as f64 * horizon.as_secs_f64() / mtbf;
        let got = outages.len() as f64;
        assert!(
            (got / expected - 1.0).abs() < 0.2,
            "got {got} outages, expected ~{expected}"
        );
    }

    #[test]
    fn outages_sorted_and_positive() {
        let model = IndependentFailures::with_mtbf(50.0 * HOUR);
        let mut rng = RngStream::new(2, "ind");
        let outages = model.generate(50, horizon_days(60), &mut rng);
        for w in outages.windows(2) {
            assert!(w[0].fail_at <= w[1].fail_at);
        }
        for o in &outages {
            assert!(o.repair_at > o.fail_at);
        }
    }

    #[test]
    fn space_correlated_fails_in_groups() {
        let model = SpaceCorrelatedFailures::with_mtbf(100.0 * HOUR, 100, 10);
        let mut rng = RngStream::new(3, "space");
        let outages = model.generate(100, horizon_days(365), &mut rng);
        assert!(!outages.is_empty());
        // Count simultaneous failures (same fail instant): correlated model
        // must produce multi-machine bursts.
        let mut bursts = std::collections::HashMap::new();
        for o in &outages {
            *bursts.entry(o.fail_at).or_insert(0usize) += 1;
        }
        let max_burst = bursts.values().copied().max().unwrap();
        assert!(max_burst >= 3, "largest burst only {max_burst}");
        // All bursts stay within one 10-machine domain.
        let mut by_time: std::collections::HashMap<SimTime, Vec<usize>> =
            std::collections::HashMap::new();
        for o in &outages {
            by_time.entry(o.fail_at).or_default().push(o.machine);
        }
        for members in by_time.values() {
            let domains: std::collections::HashSet<usize> =
                members.iter().map(|m| m / 10).collect();
            assert!(domains.len() <= 2, "burst spans domains {domains:?}");
        }
    }

    #[test]
    fn time_correlated_clusters_in_time() {
        let machines = 100;
        let mtbf = 200.0 * HOUR;
        let model = TimeCorrelatedFailures::with_mtbf(mtbf, machines);
        let mut rng = RngStream::new(4, "time");
        let horizon = horizon_days(365);
        let outages = model.generate(machines, horizon, &mut rng);
        assert!(outages.len() > 50, "got {}", outages.len());
        // Bin failures per day; time correlation shows as high variance of
        // daily counts relative to a Poisson baseline (index of dispersion).
        let days = 365;
        let mut daily = vec![0f64; days];
        for o in &outages {
            let d = (o.fail_at.as_secs_f64() / 86_400.0) as usize;
            if d < days {
                daily[d] += 1.0;
            }
        }
        let mut st = mcs_simcore::metrics::OnlineStats::new();
        for c in &daily {
            st.record(*c);
        }
        let dispersion = st.variance() / st.mean().max(1e-9);
        assert!(dispersion > 2.0, "index of dispersion {dispersion} too Poisson-like");
    }

    #[test]
    fn zero_machines_yield_no_outages() {
        let mut rng = RngStream::new(5, "zero");
        let m1 = IndependentFailures::with_mtbf(HOUR);
        assert!(m1.generate(0, horizon_days(1), &mut rng).is_empty());
        let m2 = SpaceCorrelatedFailures::with_mtbf(HOUR, 10, 5);
        assert!(m2.generate(0, horizon_days(1), &mut rng).is_empty());
        let m3 = TimeCorrelatedFailures::with_mtbf(HOUR, 10);
        assert!(m3.generate(0, horizon_days(1), &mut rng).is_empty());
    }
}
