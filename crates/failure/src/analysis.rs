//! Availability analysis of outage schedules.
//!
//! Computes the metrics the cited failure studies report: per-machine and
//! fleet availability, MTTF/MTTR, the distribution of *concurrently failed*
//! machines (the signature that separates correlated from independent
//! failures), and the largest availability gap.

use crate::model::Outage;
use mcs_simcore::metrics::Summary;
use mcs_simcore::time::{SimDuration, SimTime};

/// Merges overlapping outages of the same machine into disjoint intervals.
pub fn merge_per_machine(outages: &[Outage], machines: usize) -> Vec<Vec<(SimTime, SimTime)>> {
    let mut per: Vec<Vec<(SimTime, SimTime)>> = vec![Vec::new(); machines];
    for o in outages {
        if o.machine < machines {
            per[o.machine].push((o.fail_at, o.repair_at));
        }
    }
    for intervals in &mut per {
        intervals.sort();
        let mut merged: Vec<(SimTime, SimTime)> = Vec::with_capacity(intervals.len());
        for &(s, e) in intervals.iter() {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        *intervals = merged;
    }
    per
}

/// Fleet-level availability report.
#[derive(Debug, Clone, PartialEq)]
pub struct AvailabilityReport {
    /// Machines modelled.
    pub machines: usize,
    /// Total outages (after merging overlaps).
    pub outages: usize,
    /// Fraction of machine-time spent up, in `[0, 1]`.
    pub availability: f64,
    /// Mean time to failure, seconds (up-interval mean).
    pub mttf_secs: f64,
    /// Mean time to repair, seconds (down-interval mean).
    pub mttr_secs: f64,
    /// Distribution of downtime durations.
    pub downtime: Option<Summary>,
    /// Peak number of simultaneously failed machines.
    pub peak_concurrent_failures: usize,
    /// Time-average number of simultaneously failed machines.
    pub mean_concurrent_failures: f64,
}

/// Analyzes an outage schedule over `[0, horizon)`.
///
/// Returns a degenerate all-available report when `machines == 0` or the
/// horizon is empty.
pub fn analyze(outages: &[Outage], machines: usize, horizon: SimTime) -> AvailabilityReport {
    let horizon_s = horizon.as_secs_f64();
    if machines == 0 || horizon_s <= 0.0 {
        return AvailabilityReport {
            machines,
            outages: 0,
            availability: 1.0,
            mttf_secs: horizon_s,
            mttr_secs: 0.0,
            downtime: None,
            peak_concurrent_failures: 0,
            mean_concurrent_failures: 0.0,
        };
    }
    let per = merge_per_machine(outages, machines);
    let mut downtimes = Vec::new();
    let mut up_intervals = Vec::new();
    let mut total_down = 0.0;
    let mut events: Vec<(SimTime, i64)> = Vec::new();
    let mut outage_count = 0;

    for intervals in &per {
        let mut cursor = SimTime::ZERO;
        for &(s, e) in intervals {
            let s = s.min(horizon);
            let e = e.min(horizon);
            if e <= s {
                continue;
            }
            outage_count += 1;
            let down = (e - s).as_secs_f64();
            downtimes.push(down);
            total_down += down;
            if s > cursor {
                up_intervals.push((s - cursor).as_secs_f64());
            }
            cursor = e;
            events.push((s, 1));
            events.push((e, -1));
        }
        if horizon > cursor {
            up_intervals.push((horizon - cursor).as_secs_f64());
        }
    }

    // Sweep for concurrency.
    events.sort_by_key(|&(t, d)| (t, -d));
    let mut level: i64 = 0;
    let mut peak: i64 = 0;
    let mut weighted = 0.0;
    let mut last = SimTime::ZERO;
    for (t, d) in events {
        weighted += level as f64 * (t - last).as_secs_f64();
        last = t;
        level += d;
        peak = peak.max(level);
    }
    weighted += level as f64 * horizon.saturating_since(last).as_secs_f64();

    let machine_time = machines as f64 * horizon_s;
    AvailabilityReport {
        machines,
        outages: outage_count,
        availability: 1.0 - total_down / machine_time,
        mttf_secs: if up_intervals.is_empty() {
            horizon_s
        } else {
            up_intervals.iter().sum::<f64>() / up_intervals.len() as f64
        },
        mttr_secs: if downtimes.is_empty() {
            0.0
        } else {
            total_down / downtimes.len() as f64
        },
        downtime: Summary::of(&downtimes),
        peak_concurrent_failures: peak as usize,
        mean_concurrent_failures: weighted / horizon_s,
    }
}

/// The longest window during which at least `threshold` machines were down
/// simultaneously — the "correlated failure can take out the service" signal
/// (paper §2.2, second fundamental problem).
pub fn longest_degradation(
    outages: &[Outage],
    machines: usize,
    horizon: SimTime,
    threshold: usize,
) -> SimDuration {
    let per = merge_per_machine(outages, machines);
    let mut events: Vec<(SimTime, i64)> = Vec::new();
    for intervals in &per {
        for &(s, e) in intervals {
            events.push((s.min(horizon), 1));
            events.push((e.min(horizon), -1));
        }
    }
    events.sort_by_key(|&(t, d)| (t, -d));
    let mut level = 0i64;
    let mut best = SimDuration::ZERO;
    let mut entered: Option<SimTime> = None;
    for (t, d) in events {
        level += d;
        if level >= threshold as i64 && entered.is_none() {
            entered = Some(t);
        } else if level < threshold as i64 {
            if let Some(s) = entered.take() {
                best = best.max(t.saturating_since(s));
            }
        }
    }
    if let Some(s) = entered {
        best = best.max(horizon.saturating_since(s));
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(machine: usize, fail: u64, repair: u64) -> Outage {
        Outage {
            machine,
            fail_at: SimTime::from_secs(fail),
            repair_at: SimTime::from_secs(repair),
        }
    }

    #[test]
    fn merge_overlapping_intervals() {
        let outages = vec![o(0, 10, 20), o(0, 15, 30), o(0, 40, 50), o(1, 5, 6)];
        let per = merge_per_machine(&outages, 2);
        assert_eq!(
            per[0],
            vec![
                (SimTime::from_secs(10), SimTime::from_secs(30)),
                (SimTime::from_secs(40), SimTime::from_secs(50))
            ]
        );
        assert_eq!(per[1].len(), 1);
    }

    #[test]
    fn availability_hand_example() {
        // 2 machines, horizon 100 s. m0 down 10 s, m1 down 30 s.
        let outages = vec![o(0, 10, 20), o(1, 50, 80)];
        let r = analyze(&outages, 2, SimTime::from_secs(100));
        assert_eq!(r.outages, 2);
        assert!((r.availability - (1.0 - 40.0 / 200.0)).abs() < 1e-12);
        assert!((r.mttr_secs - 20.0).abs() < 1e-12);
        assert_eq!(r.peak_concurrent_failures, 1);
        // Mean concurrency: 40 machine-seconds of downtime / 100 s = 0.4.
        assert!((r.mean_concurrent_failures - 0.4).abs() < 1e-12);
    }

    #[test]
    fn concurrent_failures_detected() {
        let outages = vec![o(0, 10, 30), o(1, 15, 25), o(2, 18, 22)];
        let r = analyze(&outages, 3, SimTime::from_secs(100));
        assert_eq!(r.peak_concurrent_failures, 3);
    }

    #[test]
    fn outages_clipped_to_horizon() {
        let outages = vec![o(0, 90, 200)];
        let r = analyze(&outages, 1, SimTime::from_secs(100));
        assert!((r.availability - 0.9).abs() < 1e-12);
    }

    #[test]
    fn empty_population_fully_available() {
        let r = analyze(&[], 0, SimTime::from_secs(100));
        assert_eq!(r.availability, 1.0);
        let r2 = analyze(&[], 4, SimTime::from_secs(100));
        assert_eq!(r2.availability, 1.0);
        assert_eq!(r2.outages, 0);
    }

    #[test]
    fn longest_degradation_window() {
        // Two machines down together during [15, 25).
        let outages = vec![o(0, 10, 25), o(1, 15, 40)];
        let d = longest_degradation(&outages, 2, SimTime::from_secs(100), 2);
        assert_eq!(d, SimDuration::from_secs(10));
        let d1 = longest_degradation(&outages, 2, SimTime::from_secs(100), 1);
        assert_eq!(d1, SimDuration::from_secs(30));
        let d3 = longest_degradation(&outages, 2, SimTime::from_secs(100), 3);
        assert_eq!(d3, SimDuration::ZERO);
    }
}
