//! # mcs-failure — correlated failure models and availability analysis
//!
//! Implements the failure-model families the paper cites as evidence for its
//! second fundamental problem (§2.2, "we lack the comprehensive technology to
//! maintain the current computer ecosystems"): independent renewals,
//! space-correlated bursts (Gallet et al. \[26\]), and time-correlated storms
//! (Yigitbasi et al. \[27\]) — plus the analysis that shows why correlation,
//! not raw MTBF, is what kills ecosystem availability.
//!
//! ## Example
//! ```
//! use mcs_failure::prelude::*;
//! use mcs_simcore::prelude::*;
//!
//! let model = IndependentFailures::with_mtbf(100.0 * 3600.0);
//! let mut rng = RngStream::new(7, "failures");
//! let outages = model.generate(100, SimTime::from_secs(30 * 86_400), &mut rng);
//! let report = analyze(&outages, 100, SimTime::from_secs(30 * 86_400));
//! assert!(report.availability > 0.9);
//! ```

pub mod analysis;
pub mod inject;
pub mod model;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::analysis::{analyze, longest_degradation, merge_per_machine, AvailabilityReport};
    pub use crate::inject::{FailureEvent, FailureInjector, InjectorMsg};
    pub use crate::model::{
        FailureModel, Fault, FaultKind, FaultMix, IndependentFailures, Outage,
        SpaceCorrelatedFailures, TimeCorrelatedFailures,
    };
}
