//! Replays an outage schedule into a live discrete-event simulation.
//!
//! The models in [`crate::model`] generate outage *schedules* up front; the
//! [`FailureInjector`] actor turns such a schedule into engine messages, so
//! failures and repairs interleave with scheduler, autoscaler, and platform
//! events in one [`Simulation`](mcs_simcore::engine::Simulation). A
//! caller-provided `deliver` callback fans each event out to the affected
//! subsystems (e.g. a `MachineFail` to the scheduler, a warm-pool kill to
//! the FaaS platform).
//!
//! The injector keeps a cursor into the pre-sorted schedule and arms only
//! the *next* outage, so a year-long schedule costs one pending event, not
//! thousands.

use crate::model::{Fault, Outage};
use mcs_simcore::codec::Json;
use mcs_simcore::engine::{Actor, Context, MessageEnvelope};
use mcs_simcore::time::SimTime;
use mcs_simcore::trace::payload;

/// The injector's message vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectorMsg {
    /// Kick-off: arm the first outage.
    Start,
    /// The fault under the cursor strikes now.
    Fail,
    /// The fault at this schedule index is repaired now.
    Repair(usize),
}

/// One failure-domain event delivered to the scenario callback.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FailureEvent {
    /// This fault's window just opened (crash, straggler, gray, partition).
    Fail(Fault),
    /// This fault's window just closed.
    Repair(Fault),
}

/// Callback receiving each [`FailureEvent`] as it fires.
pub type FailureSink<'a, M> = Box<dyn FnMut(&mut Context<'_, M>, FailureEvent) + 'a>;

/// Replays a sorted fault schedule as engine messages.
pub struct FailureInjector<'a, M> {
    faults: Vec<Fault>,
    cursor: usize,
    horizon: Option<SimTime>,
    delivered: usize,
    deliver: FailureSink<'a, M>,
}

impl<'a, M: MessageEnvelope<InjectorMsg>> FailureInjector<'a, M> {
    /// Builds an injector over crash-stop `outages` (sorted internally by
    /// `(fail_at, machine)`, the order the models already emit).
    pub fn new(
        outages: Vec<Outage>,
        deliver: impl FnMut(&mut Context<'_, M>, FailureEvent) + 'a,
    ) -> Self {
        Self::with_faults(outages.into_iter().map(Fault::crash).collect(), deliver)
    }

    /// Builds an injector over a mixed-kind fault schedule (e.g. from
    /// [`FaultMix::assign`](crate::model::FaultMix::assign)).
    pub fn with_faults(
        mut faults: Vec<Fault>,
        deliver: impl FnMut(&mut Context<'_, M>, FailureEvent) + 'a,
    ) -> Self {
        faults.sort_by_key(|f| (f.outage.fail_at, f.outage.machine));
        FailureInjector {
            faults,
            cursor: 0,
            horizon: None,
            delivered: 0,
            deliver: Box::new(deliver),
        }
    }

    /// Ignores outages failing at or after `horizon` and clamps repair
    /// instants to it.
    #[must_use]
    pub fn with_horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = Some(horizon);
        self
    }

    /// Fault onsets delivered so far.
    pub fn delivered(&self) -> usize {
        self.delivered
    }

    fn arm_next(&mut self, ctx: &mut Context<'_, M>) {
        if let Some(f) = self.faults.get(self.cursor) {
            if self.horizon.is_some_and(|h| f.outage.fail_at >= h) {
                // The schedule is sorted: everything from here on is late too.
                self.cursor = self.faults.len();
            } else {
                ctx.send_at(ctx.self_id(), f.outage.fail_at, M::wrap(InjectorMsg::Fail));
            }
        }
    }

    fn fail(&mut self, ctx: &mut Context<'_, M>) {
        let idx = self.cursor;
        let f = self.faults[idx];
        self.cursor += 1;
        self.delivered += 1;
        ctx.emit(
            "failure",
            "outage",
            payload(vec![
                ("machine", Json::UInt(f.outage.machine as u64)),
                ("kind", Json::Str(f.kind.name().to_owned())),
                ("downtime_secs", Json::Float(f.outage.duration().as_secs_f64())),
            ]),
        );
        (self.deliver)(ctx, FailureEvent::Fail(f));
        let repair_at = match self.horizon {
            Some(h) => f.outage.repair_at.min(h),
            None => f.outage.repair_at,
        };
        ctx.send_at(ctx.self_id(), repair_at, M::wrap(InjectorMsg::Repair(idx)));
        self.arm_next(ctx);
    }

    fn repair(&mut self, ctx: &mut Context<'_, M>, idx: usize) {
        let f = self.faults[idx];
        ctx.emit(
            "failure",
            "repair",
            payload(vec![
                ("machine", Json::UInt(f.outage.machine as u64)),
                ("kind", Json::Str(f.kind.name().to_owned())),
            ]),
        );
        (self.deliver)(ctx, FailureEvent::Repair(f));
    }
}

impl<M: MessageEnvelope<InjectorMsg>> Actor<M> for FailureInjector<'_, M> {
    fn handle(&mut self, ctx: &mut Context<'_, M>, msg: M) {
        let Some(msg) = msg.unwrap() else { return };
        match msg {
            InjectorMsg::Start => self.arm_next(ctx),
            InjectorMsg::Fail => self.fail(ctx),
            InjectorMsg::Repair(idx) => self.repair(ctx, idx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_simcore::engine::Simulation;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn outage(machine: usize, fail: u64, repair: u64) -> Outage {
        Outage {
            machine,
            fail_at: SimTime::from_secs(fail),
            repair_at: SimTime::from_secs(repair),
        }
    }

    fn run_injector(
        outages: Vec<Outage>,
        horizon: Option<SimTime>,
    ) -> (Vec<(SimTime, FailureEvent)>, usize, usize, usize) {
        let log: Rc<RefCell<Vec<(SimTime, FailureEvent)>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&log);
        let mut inj: FailureInjector<'_, InjectorMsg> =
            FailureInjector::new(outages, move |ctx, ev| {
                sink.borrow_mut().push((ctx.now(), ev));
            });
        if let Some(h) = horizon {
            inj = inj.with_horizon(h);
        }
        let mut sim: Simulation<'_, InjectorMsg> = Simulation::new(0);
        let id = sim.add_actor(&mut inj);
        sim.schedule(SimTime::ZERO, id, InjectorMsg::Start);
        sim.run();
        let fails = sim.trace().count("failure", "outage");
        let repairs = sim.trace().count("failure", "repair");
        drop(sim);
        let events = log.borrow().clone();
        (events, inj.delivered(), fails, repairs)
    }

    #[test]
    fn delivers_fails_and_repairs_in_time_order() {
        let (events, delivered, fails, repairs) =
            run_injector(vec![outage(0, 10, 50), outage(1, 20, 30)], None);
        assert_eq!(delivered, 2);
        assert_eq!((fails, repairs), (2, 2));
        let kinds: Vec<(u64, bool)> = events
            .iter()
            .map(|(t, ev)| (t.as_secs_f64() as u64, matches!(ev, FailureEvent::Fail(_))))
            .collect();
        assert_eq!(kinds, vec![(10, true), (20, true), (30, false), (50, false)]);
    }

    #[test]
    fn burst_at_same_instant_delivers_in_machine_order() {
        let (events, ..) =
            run_injector(vec![outage(7, 10, 40), outage(3, 10, 20), outage(5, 10, 30)], None);
        let fail_machines: Vec<usize> = events
            .iter()
            .filter_map(|(_, ev)| match ev {
                FailureEvent::Fail(f) => Some(f.outage.machine),
                FailureEvent::Repair(_) => None,
            })
            .collect();
        assert_eq!(fail_machines, vec![3, 5, 7]);
    }

    #[test]
    fn horizon_skips_late_outages_and_clamps_repairs() {
        let (events, delivered, ..) = run_injector(
            vec![outage(0, 10, 500), outage(1, 200, 300)],
            Some(SimTime::from_secs(100)),
        );
        assert_eq!(delivered, 1, "outage at 200 s is past the 100 s horizon");
        let repair_times: Vec<u64> = events
            .iter()
            .filter_map(|(t, ev)| match ev {
                FailureEvent::Repair(_) => Some(t.as_secs_f64() as u64),
                FailureEvent::Fail(_) => None,
            })
            .collect();
        assert_eq!(repair_times, vec![100], "repair clamped to the horizon");
    }

    #[test]
    fn mixed_fault_kinds_flow_through_the_cursor() {
        use crate::model::{FaultKind, FaultMix};
        use mcs_simcore::rng::RngStream;

        let outages = (0..40).map(|i| outage(i, 10 + i as u64 * 5, 20 + i as u64 * 5)).collect();
        let mix = FaultMix {
            crash: 0.25,
            slowdown: 0.25,
            gray: 0.25,
            partition: 0.25,
            ..FaultMix::crash_only()
        };
        let faults = mix.assign(outages, &mut RngStream::new(11, "mix"));
        let non_crash = faults.iter().filter(|f| f.kind != FaultKind::Crash).count();
        assert!(non_crash > 0, "an even mix over 40 outages yields non-crash kinds");

        let log: Rc<RefCell<Vec<FailureEvent>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&log);
        let mut inj: FailureInjector<'_, InjectorMsg> =
            FailureInjector::with_faults(faults.clone(), move |_, ev| {
                sink.borrow_mut().push(ev);
            });
        let mut sim: Simulation<'_, InjectorMsg> = Simulation::new(0);
        let id = sim.add_actor(&mut inj);
        sim.schedule(SimTime::ZERO, id, InjectorMsg::Start);
        sim.run();
        drop(sim);
        let delivered_kinds: Vec<&'static str> = log
            .borrow()
            .iter()
            .filter_map(|ev| match ev {
                FailureEvent::Fail(f) => Some(f.kind.name()),
                FailureEvent::Repair(_) => None,
            })
            .collect();
        let scheduled_kinds: Vec<&'static str> = faults.iter().map(|f| f.kind.name()).collect();
        assert_eq!(delivered_kinds, scheduled_kinds, "kinds survive the cursor verbatim");
    }

    /// Satellite property: under an arbitrary schedule and horizon, the
    /// injector never delivers a `Fail` at/after the horizon and every
    /// repair instant is clamped to it.
    #[test]
    fn prop_horizon_bounds_all_deliveries() {
        use mcs_simcore::check::Check;
        use mcs_simcore::prop_assert;

        Check::new("injector_horizon_bounds").cases(64).run(|rng| {
            use mcs_simcore::time::SimDuration;
            let at = |secs: f64| SimTime::ZERO + SimDuration::from_secs_f64(secs);
            let n = 1 + rng.uniform_usize(30);
            let outages: Vec<Outage> = (0..n)
                .map(|i| {
                    let fail = rng.uniform_f64(0.0, 1_000.0);
                    Outage {
                        machine: i % 8,
                        fail_at: at(fail),
                        repair_at: at(fail + rng.uniform_f64(0.1, 400.0)),
                    }
                })
                .collect();
            let horizon = at(rng.uniform_f64(1.0, 1_200.0));
            let (events, ..) = run_injector(outages, Some(horizon));
            for (t, ev) in &events {
                match ev {
                    FailureEvent::Fail(f) => {
                        prop_assert!(
                            *t < horizon && f.outage.fail_at < horizon,
                            "Fail delivered at {t:?} with horizon {horizon:?}"
                        );
                    }
                    FailureEvent::Repair(_) => {
                        prop_assert!(
                            *t <= horizon,
                            "Repair delivered at {t:?} past horizon {horizon:?}"
                        );
                    }
                }
            }
            Ok(())
        });
    }
}
