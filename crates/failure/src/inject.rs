//! Replays an outage schedule into a live discrete-event simulation.
//!
//! The models in [`crate::model`] generate outage *schedules* up front; the
//! [`FailureInjector`] actor turns such a schedule into engine messages, so
//! failures and repairs interleave with scheduler, autoscaler, and platform
//! events in one [`Simulation`](mcs_simcore::engine::Simulation). A
//! caller-provided `deliver` callback fans each event out to the affected
//! subsystems (e.g. a `MachineFail` to the scheduler, a warm-pool kill to
//! the FaaS platform).
//!
//! The injector keeps a cursor into the pre-sorted schedule and arms only
//! the *next* outage, so a year-long schedule costs one pending event, not
//! thousands.

use crate::model::Outage;
use mcs_simcore::codec::Json;
use mcs_simcore::engine::{Actor, Context, MessageEnvelope};
use mcs_simcore::time::SimTime;
use mcs_simcore::trace::payload;

/// The injector's message vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectorMsg {
    /// Kick-off: arm the first outage.
    Start,
    /// The outage under the cursor strikes now.
    Fail,
    /// The outage at this schedule index is repaired now.
    Repair(usize),
}

/// One failure-domain event delivered to the scenario callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureEvent {
    /// The machine of this outage just failed.
    Fail(Outage),
    /// The machine of this outage just came back.
    Repair(Outage),
}

/// Callback receiving each [`FailureEvent`] as it fires.
pub type FailureSink<'a, M> = Box<dyn FnMut(&mut Context<'_, M>, FailureEvent) + 'a>;

/// Replays a sorted outage schedule as engine messages.
pub struct FailureInjector<'a, M> {
    outages: Vec<Outage>,
    cursor: usize,
    horizon: Option<SimTime>,
    delivered: usize,
    deliver: FailureSink<'a, M>,
}

impl<'a, M: MessageEnvelope<InjectorMsg>> FailureInjector<'a, M> {
    /// Builds an injector over `outages` (sorted internally by
    /// `(fail_at, machine)`, the order the models already emit).
    pub fn new(
        mut outages: Vec<Outage>,
        deliver: impl FnMut(&mut Context<'_, M>, FailureEvent) + 'a,
    ) -> Self {
        outages.sort_by_key(|o| (o.fail_at, o.machine));
        FailureInjector {
            outages,
            cursor: 0,
            horizon: None,
            delivered: 0,
            deliver: Box::new(deliver),
        }
    }

    /// Ignores outages failing at or after `horizon` and clamps repair
    /// instants to it.
    #[must_use]
    pub fn with_horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = Some(horizon);
        self
    }

    /// Outage failures delivered so far.
    pub fn delivered(&self) -> usize {
        self.delivered
    }

    fn arm_next(&mut self, ctx: &mut Context<'_, M>) {
        if let Some(o) = self.outages.get(self.cursor) {
            if self.horizon.is_some_and(|h| o.fail_at >= h) {
                // The schedule is sorted: everything from here on is late too.
                self.cursor = self.outages.len();
            } else {
                ctx.send_at(ctx.self_id(), o.fail_at, M::wrap(InjectorMsg::Fail));
            }
        }
    }

    fn fail(&mut self, ctx: &mut Context<'_, M>) {
        let idx = self.cursor;
        let o = self.outages[idx];
        self.cursor += 1;
        self.delivered += 1;
        ctx.emit(
            "failure",
            "outage",
            payload(vec![
                ("machine", Json::UInt(o.machine as u64)),
                ("downtime_secs", Json::Float(o.duration().as_secs_f64())),
            ]),
        );
        (self.deliver)(ctx, FailureEvent::Fail(o));
        let repair_at = match self.horizon {
            Some(h) => o.repair_at.min(h),
            None => o.repair_at,
        };
        ctx.send_at(ctx.self_id(), repair_at, M::wrap(InjectorMsg::Repair(idx)));
        self.arm_next(ctx);
    }

    fn repair(&mut self, ctx: &mut Context<'_, M>, idx: usize) {
        let o = self.outages[idx];
        ctx.emit(
            "failure",
            "repair",
            payload(vec![("machine", Json::UInt(o.machine as u64))]),
        );
        (self.deliver)(ctx, FailureEvent::Repair(o));
    }
}

impl<M: MessageEnvelope<InjectorMsg>> Actor<M> for FailureInjector<'_, M> {
    fn handle(&mut self, ctx: &mut Context<'_, M>, msg: M) {
        let Some(msg) = msg.unwrap() else { return };
        match msg {
            InjectorMsg::Start => self.arm_next(ctx),
            InjectorMsg::Fail => self.fail(ctx),
            InjectorMsg::Repair(idx) => self.repair(ctx, idx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_simcore::engine::Simulation;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn outage(machine: usize, fail: u64, repair: u64) -> Outage {
        Outage {
            machine,
            fail_at: SimTime::from_secs(fail),
            repair_at: SimTime::from_secs(repair),
        }
    }

    fn run_injector(
        outages: Vec<Outage>,
        horizon: Option<SimTime>,
    ) -> (Vec<(SimTime, FailureEvent)>, usize, usize, usize) {
        let log: Rc<RefCell<Vec<(SimTime, FailureEvent)>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&log);
        let mut inj: FailureInjector<'_, InjectorMsg> =
            FailureInjector::new(outages, move |ctx, ev| {
                sink.borrow_mut().push((ctx.now(), ev));
            });
        if let Some(h) = horizon {
            inj = inj.with_horizon(h);
        }
        let mut sim: Simulation<'_, InjectorMsg> = Simulation::new(0);
        let id = sim.add_actor(&mut inj);
        sim.schedule(SimTime::ZERO, id, InjectorMsg::Start);
        sim.run();
        let fails = sim.trace().count("failure", "outage");
        let repairs = sim.trace().count("failure", "repair");
        drop(sim);
        let events = log.borrow().clone();
        (events, inj.delivered(), fails, repairs)
    }

    #[test]
    fn delivers_fails_and_repairs_in_time_order() {
        let (events, delivered, fails, repairs) =
            run_injector(vec![outage(0, 10, 50), outage(1, 20, 30)], None);
        assert_eq!(delivered, 2);
        assert_eq!((fails, repairs), (2, 2));
        let kinds: Vec<(u64, bool)> = events
            .iter()
            .map(|(t, ev)| (t.as_secs_f64() as u64, matches!(ev, FailureEvent::Fail(_))))
            .collect();
        assert_eq!(kinds, vec![(10, true), (20, true), (30, false), (50, false)]);
    }

    #[test]
    fn burst_at_same_instant_delivers_in_machine_order() {
        let (events, ..) =
            run_injector(vec![outage(7, 10, 40), outage(3, 10, 20), outage(5, 10, 30)], None);
        let fail_machines: Vec<usize> = events
            .iter()
            .filter_map(|(_, ev)| match ev {
                FailureEvent::Fail(o) => Some(o.machine),
                FailureEvent::Repair(_) => None,
            })
            .collect();
        assert_eq!(fail_machines, vec![3, 5, 7]);
    }

    #[test]
    fn horizon_skips_late_outages_and_clamps_repairs() {
        let (events, delivered, ..) = run_injector(
            vec![outage(0, 10, 500), outage(1, 200, 300)],
            Some(SimTime::from_secs(100)),
        );
        assert_eq!(delivered, 1, "outage at 200 s is past the 100 s horizon");
        let repair_times: Vec<u64> = events
            .iter()
            .filter_map(|(t, ev)| match ev {
                FailureEvent::Repair(_) => Some(t.as_secs_f64() as u64),
                FailureEvent::Fail(_) => None,
            })
            .collect();
        assert_eq!(repair_times, vec![100], "repair clamped to the horizon");
    }
}
