//! Measurement instruments: online statistics, percentiles, histograms, and
//! time-weighted series.
//!
//! The paper (§3.3, "Quantitative results") calls for statistically sound
//! observation as the entry point of MCS methodology; these are the
//! instruments the rest of the workspace records into.

use crate::error::McsError;
use crate::time::{SimDuration, SimTime};
use crate::trace::TraceBus;

/// Streaming mean/variance/min/max via Welford's algorithm.
///
/// # Examples
/// ```
/// use mcs_simcore::metrics::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0] { s.record(x); }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

crate::impl_json!(struct OnlineStats { count, mean, m2, min, max });

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 { 0.0 } else { self.mean }
    }

    /// Population variance; `0.0` when fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 { 0.0 } else { self.m2 / self.count as f64 }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation (std/mean); `0.0` when the mean is zero.
    pub fn cov(&self) -> f64 {
        if self.mean().abs() < f64::EPSILON { 0.0 } else { self.std_dev() / self.mean().abs() }
    }

    /// Smallest observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        if self.count == 0 { None } else { Some(self.min) }
    }

    /// Largest observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        if self.count == 0 { None } else { Some(self.max) }
    }
}

/// Computes the `q`-quantile (0 ≤ q ≤ 1) of unordered samples by sorting a
/// copy; linear interpolation between order statistics.
///
/// Returns `None` on an empty slice or non-finite `q`.
pub fn quantile(samples: &[f64], q: f64) -> Option<f64> {
    if samples.is_empty() || !q.is_finite() {
        return None;
    }
    let mut v: Vec<f64> = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(v[lo])
    } else {
        let frac = pos - lo as f64;
        Some(v[lo] * (1.0 - frac) + v[hi] * frac)
    }
}

/// A bounded-memory streaming quantile estimator (t-digest style).
///
/// Observations are buffered and periodically compacted into at most
/// `max_centroids` weighted centroids, kept sorted by mean. Compaction walks
/// the sorted points left to right and greedily merges neighbours while the
/// combined weight stays under `ceil(2n / max_centroids)`, so no centroid
/// ever covers more than that many ranks — which bounds the rank error of
/// [`QuantileSketch::quantile`] by roughly `2n / max_centroids` (a ~1.6%
/// rank error at the default 128 centroids), regardless of how many
/// observations stream through.
///
/// Sketches built over partitions of a sample set [`merge`] into a sketch
/// over the union: counts, min, and max merge exactly, quantiles stay within
/// the rank-error bound whatever the merge order. Merging in a fixed order
/// (as `mcs-simcore::par` does, by input index) is bit-deterministic.
///
/// With fewer than `max_centroids` observations nothing has been compacted
/// and quantiles are exact (they match [`quantile`] on the raw samples).
///
/// [`merge`]: QuantileSketch::merge
///
/// # Examples
/// ```
/// use mcs_simcore::metrics::QuantileSketch;
/// let mut s = QuantileSketch::new(64);
/// for i in 1..=1000 { s.record(i as f64); }
/// let p50 = s.quantile(0.5).unwrap();
/// assert!((p50 - 500.5).abs() < 32.0); // within the rank-error bound
/// assert_eq!(s.quantile(0.0), Some(1.0));
/// assert_eq!(s.quantile(1.0), Some(1000.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    max_centroids: usize,
    /// `(mean, weight)` pairs, sorted by mean.
    centroids: Vec<(f64, u64)>,
    /// Raw observations not yet compacted (at most `max_centroids` of them).
    buffer: Vec<f64>,
    count: u64,
    min: f64,
    max: f64,
}

crate::impl_json!(struct QuantileSketch { max_centroids, centroids, buffer, count, min, max });

impl QuantileSketch {
    /// The centroid budget used when callers do not pick one.
    pub const DEFAULT_CENTROIDS: usize = 128;

    /// An empty sketch holding at most `max_centroids` centroids
    /// (clamped to a minimum of 8 so the error bound stays meaningful).
    pub fn new(max_centroids: usize) -> Self {
        QuantileSketch {
            max_centroids: max_centroids.max(8),
            centroids: Vec::new(),
            buffer: Vec::new(),
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation; non-finite values are ignored.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.buffer.push(x);
        if self.buffer.len() >= self.max_centroids {
            self.compress();
        }
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        if self.count == 0 { None } else { Some(self.min) }
    }

    /// Largest observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        if self.count == 0 { None } else { Some(self.max) }
    }

    /// Number of `(mean, weight)` points currently retained (centroids plus
    /// buffered raw observations) — the sketch's memory footprint, bounded
    /// by ~`2 × max_centroids` regardless of `count`.
    pub fn retained_points(&self) -> usize {
        self.centroids.len() + self.buffer.len()
    }

    /// Folds another sketch into this one. The merged sketch summarizes the
    /// union of both sample sets; count/min/max are exact, quantiles keep
    /// the rank-error bound of the larger centroid budget in use.
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        let merged = merge_sorted(
            &sorted_points(&self.centroids, &self.buffer),
            &sorted_points(&other.centroids, &other.buffer),
        );
        self.centroids = compact(merged, self.count, self.max_centroids);
        self.buffer.clear();
    }

    /// Folds the buffer into the centroid set.
    fn compress(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let points = sorted_points(&self.centroids, &self.buffer);
        self.centroids = compact(points, self.count, self.max_centroids);
        self.buffer.clear();
    }

    /// The estimated `q`-quantile (0 ≤ q ≤ 1); `None` when empty or `q` is
    /// non-finite. Exact while fewer than `max_centroids` observations have
    /// been recorded; within the rank-error bound afterwards.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !q.is_finite() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Place each centroid's mean at the midpoint of the rank range it
        // covers, anchored by the exact min at rank 0 and max at rank n-1,
        // then interpolate linearly between neighbouring anchors. With unit
        // weights this reproduces the exact interpolated quantile.
        let mut anchors: Vec<(f64, f64)> = Vec::with_capacity(self.centroids.len() + 2);
        anchors.push((0.0, self.min));
        let mut cum = 0u64;
        for (mean, w) in sorted_points(&self.centroids, &self.buffer) {
            let mid = cum as f64 + (w - 1) as f64 / 2.0;
            if mid > anchors.last().unwrap().0 {
                anchors.push((mid, mean));
            }
            cum += w;
        }
        let last_rank = (self.count - 1) as f64;
        if last_rank > anchors.last().unwrap().0 {
            anchors.push((last_rank, self.max));
        }
        let target = q * last_rank;
        let mut prev = anchors[0];
        for &(rank, value) in &anchors {
            if target <= rank {
                if rank <= prev.0 {
                    return Some(value);
                }
                let frac = (target - prev.0) / (rank - prev.0);
                return Some(prev.1 + frac * (value - prev.1));
            }
            prev = (rank, value);
        }
        Some(self.max)
    }
}

/// All points of a sketch — centroids plus buffered singletons — as one
/// weight-ordered-by-mean list.
fn sorted_points(centroids: &[(f64, u64)], buffer: &[f64]) -> Vec<(f64, u64)> {
    let mut singles: Vec<(f64, u64)> = buffer.iter().map(|&x| (x, 1)).collect();
    singles.sort_by(|a, b| a.0.total_cmp(&b.0));
    merge_sorted(centroids, &singles)
}

/// Merges two mean-sorted point lists into one.
fn merge_sorted(a: &[(f64, u64)], b: &[(f64, u64)]) -> Vec<(f64, u64)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i].0 <= b[j].0 {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Greedy left-to-right compaction under a per-centroid weight cap of
/// `ceil(2·count / max_centroids)`. Any two adjacent output centroids exceed
/// the cap together, so at most `max_centroids + 1` centroids survive.
fn compact(points: Vec<(f64, u64)>, count: u64, max_centroids: usize) -> Vec<(f64, u64)> {
    let cap = (2 * count).div_ceil(max_centroids as u64).max(1);
    let mut out: Vec<(f64, u64)> = Vec::with_capacity(max_centroids + 1);
    for (mean, w) in points {
        if let Some(last) = out.last_mut() {
            if last.1 + w <= cap {
                let total = last.1 + w;
                last.0 = (last.0 * last.1 as f64 + mean * w as f64) / total as f64;
                last.1 = total;
                continue;
            }
        }
        out.push((mean, w));
    }
    out
}

/// A complete distribution summary of a sample set, as reported in the
/// experiment tables (mean, p50, p95, p99, max, …).
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Standard deviation (population).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

crate::impl_json!(struct Summary { count, mean, std_dev, min, p50, p95, p99, max });

impl Summary {
    /// Summarizes a sample set; `None` when empty.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let mut stats = OnlineStats::new();
        for &x in samples {
            stats.record(x);
        }
        Some(Summary {
            count: stats.count(),
            mean: stats.mean(),
            std_dev: stats.std_dev(),
            min: stats.min().unwrap(),
            p50: quantile(samples, 0.50).unwrap(),
            p95: quantile(samples, 0.95).unwrap(),
            p99: quantile(samples, 0.99).unwrap(),
            max: stats.max().unwrap(),
        })
    }
}

/// Fixed-width histogram over `[lo, hi)` with overflow/underflow buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

crate::impl_json!(struct Histogram { lo, hi, buckets, underflow, overflow });

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `buckets` equal-width bins.
    ///
    /// # Panics
    /// Panics if `hi <= lo` or `buckets == 0`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        Histogram::try_new(lo, hi, buckets).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: rejects an empty range or zero buckets with
    /// [`McsError::Config`] instead of panicking.
    ///
    /// # Errors
    /// Returns [`McsError::Config`] when `hi <= lo` or `buckets == 0`.
    pub fn try_new(lo: f64, hi: f64, buckets: usize) -> Result<Self, McsError> {
        if hi <= lo {
            return Err(McsError::Config("histogram range must be non-empty".into()));
        }
        if buckets == 0 {
            return Err(McsError::Config("histogram needs at least one bucket".into()));
        }
        Ok(Histogram { lo, hi, buckets: vec![0; buckets], underflow: 0, overflow: 0 })
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Per-bucket counts, in range order.
    pub fn counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range end.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations, including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.underflow + self.overflow
    }
}

/// A step function of virtual time: tracks a level (e.g. queue length, busy
/// machines) and integrates it for time-weighted averages and peak analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeWeighted {
    last_at: SimTime,
    level: f64,
    weighted_sum: f64,
    observed: SimDuration,
    peak: f64,
    samples: Vec<(SimTime, f64)>,
    keep_samples: bool,
}

crate::impl_json!(struct TimeWeighted {
    last_at, level, weighted_sum, observed, peak, samples, keep_samples,
});

impl TimeWeighted {
    /// Starts tracking at `t0` with the given initial level.
    pub fn new(t0: SimTime, initial: f64) -> Self {
        TimeWeighted {
            last_at: t0,
            level: initial,
            weighted_sum: 0.0,
            observed: SimDuration::ZERO,
            peak: initial,
            samples: Vec::new(),
            keep_samples: false,
        }
    }

    /// Also retains every `(time, level)` step for later plotting.
    pub fn with_samples(mut self) -> Self {
        self.keep_samples = true;
        self.samples.push((self.last_at, self.level));
        self
    }

    /// Sets a new level at instant `at`.
    ///
    /// # Panics
    /// Panics if `at` precedes the previous update.
    pub fn set(&mut self, at: SimTime, level: f64) {
        assert!(at >= self.last_at, "time-weighted updates must be monotone");
        let span = at - self.last_at;
        self.weighted_sum += self.level * span.as_secs_f64();
        self.observed += span;
        self.last_at = at;
        self.level = level;
        self.peak = self.peak.max(level);
        if self.keep_samples {
            self.samples.push((at, level));
        }
    }

    /// Adjusts the level by `delta` at instant `at`.
    pub fn add(&mut self, at: SimTime, delta: f64) {
        let next = self.level + delta;
        self.set(at, next);
    }

    /// The current level.
    pub fn level(&self) -> f64 {
        self.level
    }

    /// The largest level seen.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Time-weighted average level up to instant `at`.
    pub fn average_until(&self, at: SimTime) -> f64 {
        let tail = at.saturating_since(self.last_at).as_secs_f64();
        let total = self.observed.as_secs_f64() + tail;
        if total <= 0.0 {
            self.level
        } else {
            (self.weighted_sum + self.level * tail) / total
        }
    }

    /// The retained step samples (empty unless built [`with_samples`]).
    ///
    /// [`with_samples`]: TimeWeighted::with_samples
    pub fn samples(&self) -> &[(SimTime, f64)] {
        &self.samples
    }
}

/// Distribution summary of a numeric payload field across the matching
/// records of a [`TraceBus`]; `None` when no matching record carries the
/// field.
///
/// This is the standard path from raw trace to report row: actors emit,
/// the harness summarizes.
pub fn summarize_trace(
    bus: &TraceBus,
    component: &str,
    event: &str,
    field: &str,
) -> Option<Summary> {
    let xs: Vec<f64> = bus.series(component, event, field).into_iter().map(|(_, x)| x).collect();
    Summary::of(&xs)
}

/// Reconstructs a gauge tracked by matching trace records as a
/// [`TimeWeighted`] step function starting at `initial` from `SimTime::ZERO`.
///
/// Each matching record's `field` value becomes the new level at its
/// instant; records without the field are skipped.
pub fn trace_gauge(
    bus: &TraceBus,
    component: &str,
    event: &str,
    field: &str,
    initial: f64,
) -> TimeWeighted {
    let mut tw = TimeWeighted::new(SimTime::ZERO, initial);
    for (at, level) in bus.series(component, event, field) {
        tw.set(at, level);
    }
    tw
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_hand_example() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.record(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn sketch_is_exact_below_the_centroid_budget() {
        let xs = [5.0, 1.0, 4.0, 2.0, 3.0];
        let mut s = QuantileSketch::new(64);
        for &x in &xs {
            s.record(x);
        }
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            assert_eq!(s.quantile(q), quantile(&xs, q), "q={q}");
        }
        assert_eq!(s.count(), 5);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(5.0));
    }

    #[test]
    fn sketch_empty_and_non_finite() {
        let mut s = QuantileSketch::new(16);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.min(), None);
        s.record(f64::NAN);
        s.record(f64::INFINITY);
        assert_eq!(s.count(), 0);
        s.record(2.0);
        assert_eq!(s.quantile(f64::NAN), None);
        assert_eq!(s.quantile(0.5), Some(2.0));
    }

    #[test]
    fn sketch_rank_error_is_bounded_at_scale() {
        // 100k uniform ranks through a 128-centroid sketch: every estimated
        // quantile must land within the documented ~2n/C rank error.
        let n = 100_000u64;
        let c = 128usize;
        let mut s = QuantileSketch::new(c);
        for i in 0..n {
            s.record(i as f64);
        }
        assert!(s.centroids.len() <= c + 1);
        assert!(s.buffer.len() < c);
        let tolerance = 2.0 * (2.0 * n as f64 / c as f64);
        for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999] {
            let est = s.quantile(q).unwrap();
            let exact = q * (n - 1) as f64;
            assert!(
                (est - exact).abs() <= tolerance,
                "q={q}: est {est}, exact {exact}, tolerance {tolerance}"
            );
        }
        assert_eq!(s.quantile(0.0), Some(0.0));
        assert_eq!(s.quantile(1.0), Some((n - 1) as f64));
    }

    #[test]
    fn sketch_merge_matches_single_stream_bounds() {
        let n = 20_000u64;
        let mut whole = QuantileSketch::new(96);
        let mut left = QuantileSketch::new(96);
        let mut right = QuantileSketch::new(96);
        for i in 0..n {
            let x = (i as f64).sin() * 1000.0;
            whole.record(x);
            if i % 2 == 0 {
                left.record(x);
            } else {
                right.record(x);
            }
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
        let tol = 2000.0 * (4.0 / 96.0) * 2.0; // value-range × rank-error share
        for q in [0.1, 0.5, 0.9] {
            let a = left.quantile(q).unwrap();
            let b = whole.quantile(q).unwrap();
            assert!((a - b).abs() <= tol, "q={q}: merged {a} vs single {b}");
        }
        // Merging an empty sketch is a no-op.
        let before = whole.clone();
        whole.merge(&QuantileSketch::new(96));
        assert_eq!(whole, before);
    }

    #[test]
    fn sketch_json_round_trips() {
        use crate::codec::{from_str, to_string};
        let mut s = QuantileSketch::new(32);
        for i in 0..100 {
            s.record(f64::from(i) * 0.5);
        }
        let back: QuantileSketch = from_str(&to_string(&s)).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn quantiles_hand_example() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 0.5), Some(3.0));
        assert_eq!(quantile(&v, 1.0), Some(5.0));
        assert_eq!(quantile(&v, 0.25), Some(2.0));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn summary_consistency() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::of(&v).unwrap();
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.p50 - 50.5).abs() < 1e-9);
        assert!(s.p95 > s.p50 && s.p99 > s.p95);
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn histogram_bucketing() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [-1.0, 0.0, 0.5, 5.0, 9.99, 10.0, 42.0] {
            h.record(x);
        }
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.counts()[0], 2); // 0.0 and 0.5
        assert_eq!(h.counts()[5], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.total(), 7);
    }

    #[test]
    #[should_panic(expected = "histogram range must be non-empty")]
    fn histogram_rejects_empty_range() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }

    #[test]
    fn histogram_try_new_reports_config_errors() {
        assert!(matches!(Histogram::try_new(1.0, 1.0, 4), Err(McsError::Config(_))));
        assert!(matches!(Histogram::try_new(0.0, 1.0, 0), Err(McsError::Config(_))));
        assert!(Histogram::try_new(0.0, 1.0, 4).is_ok());
    }

    #[test]
    fn metrics_json_round_trips() {
        use crate::codec::{from_str, to_string};
        let mut s = OnlineStats::new();
        for x in [1.0, 2.0, 4.0] {
            s.record(x);
        }
        let back: OnlineStats = from_str(&to_string(&s)).unwrap();
        assert_eq!(back, s);

        let summary = Summary::of(&[1.0, 2.0, 3.0]).unwrap();
        let back: Summary = from_str(&to_string(&summary)).unwrap();
        assert_eq!(back, summary);

        let mut h = Histogram::new(0.0, 10.0, 4);
        h.record(3.0);
        h.record(42.0);
        let back: Histogram = from_str(&to_string(&h)).unwrap();
        assert_eq!(back, h);

        let mut tw = TimeWeighted::new(SimTime::ZERO, 1.0).with_samples();
        tw.set(SimTime::from_secs(2), 3.0);
        let back: TimeWeighted = from_str(&to_string(&tw)).unwrap();
        assert_eq!(back, tw);
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.set(SimTime::from_secs(10), 4.0); // level 0 for 10 s
        tw.set(SimTime::from_secs(20), 2.0); // level 4 for 10 s
        // level 2 for 20 more seconds:
        let avg = tw.average_until(SimTime::from_secs(40));
        // (0*10 + 4*10 + 2*20) / 40 = 2.0
        assert!((avg - 2.0).abs() < 1e-12);
        assert_eq!(tw.peak(), 4.0);
        assert_eq!(tw.level(), 2.0);
    }

    #[test]
    fn time_weighted_add_and_samples() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 1.0).with_samples();
        tw.add(SimTime::from_secs(1), 2.0);
        tw.add(SimTime::from_secs(2), -3.0);
        assert_eq!(tw.level(), 0.0);
        assert_eq!(tw.samples().len(), 3);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn time_weighted_rejects_backwards_time() {
        let mut tw = TimeWeighted::new(SimTime::from_secs(5), 0.0);
        tw.set(SimTime::from_secs(1), 1.0);
    }

    #[test]
    fn trace_aggregation_matches_hand_computation() {
        use crate::codec::Json;
        use crate::trace::payload;
        let mut bus = TraceBus::new();
        bus.record(
            SimTime::from_secs(1),
            "svc",
            "latency",
            payload(vec![("secs", Json::Float(1.0))]),
        );
        bus.record(
            SimTime::from_secs(2),
            "svc",
            "latency",
            payload(vec![("secs", Json::Float(3.0))]),
        );
        bus.record(SimTime::from_secs(3), "svc", "other", payload(vec![]));

        let s = summarize_trace(&bus, "svc", "latency", "secs").unwrap();
        assert_eq!(s.count, 2);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!(summarize_trace(&bus, "svc", "other", "secs").is_none());

        bus.record(
            SimTime::from_secs(10),
            "svc",
            "level",
            payload(vec![("n", Json::Float(4.0))]),
        );
        let tw = trace_gauge(&bus, "svc", "level", "n", 0.0);
        // Level 0 for 10 s, then 4 for 10 s: average 2.
        assert!((tw.average_until(SimTime::from_secs(20)) - 2.0).abs() < 1e-12);
        assert_eq!(tw.peak(), 4.0);
    }
}
