//! A seeded property-testing mini-harness, the in-house `proptest`
//! replacement.
//!
//! A property is a closure from a deterministic [`RngStream`] to
//! `Result<(), String>`; the harness runs it over many derived cases and, on
//! the first failure, panics with the case number and the exact seed needed
//! to replay it. Inputs are drawn with the `RngStream` helpers
//! (`uniform_usize`, `uniform_f64`, …), so every run is reproducible from
//! one experiment seed — no shrinking is needed to re-examine a failure,
//! just the printed replay seed.
//!
//! # Examples
//! ```
//! use mcs_simcore::check::Check;
//! use mcs_simcore::prop_assert;
//!
//! Check::new("addition_commutes").cases(64).run(|rng| {
//!     let a = rng.uniform_f64(-1e6, 1e6);
//!     let b = rng.uniform_f64(-1e6, 1e6);
//!     prop_assert!((a + b - (b + a)).abs() < 1e-12, "{a} + {b}");
//!     Ok(())
//! });
//! ```

use crate::rng::RngStream;

/// Default number of cases per property.
const DEFAULT_CASES: usize = 128;

/// Default harness seed; override per property with [`Check::seed`] or
/// globally with the `MCS_CHECK_SEED` environment variable.
const DEFAULT_SEED: u64 = 0x4D43_5343_4845_434B; // "MCSCHECK"

/// A configured property run.
#[derive(Debug, Clone)]
pub struct Check {
    name: &'static str,
    cases: usize,
    seed: u64,
}

impl Check {
    /// A property named `name` with default case count and seed.
    pub fn new(name: &'static str) -> Self {
        let seed = std::env::var("MCS_CHECK_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_SEED);
        Check { name, cases: DEFAULT_CASES, seed }
    }

    /// Sets the number of cases to run.
    pub fn cases(mut self, cases: usize) -> Self {
        self.cases = cases.max(1);
        self
    }

    /// Pins the harness seed (overrides `MCS_CHECK_SEED`).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs the property over every case.
    ///
    /// # Panics
    /// Panics on the first failing case, printing the property name, the
    /// case index, and the replay seed.
    pub fn run(self, property: impl Fn(&mut RngStream) -> Result<(), String>) {
        for case in 0..self.cases {
            let case_seed = self.seed.wrapping_add(case as u64);
            let mut rng = RngStream::new(case_seed, self.name);
            if let Err(message) = property(&mut rng) {
                panic!(
                    "property `{}` failed at case {}/{}: {}\n\
                     replay with: Check::new(\"{}\").cases(1).seed({})",
                    self.name, case, self.cases, message, self.name, case_seed,
                );
            }
        }
    }
}

/// Fails the enclosing property when the condition does not hold.
///
/// Expands to an early `return Err(..)`, so it may only be used inside a
/// closure passed to [`Check::run`] (or any function returning
/// `Result<(), String>`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($arg:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} — {} ({}:{})",
                stringify!($cond),
                format!($($arg)+),
                file!(),
                line!()
            ));
        }
    };
}

/// Fails the enclosing property when the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err(format!(
                "assertion failed: {} == {} — left {:?}, right {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let counter = std::cell::Cell::new(0usize);
        Check::new("count").cases(17).run(|_| {
            counter.set(counter.get() + 1);
            Ok(())
        });
        assert_eq!(counter.get(), 17);
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed at case 0")]
    fn failing_property_panics_with_context() {
        Check::new("always_fails").cases(4).run(|_| Err("boom".into()));
    }

    #[test]
    fn cases_are_deterministic_per_seed() {
        let collect = |seed: u64| {
            let out = std::cell::RefCell::new(Vec::new());
            Check::new("det").cases(8).seed(seed).run(|rng| {
                out.borrow_mut().push(rng.next_u64());
                Ok(())
            });
            out.into_inner()
        };
        assert_eq!(collect(1), collect(1));
        assert_ne!(collect(1), collect(2));
    }

    #[test]
    fn prop_assert_macros_format_messages() {
        fn inner() -> Result<(), String> {
            prop_assert!(1 + 1 == 2);
            prop_assert_eq!(2 + 2, 4);
            prop_assert!(false, "value was {}", 42);
            Ok(())
        }
        let msg = inner().unwrap_err();
        assert!(msg.contains("value was 42"), "{msg}");
    }
}
