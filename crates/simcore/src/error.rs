//! The workspace-wide error type.
//!
//! Every fallible public entry point across the MCS crates — codec decoding,
//! trace parsing, simulation setup — returns [`McsError`] so callers handle
//! one error vocabulary instead of a per-crate zoo.

use crate::time::SimTime;
use core::fmt;

/// The unified error type of the MCS workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum McsError {
    /// JSON text failed to parse; `offset` is the byte position of the
    /// problem in the input.
    Json {
        /// Byte offset of the malformed input.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// A parsed JSON value did not have the shape a decoder expected.
    Decode {
        /// The shape the decoder wanted (e.g. `"u64"`, `"field `cpus`"`).
        expected: String,
        /// A short rendering of what was actually found.
        found: String,
    },
    /// A line of a trace file failed to parse.
    Trace {
        /// 1-based line number within the trace.
        line: usize,
        /// What went wrong on that line.
        message: String,
    },
    /// A configuration value was rejected during setup.
    Config(String),
    /// A specific scenario-configuration field failed validation before any
    /// simulation state was built (zero populations, non-finite rates, ...).
    InvalidConfig {
        /// Dotted path of the offending field (e.g. `"faas.arrival_rate"`).
        field: String,
        /// Why the value was rejected.
        message: String,
    },
    /// A simulation setup or scheduling request was invalid.
    Sim(String),
    /// An event was scheduled before the simulation's current instant.
    SchedulePast {
        /// The requested (past) delivery instant.
        at: SimTime,
        /// The simulation clock when the request was made.
        now: SimTime,
    },
    /// A message was addressed to an actor id that was never registered.
    UnknownActor {
        /// The offending actor id.
        actor: usize,
        /// How many actors the simulation actually has.
        registered: usize,
    },
}

impl McsError {
    /// Convenience constructor for decode-shape errors.
    pub fn decode(expected: impl Into<String>, found: impl Into<String>) -> McsError {
        McsError::Decode { expected: expected.into(), found: found.into() }
    }

    /// Convenience constructor for per-field validation errors.
    pub fn invalid_config(field: impl Into<String>, message: impl Into<String>) -> McsError {
        McsError::InvalidConfig { field: field.into(), message: message.into() }
    }
}

impl fmt::Display for McsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McsError::Json { offset, message } => {
                write!(f, "malformed JSON at byte {offset}: {message}")
            }
            McsError::Decode { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            McsError::Trace { line, message } => {
                write!(f, "trace line {line}: {message}")
            }
            McsError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            McsError::InvalidConfig { field, message } => {
                write!(f, "invalid configuration: {field}: {message}")
            }
            McsError::Sim(msg) => write!(f, "simulation error: {msg}"),
            McsError::SchedulePast { at, now } => write!(
                f,
                "cannot schedule into the past: requested t={}ns but now is t={}ns",
                at.as_nanos(),
                now.as_nanos()
            ),
            McsError::UnknownActor { actor, registered } => write!(
                f,
                "unknown actor id {actor} (simulation has {registered} registered actors)"
            ),
        }
    }
}

impl std::error::Error for McsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_payload() {
        let e = McsError::Json { offset: 12, message: "unexpected `}`".into() };
        assert!(e.to_string().contains("byte 12"));
        let e = McsError::decode("u64", "string \"x\"");
        assert!(e.to_string().contains("expected u64"));
        let e = McsError::Trace { line: 3, message: "bad record".into() };
        assert!(e.to_string().contains("line 3"));
        let e = McsError::SchedulePast {
            at: SimTime::from_nanos(5),
            now: SimTime::from_nanos(9),
        };
        assert!(e.to_string().contains("t=5ns"));
        assert!(e.to_string().contains("t=9ns"));
        let e = McsError::UnknownActor { actor: 7, registered: 2 };
        assert!(e.to_string().contains("actor id 7"));
        assert!(e.to_string().contains("2 registered"));
        let e = McsError::invalid_config("faas.arrival_rate", "must be finite");
        assert!(e.to_string().contains("faas.arrival_rate"));
        assert!(e.to_string().contains("must be finite"));
    }
}
