//! Statistical distributions for workload, failure, and behaviour modelling.
//!
//! The grid/cloud workload-modelling literature the paper builds on (Iosup et
//! al., "Grid Computing Workloads"; Li, "Realistic Workload Modeling") fits
//! inter-arrival times, service demands, and failure processes with the
//! distribution families implemented here. All samplers draw from an
//! [`crate::rng::RngStream`] so experiments stay deterministic.

use crate::rng::RngStream;

/// A univariate distribution over `f64` that can be sampled deterministically.
pub trait Sample {
    /// Draws one value.
    fn sample(&self, rng: &mut RngStream) -> f64;

    /// The theoretical mean, when it exists and is finite.
    fn mean(&self) -> Option<f64>;
}

/// A serializable, closed vocabulary of distributions used across MCS crates.
///
/// # Examples
/// ```
/// use mcs_simcore::dist::{Dist, Sample};
/// use mcs_simcore::rng::RngStream;
/// let d = Dist::Exponential { rate: 2.0 };
/// let mut rng = RngStream::new(1, "doc");
/// let x = d.sample(&mut rng);
/// assert!(x >= 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Dist {
    /// Always returns `value`.
    Constant { value: f64 },
    /// Uniform on `[lo, hi)`.
    Uniform { lo: f64, hi: f64 },
    /// Exponential with rate `rate` (mean `1/rate`).
    Exponential { rate: f64 },
    /// Normal with the given mean and standard deviation.
    Normal { mean: f64, std_dev: f64 },
    /// Log-normal: `exp(N(mu, sigma))`.
    LogNormal { mu: f64, sigma: f64 },
    /// Weibull with shape `k` and scale `lambda`.
    Weibull { shape: f64, scale: f64 },
    /// Pareto (type I) with scale `x_min > 0` and tail index `alpha`.
    Pareto { x_min: f64, alpha: f64 },
    /// Gamma with shape `k > 0` and scale `theta > 0`.
    Gamma { shape: f64, scale: f64 },
    /// Zipf over ranks `1..=n` with exponent `s`; returns the rank as `f64`.
    Zipf { n: u64, s: f64 },
    /// Discrete uniform over `{0, 1, …, n-1}` returned as `f64`.
    DiscreteUniform { n: u64 },
    /// Two-phase hyper-exponential: with probability `p` rate `rate1`,
    /// otherwise `rate2`. Captures the high-variance service times of grid
    /// workloads better than a single exponential.
    HyperExponential { p: f64, rate1: f64, rate2: f64 },
}

crate::impl_json!(enum Dist {
    Constant { value },
    Uniform { lo, hi },
    Exponential { rate },
    Normal { mean, std_dev },
    LogNormal { mu, sigma },
    Weibull { shape, scale },
    Pareto { x_min, alpha },
    Gamma { shape, scale },
    Zipf { n, s },
    DiscreteUniform { n },
    HyperExponential { p, rate1, rate2 },
});

impl Dist {
    /// A constant distribution, the degenerate case used for planned demand.
    pub fn constant(value: f64) -> Dist {
        Dist::Constant { value }
    }

    /// Exponential with the given mean.
    pub fn exponential_mean(mean: f64) -> Dist {
        assert!(mean > 0.0, "exponential mean must be positive");
        Dist::Exponential { rate: 1.0 / mean }
    }
}

/// Standard-normal draw via Box–Muller (one value; the sibling is discarded
/// to keep the stream layout simple and deterministic).
fn std_normal(rng: &mut RngStream) -> f64 {
    // Avoid ln(0).
    let u1 = (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE);
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Gamma(shape, 1) via Marsaglia–Tsang, with the boost trick for shape < 1.
fn std_gamma(rng: &mut RngStream, shape: f64) -> f64 {
    if shape < 1.0 {
        // Gamma(a) = Gamma(a+1) * U^{1/a}
        let u = rng.next_f64().max(f64::MIN_POSITIVE);
        return std_gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = std_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u = rng.next_f64().max(f64::MIN_POSITIVE);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Zipf rank sampler by inverse CDF over precomputable weights. For the small
/// `n` values used in simulations a linear scan is fast and exact.
fn zipf_rank(rng: &mut RngStream, n: u64, s: f64) -> u64 {
    debug_assert!(n >= 1);
    let h: f64 = (1..=n).map(|k| (k as f64).powf(-s)).sum();
    let mut target = rng.next_f64() * h;
    for k in 1..=n {
        target -= (k as f64).powf(-s);
        if target <= 0.0 {
            return k;
        }
    }
    n
}

impl Sample for Dist {
    fn sample(&self, rng: &mut RngStream) -> f64 {
        match *self {
            Dist::Constant { value } => value,
            Dist::Uniform { lo, hi } => rng.uniform_f64(lo, hi),
            Dist::Exponential { rate } => {
                let u = (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE);
                -u.ln() / rate
            }
            Dist::Normal { mean, std_dev } => mean + std_dev * std_normal(rng),
            Dist::LogNormal { mu, sigma } => (mu + sigma * std_normal(rng)).exp(),
            Dist::Weibull { shape, scale } => {
                let u = (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE);
                scale * (-u.ln()).powf(1.0 / shape)
            }
            Dist::Pareto { x_min, alpha } => {
                let u = (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE);
                x_min / u.powf(1.0 / alpha)
            }
            Dist::Gamma { shape, scale } => std_gamma(rng, shape) * scale,
            Dist::Zipf { n, s } => zipf_rank(rng, n.max(1), s) as f64,
            Dist::DiscreteUniform { n } => rng.uniform_usize(n.max(1) as usize) as f64,
            Dist::HyperExponential { p, rate1, rate2 } => {
                let rate = if rng.bernoulli(p) { rate1 } else { rate2 };
                let u = (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE);
                -u.ln() / rate
            }
        }
    }

    fn mean(&self) -> Option<f64> {
        match *self {
            Dist::Constant { value } => Some(value),
            Dist::Uniform { lo, hi } => Some(0.5 * (lo + hi)),
            Dist::Exponential { rate } => Some(1.0 / rate),
            Dist::Normal { mean, .. } => Some(mean),
            Dist::LogNormal { mu, sigma } => Some((mu + 0.5 * sigma * sigma).exp()),
            Dist::Weibull { shape, scale } => Some(scale * gamma_fn(1.0 + 1.0 / shape)),
            Dist::Pareto { x_min, alpha } => {
                if alpha > 1.0 {
                    Some(alpha * x_min / (alpha - 1.0))
                } else {
                    None
                }
            }
            Dist::Gamma { shape, scale } => Some(shape * scale),
            Dist::Zipf { n, s } => {
                let h: f64 = (1..=n).map(|k| (k as f64).powf(-s)).sum();
                let num: f64 = (1..=n).map(|k| (k as f64).powf(1.0 - s)).sum();
                Some(num / h)
            }
            Dist::DiscreteUniform { n } => Some((n.saturating_sub(1)) as f64 / 2.0),
            Dist::HyperExponential { p, rate1, rate2 } => {
                Some(p / rate1 + (1.0 - p) / rate2)
            }
        }
    }
}

/// Lanczos approximation of the gamma function, used for Weibull moments.
fn gamma_fn(x: f64) -> f64 {
    // g = 7, n = 9 coefficients (Numerical Recipes / Boost-style constants).
    const G: f64 = 7.0;
    const C: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma_fn(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = C[0];
        let t = x + G + 0.5;
        for (i, c) in C.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical_mean(d: &Dist, n: usize, seed: u64) -> f64 {
        let mut rng = RngStream::new(seed, "dist-test");
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn gamma_fn_known_values() {
        assert!((gamma_fn(1.0) - 1.0).abs() < 1e-9);
        assert!((gamma_fn(2.0) - 1.0).abs() < 1e-9);
        assert!((gamma_fn(3.0) - 2.0).abs() < 1e-9);
        assert!((gamma_fn(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn constant_is_constant() {
        let d = Dist::constant(4.2);
        let mut rng = RngStream::new(1, "c");
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 4.2);
        }
        assert_eq!(d.mean(), Some(4.2));
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Dist::exponential_mean(3.0);
        let m = empirical_mean(&d, 200_000, 2);
        assert!((m - 3.0).abs() < 0.05, "mean = {m}");
    }

    #[test]
    fn normal_mean_matches() {
        let d = Dist::Normal { mean: 10.0, std_dev: 2.0 };
        let m = empirical_mean(&d, 200_000, 3);
        assert!((m - 10.0).abs() < 0.05, "mean = {m}");
    }

    #[test]
    fn lognormal_mean_matches_theory() {
        let d = Dist::LogNormal { mu: 0.5, sigma: 0.4 };
        let theory = d.mean().unwrap();
        let m = empirical_mean(&d, 300_000, 4);
        assert!((m - theory).abs() / theory < 0.02, "mean = {m}, theory = {theory}");
    }

    #[test]
    fn weibull_mean_matches_theory() {
        let d = Dist::Weibull { shape: 1.5, scale: 2.0 };
        let theory = d.mean().unwrap();
        let m = empirical_mean(&d, 300_000, 5);
        assert!((m - theory).abs() / theory < 0.02, "mean = {m}, theory = {theory}");
    }

    #[test]
    fn pareto_bounded_below_and_mean() {
        let d = Dist::Pareto { x_min: 1.0, alpha: 3.0 };
        let mut rng = RngStream::new(6, "p");
        for _ in 0..1_000 {
            assert!(d.sample(&mut rng) >= 1.0);
        }
        let theory = d.mean().unwrap();
        assert!((theory - 1.5).abs() < 1e-12);
        let heavy = Dist::Pareto { x_min: 1.0, alpha: 0.9 };
        assert!(heavy.mean().is_none());
    }

    #[test]
    fn gamma_mean_matches_theory() {
        for shape in [0.5, 1.0, 2.5] {
            let d = Dist::Gamma { shape, scale: 2.0 };
            let theory = d.mean().unwrap();
            let m = empirical_mean(&d, 300_000, 7);
            assert!(
                (m - theory).abs() / theory < 0.03,
                "shape {shape}: mean = {m}, theory = {theory}"
            );
        }
    }

    #[test]
    fn zipf_ranks_in_range_and_skewed() {
        let d = Dist::Zipf { n: 10, s: 1.2 };
        let mut rng = RngStream::new(8, "z");
        let mut counts = [0usize; 11];
        for _ in 0..50_000 {
            let r = d.sample(&mut rng) as usize;
            assert!((1..=10).contains(&r));
            counts[r] += 1;
        }
        assert!(counts[1] > counts[5], "rank 1 should dominate rank 5");
        assert!(counts[1] > counts[10] * 3);
    }

    #[test]
    fn hyper_exponential_mean_matches_theory() {
        let d = Dist::HyperExponential { p: 0.3, rate1: 10.0, rate2: 0.5 };
        let theory = d.mean().unwrap();
        let m = empirical_mean(&d, 300_000, 9);
        assert!((m - theory).abs() / theory < 0.03, "mean = {m}, theory = {theory}");
    }

    #[test]
    fn discrete_uniform_in_range() {
        let d = Dist::DiscreteUniform { n: 4 };
        let mut rng = RngStream::new(10, "du");
        for _ in 0..1_000 {
            let v = d.sample(&mut rng);
            assert!((0.0..4.0).contains(&v));
        }
    }

    #[test]
    fn dist_json_round_trip() {
        use crate::codec::{from_str, to_string};
        for d in [
            Dist::Weibull { shape: 1.5, scale: 2.0 },
            Dist::Zipf { n: 10, s: 1.2 },
            Dist::HyperExponential { p: 0.3, rate1: 10.0, rate2: 0.5 },
        ] {
            let json = to_string(&d);
            let back: Dist = from_str(&json).unwrap();
            assert_eq!(d, back, "{json}");
        }
    }
}
