//! Virtual time for discrete-event simulation.
//!
//! Simulated time is a monotone, nanosecond-resolution counter starting at
//! zero. [`SimTime`] is an *instant*, [`SimDuration`] a *span*; the two are
//! kept distinct so that instants cannot be accidentally added together.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant on the simulated timeline, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

// Encoded transparently as raw nanoseconds, which the codec keeps exact.
crate::impl_json!(newtype SimTime(u64));
crate::impl_json!(newtype SimDuration(u64));

const NANOS_PER_MICRO: u64 = 1_000;
const NANOS_PER_MILLI: u64 = 1_000_000;
const NANOS_PER_SEC: u64 = 1_000_000_000;
const NANOS_PER_MIN: u64 = 60 * NANOS_PER_SEC;
const NANOS_PER_HOUR: u64 = 60 * NANOS_PER_MIN;

impl SimTime {
    /// The origin of the simulated timeline.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinite horizon".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant from whole seconds.
    ///
    /// # Panics
    /// Panics on overflow (more than ~584 simulated years).
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * NANOS_PER_SEC)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The instant expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Span from an earlier instant to `self`.
    ///
    /// Returns [`SimDuration::ZERO`] when `earlier` is later than `self`
    /// rather than panicking, mirroring `Instant::saturating_duration_since`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a span; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * NANOS_PER_MICRO)
    }

    /// Creates a span from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * NANOS_PER_MILLI)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * NANOS_PER_SEC)
    }

    /// Creates a span from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * NANOS_PER_MIN)
    }

    /// Creates a span from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * NANOS_PER_HOUR)
    }

    /// Creates a span from fractional seconds, saturating at the
    /// representable range and treating non-finite or negative input as zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_nan() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        let nanos = secs * NANOS_PER_SEC as f64;
        if nanos >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(nanos as u64)
        }
    }

    /// Creates a span from fractional seconds, or `None` when the input has
    /// no meaningful finite span: negative, NaN, or infinite values.
    ///
    /// Unlike [`SimDuration::from_secs_f64`], which saturates (useful for
    /// scaling known-good spans), this is the form for *predicted* spans —
    /// e.g. a flow-completion estimate of `remaining / rate` where a
    /// zero-rate (cut) link yields infinity, meaning "never", not "at the
    /// end of representable time".
    pub fn try_from_secs_f64(secs: f64) -> Option<Self> {
        if !secs.is_finite() || secs < 0.0 {
            return None;
        }
        Some(SimDuration::from_secs_f64(secs))
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// True if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction of spans.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies the span by a non-negative factor, saturating.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimDuration::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimDuration::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_mins(2), SimDuration::from_secs(120));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_secs(3600));
        assert_eq!(SimTime::from_secs(4).as_secs_f64(), 4.0);
    }

    #[test]
    fn instant_plus_span() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert_eq!(t - SimTime::from_secs(1), SimDuration::from_millis(500));
    }

    #[test]
    fn saturating_since_never_panics() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn from_secs_f64_edge_cases() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
        assert_eq!(SimDuration::from_secs_f64(1.5), SimDuration::from_millis(1500));
    }

    #[test]
    fn try_from_secs_f64_rejects_non_finite_predictions() {
        assert_eq!(SimDuration::try_from_secs_f64(f64::INFINITY), None);
        assert_eq!(SimDuration::try_from_secs_f64(f64::NAN), None);
        assert_eq!(SimDuration::try_from_secs_f64(-0.5), None);
        assert_eq!(SimDuration::try_from_secs_f64(0.0), Some(SimDuration::ZERO));
        assert_eq!(
            SimDuration::try_from_secs_f64(2.5),
            Some(SimDuration::from_millis(2500))
        );
    }

    #[test]
    fn mul_div_span() {
        assert_eq!(SimDuration::from_secs(2) * 3, SimDuration::from_secs(6));
        assert_eq!(SimDuration::from_secs(6) / 3, SimDuration::from_secs(2));
        let scaled = SimDuration::from_secs(10).mul_f64(0.25);
        assert_eq!(scaled, SimDuration::from_millis(2500));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", SimTime::ZERO).is_empty());
        assert!(!format!("{}", SimDuration::from_secs(1)).is_empty());
    }
}
