//! String interning for trace identity.
//!
//! Every trace record names its emitting component and event kind, and both
//! are drawn from a tiny fixed vocabulary (`"rms"`, `"invoke"`, …). Storing
//! them as owned `String`s made [`crate::trace::TraceBus::record`] allocate
//! twice per event — pure waste on the hottest observability path in the
//! workspace. An [`Interner`] maps each distinct name to a [`Symbol`] (a
//! dense `u32` id) exactly once; afterwards identity is a copy, comparison
//! is an integer compare, and the `(component, event)` query index can key
//! on a pair of `u32`s.
//!
//! Symbols are meaningful only relative to the interner that issued them —
//! each [`crate::trace::TraceBus`] owns its own table (a per-simulation
//! string table), so merging buses re-interns through
//! [`crate::trace::TraceBus::extend_from`]. Symbol ids are assigned in
//! first-intern order, which is deterministic for a deterministic
//! simulation; serialization always resolves symbols back to their strings,
//! so no id ever leaks into a trace artifact.
//!
//! The module also provides [`FastHasher`], a deterministic FxHash-style
//! multiply-rotate hasher. `std`'s default `RandomState` both seeds itself
//! per process (hostile to reproducible perf numbers) and runs SipHash
//! (overkill for 3–12 byte keys); every interner and trace-index map in the
//! crate uses this instead.
//!
//! # Examples
//! ```
//! use mcs_simcore::intern::Interner;
//!
//! let mut interner = Interner::new();
//! let faas = interner.intern("faas");
//! assert_eq!(interner.intern("faas"), faas); // idempotent, no realloc
//! assert_eq!(interner.resolve(faas), "faas");
//! assert_eq!(interner.lookup("rms"), None); // never interned
//! ```

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A dense id for an interned string, valid only with its issuing
/// [`Interner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// The raw dense index of this symbol in its interner's table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A deterministic FxHash-style hasher: multiply-rotate over 8-byte chunks.
///
/// Not cryptographic and not DoS-resistant — trace vocabularies are
/// program-controlled, never attacker-controlled.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHasher {
    hash: u64,
}

/// The odd multiplier FxHash uses (2^64 / φ rounded to odd).
const FAST_HASH_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FAST_HASH_SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "ab" and "ab\0" cannot collide trivially.
            self.mix(u64::from_le_bytes(tail) ^ ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u64(&mut self, word: u64) {
        self.mix(word);
    }

    #[inline]
    fn write_u32(&mut self, word: u32) {
        self.mix(u64::from(word));
    }

    #[inline]
    fn write_usize(&mut self, word: usize) {
        self.mix(word as u64);
    }
}

/// A `HashMap` with the deterministic [`FastHasher`].
pub type FastHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// A `HashSet` with the deterministic [`FastHasher`].
pub type FastHashSet<T> = HashSet<T, BuildHasherDefault<FastHasher>>;

/// An append-only string table: each distinct string is stored once and
/// addressed by a [`Symbol`].
#[derive(Debug, Clone, Default)]
pub struct Interner {
    names: Vec<Box<str>>,
    ids: FastHashMap<Box<str>, Symbol>,
}

/// Equality is table content (in id order); the lookup map is derived state.
impl PartialEq for Interner {
    fn eq(&self, other: &Self) -> bool {
        self.names == other.names
    }
}

impl Interner {
    /// An empty table.
    pub fn new() -> Self {
        Interner::default()
    }

    /// The symbol for `name`, interning it on first sight. Only the first
    /// call for a given string allocates; lookups borrow `name`.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.ids.get(name) {
            return sym;
        }
        let sym = Symbol(u32::try_from(self.names.len()).expect("interner overflow"));
        let owned: Box<str> = name.into();
        self.names.push(owned.clone());
        self.ids.insert(owned, sym);
        sym
    }

    /// The symbol for `name` if it was ever interned; never allocates.
    pub fn lookup(&self, name: &str) -> Option<Symbol> {
        self.ids.get(name).copied()
    }

    /// The string behind `sym`.
    ///
    /// # Panics
    /// Panics if `sym` came from a different interner and is out of range
    /// here (out-of-range is the only cross-interner misuse that can be
    /// detected).
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All interned strings, in symbol-id order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(AsRef::as_ref)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut t = Interner::new();
        let a = t.intern("faas");
        let b = t.intern("rms");
        assert_ne!(a, b);
        assert_eq!(t.intern("faas"), a);
        assert_eq!(t.len(), 2);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(t.resolve(a), "faas");
        assert_eq!(t.resolve(b), "rms");
    }

    #[test]
    fn lookup_never_interns() {
        let mut t = Interner::new();
        assert_eq!(t.lookup("x"), None);
        let x = t.intern("x");
        assert_eq!(t.lookup("x"), Some(x));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn names_iterate_in_id_order() {
        let mut t = Interner::new();
        for name in ["c", "a", "b", "a"] {
            t.intern(name);
        }
        let names: Vec<&str> = t.names().collect();
        assert_eq!(names, vec!["c", "a", "b"]);
    }

    #[test]
    fn equality_ignores_derived_map_state() {
        let mut a = Interner::new();
        let mut b = Interner::new();
        for name in ["x", "y"] {
            a.intern(name);
            b.intern(name);
        }
        assert_eq!(a, b);
        b.intern("z");
        assert_ne!(a, b);
    }

    #[test]
    fn fast_hasher_is_deterministic_and_length_aware() {
        fn hash(bytes: &[u8]) -> u64 {
            let mut h = FastHasher::default();
            h.write(bytes);
            h.finish()
        }
        assert_eq!(hash(b"faas"), hash(b"faas"));
        assert_ne!(hash(b"faas"), hash(b"rms"));
        assert_ne!(hash(b"ab"), hash(b"ab\0"));
        // Long keys exercise the chunked path.
        assert_ne!(hash(b"a-rather-long-component-name"), hash(b"a-rather-long-component-nbme"));
    }
}
