//! Deterministic random-number streams.
//!
//! Every stochastic component of an MCS simulation draws from its own
//! [`RngStream`], derived from a single experiment seed by hashing a textual
//! label. This gives *reproducibility as an essential service* (paper
//! principle P8): the same seed always yields bit-identical experiments, and
//! adding a new component does not perturb the streams of existing ones.

/// The in-house core generator interface (replacing `rand::RngCore`).
///
/// Every MCS generator — [`SplitMix64`], [`Xoshiro256PlusPlus`], and the
/// stream-split [`RngStream`] — implements this trait, so samplers and
/// shuffles can be written against any of them.
pub trait RngCore {
    /// Next 32 raw bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Next 64 raw bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with raw bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// SplitMix64: a tiny, high-quality 64-bit PRNG used both as a generator and
/// as the seed-derivation function for stream splitting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }
}

/// xoshiro256++: a fast all-purpose 256-bit generator (Blackman & Vigna),
/// seeded from one `u64` through SplitMix64 as its authors recommend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Creates a generator whose 256-bit state is expanded from `seed`.
    pub fn new(seed: u64) -> Self {
        let mut mixer = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = mixer.next_u64();
        }
        // An all-zero state is the one fixed point; SplitMix64 cannot emit
        // four consecutive zeros, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256PlusPlus { s }
    }

    /// Next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl RngCore for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        Xoshiro256PlusPlus::next_u64(self)
    }
}

/// FNV-1a hash of a label, used to fold stream names into seeds.
fn fnv1a(label: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A named, independent random stream derived from an experiment seed.
///
/// Implements the in-house [`RngCore`] trait and works with the
/// distribution types in [`crate::dist`].
///
/// # Examples
/// ```
/// use mcs_simcore::rng::RngStream;
/// let mut a = RngStream::new(42, "arrivals");
/// let mut b = RngStream::new(42, "arrivals");
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed + label => same stream
/// ```
#[derive(Debug, Clone)]
pub struct RngStream {
    inner: SplitMix64,
    label_hash: u64,
}

impl RngStream {
    /// Creates the stream identified by `label` under experiment `seed`.
    pub fn new(seed: u64, label: &str) -> Self {
        let label_hash = fnv1a(label);
        // Mix seed and label through one SplitMix64 round each so that
        // nearby seeds do not produce correlated streams.
        let mut mixer = SplitMix64::new(seed ^ label_hash.rotate_left(17));
        let s0 = mixer.next_u64();
        RngStream {
            inner: SplitMix64::new(s0),
            label_hash,
        }
    }

    /// Derives a child stream, e.g. one per machine from a per-cluster stream.
    pub fn derive(&self, label: &str) -> RngStream {
        RngStream::new(self.label_hash ^ self.inner.state, label)
    }

    /// Next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// A uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.inner.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw in `[lo, hi)`. Returns `lo` when the range is empty.
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + self.next_f64() * (hi - lo)
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn uniform_usize(&mut self, n: usize) -> usize {
        assert!(n > 0, "uniform_usize requires n > 0");
        // Lemire-style widening multiply; bias negligible for simulation use.
        ((self.inner.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// A Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.uniform_usize(i + 1);
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element; `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.uniform_usize(slice.len())])
        }
    }
}

impl RngCore for RngStream {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_label_same_stream() {
        let mut a = RngStream::new(7, "x");
        let mut b = RngStream::new(7, "x");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_diverge() {
        let mut a = RngStream::new(7, "x");
        let mut b = RngStream::new(7, "y");
        let eq = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(eq, 0);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = RngStream::new(1, "x");
        let mut b = RngStream::new(2, "x");
        let eq = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(eq, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = RngStream::new(3, "u");
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_usize_covers_range() {
        let mut r = RngStream::new(3, "n");
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[r.uniform_usize(10)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn uniform_f64_respects_bounds() {
        let mut r = RngStream::new(9, "b");
        for _ in 0..1_000 {
            let x = r.uniform_f64(2.0, 5.0);
            assert!((2.0..5.0).contains(&x));
        }
        assert_eq!(r.uniform_f64(5.0, 2.0), 5.0);
    }

    #[test]
    fn bernoulli_frequency_plausible() {
        let mut r = RngStream::new(11, "coin");
        let hits = (0..100_000).filter(|_| r.bernoulli(0.3)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.3).abs() < 0.01, "freq = {freq}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = RngStream::new(5, "s");
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_on_empty_is_none() {
        let mut r = RngStream::new(5, "c");
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
    }

    #[test]
    fn derive_creates_independent_child() {
        let parent = RngStream::new(1, "cluster");
        let mut c1 = parent.derive("machine-0");
        let mut c2 = parent.derive("machine-1");
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut r = RngStream::new(1, "bytes");
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|b| *b != 0));
    }

    #[test]
    fn xoshiro_reference_values() {
        // First outputs of xoshiro256++ from the state {1, 2, 3, 4}, per the
        // reference implementation.
        let mut x = Xoshiro256PlusPlus { s: [1, 2, 3, 4] };
        let expected: [u64; 4] =
            [41943041, 58720359, 3588806011781223, 3591011842654386];
        for e in expected {
            assert_eq!(x.next_u64(), e);
        }
    }

    #[test]
    fn xoshiro_seeding_is_deterministic_and_sensitive() {
        let mut a = Xoshiro256PlusPlus::new(7);
        let mut b = Xoshiro256PlusPlus::new(7);
        let mut c = Xoshiro256PlusPlus::new(8);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let eq = (0..32).filter(|_| a.next_u64() == c.next_u64()).count();
        assert_eq!(eq, 0);
    }

    #[test]
    fn rng_core_defaults_apply_to_all_generators() {
        fn first_u32<R: RngCore>(mut r: R) -> u32 {
            r.next_u32()
        }
        // All three generators satisfy the one trait.
        let _ = first_u32(SplitMix64::new(1));
        let _ = first_u32(Xoshiro256PlusPlus::new(1));
        let _ = first_u32(RngStream::new(1, "trait"));
        let mut buf = [0u8; 9];
        let mut x = Xoshiro256PlusPlus::new(3);
        RngCore::fill_bytes(&mut x, &mut buf);
        assert!(buf.iter().any(|b| *b != 0));
    }
}
