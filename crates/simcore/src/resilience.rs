//! Composable, deterministic resilience policies.
//!
//! The paper treats maintaining ecosystems under correlated failures as a
//! fundamental problem (§2.2) and names self-awareness (P4, C6) as the cure:
//! systems must *react* to faults, not just suffer them. This module is the
//! reaction vocabulary, shared by every subsystem of the workspace:
//!
//! - [`RetryPolicy`] — bounded retries with fixed, exponential, or
//!   decorrelated-jitter backoff, drawn from a seeded [`RngStream`] so
//!   jittered schedules are bit-identical across same-seed runs;
//! - [`Timeout`] — a latency budget that turns slow successes into failures;
//! - [`CircuitBreaker`] — the classic closed → open → half-open state
//!   machine that fast-fails callers while a dependency is unhealthy;
//! - [`Bulkhead`] — a concurrency compartment bounding in-flight work;
//! - [`ShedderConfig`] — utilization-threshold load shedding for overload;
//! - [`RestartConfig`] — checkpoint-restart with backoff for batch tasks;
//! - [`ResilienceConfig`] — the per-mechanism toggle set a composed
//!   [`Scenario`](../../mcs_core/scenario/index.html) run is built from.
//!
//! Policies hold no clocks and spawn no events themselves: actors consult
//! them with the current [`SimTime`] and emit the resulting decisions onto
//! the [`TraceBus`](crate::trace::TraceBus), so every resilience action is
//! observable in the run's structured record.

use crate::rng::RngStream;
use crate::time::{SimDuration, SimTime};

/// Backoff families for [`RetryPolicy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Backoff {
    /// The same delay before every attempt.
    Fixed(SimDuration),
    /// `base * 2^(attempt-1)`, capped at `cap` (deterministic, no jitter).
    Exponential {
        /// Delay before the first retry.
        base: SimDuration,
        /// Upper bound on any single delay.
        cap: SimDuration,
    },
    /// Decorrelated jitter (the AWS Architecture Blog family):
    /// `d_1 = base`, `d_n = min(cap, uniform(base, 3 * d_(n-1)))`. The chain
    /// is re-derived from the stream on each call, so a fixed seed yields a
    /// fixed schedule.
    DecorrelatedJitter {
        /// Lower bound (and first delay).
        base: SimDuration,
        /// Upper bound on any single delay.
        cap: SimDuration,
    },
}

/// A bounded-attempt retry policy over a [`Backoff`] family.
///
/// # Examples
/// ```
/// use mcs_simcore::resilience::{Backoff, RetryPolicy};
/// use mcs_simcore::rng::RngStream;
/// use mcs_simcore::time::SimDuration;
///
/// let policy = RetryPolicy {
///     backoff: Backoff::Exponential {
///         base: SimDuration::from_secs(1),
///         cap: SimDuration::from_secs(60),
///     },
///     max_attempts: 3,
/// };
/// let mut rng = RngStream::new(1, "retry");
/// assert_eq!(policy.delay_after(1, &mut rng), Some(SimDuration::from_secs(1)));
/// assert_eq!(policy.delay_after(2, &mut rng), Some(SimDuration::from_secs(2)));
/// assert_eq!(policy.delay_after(3, &mut rng), None); // attempts exhausted
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// The delay family.
    pub backoff: Backoff,
    /// Total attempt budget, including the first try (so `max_attempts: 3`
    /// allows two retries).
    pub max_attempts: u32,
}

impl RetryPolicy {
    /// Backoff before the retry that follows failure number `failures`
    /// (1-based), or `None` when the attempt budget is spent.
    pub fn delay_after(&self, failures: u32, rng: &mut RngStream) -> Option<SimDuration> {
        if failures == 0 || failures >= self.max_attempts {
            return None;
        }
        Some(match self.backoff {
            Backoff::Fixed(d) => d,
            Backoff::Exponential { base, cap } => {
                let factor = 1u64 << (failures - 1).min(30);
                (base * factor).min(cap)
            }
            Backoff::DecorrelatedJitter { base, cap } => {
                let mut d = base;
                for _ in 1..failures {
                    let lo = base.as_secs_f64();
                    let hi = (d.as_secs_f64() * 3.0).max(lo);
                    d = SimDuration::from_secs_f64(rng.uniform_f64(lo, hi)).min(cap);
                }
                d.min(cap)
            }
        })
    }
}

/// A latency budget: a success slower than the budget counts as a failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Timeout {
    /// The budget.
    pub limit: SimDuration,
}

impl Timeout {
    /// A timeout of `secs` seconds.
    pub fn from_secs_f64(secs: f64) -> Self {
        Timeout { limit: SimDuration::from_secs_f64(secs) }
    }

    /// Whether an operation that took `elapsed` blew the budget.
    pub fn exceeded_by(&self, elapsed: SimDuration) -> bool {
        elapsed > self.limit
    }
}

/// Parameters of a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long the breaker stays open before probing.
    pub open_for: SimDuration,
    /// Consecutive half-open successes required to close again.
    pub half_open_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            open_for: SimDuration::from_secs(30),
            half_open_successes: 2,
        }
    }
}

/// The observable states of a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow, failures are counted.
    Closed,
    /// Tripped: requests fast-fail until the open window elapses.
    Open,
    /// Probing: a bounded number of trial requests decide the next state.
    HalfOpen,
}

impl BreakerState {
    /// A stable lowercase name for trace payloads.
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// The closed → open → half-open → closed state machine.
///
/// All transitions are driven by the caller: [`CircuitBreaker::allow`]
/// before each request, then [`CircuitBreaker::on_success`] or
/// [`CircuitBreaker::on_failure`] with the outcome. Each call returns the
/// transition it caused (if any) so the caller can emit it onto the trace
/// bus.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    half_open_successes: u32,
    open_until: SimTime,
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            half_open_successes: 0,
            open_until: SimTime::ZERO,
        }
    }

    /// Current state (as of the last interaction; an elapsed open window
    /// only becomes half-open on the next [`CircuitBreaker::allow`]).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Whether a request may proceed at `now`. Returns the transition this
    /// check caused (open → half-open once the open window elapses).
    pub fn allow(&mut self, now: SimTime) -> (bool, Option<BreakerState>) {
        match self.state {
            BreakerState::Closed => (true, None),
            BreakerState::Open => {
                if now >= self.open_until {
                    self.state = BreakerState::HalfOpen;
                    self.half_open_successes = 0;
                    (true, Some(BreakerState::HalfOpen))
                } else {
                    (false, None)
                }
            }
            BreakerState::HalfOpen => (true, None),
        }
    }

    /// Records a successful request; returns the transition it caused
    /// (half-open → closed after enough probe successes).
    pub fn on_success(&mut self) -> Option<BreakerState> {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures = 0;
                None
            }
            BreakerState::HalfOpen => {
                self.half_open_successes += 1;
                if self.half_open_successes >= self.config.half_open_successes {
                    self.state = BreakerState::Closed;
                    self.consecutive_failures = 0;
                    Some(BreakerState::Closed)
                } else {
                    None
                }
            }
            // A success while open (e.g. a late completion) is ignored.
            BreakerState::Open => None,
        }
    }

    /// Records a failed request at `now`; returns the transition it caused
    /// (closed → open at the threshold, half-open → open on any failure).
    pub fn on_failure(&mut self, now: SimTime) -> Option<BreakerState> {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.config.failure_threshold {
                    self.trip(now);
                    Some(BreakerState::Open)
                } else {
                    None
                }
            }
            BreakerState::HalfOpen => {
                self.trip(now);
                Some(BreakerState::Open)
            }
            BreakerState::Open => None,
        }
    }

    fn trip(&mut self, now: SimTime) {
        self.state = BreakerState::Open;
        self.consecutive_failures = 0;
        self.open_until = now + self.config.open_for;
    }
}

/// A concurrency compartment: at most `capacity` units in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bulkhead {
    capacity: usize,
    in_use: usize,
}

impl Bulkhead {
    /// A bulkhead admitting at most `capacity` concurrent holders.
    pub fn new(capacity: usize) -> Self {
        Bulkhead { capacity: capacity.max(1), in_use: 0 }
    }

    /// Takes one slot; `false` (and no slot) when the compartment is full.
    pub fn try_acquire(&mut self) -> bool {
        if self.in_use < self.capacity {
            self.in_use += 1;
            true
        } else {
            false
        }
    }

    /// Returns one slot (saturating; releasing an unheld slot is a no-op).
    pub fn release(&mut self) {
        self.in_use = self.in_use.saturating_sub(1);
    }

    /// Slots currently held.
    pub fn in_use(&self) -> usize {
        self.in_use
    }
}

/// Utilization-threshold load shedding.
///
/// When the governing autoscaler reports the service is over capacity, the
/// platform engages shedding: requests arriving while
/// `busy / capacity >= max_utilization` are dropped at admission, keeping
/// the survivors inside the congestion knee.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShedderConfig {
    /// Utilization at or above which new requests are shed while shedding
    /// is engaged, in `(0, 1]`.
    pub max_utilization: f64,
}

impl Default for ShedderConfig {
    fn default() -> Self {
        ShedderConfig { max_utilization: 0.8 }
    }
}

impl ShedderConfig {
    /// Whether a request arriving at `busy` of `capacity` is admitted while
    /// shedding is engaged.
    pub fn admits(&self, busy: usize, capacity: usize) -> bool {
        (busy as f64) < (capacity.max(1) as f64) * self.max_utilization.clamp(0.0, 1.0)
    }
}

/// Checkpoint-restart for batch tasks killed by machine failures: requeue
/// after a backoff instead of instantly, preserving a checkpointed fraction
/// of progress.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RestartConfig {
    /// Backoff between a kill and the requeue; the attempt budget bounds how
    /// often one task may be restarted before it is abandoned.
    pub backoff: RetryPolicy,
    /// Fraction of completed work preserved across the restart, in `[0, 1]`
    /// (maps onto `SchedulerConfig::checkpoint_factor`).
    pub checkpoint_factor: f64,
}

impl Default for RestartConfig {
    fn default() -> Self {
        RestartConfig {
            backoff: RetryPolicy {
                backoff: Backoff::Exponential {
                    base: SimDuration::from_secs(30),
                    cap: SimDuration::from_secs(600),
                },
                max_attempts: 16,
            },
            checkpoint_factor: 0.9,
        }
    }
}

/// The per-mechanism toggle set of a composed run: `None` disables a
/// mechanism, so `ResilienceConfig::default()` reproduces the legacy
/// fail-and-suffer behaviour exactly.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResilienceConfig {
    /// Retry failed service invocations with backoff.
    pub retry: Option<RetryPolicy>,
    /// Per-function circuit breaking of service invocations.
    pub breaker: Option<BreakerConfig>,
    /// Latency budget; slower successes count as failures.
    pub timeout: Option<Timeout>,
    /// Cap on concurrently pending retries (per service).
    pub retry_bulkhead: Option<usize>,
    /// Load shedding when the autoscaler reports over-capacity.
    pub shedder: Option<ShedderConfig>,
    /// Checkpoint-restart with backoff for batch tasks.
    pub restart: Option<RestartConfig>,
}

impl ResilienceConfig {
    /// Every mechanism disabled (the legacy behaviour).
    pub fn none() -> Self {
        ResilienceConfig::default()
    }

    /// The default retry policy used by the all-on preset.
    pub fn default_retry() -> RetryPolicy {
        RetryPolicy {
            backoff: Backoff::DecorrelatedJitter {
                base: SimDuration::from_millis(500),
                cap: SimDuration::from_secs(30),
            },
            max_attempts: 4,
        }
    }

    /// Every mechanism enabled with its default tuning.
    pub fn all_on() -> Self {
        ResilienceConfig {
            retry: Some(Self::default_retry()),
            breaker: Some(BreakerConfig::default()),
            timeout: Some(Timeout::from_secs_f64(30.0)),
            retry_bulkhead: Some(64),
            shedder: Some(ShedderConfig::default()),
            restart: Some(RestartConfig::default()),
        }
    }

    /// Whether any mechanism is enabled.
    pub fn any_enabled(&self) -> bool {
        self.retry.is_some()
            || self.breaker.is_some()
            || self.timeout.is_some()
            || self.retry_bulkhead.is_some()
            || self.shedder.is_some()
            || self.restart.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::Check;
    use crate::prop_assert;

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn fixed_backoff_is_constant_until_budget_spent() {
        let p = RetryPolicy { backoff: Backoff::Fixed(secs(5)), max_attempts: 3 };
        let mut rng = RngStream::new(1, "fixed");
        assert_eq!(p.delay_after(1, &mut rng), Some(secs(5)));
        assert_eq!(p.delay_after(2, &mut rng), Some(secs(5)));
        assert_eq!(p.delay_after(3, &mut rng), None);
        assert_eq!(p.delay_after(0, &mut rng), None);
    }

    #[test]
    fn exponential_backoff_doubles_and_caps() {
        let p = RetryPolicy {
            backoff: Backoff::Exponential { base: secs(1), cap: secs(5) },
            max_attempts: 10,
        };
        let mut rng = RngStream::new(1, "exp");
        let delays: Vec<u64> = (1..6)
            .map(|n| p.delay_after(n, &mut rng).unwrap().as_secs_f64() as u64)
            .collect();
        assert_eq!(delays, vec![1, 2, 4, 5, 5]);
    }

    #[test]
    fn decorrelated_jitter_is_deterministic_under_a_fixed_seed() {
        let p = RetryPolicy {
            backoff: Backoff::DecorrelatedJitter { base: secs(1), cap: secs(60) },
            max_attempts: 8,
        };
        let schedule = |seed: u64| -> Vec<SimDuration> {
            let mut rng = RngStream::new(seed, "jitter");
            (1..8).filter_map(|n| p.delay_after(n, &mut rng)).collect()
        };
        assert_eq!(schedule(42), schedule(42), "same seed, same jittered schedule");
        assert_ne!(schedule(42), schedule(43), "different seeds diverge");
    }

    #[test]
    fn decorrelated_jitter_stays_in_bounds() {
        let p = RetryPolicy {
            backoff: Backoff::DecorrelatedJitter { base: secs(2), cap: secs(20) },
            max_attempts: 32,
        };
        Check::new("jitter_bounds").cases(64).run(|rng| {
            let n = 1 + rng.uniform_usize(30) as u32;
            if let Some(d) = p.delay_after(n, rng) {
                prop_assert!(d >= secs(2), "delay {d} below base");
                prop_assert!(d <= secs(20), "delay {d} above cap");
            }
            Ok(())
        });
    }

    #[test]
    fn timeout_flags_only_slower_operations() {
        let t = Timeout::from_secs_f64(1.5);
        assert!(!t.exceeded_by(SimDuration::from_millis(1500)));
        assert!(t.exceeded_by(SimDuration::from_millis(1501)));
    }

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            open_for: secs(10),
            half_open_successes: 2,
        })
    }

    #[test]
    fn breaker_trips_open_at_the_failure_threshold() {
        let mut b = breaker();
        let now = SimTime::from_secs(100);
        assert_eq!(b.on_failure(now), None);
        assert_eq!(b.on_failure(now), None);
        assert_eq!(b.on_failure(now), Some(BreakerState::Open));
        assert_eq!(b.state(), BreakerState::Open);
        // While open, requests fast-fail.
        assert_eq!(b.allow(SimTime::from_secs(105)), (false, None));
    }

    #[test]
    fn breaker_success_resets_the_consecutive_count() {
        let mut b = breaker();
        let now = SimTime::from_secs(1);
        b.on_failure(now);
        b.on_failure(now);
        assert_eq!(b.on_success(), None);
        // The streak restarted: two more failures do not trip it...
        assert_eq!(b.on_failure(now), None);
        assert_eq!(b.on_failure(now), None);
        // ...but the third does.
        assert_eq!(b.on_failure(now), Some(BreakerState::Open));
    }

    #[test]
    fn breaker_half_opens_after_the_window_and_closes_on_probe_successes() {
        let mut b = breaker();
        let t0 = SimTime::from_secs(0);
        for _ in 0..3 {
            b.on_failure(t0);
        }
        // Open window is 10 s: at 10 s the next check half-opens.
        assert_eq!(b.allow(SimTime::from_secs(10)), (true, Some(BreakerState::HalfOpen)));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.on_success(), None, "one probe success is not enough");
        assert_eq!(b.on_success(), Some(BreakerState::Closed));
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn breaker_half_open_failure_reopens() {
        let mut b = breaker();
        let t0 = SimTime::from_secs(0);
        for _ in 0..3 {
            b.on_failure(t0);
        }
        assert!(b.allow(SimTime::from_secs(10)).0);
        assert_eq!(b.on_failure(SimTime::from_secs(10)), Some(BreakerState::Open));
        // The open window restarts from the half-open failure.
        assert_eq!(b.allow(SimTime::from_secs(15)), (false, None));
        assert_eq!(b.allow(SimTime::from_secs(20)).1, Some(BreakerState::HalfOpen));
    }

    #[test]
    fn breaker_state_names_are_stable() {
        assert_eq!(BreakerState::Closed.name(), "closed");
        assert_eq!(BreakerState::Open.name(), "open");
        assert_eq!(BreakerState::HalfOpen.name(), "half_open");
    }

    #[test]
    fn bulkhead_bounds_concurrency() {
        let mut bh = Bulkhead::new(2);
        assert!(bh.try_acquire());
        assert!(bh.try_acquire());
        assert!(!bh.try_acquire());
        bh.release();
        assert_eq!(bh.in_use(), 1);
        assert!(bh.try_acquire());
        // Releasing more than held saturates at zero.
        bh.release();
        bh.release();
        bh.release();
        assert_eq!(bh.in_use(), 0);
    }

    #[test]
    fn shedder_admits_below_the_utilization_knee() {
        let s = ShedderConfig { max_utilization: 0.75 };
        assert!(s.admits(2, 4));
        assert!(!s.admits(3, 4));
        assert!(!s.admits(10, 4));
        // Zero capacity never divides by zero.
        assert!(!s.admits(1, 0));
    }

    #[test]
    fn resilience_config_presets() {
        assert!(!ResilienceConfig::none().any_enabled());
        let all = ResilienceConfig::all_on();
        assert!(all.retry.is_some() && all.breaker.is_some() && all.restart.is_some());
        assert!(all.any_enabled());
        let only_retry =
            ResilienceConfig { retry: Some(ResilienceConfig::default_retry()), ..Default::default() };
        assert!(only_retry.any_enabled());
    }
}
