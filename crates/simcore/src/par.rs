//! Deterministic parallel fan-out for seed and scenario sweeps.
//!
//! The paper's experiments are embarrassingly parallel at the *replication*
//! level: a sweep runs the same simulation across many seeds or
//! configuration variants, and each replication owns its own
//! [`crate::engine::Simulation`], RNG stream, and trace bus — no shared
//! mutable state. These helpers exploit that with `std::thread::scope`
//! workers pulling indices from a shared atomic counter, and — crucially —
//! they merge results **by input index**, not by completion order. The
//! output of [`run_seeds`] and [`run_scenarios`] is therefore byte-identical
//! whatever the worker count, including `workers = 1`; the determinism diff
//! gate in `scripts/verify.sh` runs the composed-ecosystem sweeps under
//! `MCS_PAR_WORKERS=1` and `MCS_PAR_WORKERS=4` and diffs the artifacts.
//!
//! # Worker-count policy
//! [`worker_count`] honours the `MCS_PAR_WORKERS` environment variable
//! (clamped to `1..=64`, warning on nonsense) and otherwise uses the
//! machine's available parallelism. Fan-outs never spawn more workers than
//! there are items.
//!
//! # Examples
//! ```
//! use mcs_simcore::par;
//!
//! let squares = par::run_indexed_with(4, 8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//!
//! let sums = par::run_seeds(&[11, 22, 33], |seed| seed + 1);
//! assert_eq!(sums, vec![12, 23, 34]); // always in seed order
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// The hard cap on workers; beyond this a simulation sweep is memory-bound,
/// not CPU-bound.
pub const MAX_WORKERS: usize = 64;

/// The machine's available parallelism (1 when it cannot be determined).
fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get()).min(MAX_WORKERS)
}

/// The worker count sweeps use: `MCS_PAR_WORKERS` when set to an integer in
/// `1..=64` (out-of-range or unparsable values warn on stderr and fall back),
/// otherwise the machine's available parallelism.
pub fn worker_count() -> usize {
    let Ok(raw) = std::env::var("MCS_PAR_WORKERS") else {
        return default_workers();
    };
    match raw.trim().parse::<usize>() {
        Ok(n) if (1..=MAX_WORKERS).contains(&n) => n,
        _ => {
            eprintln!(
                "mcs-simcore: ignoring MCS_PAR_WORKERS={raw:?} \
                 (want an integer in 1..={MAX_WORKERS}); using {}",
                default_workers()
            );
            default_workers()
        }
    }
}

/// Runs `run(0..n)` across `workers` scoped threads and returns the results
/// **in index order**, regardless of which worker finished which index when.
///
/// Workers claim indices from a shared atomic counter (so uneven item costs
/// balance automatically) and ship `(index, result)` pairs over a channel;
/// the caller's thread places each result in its slot. With `workers <= 1`
/// or `n <= 1` no thread is spawned at all.
///
/// # Panics
/// A panic inside `run` propagates to the caller when the scope joins.
pub fn run_indexed_with<T, F>(workers: usize, n: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.clamp(1, MAX_WORKERS).min(n.max(1));
    if workers <= 1 || n <= 1 {
        return (0..n).map(run).collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    let run = &run;
    let next = &next;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                if tx.send((i, run(i))).is_err() {
                    break; // receiver gone: the scope is unwinding
                }
            });
        }
        drop(tx); // the receive loop below ends when every worker is done

        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for (i, value) in rx {
            slots[i] = Some(value);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every index produced exactly one result"))
            .collect()
    })
}

/// [`run_indexed_with`] at the ambient [`worker_count`].
pub fn run_indexed<T, F>(n: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_with(worker_count(), n, run)
}

/// Runs one replication per seed in parallel and returns the results in
/// **seed order**. Each call to `run` should build its own simulation (and
/// thus its own RNG stream and trace bus) from the seed, which keeps every
/// replication deterministic in isolation.
pub fn run_seeds<T, F>(seeds: &[u64], run: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    run_indexed(seeds.len(), |i| run(seeds[i]))
}

/// Runs one replication per scenario configuration in parallel and returns
/// the results in **input order**. `run` borrows its configuration, so
/// sweeps can fan out over non-`Clone` variants.
pub fn run_scenarios<C, T, F>(configs: &[C], run: F) -> Vec<T>
where
    C: Sync,
    T: Send,
    F: Fn(&C) -> T + Sync,
{
    run_indexed(configs.len(), |i| run(&configs[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RngStream;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_index_order() {
        for workers in [1, 2, 3, 8] {
            let out = run_indexed_with(workers, 17, |i| i * 10);
            assert_eq!(out, (0..17).map(|i| i * 10).collect::<Vec<_>>(), "workers={workers}");
        }
    }

    #[test]
    fn worker_count_never_exceeds_items() {
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        run_indexed_with(8, 2, |i| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(5));
            live.fetch_sub(1, Ordering::SeqCst);
            i
        });
        assert!(peak.load(Ordering::SeqCst) <= 2);
    }

    #[test]
    fn empty_and_single_item_fanouts_run_inline() {
        let none: Vec<u64> = run_indexed_with(4, 0, |_| unreachable!());
        assert!(none.is_empty());
        assert_eq!(run_indexed_with(4, 1, |i| i + 1), vec![1]);
    }

    #[test]
    fn seed_fanout_is_worker_count_independent() {
        let seeds: Vec<u64> = (0..12).map(|i| 1000 + i).collect();
        let reference: Vec<u64> = seeds
            .iter()
            .map(|&s| RngStream::new(s, "replicate").next_u64())
            .collect();
        for workers in [1, 2, 4] {
            let got = run_indexed_with(workers, seeds.len(), |i| {
                RngStream::new(seeds[i], "replicate").next_u64()
            });
            assert_eq!(got, reference, "workers={workers}");
        }
    }

    #[test]
    fn scenario_fanout_borrows_configs() {
        struct Cfg {
            factor: u64,
        }
        let configs = vec![Cfg { factor: 2 }, Cfg { factor: 3 }, Cfg { factor: 5 }];
        let out = run_scenarios(&configs, |c| c.factor * 7);
        assert_eq!(out, vec![14, 21, 35]);
    }
}
