//! # mcs-simcore — deterministic discrete-event simulation kernel
//!
//! The foundation of the MCS workspace: virtual time, an event-driven actor
//! engine, named deterministic RNG streams, the distribution families used in
//! grid/cloud workload modelling, and measurement instruments.
//!
//! The paper ("Massivizing Computer Systems", ICDCS 2018) argues in §3.3 and
//! challenge C15 that calibrated simulation is a first-class methodology for
//! studying computer ecosystems; this crate is the instrument every other MCS
//! crate builds on.
//!
//! ## Quick example
//! ```
//! use mcs_simcore::prelude::*;
//!
//! enum Msg { Arrive }
//!
//! struct Server { served: u64 }
//! impl Actor<Msg> for Server {
//!     fn handle(&mut self, ctx: &mut Context<'_, Msg>, _msg: Msg) {
//!         self.served += 1;
//!         if self.served < 10 {
//!             ctx.send_self(SimDuration::from_millis(100), Msg::Arrive);
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(7);
//! let s = sim.add_actor(Server { served: 0 });
//! sim.schedule(SimTime::ZERO, s, Msg::Arrive);
//! sim.run();
//! assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_millis(900));
//! ```

pub mod check;
pub mod codec;
pub mod dist;
pub mod engine;
pub mod error;
pub mod intern;
pub mod metrics;
pub mod par;
pub mod resilience;
pub mod rng;
pub mod time;
pub mod trace;

/// Convenience re-exports of the types used by nearly every simulation.
pub mod prelude {
    pub use crate::check::Check;
    pub use crate::codec::{FromJson, Json, ToJson};
    pub use crate::dist::{Dist, Sample};
    pub use crate::engine::{
        Actor, ActorId, Context, EventToken, MessageEnvelope, Simulation,
    };
    pub use crate::error::McsError;
    pub use crate::intern::{Interner, Symbol};
    pub use crate::metrics::{OnlineStats, QuantileSketch, Summary, TimeWeighted};
    pub use crate::resilience::{
        Backoff, BreakerConfig, BreakerState, Bulkhead, CircuitBreaker, ResilienceConfig,
        RestartConfig, RetryPolicy, ShedderConfig, Timeout,
    };
    pub use crate::rng::{RngCore, RngStream};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::trace::{Field, StreamConfig, TraceBus, TraceEvent};
}
