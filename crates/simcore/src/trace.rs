//! The cross-cutting event-trace bus.
//!
//! The paper's methodology (C11, C15) treats *observation* of a whole
//! ecosystem as a first-class concern: when several subsystems share one
//! virtual timeline, understanding the run means replaying one structured,
//! seed-deterministic record of everything that happened. This module is
//! that record: every actor in a [`crate::engine::Simulation`] emits
//! `(SimTime, component, event, payload)` tuples into a [`TraceBus`] via
//! [`crate::engine::Context::emit`], and [`crate::metrics`] aggregates the
//! bus into summaries and time-weighted gauges.
//!
//! # Schema
//! - `at` — the virtual instant of the event (nanoseconds, exact);
//! - `component` — the emitting subsystem (`"rms"`, `"faas"`,
//!   `"autoscale"`, `"failure"`, `"workload"`, …);
//! - `event` — the event kind within the component (`"task_finish"`,
//!   `"invoke"`, `"outage"`, …);
//! - `payload` — a small JSON object of event-specific fields, built with
//!   [`payload`].
//!
//! # Fast path
//! Component and event names are interned: the bus owns a per-simulation
//! [`Interner`] and each [`TraceEvent`] stores two copyable [`Symbol`]s, so
//! [`TraceBus::record`] allocates nothing for identity (only the payload is
//! owned). Queries ([`TraceBus::count`], [`TraceBus::select`],
//! [`TraceBus::series`], …) run against a lazily built
//! `(component, event) -> indices` index instead of rescanning the whole
//! bus; once built, the index is maintained incrementally by later records.
//! Serialization resolves symbols back to strings, so the encodings are
//! bit-for-bit what the un-interned bus produced.
//!
//! Because the engine is deterministic, the JSON encodings
//! ([`TraceBus::to_json_string`], [`TraceBus::to_jsonl`]) are byte-identical
//! across same-seed runs — the property the composed-ecosystem determinism
//! gate in `scripts/verify.sh` checks.
//!
//! # Examples
//! ```
//! use mcs_simcore::trace::{payload, TraceBus};
//! use mcs_simcore::codec::Json;
//! use mcs_simcore::time::SimTime;
//!
//! let mut bus = TraceBus::new();
//! bus.record(SimTime::from_secs(1), "faas", "invoke",
//!            payload(vec![("latency_secs", Json::Float(0.02))]));
//! assert_eq!(bus.count("faas", "invoke"), 1);
//! assert_eq!(bus.events()[0].field_f64("latency_secs"), Some(0.02));
//! ```

use crate::codec::{self, Json, ToJson};
use crate::error::McsError;
use crate::intern::{FastHashMap, Interner, Symbol};
use crate::time::SimTime;
use std::cell::RefCell;

/// One structured record on the bus.
///
/// `component` and `event` are [`Symbol`]s into the owning bus's
/// [`Interner`]; resolve them with [`TraceBus::interner`] (or use the
/// string-keyed query methods on [`TraceBus`], which do it for you).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Virtual instant the event was emitted.
    pub at: SimTime,
    /// Emitting subsystem (interned stable short name, e.g. `"rms"`).
    pub component: Symbol,
    /// Event kind within the component (interned, e.g. `"task_finish"`).
    pub event: Symbol,
    /// Event-specific fields as a JSON object (see [`payload`]).
    pub payload: Json,
}

impl TraceEvent {
    /// Whether this record has the given component and event symbols.
    pub fn matches(&self, component: Symbol, event: Symbol) -> bool {
        self.component == component && self.event == event
    }

    /// A numeric payload field, accepting any JSON number; `None` when the
    /// field is absent or non-numeric.
    pub fn field_f64(&self, key: &str) -> Option<f64> {
        self.payload.get(key)?.as_f64().filter(|x| x.is_finite())
    }

    /// A string payload field; `None` when absent or not a string.
    pub fn field_str(&self, key: &str) -> Option<&str> {
        match self.payload.get(key)? {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Builds a JSON object payload from `(key, value)` pairs, preserving order.
///
/// Payload keys are the fixed per-event field names actors emit, so they are
/// `&'static str` and carried as borrowed [`codec::JsonKey`]s — building a
/// payload allocates for the values only, never the keys.
pub fn payload(fields: Vec<(&'static str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (codec::JsonKey::Borrowed(k), v)).collect())
}

/// The `(component, event) -> event indices` query index.
type QueryIndex = FastHashMap<(Symbol, Symbol), Vec<u32>>;

/// The append-only, seed-deterministic record of one simulation run.
///
/// Owned by [`crate::engine::Simulation`]; actors append through
/// [`crate::engine::Context::emit`], and the experiment harness reads it
/// back after the run (or takes it with
/// [`crate::engine::Simulation::take_trace`]).
#[derive(Debug, Default)]
pub struct TraceBus {
    events: Vec<TraceEvent>,
    interner: Interner,
    /// Built on first query, maintained incrementally by later records.
    /// Purely derived state: ignored by `Clone`/`PartialEq`.
    index: RefCell<Option<QueryIndex>>,
}

impl Clone for TraceBus {
    fn clone(&self) -> Self {
        TraceBus {
            events: self.events.clone(),
            interner: self.interner.clone(),
            index: RefCell::new(None),
        }
    }
}

impl PartialEq for TraceBus {
    fn eq(&self, other: &Self) -> bool {
        self.events == other.events && self.interner == other.interner
    }
}

impl TraceBus {
    /// An empty bus.
    pub fn new() -> Self {
        TraceBus::default()
    }

    /// Appends one record, interning `component` and `event` (allocation-free
    /// after each name's first appearance).
    pub fn record(&mut self, at: SimTime, component: &str, event: &str, payload: Json) {
        let component = self.interner.intern(component);
        let event = self.interner.intern(event);
        self.record_interned(at, component, event, payload);
    }

    /// Appends one record with pre-interned identity — the fastest path for
    /// emitters that hold their symbols.
    pub fn record_interned(&mut self, at: SimTime, component: Symbol, event: Symbol, payload: Json) {
        let idx = u32::try_from(self.events.len()).expect("trace bus overflow");
        self.events.push(TraceEvent { at, component, event, payload });
        if let Some(index) = self.index.get_mut().as_mut() {
            index.entry((component, event)).or_default().push(idx);
        }
    }

    /// Interns a name in this bus's string table (see [`Interner::intern`]).
    pub fn intern(&mut self, name: &str) -> Symbol {
        self.interner.intern(name)
    }

    /// The bus's string table, for resolving [`TraceEvent`] symbols.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// All records, in emission order (which equals delivery order, so it is
    /// identical across same-seed runs).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the bus is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drops all records (the string table and its symbols stay valid).
    pub fn clear(&mut self) {
        self.events.clear();
        *self.index.get_mut() = None;
    }

    /// Runs `f` over the query index, building it on first use.
    fn with_index<R>(&self, f: impl FnOnce(&QueryIndex) -> R) -> R {
        let mut slot = self.index.borrow_mut();
        let index = slot.get_or_insert_with(|| {
            let mut index = QueryIndex::default();
            for (i, e) in self.events.iter().enumerate() {
                index.entry((e.component, e.event)).or_default().push(i as u32);
            }
            index
        });
        f(index)
    }

    /// The event indices matching one `(component, event)` pair, in order;
    /// empty when either name was never recorded.
    fn indices(&self, component: &str, event: &str) -> Vec<u32> {
        let (Some(c), Some(e)) =
            (self.interner.lookup(component), self.interner.lookup(event))
        else {
            return Vec::new();
        };
        self.with_index(|index| index.get(&(c, e)).cloned().unwrap_or_default())
    }

    /// The records matching one `(component, event)` pair, in order.
    pub fn select(&self, component: &str, event: &str) -> Vec<&TraceEvent> {
        self.indices(component, event).into_iter().map(|i| &self.events[i as usize]).collect()
    }

    /// Number of records matching one `(component, event)` pair.
    pub fn count(&self, component: &str, event: &str) -> usize {
        let (Some(c), Some(e)) =
            (self.interner.lookup(component), self.interner.lookup(event))
        else {
            return 0;
        };
        self.with_index(|index| index.get(&(c, e)).map_or(0, Vec::len))
    }

    /// Event counts per `(component, event)`, sorted for deterministic
    /// report rows. Each name is resolved once per distinct pair, not once
    /// per event.
    pub fn counts(&self) -> Vec<(String, String, u64)> {
        let mut rows: Vec<(String, String, u64)> = self.with_index(|index| {
            index
                .iter()
                .map(|(&(c, e), indices)| {
                    (
                        self.interner.resolve(c).to_owned(),
                        self.interner.resolve(e).to_owned(),
                        indices.len() as u64,
                    )
                })
                .collect()
        });
        rows.sort_unstable();
        rows
    }

    /// The sorted distinct component names on the bus.
    pub fn components(&self) -> Vec<String> {
        let mut symbols: Vec<Symbol> =
            self.with_index(|index| index.keys().map(|&(c, _)| c).collect());
        symbols.sort_unstable();
        symbols.dedup();
        let mut names: Vec<String> =
            symbols.into_iter().map(|c| self.interner.resolve(c).to_owned()).collect();
        names.sort_unstable();
        names
    }

    /// The `(instant, value)` series of a numeric payload field across
    /// matching records (records without the field are skipped).
    pub fn series(&self, component: &str, event: &str, field: &str) -> Vec<(SimTime, f64)> {
        self.indices(component, event)
            .into_iter()
            .filter_map(|i| {
                let e = &self.events[i as usize];
                e.field_f64(field).map(|x| (e.at, x))
            })
            .collect()
    }

    /// Appends every record of `other` (used to merge buses of sequential
    /// runs; records keep their original instants). Symbols are re-interned
    /// into this bus's table, so merged buses stay self-contained.
    pub fn extend_from(&mut self, other: TraceBus) {
        // Map other-bus symbol ids to this bus's ids once, not per event.
        let remap: Vec<Symbol> =
            other.interner.names().map(|name| self.interner.intern(name)).collect();
        for e in other.events {
            self.record_interned(
                e.at,
                remap[e.component.index()],
                remap[e.event.index()],
                e.payload,
            );
        }
    }

    /// Appends one event's JSON object form (symbols resolved back to
    /// strings — the exact encoding of the pre-interning bus).
    fn encode_event_into(&self, e: &TraceEvent, out: &mut String) {
        out.push_str("{\"at\":");
        e.at.to_json().encode_into(out);
        out.push_str(",\"component\":");
        codec::encode_str(self.interner.resolve(e.component), out);
        out.push_str(",\"event\":");
        codec::encode_str(self.interner.resolve(e.event), out);
        out.push_str(",\"payload\":");
        e.payload.encode_into(out);
        out.push('}');
    }

    /// The whole bus as one deterministic JSON array.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        out.push('[');
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            self.encode_event_into(e, &mut out);
        }
        out.push(']');
        out
    }

    /// The bus as JSON-lines (one record per line), the format used by the
    /// determinism diff gate.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            self.encode_event_into(e, &mut out);
            out.push('\n');
        }
        out
    }

    /// Rebuilds a bus from the array form [`TraceBus::to_json_string`]
    /// writes, re-interning every name.
    ///
    /// # Errors
    /// Returns [`McsError::Json`] for malformed text and
    /// [`McsError::Decode`] when a record lacks the trace schema.
    pub fn from_json_str(text: &str) -> Result<TraceBus, McsError> {
        let doc = Json::parse(text)?;
        let Json::Arr(items) = doc else {
            return Err(McsError::decode("a trace event array", "non-array document"));
        };
        let mut bus = TraceBus::new();
        for item in items {
            let at: SimTime = item.field("at")?;
            let component: String = item.field("component")?;
            let event: String = item.field("event")?;
            let payload = item.get("payload").cloned().unwrap_or(Json::Null);
            bus.record(at, &component, &event, payload);
        }
        Ok(bus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus() -> TraceBus {
        let mut b = TraceBus::new();
        b.record(
            SimTime::from_secs(1),
            "rms",
            "task_finish",
            payload(vec![("wait_secs", Json::Float(2.5))]),
        );
        b.record(
            SimTime::from_secs(2),
            "faas",
            "invoke",
            payload(vec![("latency_secs", Json::Float(0.1)), ("cold", Json::Bool(true))]),
        );
        b.record(
            SimTime::from_secs(3),
            "rms",
            "task_finish",
            payload(vec![("wait_secs", Json::Float(0.5))]),
        );
        b
    }

    #[test]
    fn counts_are_sorted_and_complete() {
        let counts = bus().counts();
        assert_eq!(
            counts,
            vec![
                ("faas".into(), "invoke".into(), 1),
                ("rms".into(), "task_finish".into(), 2),
            ]
        );
    }

    #[test]
    fn select_and_series_filter_by_kind() {
        let b = bus();
        assert_eq!(b.select("rms", "task_finish").len(), 2);
        assert_eq!(b.count("faas", "invoke"), 1);
        let series = b.series("rms", "task_finish", "wait_secs");
        assert_eq!(series, vec![(SimTime::from_secs(1), 2.5), (SimTime::from_secs(3), 0.5)]);
    }

    #[test]
    fn queries_on_unknown_names_are_empty_not_panics() {
        let b = bus();
        assert_eq!(b.count("nope", "invoke"), 0);
        assert_eq!(b.count("faas", "nope"), 0);
        assert!(b.select("nope", "nope").is_empty());
        assert!(b.series("nope", "nope", "x").is_empty());
    }

    #[test]
    fn index_stays_correct_across_interleaved_records() {
        let mut b = bus();
        // Force the index to exist, then keep recording.
        assert_eq!(b.count("faas", "invoke"), 1);
        b.record(SimTime::from_secs(4), "faas", "invoke", payload(vec![]));
        b.record(SimTime::from_secs(5), "new-component", "boot", payload(vec![]));
        assert_eq!(b.count("faas", "invoke"), 2);
        assert_eq!(b.count("new-component", "boot"), 1);
        assert_eq!(b.select("faas", "invoke").len(), 2);
        b.clear();
        assert_eq!(b.count("faas", "invoke"), 0);
    }

    #[test]
    fn field_accessors_handle_missing_fields() {
        let b = bus();
        let e = &b.events()[1];
        assert_eq!(e.field_f64("latency_secs"), Some(0.1));
        assert_eq!(e.field_f64("nope"), None);
        assert_eq!(e.field_str("nope"), None);
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let b = bus();
        let json = b.to_json_string();
        let back = TraceBus::from_json_str(&json).unwrap();
        assert_eq!(back, b);
        assert_eq!(back.to_json_string(), json);
        assert_eq!(b.to_jsonl().lines().count(), b.len());
    }

    #[test]
    fn serialization_matches_the_un_interned_encoding() {
        // The reference encoding the pre-interning bus produced via
        // `impl_json!(struct TraceEvent { at, component, event, payload })`.
        let b = bus();
        let reference: Vec<Json> = b
            .events()
            .iter()
            .map(|e| {
                Json::Obj(vec![
                    ("at".into(), e.at.to_json()),
                    ("component".into(), Json::Str(b.interner().resolve(e.component).into())),
                    ("event".into(), Json::Str(b.interner().resolve(e.event).into())),
                    ("payload".into(), e.payload.clone()),
                ])
            })
            .collect();
        assert_eq!(b.to_json_string(), Json::Arr(reference).encode());
    }

    #[test]
    fn components_sorted_unique() {
        assert_eq!(bus().components(), vec!["faas".to_owned(), "rms".to_owned()]);
    }

    #[test]
    fn extend_from_appends_and_remaps_symbols() {
        let mut a = bus();
        let n = a.len();
        a.extend_from(bus());
        assert_eq!(a.len(), 2 * n);
        assert_eq!(a.count("rms", "task_finish"), 4);

        // A bus with a different intern order must merge by name, not id.
        let mut other = TraceBus::new();
        other.record(SimTime::from_secs(9), "zzz", "boot", payload(vec![]));
        other.record(SimTime::from_secs(10), "rms", "task_finish", payload(vec![]));
        a.extend_from(other);
        assert_eq!(a.count("zzz", "boot"), 1);
        assert_eq!(a.count("rms", "task_finish"), 5);
    }
}
