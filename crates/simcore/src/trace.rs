//! The cross-cutting event-trace bus.
//!
//! The paper's methodology (C11, C15) treats *observation* of a whole
//! ecosystem as a first-class concern: when several subsystems share one
//! virtual timeline, understanding the run means replaying one structured,
//! seed-deterministic record of everything that happened. This module is
//! that record: every actor in a [`crate::engine::Simulation`] emits
//! `(SimTime, component, event, payload)` tuples into a [`TraceBus`] via
//! [`crate::engine::Context::emit`], and [`crate::metrics`] aggregates the
//! bus into summaries and time-weighted gauges.
//!
//! # Schema
//! - `at` — the virtual instant of the event (nanoseconds, exact);
//! - `component` — the emitting subsystem (`"rms"`, `"faas"`,
//!   `"autoscale"`, `"failure"`, `"workload"`, …);
//! - `event` — the event kind within the component (`"task_finish"`,
//!   `"invoke"`, `"outage"`, …);
//! - `payload` — a small JSON object of event-specific fields, built with
//!   [`payload`].
//!
//! Because the engine is deterministic, the JSON encodings
//! ([`TraceBus::to_json_string`], [`TraceBus::to_jsonl`]) are byte-identical
//! across same-seed runs — the property the composed-ecosystem determinism
//! gate in `scripts/verify.sh` checks.
//!
//! # Examples
//! ```
//! use mcs_simcore::trace::{payload, TraceBus};
//! use mcs_simcore::codec::Json;
//! use mcs_simcore::time::SimTime;
//!
//! let mut bus = TraceBus::new();
//! bus.record(SimTime::from_secs(1), "faas", "invoke",
//!            payload(vec![("latency_secs", Json::Float(0.02))]));
//! assert_eq!(bus.count("faas", "invoke"), 1);
//! assert_eq!(bus.events()[0].field_f64("latency_secs"), Some(0.02));
//! ```

use crate::codec::{self, Json};
use crate::time::SimTime;
use std::collections::BTreeMap;

/// One structured record on the bus.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Virtual instant the event was emitted.
    pub at: SimTime,
    /// Emitting subsystem (stable short name, e.g. `"rms"`).
    pub component: String,
    /// Event kind within the component (e.g. `"task_finish"`).
    pub event: String,
    /// Event-specific fields as a JSON object (see [`payload`]).
    pub payload: Json,
}

crate::impl_json!(struct TraceEvent { at, component, event, payload });

impl TraceEvent {
    /// Whether this record has the given component and event kind.
    pub fn matches(&self, component: &str, event: &str) -> bool {
        self.component == component && self.event == event
    }

    /// A numeric payload field, accepting any JSON number; `None` when the
    /// field is absent or non-numeric.
    pub fn field_f64(&self, key: &str) -> Option<f64> {
        self.payload.get(key)?.as_f64().filter(|x| x.is_finite())
    }

    /// A string payload field; `None` when absent or not a string.
    pub fn field_str(&self, key: &str) -> Option<&str> {
        match self.payload.get(key)? {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Builds a JSON object payload from `(key, value)` pairs, preserving order.
pub fn payload(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

/// The append-only, seed-deterministic record of one simulation run.
///
/// Owned by [`crate::engine::Simulation`]; actors append through
/// [`crate::engine::Context::emit`], and the experiment harness reads it
/// back after the run (or takes it with
/// [`crate::engine::Simulation::take_trace`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceBus {
    events: Vec<TraceEvent>,
}

impl TraceBus {
    /// An empty bus.
    pub fn new() -> Self {
        TraceBus { events: Vec::new() }
    }

    /// Appends one record.
    pub fn record(&mut self, at: SimTime, component: &str, event: &str, payload: Json) {
        self.events.push(TraceEvent {
            at,
            component: component.to_owned(),
            event: event.to_owned(),
            payload,
        });
    }

    /// All records, in emission order (which equals delivery order, so it is
    /// identical across same-seed runs).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the bus is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drops all records.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// The records matching one `(component, event)` pair, in order.
    pub fn select(&self, component: &str, event: &str) -> Vec<&TraceEvent> {
        self.events.iter().filter(|e| e.matches(component, event)).collect()
    }

    /// Number of records matching one `(component, event)` pair.
    pub fn count(&self, component: &str, event: &str) -> usize {
        self.events.iter().filter(|e| e.matches(component, event)).count()
    }

    /// Event counts per `(component, event)`, sorted for deterministic
    /// report rows.
    pub fn counts(&self) -> Vec<(String, String, u64)> {
        let mut map: BTreeMap<(String, String), u64> = BTreeMap::new();
        for e in &self.events {
            *map.entry((e.component.clone(), e.event.clone())).or_insert(0) += 1;
        }
        map.into_iter().map(|((c, k), n)| (c, k, n)).collect()
    }

    /// The sorted distinct component names on the bus.
    pub fn components(&self) -> Vec<String> {
        let mut set: Vec<String> = self.events.iter().map(|e| e.component.clone()).collect();
        set.sort_unstable();
        set.dedup();
        set
    }

    /// The `(instant, value)` series of a numeric payload field across
    /// matching records (records without the field are skipped).
    pub fn series(&self, component: &str, event: &str, field: &str) -> Vec<(SimTime, f64)> {
        self.events
            .iter()
            .filter(|e| e.matches(component, event))
            .filter_map(|e| e.field_f64(field).map(|x| (e.at, x)))
            .collect()
    }

    /// Appends every record of `other` (used to merge buses of sequential
    /// runs; records keep their original instants).
    pub fn extend_from(&mut self, other: TraceBus) {
        self.events.extend(other.events);
    }

    /// The whole bus as one deterministic JSON array.
    pub fn to_json_string(&self) -> String {
        codec::to_string(&self.events)
    }

    /// The bus as JSON-lines (one record per line), the format used by the
    /// determinism diff gate.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&codec::to_string(e));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus() -> TraceBus {
        let mut b = TraceBus::new();
        b.record(
            SimTime::from_secs(1),
            "rms",
            "task_finish",
            payload(vec![("wait_secs", Json::Float(2.5))]),
        );
        b.record(
            SimTime::from_secs(2),
            "faas",
            "invoke",
            payload(vec![("latency_secs", Json::Float(0.1)), ("cold", Json::Bool(true))]),
        );
        b.record(
            SimTime::from_secs(3),
            "rms",
            "task_finish",
            payload(vec![("wait_secs", Json::Float(0.5))]),
        );
        b
    }

    #[test]
    fn counts_are_sorted_and_complete() {
        let counts = bus().counts();
        assert_eq!(
            counts,
            vec![
                ("faas".into(), "invoke".into(), 1),
                ("rms".into(), "task_finish".into(), 2),
            ]
        );
    }

    #[test]
    fn select_and_series_filter_by_kind() {
        let b = bus();
        assert_eq!(b.select("rms", "task_finish").len(), 2);
        assert_eq!(b.count("faas", "invoke"), 1);
        let series = b.series("rms", "task_finish", "wait_secs");
        assert_eq!(series, vec![(SimTime::from_secs(1), 2.5), (SimTime::from_secs(3), 0.5)]);
    }

    #[test]
    fn field_accessors_handle_missing_fields() {
        let b = bus();
        let e = &b.events()[1];
        assert_eq!(e.field_f64("latency_secs"), Some(0.1));
        assert_eq!(e.field_f64("nope"), None);
        assert_eq!(e.field_str("nope"), None);
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let b = bus();
        let json = b.to_json_string();
        let back: Vec<TraceEvent> = codec::from_str(&json).unwrap();
        assert_eq!(back, b.events());
        assert_eq!(b.to_jsonl().lines().count(), b.len());
    }

    #[test]
    fn components_sorted_unique() {
        assert_eq!(bus().components(), vec!["faas".to_owned(), "rms".to_owned()]);
    }

    #[test]
    fn extend_from_appends() {
        let mut a = bus();
        let n = a.len();
        a.extend_from(bus());
        assert_eq!(a.len(), 2 * n);
    }
}
