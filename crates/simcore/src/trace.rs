//! The cross-cutting event-trace bus.
//!
//! The paper's methodology (C11, C15) treats *observation* of a whole
//! ecosystem as a first-class concern: when several subsystems share one
//! virtual timeline, understanding the run means replaying one structured,
//! seed-deterministic record of everything that happened. This module is
//! that record: every actor in a [`crate::engine::Simulation`] emits
//! `(SimTime, component, event, payload)` tuples into a [`TraceBus`] via
//! [`crate::engine::Context::emit`], and [`crate::metrics`] aggregates the
//! bus into summaries and time-weighted gauges.
//!
//! # Schema
//! - `at` — the virtual instant of the event (nanoseconds, exact);
//! - `component` — the emitting subsystem (`"rms"`, `"faas"`,
//!   `"autoscale"`, `"failure"`, `"workload"`, …);
//! - `event` — the event kind within the component (`"task_finish"`,
//!   `"invoke"`, `"outage"`, …);
//! - `payload` — a small JSON object of event-specific fields, built with
//!   [`payload`].
//!
//! # Fast path
//! Component and event names are interned: the bus owns a per-simulation
//! [`Interner`] and each [`TraceEvent`] stores two copyable [`Symbol`]s, so
//! [`TraceBus::record`] allocates nothing for identity (only the payload is
//! owned). Queries ([`TraceBus::count`], [`TraceBus::select`],
//! [`TraceBus::series`], …) run against a lazily built
//! `(component, event) -> indices` index instead of rescanning the whole
//! bus; once built, the index is maintained incrementally by later records.
//! Serialization resolves symbols back to strings, so the encodings are
//! bit-for-bit what the un-interned bus produced.
//!
//! Because the engine is deterministic, the JSON encodings
//! ([`TraceBus::to_json_string`], [`TraceBus::to_jsonl`]) are byte-identical
//! across same-seed runs — the property the composed-ecosystem determinism
//! gate in `scripts/verify.sh` checks.
//!
//! # Examples
//! ```
//! use mcs_simcore::trace::{payload, TraceBus};
//! use mcs_simcore::codec::Json;
//! use mcs_simcore::time::SimTime;
//!
//! let mut bus = TraceBus::new();
//! bus.record(SimTime::from_secs(1), "faas", "invoke",
//!            payload(vec![("latency_secs", Json::Float(0.02))]));
//! assert_eq!(bus.count("faas", "invoke"), 1);
//! assert_eq!(bus.events()[0].field_f64("latency_secs"), Some(0.02));
//! ```

use crate::codec::{self, Json, ToJson};
use crate::error::McsError;
use crate::intern::{FastHashMap, Interner, Symbol};
use crate::metrics::{OnlineStats, QuantileSketch};
use crate::time::{SimDuration, SimTime};
use std::cell::RefCell;

/// One structured record on the bus.
///
/// `component` and `event` are [`Symbol`]s into the owning bus's
/// [`Interner`]; resolve them with [`TraceBus::interner`] (or use the
/// string-keyed query methods on [`TraceBus`], which do it for you).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Virtual instant the event was emitted.
    pub at: SimTime,
    /// Emitting subsystem (interned stable short name, e.g. `"rms"`).
    pub component: Symbol,
    /// Event kind within the component (interned, e.g. `"task_finish"`).
    pub event: Symbol,
    /// Event-specific fields as a JSON object (see [`payload`]).
    pub payload: Json,
}

impl TraceEvent {
    /// Whether this record has the given component and event symbols.
    pub fn matches(&self, component: Symbol, event: Symbol) -> bool {
        self.component == component && self.event == event
    }

    /// A numeric payload field, accepting any JSON number; `None` when the
    /// field is absent or non-numeric.
    pub fn field_f64(&self, key: &str) -> Option<f64> {
        self.payload.get(key)?.as_f64().filter(|x| x.is_finite())
    }

    /// A string payload field; `None` when absent or not a string.
    pub fn field_str(&self, key: &str) -> Option<&str> {
        match self.payload.get(key)? {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Builds a JSON object payload from `(key, value)` pairs, preserving order.
///
/// Payload keys are the fixed per-event field names actors emit, so they are
/// `&'static str` and carried as borrowed [`codec::JsonKey`]s — building a
/// payload allocates for the values only, never the keys.
pub fn payload(fields: Vec<(&'static str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (codec::JsonKey::Borrowed(k), v)).collect())
}

/// One payload value on the lazy emission path ([`TraceBus::record_fields`],
/// `Context::emit_fields`).
///
/// A `Field` is a plain copyable scalar: hot emitters hand the bus a stack
/// slice of `(&'static str, Field)` pairs and the bus decides what to do
/// with it — a full-retention sink materializes the exact [`Json`] object
/// [`payload`] would have built (so serialized traces stay byte-identical),
/// while a streaming sink folds the numeric fields into its rollups without
/// ever allocating a payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Field<'v> {
    /// A float value, materialized as `Json::Float`.
    F64(f64),
    /// A non-negative integer, materialized as `Json::UInt`.
    U64(u64),
    /// A signed integer, materialized as `Json::Int`.
    I64(i64),
    /// A boolean, materialized as `Json::Bool`.
    Bool(bool),
    /// A borrowed string, materialized as `Json::Str` (owned) only when a
    /// full-retention sink actually keeps the event.
    Str(&'v str),
}

impl Field<'_> {
    /// The owned JSON value this field materializes to on the full path.
    fn to_json(self) -> Json {
        match self {
            Field::F64(x) => Json::Float(x),
            Field::U64(x) => Json::UInt(x),
            Field::I64(x) => Json::Int(x),
            Field::Bool(x) => Json::Bool(x),
            Field::Str(s) => Json::Str(s.to_owned()),
        }
    }

    /// The numeric view a streaming sink folds — exactly the values
    /// [`TraceEvent::field_f64`] would read back off a retained event.
    fn fold_f64(self) -> Option<f64> {
        match self {
            Field::F64(x) if x.is_finite() => Some(x),
            Field::F64(_) | Field::Bool(_) | Field::Str(_) => None,
            Field::U64(x) => Some(x as f64),
            Field::I64(x) => Some(x as f64),
        }
    }
}

/// The `(component, event) -> event indices` query index.
type QueryIndex = FastHashMap<(Symbol, Symbol), Vec<u32>>;

/// Tuning for a streaming (bounded-memory) trace sink; see
/// [`TraceBus::streaming`].
#[derive(Debug, Clone, PartialEq)]
pub struct StreamConfig {
    /// Centroid budget of each per-field [`QuantileSketch`]; clamped to at
    /// least 8. Larger budgets tighten quantile error (~2n/budget ranks) at
    /// ~16 bytes per centroid.
    pub sketch_centroids: usize,
    /// When set, each rollup also keeps a per-window event counter over
    /// fixed windows of this width (capped at [`MAX_WINDOWS`] windows; later
    /// events saturate into the last window). `None` disables windowing.
    pub window: Option<SimDuration>,
}

/// The ceiling on per-rollup window counters a streaming sink will allocate.
pub const MAX_WINDOWS: usize = 1 << 16;

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig { sketch_centroids: QuantileSketch::DEFAULT_CENTROIDS, window: None }
    }
}

/// Online aggregation of one numeric payload field within a rollup.
#[derive(Debug, Clone, PartialEq)]
struct FieldAgg {
    /// The field name, interned in the owning bus's table.
    key: Symbol,
    stats: OnlineStats,
    sketch: QuantileSketch,
}

/// The per-`(component, event)` aggregate a streaming sink maintains in
/// place of retained events.
#[derive(Debug, Clone, PartialEq)]
struct Rollup {
    count: u64,
    first_at: SimTime,
    last_at: SimTime,
    /// One aggregate per numeric payload field, in first-seen order (the
    /// per-event field vocabulary is tiny, so a linear scan beats a map).
    fields: Vec<FieldAgg>,
    /// Event counts per time window (empty unless the sink is windowed).
    windows: Vec<u64>,
}

impl Rollup {
    fn new(at: SimTime) -> Self {
        Rollup { count: 0, first_at: at, last_at: at, fields: Vec::new(), windows: Vec::new() }
    }

    fn field_mut(&mut self, key: Symbol, sketch_centroids: usize) -> &mut FieldAgg {
        if let Some(i) = self.fields.iter().position(|f| f.key == key) {
            return &mut self.fields[i];
        }
        self.fields.push(FieldAgg {
            key,
            stats: OnlineStats::new(),
            sketch: QuantileSketch::new(sketch_centroids),
        });
        self.fields.last_mut().expect("just pushed")
    }

    fn field(&self, key: Symbol) -> Option<&FieldAgg> {
        self.fields.iter().find(|f| f.key == key)
    }
}

/// The bounded-memory aggregation state behind a streaming bus.
#[derive(Debug, Clone, PartialEq)]
struct StreamingSink {
    config: StreamConfig,
    rollups: FastHashMap<(Symbol, Symbol), Rollup>,
    total: u64,
}

impl StreamingSink {
    fn new(config: StreamConfig) -> Self {
        let config = StreamConfig {
            sketch_centroids: config.sketch_centroids.max(8),
            window: config.window.filter(|w| *w > SimDuration::ZERO),
        };
        StreamingSink { config, rollups: FastHashMap::default(), total: 0 }
    }

    /// Advances the event-level counters and returns the rollup to fold
    /// field values into.
    fn touch(&mut self, at: SimTime, component: Symbol, event: Symbol) -> &mut Rollup {
        self.total += 1;
        let window = self.config.window;
        let rollup = self.rollups.entry((component, event)).or_insert_with(|| Rollup::new(at));
        rollup.count += 1;
        rollup.first_at = rollup.first_at.min(at);
        rollup.last_at = rollup.last_at.max(at);
        if let Some(w) = window {
            let idx = (at.as_nanos() / w.as_nanos()) as usize;
            let idx = idx.min(MAX_WINDOWS - 1);
            if idx >= rollup.windows.len() {
                rollup.windows.resize(idx + 1, 0);
            }
            rollup.windows[idx] += 1;
        }
        rollup
    }

    /// Folds an already-built JSON payload (the [`TraceBus::record`] path).
    fn fold_json(
        &mut self,
        at: SimTime,
        component: Symbol,
        event: Symbol,
        payload: &Json,
        interner: &mut Interner,
    ) {
        let centroids = self.config.sketch_centroids;
        let rollup = self.touch(at, component, event);
        if let Json::Obj(entries) = payload {
            for (key, value) in entries {
                let Some(x) = value.as_f64().filter(|x| x.is_finite()) else { continue };
                let key = interner.intern(key.as_ref());
                let agg = rollup.field_mut(key, centroids);
                agg.stats.record(x);
                agg.sketch.record(x);
            }
        }
    }

    /// Folds a lazy field slice (the [`TraceBus::record_fields`] path) —
    /// no JSON object is ever built.
    fn fold_fields(
        &mut self,
        at: SimTime,
        component: Symbol,
        event: Symbol,
        fields: &[(&'static str, Field<'_>)],
        interner: &mut Interner,
    ) {
        let centroids = self.config.sketch_centroids;
        let rollup = self.touch(at, component, event);
        for &(key, value) in fields {
            let Some(x) = value.fold_f64() else { continue };
            let key = interner.intern(key);
            let agg = rollup.field_mut(key, centroids);
            agg.stats.record(x);
            agg.sketch.record(x);
        }
    }

    /// Approximate heap bytes this sink retains — the "flat memory" number
    /// the scale benchmarks track.
    fn approx_bytes(&self) -> u64 {
        let mut bytes = std::mem::size_of::<Self>() as u64;
        for rollup in self.rollups.values() {
            bytes += std::mem::size_of::<((Symbol, Symbol), Rollup)>() as u64;
            bytes += (rollup.windows.len() * std::mem::size_of::<u64>()) as u64;
            for agg in &rollup.fields {
                bytes += std::mem::size_of::<FieldAgg>() as u64;
                bytes += (agg.sketch.retained_points() * 16) as u64;
            }
        }
        bytes
    }
}

/// How a [`TraceBus`] treats records as they arrive.
#[derive(Debug, Clone, PartialEq)]
enum Sink {
    /// Retain every event (the default; serialized traces are golden-pinned).
    Full,
    /// Fold each event into bounded-memory rollups and drop it.
    Streaming(Box<StreamingSink>),
}

/// The append-only, seed-deterministic record of one simulation run.
///
/// Owned by [`crate::engine::Simulation`]; actors append through
/// [`crate::engine::Context::emit`], and the experiment harness reads it
/// back after the run (or takes it with
/// [`crate::engine::Simulation::take_trace`]).
#[derive(Debug)]
pub struct TraceBus {
    events: Vec<TraceEvent>,
    interner: Interner,
    sink: Sink,
    /// Built on first query, maintained incrementally by later records.
    /// Purely derived state: ignored by `Clone`/`PartialEq`.
    index: RefCell<Option<QueryIndex>>,
}

impl Default for TraceBus {
    fn default() -> Self {
        TraceBus {
            events: Vec::new(),
            interner: Interner::new(),
            sink: Sink::Full,
            index: RefCell::new(None),
        }
    }
}

impl Clone for TraceBus {
    fn clone(&self) -> Self {
        TraceBus {
            events: self.events.clone(),
            interner: self.interner.clone(),
            sink: self.sink.clone(),
            index: RefCell::new(None),
        }
    }
}

impl PartialEq for TraceBus {
    fn eq(&self, other: &Self) -> bool {
        self.events == other.events && self.interner == other.interner && self.sink == other.sink
    }
}

impl TraceBus {
    /// An empty full-retention bus (every record kept; serialized traces are
    /// byte-identical across same-seed runs).
    pub fn new() -> Self {
        TraceBus::default()
    }

    /// An empty streaming bus: records are folded into bounded-memory
    /// per-`(component, event)` rollups — counts, per-field [`OnlineStats`]
    /// and [`QuantileSketch`]es, and optional per-window counters — at
    /// [`record`] time, then dropped.
    ///
    /// In this mode [`events`] stays empty and [`select`]/[`series`]/the
    /// serializers return nothing; use the mode-agnostic aggregate queries
    /// ([`count`], [`counts`], [`recorded`], [`field_stats`],
    /// [`field_quantile`], [`window_counts`]) instead.
    ///
    /// [`record`]: TraceBus::record
    /// [`events`]: TraceBus::events
    /// [`select`]: TraceBus::select
    /// [`series`]: TraceBus::series
    /// [`count`]: TraceBus::count
    /// [`counts`]: TraceBus::counts
    /// [`recorded`]: TraceBus::recorded
    /// [`field_stats`]: TraceBus::field_stats
    /// [`field_quantile`]: TraceBus::field_quantile
    /// [`window_counts`]: TraceBus::window_counts
    pub fn streaming(config: StreamConfig) -> Self {
        TraceBus { sink: Sink::Streaming(Box::new(StreamingSink::new(config))), ..TraceBus::default() }
    }

    /// Whether this bus aggregates instead of retaining events.
    pub fn is_streaming(&self) -> bool {
        matches!(self.sink, Sink::Streaming(_))
    }

    /// Appends one record, interning `component` and `event` (allocation-free
    /// after each name's first appearance).
    pub fn record(&mut self, at: SimTime, component: &str, event: &str, payload: Json) {
        let component = self.interner.intern(component);
        let event = self.interner.intern(event);
        self.record_interned(at, component, event, payload);
    }

    /// Appends one record with pre-interned identity — the fastest path for
    /// emitters that hold their symbols.
    pub fn record_interned(&mut self, at: SimTime, component: Symbol, event: Symbol, payload: Json) {
        match &mut self.sink {
            Sink::Full => {
                let idx = u32::try_from(self.events.len()).expect("trace bus overflow");
                self.events.push(TraceEvent { at, component, event, payload });
                if let Some(index) = self.index.get_mut().as_mut() {
                    index.entry((component, event)).or_default().push(idx);
                }
            }
            Sink::Streaming(sink) => {
                sink.fold_json(at, component, event, &payload, &mut self.interner);
            }
        }
    }

    /// Records one event from a stack slice of scalar fields — the lazy hot
    /// path. A full-retention bus materializes exactly the [`Json`] object
    /// [`payload`] would have built (serialized bytes are unchanged); a
    /// streaming bus folds the numeric fields into its rollups without
    /// building any payload at all.
    pub fn record_fields(
        &mut self,
        at: SimTime,
        component: &str,
        event: &str,
        fields: &[(&'static str, Field<'_>)],
    ) {
        let component = self.interner.intern(component);
        let event = self.interner.intern(event);
        self.record_fields_interned(at, component, event, fields);
    }

    /// [`record_fields`] with pre-interned identity.
    ///
    /// [`record_fields`]: TraceBus::record_fields
    pub fn record_fields_interned(
        &mut self,
        at: SimTime,
        component: Symbol,
        event: Symbol,
        fields: &[(&'static str, Field<'_>)],
    ) {
        match &mut self.sink {
            Sink::Full => {
                let payload = Json::Obj(
                    fields
                        .iter()
                        .map(|&(k, v)| (codec::JsonKey::Borrowed(k), v.to_json()))
                        .collect(),
                );
                let idx = u32::try_from(self.events.len()).expect("trace bus overflow");
                self.events.push(TraceEvent { at, component, event, payload });
                if let Some(index) = self.index.get_mut().as_mut() {
                    index.entry((component, event)).or_default().push(idx);
                }
            }
            Sink::Streaming(sink) => {
                sink.fold_fields(at, component, event, fields, &mut self.interner);
            }
        }
    }

    /// Interns a name in this bus's string table (see [`Interner::intern`]).
    pub fn intern(&mut self, name: &str) -> Symbol {
        self.interner.intern(name)
    }

    /// The bus's string table, for resolving [`TraceEvent`] symbols.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// All retained records, in emission order (which equals delivery order,
    /// so it is identical across same-seed runs). Always empty on a
    /// streaming bus — use [`TraceBus::recorded`] for the events-seen count.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of retained records (0 on a streaming bus).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Total records ever offered to the bus, whatever the sink did with
    /// them — the mode-agnostic event counter.
    pub fn recorded(&self) -> u64 {
        match &self.sink {
            Sink::Full => self.events.len() as u64,
            Sink::Streaming(sink) => sink.total,
        }
    }

    /// Whether nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.recorded() == 0
    }

    /// Drops all records and rollups (the string table and its symbols stay
    /// valid, and the sink keeps its mode and configuration).
    pub fn clear(&mut self) {
        self.events.clear();
        if let Sink::Streaming(sink) = &mut self.sink {
            sink.rollups.clear();
            sink.total = 0;
        }
        *self.index.get_mut() = None;
    }

    /// Runs `f` over the query index, building it on first use.
    fn with_index<R>(&self, f: impl FnOnce(&QueryIndex) -> R) -> R {
        let mut slot = self.index.borrow_mut();
        let index = slot.get_or_insert_with(|| {
            let mut index = QueryIndex::default();
            for (i, e) in self.events.iter().enumerate() {
                index.entry((e.component, e.event)).or_default().push(i as u32);
            }
            index
        });
        f(index)
    }

    /// Looks up the symbols of a `(component, event)` pair without interning.
    fn lookup_pair(&self, component: &str, event: &str) -> Option<(Symbol, Symbol)> {
        Some((self.interner.lookup(component)?, self.interner.lookup(event)?))
    }

    /// The records matching one `(component, event)` pair, in order. The
    /// query folds inside the index borrow — no index clone, one output
    /// allocation. Always empty on a streaming bus.
    pub fn select(&self, component: &str, event: &str) -> Vec<&TraceEvent> {
        let Some(key) = self.lookup_pair(component, event) else { return Vec::new() };
        let events = &self.events;
        self.with_index(|index| {
            index.get(&key).map_or_else(Vec::new, |indices| {
                indices.iter().map(|&i| &events[i as usize]).collect()
            })
        })
    }

    /// Number of records matching one `(component, event)` pair (works in
    /// both retention modes).
    pub fn count(&self, component: &str, event: &str) -> usize {
        let Some(key) = self.lookup_pair(component, event) else { return 0 };
        match &self.sink {
            Sink::Full => self.with_index(|index| index.get(&key).map_or(0, Vec::len)),
            Sink::Streaming(sink) => {
                sink.rollups.get(&key).map_or(0, |r| r.count as usize)
            }
        }
    }

    /// Event counts per `(component, event)`, sorted for deterministic
    /// report rows (works in both retention modes). Each name is resolved
    /// once per distinct pair, not once per event.
    pub fn counts(&self) -> Vec<(String, String, u64)> {
        let mut rows: Vec<(String, String, u64)> = match &self.sink {
            Sink::Full => self.with_index(|index| {
                index
                    .iter()
                    .map(|(&(c, e), indices)| {
                        (
                            self.interner.resolve(c).to_owned(),
                            self.interner.resolve(e).to_owned(),
                            indices.len() as u64,
                        )
                    })
                    .collect()
            }),
            Sink::Streaming(sink) => sink
                .rollups
                .iter()
                .map(|(&(c, e), rollup)| {
                    (
                        self.interner.resolve(c).to_owned(),
                        self.interner.resolve(e).to_owned(),
                        rollup.count,
                    )
                })
                .collect(),
        };
        rows.sort_unstable();
        rows
    }

    /// The sorted distinct component names on the bus (works in both
    /// retention modes).
    pub fn components(&self) -> Vec<String> {
        let mut symbols: Vec<Symbol> = match &self.sink {
            Sink::Full => self.with_index(|index| index.keys().map(|&(c, _)| c).collect()),
            Sink::Streaming(sink) => sink.rollups.keys().map(|&(c, _)| c).collect(),
        };
        symbols.sort_unstable();
        symbols.dedup();
        let mut names: Vec<String> =
            symbols.into_iter().map(|c| self.interner.resolve(c).to_owned()).collect();
        names.sort_unstable();
        names
    }

    /// The `(instant, value)` series of a numeric payload field across
    /// matching records (records without the field are skipped). The filter
    /// folds inside the index borrow — no index clone. Always empty on a
    /// streaming bus (the per-event series is exactly what streaming gives
    /// up; use [`TraceBus::field_stats`] / [`TraceBus::field_quantile`]).
    pub fn series(&self, component: &str, event: &str, field: &str) -> Vec<(SimTime, f64)> {
        let Some(key) = self.lookup_pair(component, event) else { return Vec::new() };
        let events = &self.events;
        self.with_index(|index| {
            index.get(&key).map_or_else(Vec::new, |indices| {
                indices
                    .iter()
                    .filter_map(|&i| {
                        let e = &events[i as usize];
                        e.field_f64(field).map(|x| (e.at, x))
                    })
                    .collect()
            })
        })
    }

    /// Online statistics of a numeric payload field across matching records;
    /// `None` when no matching record carries the field. On a full bus this
    /// folds the retained series (exact); on a streaming bus it reads the
    /// rollup, which folded the same values in the same order — the two
    /// modes agree bit-for-bit.
    pub fn field_stats(&self, component: &str, event: &str, field: &str) -> Option<OnlineStats> {
        let key = self.lookup_pair(component, event)?;
        match &self.sink {
            Sink::Full => {
                let mut stats = OnlineStats::new();
                for (_, x) in self.series(component, event, field) {
                    stats.record(x);
                }
                if stats.count() == 0 { None } else { Some(stats) }
            }
            Sink::Streaming(sink) => {
                let field = self.interner.lookup(field)?;
                let agg = sink.rollups.get(&key)?.field(field)?;
                Some(agg.stats.clone())
            }
        }
    }

    /// The `q`-quantile of a numeric payload field across matching records;
    /// `None` when no matching record carries the field. Exact (sort-based)
    /// on a full bus; within the sketch's rank-error bound on a streaming
    /// bus.
    pub fn field_quantile(&self, component: &str, event: &str, field: &str, q: f64) -> Option<f64> {
        match &self.sink {
            Sink::Full => {
                let xs: Vec<f64> =
                    self.series(component, event, field).into_iter().map(|(_, x)| x).collect();
                crate::metrics::quantile(&xs, q)
            }
            Sink::Streaming(sink) => {
                let key = self.lookup_pair(component, event)?;
                let field = self.interner.lookup(field)?;
                sink.rollups.get(&key)?.field(field)?.sketch.quantile(q)
            }
        }
    }

    /// Per-window event counts of one `(component, event)` pair, from window
    /// 0 up to the last populated window. `None` unless this is a streaming
    /// bus configured with a [`StreamConfig::window`]; empty when the pair
    /// never recorded.
    pub fn window_counts(&self, component: &str, event: &str) -> Option<Vec<u64>> {
        let Sink::Streaming(sink) = &self.sink else { return None };
        sink.config.window?;
        let Some(key) = self.lookup_pair(component, event) else { return Some(Vec::new()) };
        Some(sink.rollups.get(&key).map_or_else(Vec::new, |r| r.windows.clone()))
    }

    /// The `[first, last]` instants of one `(component, event)` pair, in
    /// either retention mode; `None` when the pair never recorded.
    pub fn time_span(&self, component: &str, event: &str) -> Option<(SimTime, SimTime)> {
        let key = self.lookup_pair(component, event)?;
        match &self.sink {
            Sink::Full => {
                let events = &self.events;
                self.with_index(|index| {
                    let indices = index.get(&key)?;
                    let first = events[*indices.first()? as usize].at;
                    let last = events[*indices.last()? as usize].at;
                    Some((first, last))
                })
            }
            Sink::Streaming(sink) => {
                sink.rollups.get(&key).map(|r| (r.first_at, r.last_at))
            }
        }
    }

    /// Approximate heap bytes the bus retains: event storage plus payload
    /// heap on a full bus, rollup state on a streaming bus (plus the string
    /// table in both). Deterministic for a deterministic run — the memory
    /// column the scale benchmarks and `scale_stress` report.
    pub fn approx_retained_bytes(&self) -> u64 {
        let mut bytes: u64 = self.interner.names().map(|n| n.len() as u64 + 16).sum();
        match &self.sink {
            Sink::Full => {
                bytes += (self.events.len() * std::mem::size_of::<TraceEvent>()) as u64;
                for e in &self.events {
                    bytes += json_heap_bytes(&e.payload);
                }
            }
            Sink::Streaming(sink) => {
                bytes += sink.approx_bytes();
            }
        }
        bytes
    }

    /// Appends every record of `other` (used to merge buses of sequential
    /// runs; records keep their original instants). Symbols are re-interned
    /// into this bus's table, so merged buses stay self-contained.
    ///
    /// A streaming `other` merges its rollups into a streaming `self`
    /// (counts and min/max exactly, statistics via parallel Welford, sketch
    /// quantiles within their rank-error bound, window counters
    /// element-wise).
    ///
    /// # Panics
    /// Panics when `other` is streaming and `self` retains events — dropped
    /// events cannot be reconstructed.
    pub fn extend_from(&mut self, other: TraceBus) {
        // Map other-bus symbol ids to this bus's ids once, not per event.
        let remap: Vec<Symbol> =
            other.interner.names().map(|name| self.interner.intern(name)).collect();
        match other.sink {
            Sink::Full => {
                for e in other.events {
                    self.record_interned(
                        e.at,
                        remap[e.component.index()],
                        remap[e.event.index()],
                        e.payload,
                    );
                }
            }
            Sink::Streaming(other_sink) => {
                let Sink::Streaming(sink) = &mut self.sink else {
                    panic!("cannot merge a streaming trace into a full-retention bus");
                };
                sink.total += other_sink.total;
                for ((c, e), rollup) in other_sink.rollups {
                    let key = (remap[c.index()], remap[e.index()]);
                    match sink.rollups.entry(key) {
                        std::collections::hash_map::Entry::Vacant(slot) => {
                            let mut rollup = rollup;
                            for agg in &mut rollup.fields {
                                agg.key = remap[agg.key.index()];
                            }
                            slot.insert(rollup);
                        }
                        std::collections::hash_map::Entry::Occupied(mut slot) => {
                            let mine = slot.get_mut();
                            mine.count += rollup.count;
                            mine.first_at = mine.first_at.min(rollup.first_at);
                            mine.last_at = mine.last_at.max(rollup.last_at);
                            if mine.windows.len() < rollup.windows.len() {
                                mine.windows.resize(rollup.windows.len(), 0);
                            }
                            for (w, n) in rollup.windows.iter().enumerate() {
                                mine.windows[w] += n;
                            }
                            let centroids = sink.config.sketch_centroids;
                            for agg in rollup.fields {
                                let key = remap[agg.key.index()];
                                let mine = mine.field_mut(key, centroids);
                                mine.stats.merge(&agg.stats);
                                mine.sketch.merge(&agg.sketch);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Appends one event's JSON object form (symbols resolved back to
    /// strings — the exact encoding of the pre-interning bus).
    fn encode_event_into(&self, e: &TraceEvent, out: &mut String) {
        out.push_str("{\"at\":");
        e.at.to_json().encode_into(out);
        out.push_str(",\"component\":");
        codec::encode_str(self.interner.resolve(e.component), out);
        out.push_str(",\"event\":");
        codec::encode_str(self.interner.resolve(e.event), out);
        out.push_str(",\"payload\":");
        e.payload.encode_into(out);
        out.push('}');
    }

    /// The whole bus as one deterministic JSON array.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        out.push('[');
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            self.encode_event_into(e, &mut out);
        }
        out.push(']');
        out
    }

    /// The bus as JSON-lines (one record per line), the format used by the
    /// determinism diff gate.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            self.encode_event_into(e, &mut out);
            out.push('\n');
        }
        out
    }

    /// Rebuilds a bus from the array form [`TraceBus::to_json_string`]
    /// writes, re-interning every name.
    ///
    /// # Errors
    /// Returns [`McsError::Json`] for malformed text and
    /// [`McsError::Decode`] when a record lacks the trace schema.
    pub fn from_json_str(text: &str) -> Result<TraceBus, McsError> {
        let doc = Json::parse(text)?;
        let Json::Arr(items) = doc else {
            return Err(McsError::decode("a trace event array", "non-array document"));
        };
        let mut bus = TraceBus::new();
        for item in items {
            let at: SimTime = item.field("at")?;
            let component: String = item.field("component")?;
            let event: String = item.field("event")?;
            let payload = item.get("payload").cloned().unwrap_or(Json::Null);
            bus.record(at, &component, &event, payload);
        }
        Ok(bus)
    }
}

/// Rough heap footprint of one payload value: string bytes plus vector
/// slots, recursively. An estimate (allocator overhead and spare capacity
/// are ignored), but a deterministic one.
fn json_heap_bytes(value: &Json) -> u64 {
    match value {
        Json::Str(s) => s.len() as u64,
        Json::Arr(items) => items
            .iter()
            .map(|v| std::mem::size_of::<Json>() as u64 + json_heap_bytes(v))
            .sum(),
        Json::Obj(fields) => fields
            .iter()
            .map(|(k, v)| {
                let key_bytes = match k {
                    codec::JsonKey::Owned(s) => s.len() as u64,
                    codec::JsonKey::Borrowed(_) => 0,
                };
                std::mem::size_of::<(codec::JsonKey, Json)>() as u64
                    + key_bytes
                    + json_heap_bytes(v)
            })
            .sum(),
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus() -> TraceBus {
        let mut b = TraceBus::new();
        b.record(
            SimTime::from_secs(1),
            "rms",
            "task_finish",
            payload(vec![("wait_secs", Json::Float(2.5))]),
        );
        b.record(
            SimTime::from_secs(2),
            "faas",
            "invoke",
            payload(vec![("latency_secs", Json::Float(0.1)), ("cold", Json::Bool(true))]),
        );
        b.record(
            SimTime::from_secs(3),
            "rms",
            "task_finish",
            payload(vec![("wait_secs", Json::Float(0.5))]),
        );
        b
    }

    #[test]
    fn counts_are_sorted_and_complete() {
        let counts = bus().counts();
        assert_eq!(
            counts,
            vec![
                ("faas".into(), "invoke".into(), 1),
                ("rms".into(), "task_finish".into(), 2),
            ]
        );
    }

    #[test]
    fn select_and_series_filter_by_kind() {
        let b = bus();
        assert_eq!(b.select("rms", "task_finish").len(), 2);
        assert_eq!(b.count("faas", "invoke"), 1);
        let series = b.series("rms", "task_finish", "wait_secs");
        assert_eq!(series, vec![(SimTime::from_secs(1), 2.5), (SimTime::from_secs(3), 0.5)]);
    }

    #[test]
    fn queries_on_unknown_names_are_empty_not_panics() {
        let b = bus();
        assert_eq!(b.count("nope", "invoke"), 0);
        assert_eq!(b.count("faas", "nope"), 0);
        assert!(b.select("nope", "nope").is_empty());
        assert!(b.series("nope", "nope", "x").is_empty());
    }

    #[test]
    fn index_stays_correct_across_interleaved_records() {
        let mut b = bus();
        // Force the index to exist, then keep recording.
        assert_eq!(b.count("faas", "invoke"), 1);
        b.record(SimTime::from_secs(4), "faas", "invoke", payload(vec![]));
        b.record(SimTime::from_secs(5), "new-component", "boot", payload(vec![]));
        assert_eq!(b.count("faas", "invoke"), 2);
        assert_eq!(b.count("new-component", "boot"), 1);
        assert_eq!(b.select("faas", "invoke").len(), 2);
        b.clear();
        assert_eq!(b.count("faas", "invoke"), 0);
    }

    #[test]
    fn field_accessors_handle_missing_fields() {
        let b = bus();
        let e = &b.events()[1];
        assert_eq!(e.field_f64("latency_secs"), Some(0.1));
        assert_eq!(e.field_f64("nope"), None);
        assert_eq!(e.field_str("nope"), None);
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let b = bus();
        let json = b.to_json_string();
        let back = TraceBus::from_json_str(&json).unwrap();
        assert_eq!(back, b);
        assert_eq!(back.to_json_string(), json);
        assert_eq!(b.to_jsonl().lines().count(), b.len());
    }

    #[test]
    fn serialization_matches_the_un_interned_encoding() {
        // The reference encoding the pre-interning bus produced via
        // `impl_json!(struct TraceEvent { at, component, event, payload })`.
        let b = bus();
        let reference: Vec<Json> = b
            .events()
            .iter()
            .map(|e| {
                Json::Obj(vec![
                    ("at".into(), e.at.to_json()),
                    ("component".into(), Json::Str(b.interner().resolve(e.component).into())),
                    ("event".into(), Json::Str(b.interner().resolve(e.event).into())),
                    ("payload".into(), e.payload.clone()),
                ])
            })
            .collect();
        assert_eq!(b.to_json_string(), Json::Arr(reference).encode());
    }

    #[test]
    fn components_sorted_unique() {
        assert_eq!(bus().components(), vec!["faas".to_owned(), "rms".to_owned()]);
    }

    /// The same record stream sent to either sink mode.
    fn drive(bus: &mut TraceBus) {
        for i in 0..500u64 {
            let at = SimTime::from_secs(i);
            bus.record(
                at,
                "faas",
                "invoke",
                payload(vec![
                    ("latency_secs", Json::Float(0.01 * (i % 37) as f64)),
                    ("cold", Json::Bool(i % 10 == 0)),
                ]),
            );
            if i % 3 == 0 {
                bus.record_fields(
                    at,
                    "rms",
                    "task_finish",
                    &[("wait_secs", Field::F64(0.5 * (i % 11) as f64)), ("job", Field::Str("j"))],
                );
            }
        }
    }

    #[test]
    fn streaming_counts_match_full_retention() {
        let mut full = TraceBus::new();
        let mut stream = TraceBus::streaming(StreamConfig::default());
        drive(&mut full);
        drive(&mut stream);
        assert!(stream.is_streaming() && !full.is_streaming());
        assert_eq!(stream.len(), 0);
        assert!(stream.events().is_empty());
        assert_eq!(stream.recorded(), full.recorded());
        assert_eq!(stream.counts(), full.counts());
        assert_eq!(stream.components(), full.components());
        assert_eq!(stream.count("faas", "invoke"), full.count("faas", "invoke"));
        assert_eq!(stream.count("nope", "invoke"), 0);
        assert_eq!(stream.time_span("faas", "invoke"), full.time_span("faas", "invoke"));
        assert_eq!(full.time_span("nope", "x"), None);
    }

    #[test]
    fn streaming_field_stats_are_bit_identical_to_full() {
        let mut full = TraceBus::new();
        let mut stream = TraceBus::streaming(StreamConfig::default());
        drive(&mut full);
        drive(&mut stream);
        let a = full.field_stats("faas", "invoke", "latency_secs").unwrap();
        let b = stream.field_stats("faas", "invoke", "latency_secs").unwrap();
        assert_eq!(a, b); // same values folded in the same order
        assert!(full.field_stats("faas", "invoke", "nope").is_none());
        assert!(stream.field_stats("faas", "invoke", "nope").is_none());
        // Bool and Str fields are not numeric in either mode.
        assert!(stream.field_stats("faas", "invoke", "cold").is_none());
        assert!(stream.field_stats("rms", "task_finish", "job").is_none());
    }

    #[test]
    fn streaming_quantiles_stay_within_sketch_bounds() {
        let mut full = TraceBus::new();
        let mut stream = TraceBus::streaming(StreamConfig::default());
        drive(&mut full);
        drive(&mut stream);
        for q in [0.0, 0.5, 0.95, 1.0] {
            let exact = full.field_quantile("faas", "invoke", "latency_secs", q).unwrap();
            let est = stream.field_quantile("faas", "invoke", "latency_secs", q).unwrap();
            // 500 samples over a 0.36-wide range at 128 centroids: generous.
            assert!((est - exact).abs() < 0.05, "q={q}: {est} vs {exact}");
        }
        assert!(full.field_quantile("faas", "invoke", "nope", 0.5).is_none());
        assert!(stream.field_quantile("faas", "invoke", "nope", 0.5).is_none());
    }

    #[test]
    fn streaming_windows_count_events_per_interval() {
        let config =
            StreamConfig { window: Some(SimDuration::from_secs(100)), ..StreamConfig::default() };
        let mut bus = TraceBus::streaming(config);
        drive(&mut bus);
        // 500 one-per-second invokes over 100 s windows: five full windows.
        assert_eq!(bus.window_counts("faas", "invoke"), Some(vec![100; 5]));
        assert_eq!(bus.window_counts("never", "seen"), Some(Vec::new()));
        // No window configured (or full retention): no window counters.
        assert_eq!(TraceBus::streaming(StreamConfig::default()).window_counts("a", "b"), None);
        assert_eq!(TraceBus::new().window_counts("faas", "invoke"), None);
    }

    #[test]
    fn streaming_retained_bytes_stay_flat() {
        let mut small = TraceBus::streaming(StreamConfig::default());
        let mut big = TraceBus::streaming(StreamConfig::default());
        let mut full = TraceBus::new();
        drive(&mut small);
        for _ in 0..20 {
            drive(&mut big);
            drive(&mut full);
        }
        // 20x the events: full retention grows ~20x, streaming stays put.
        assert!(full.approx_retained_bytes() > 10 * small.approx_retained_bytes());
        assert!(big.approx_retained_bytes() < 2 * small.approx_retained_bytes());
    }

    #[test]
    fn streaming_extend_from_merges_rollups() {
        let mut a = TraceBus::streaming(StreamConfig::default());
        let mut b = TraceBus::streaming(StreamConfig::default());
        let mut whole = TraceBus::streaming(StreamConfig::default());
        drive(&mut a);
        drive(&mut whole);
        // b has a different intern order plus an rollup unknown to a.
        b.record(SimTime::ZERO, "zzz", "boot", payload(vec![("n", Json::UInt(1))]));
        drive(&mut b);
        whole.record(SimTime::ZERO, "zzz", "boot", payload(vec![("n", Json::UInt(1))]));
        drive(&mut whole);
        a.extend_from(b);
        assert_eq!(a.recorded(), whole.recorded());
        assert_eq!(a.counts(), whole.counts());
        assert_eq!(a.count("zzz", "boot"), 1);
        let merged = a.field_stats("faas", "invoke", "latency_secs").unwrap();
        let direct = whole.field_stats("faas", "invoke", "latency_secs").unwrap();
        assert_eq!(merged.count(), direct.count());
        assert!((merged.mean() - direct.mean()).abs() < 1e-12);
        // A full bus folds into a streaming one; the reverse must refuse.
        let mut full_src = TraceBus::new();
        drive(&mut full_src);
        let mut stream_dst = TraceBus::streaming(StreamConfig::default());
        stream_dst.extend_from(full_src.clone());
        assert_eq!(stream_dst.counts(), full_src.counts());
    }

    #[test]
    #[should_panic(expected = "cannot merge a streaming trace")]
    fn full_bus_refuses_streaming_merge() {
        let mut full = TraceBus::new();
        let mut stream = TraceBus::streaming(StreamConfig::default());
        stream.record(SimTime::ZERO, "a", "b", payload(vec![]));
        full.extend_from(stream);
    }

    #[test]
    fn record_fields_matches_payload_bytes_in_full_mode() {
        let mut via_payload = TraceBus::new();
        via_payload.record(
            SimTime::from_secs(1),
            "net",
            "flow_end",
            payload(vec![
                ("owner", Json::Str("faas".to_owned())),
                ("id", Json::UInt(7)),
                ("delta", Json::Int(-2)),
                ("stalled", Json::Bool(false)),
                ("secs", Json::Float(0.25)),
            ]),
        );
        let mut via_fields = TraceBus::new();
        via_fields.record_fields(
            SimTime::from_secs(1),
            "net",
            "flow_end",
            &[
                ("owner", Field::Str("faas")),
                ("id", Field::U64(7)),
                ("delta", Field::I64(-2)),
                ("stalled", Field::Bool(false)),
                ("secs", Field::F64(0.25)),
            ],
        );
        assert_eq!(via_fields, via_payload);
        assert_eq!(via_fields.to_json_string(), via_payload.to_json_string());
    }

    #[test]
    fn streaming_clear_resets_rollups_but_keeps_mode() {
        let mut bus = TraceBus::streaming(StreamConfig::default());
        drive(&mut bus);
        assert!(!bus.is_empty());
        bus.clear();
        assert!(bus.is_empty() && bus.is_streaming());
        assert_eq!(bus.recorded(), 0);
        assert!(bus.counts().is_empty());
        drive(&mut bus);
        assert_eq!(bus.count("faas", "invoke"), 500);
    }

    #[test]
    fn extend_from_appends_and_remaps_symbols() {
        let mut a = bus();
        let n = a.len();
        a.extend_from(bus());
        assert_eq!(a.len(), 2 * n);
        assert_eq!(a.count("rms", "task_finish"), 4);

        // A bus with a different intern order must merge by name, not id.
        let mut other = TraceBus::new();
        other.record(SimTime::from_secs(9), "zzz", "boot", payload(vec![]));
        other.record(SimTime::from_secs(10), "rms", "task_finish", payload(vec![]));
        a.extend_from(other);
        assert_eq!(a.count("zzz", "boot"), 1);
        assert_eq!(a.count("rms", "task_finish"), 5);
    }
}
