//! The discrete-event simulation engine.
//!
//! The engine is deliberately minimal and deterministic: a binary-heap event
//! queue over virtual [`SimTime`], a set of actors addressed by [`ActorId`],
//! and a [`Context`] through which actors schedule future events. Events that
//! share a timestamp are delivered in scheduling order (a monotone sequence
//! number breaks ties), which — together with the per-component RNG streams
//! of [`crate::rng`] — makes every run bit-for-bit reproducible.
//!
//! Every subsystem simulation in the workspace drives this engine: the RMS
//! scheduler, the autoscaled service, the FaaS platform, and the failure
//! injector each define a message enum and an [`Actor`] impl, and composed
//! scenarios (see `mcs-core`) run several of them in one [`Simulation`].
//! While handling messages, actors emit structured records into the
//! simulation's [`TraceBus`] via [`Context::emit`]; the bus is the single
//! observable artifact of a run.
//!
//! Scheduling calls return an [`EventToken`]; pending events can be revoked
//! with [`Context::cancel`] / [`Simulation::cancel`], which timer-driven
//! actors (autoscalers, repair processes) use to retract obsolete wake-ups.
//!
//! # Examples
//! ```
//! use mcs_simcore::engine::{Actor, Context, Simulation};
//! use mcs_simcore::time::{SimDuration, SimTime};
//!
//! #[derive(Debug)]
//! enum Msg { Ping(u32) }
//!
//! struct Counter { seen: u32 }
//! impl Actor<Msg> for Counter {
//!     fn handle(&mut self, ctx: &mut Context<'_, Msg>, msg: Msg) {
//!         let Msg::Ping(n) = msg;
//!         self.seen += n;
//!         if n < 3 {
//!             ctx.send_self(SimDuration::from_secs(1), Msg::Ping(n + 1));
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(42);
//! let id = sim.add_actor(Counter { seen: 0 });
//! sim.schedule(SimTime::ZERO, id, Msg::Ping(1));
//! sim.run();
//! assert_eq!(sim.now(), SimTime::from_secs(2));
//! ```

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

use crate::codec::Json;
use crate::error::McsError;
use crate::intern::FastHashSet;
use crate::rng::RngStream;
use crate::time::{SimDuration, SimTime};
use crate::trace::{Field, TraceBus};

/// Identifies an actor registered with a [`Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(usize);

impl ActorId {
    /// The id an actor will receive if it is the `index`-th registration
    /// (0-based) of its simulation.
    ///
    /// Needed when actors must know each other's ids before any of them is
    /// registered (mutually-referencing scenario wiring); pair with a
    /// `debug_assert_eq!` against the id [`Simulation::add_actor`] returns.
    pub fn from_index(index: usize) -> Self {
        ActorId(index)
    }

    /// The raw index of the actor in registration order.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "actor#{}", self.0)
    }
}

/// A handle to one scheduled event, returned by every scheduling call.
///
/// Passing it to [`Context::cancel`] or [`Simulation::cancel`] revokes the
/// event if it has not been delivered yet; cancelling an already-delivered
/// (or already-cancelled) event is a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventToken(u64);

/// A simulation participant: receives messages at virtual instants.
pub trait Actor<M> {
    /// Handles one message delivered at `ctx.now()`.
    fn handle(&mut self, ctx: &mut Context<'_, M>, msg: M);
}

/// Mutable borrows participate directly, so callers can register
/// `&mut actor`, run the simulation, and inspect the actor afterwards.
impl<M, A: Actor<M> + ?Sized> Actor<M> for &mut A {
    fn handle(&mut self, ctx: &mut Context<'_, M>, msg: M) {
        (**self).handle(ctx, msg)
    }
}

impl<M, A: Actor<M> + ?Sized> Actor<M> for Box<A> {
    fn handle(&mut self, ctx: &mut Context<'_, M>, msg: M) {
        (**self).handle(ctx, msg)
    }
}

/// Embeds a subsystem's message enum into a composed simulation's message
/// type, so one `Actor` impl serves both the subsystem's own single-actor
/// wrapper (where `Self == Inner`) and any scenario that unions several
/// subsystem enums.
///
/// Laws: `M::wrap(x).unwrap() == Some(x)`, and `unwrap` returns `None`
/// exactly for variants belonging to other subsystems.
pub trait MessageEnvelope<Inner>: Sized {
    /// Wraps a subsystem message into the envelope type.
    fn wrap(inner: Inner) -> Self;
    /// Extracts the subsystem message, or `None` if the envelope carries a
    /// different subsystem's message.
    fn unwrap(self) -> Option<Inner>;
}

/// Every message type trivially envelopes itself.
impl<T> MessageEnvelope<T> for T {
    fn wrap(inner: T) -> T {
        inner
    }
    fn unwrap(self) -> Option<T> {
        Some(self)
    }
}

struct Scheduled<M> {
    at: SimTime,
    seq: u64,
    target: ActorId,
    msg: M,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we need earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The scheduling surface handed to actors while they handle a message.
pub struct Context<'a, M> {
    now: SimTime,
    self_id: ActorId,
    outbox: &'a mut Vec<(SimTime, ActorId, M, u64)>,
    seq: &'a mut u64,
    cancelled: &'a mut FastHashSet<u64>,
    trace: &'a mut TraceBus,
    rng: &'a mut RngStream,
    stop_requested: &'a mut bool,
}

impl<'a, M> Context<'a, M> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the actor currently handling a message.
    pub fn self_id(&self) -> ActorId {
        self.self_id
    }

    fn push(&mut self, at: SimTime, target: ActorId, msg: M) -> EventToken {
        let seq = *self.seq;
        *self.seq += 1;
        self.outbox.push((at, target, msg, seq));
        EventToken(seq)
    }

    /// Schedules `msg` for `target` after `delay`.
    pub fn send(&mut self, target: ActorId, delay: SimDuration, msg: M) -> EventToken {
        let at = self.now + delay;
        self.push(at, target, msg)
    }

    /// Schedules `msg` for the current actor after `delay`.
    pub fn send_self(&mut self, delay: SimDuration, msg: M) -> EventToken {
        let id = self.self_id;
        self.send(id, delay, msg)
    }

    /// Schedules `msg` for `target` at an absolute instant.
    ///
    /// # Panics
    /// Panics if `at` is in the simulated past.
    pub fn send_at(&mut self, target: ActorId, at: SimTime, msg: M) -> EventToken {
        assert!(at >= self.now, "cannot schedule into the past");
        self.push(at, target, msg)
    }

    /// Revokes a pending event; a no-op if it was already delivered or
    /// cancelled.
    pub fn cancel(&mut self, token: EventToken) {
        self.cancelled.insert(token.0);
    }

    /// Emits a structured record onto the simulation's [`TraceBus`] at the
    /// current instant.
    pub fn emit(&mut self, component: &str, event: &str, payload: Json) {
        self.trace.record(self.now, component, event, payload);
    }

    /// Emits a record from a stack slice of scalar [`Field`]s — the lazy
    /// hot path. On the default full-retention bus this produces exactly
    /// the bytes [`Context::emit`] with [`crate::trace::payload`] would
    /// have; on a streaming bus the fields are folded into rollups without
    /// building a payload at all.
    pub fn emit_fields(&mut self, component: &str, event: &str, fields: &[(&'static str, Field<'_>)]) {
        self.trace.record_fields(self.now, component, event, fields);
    }

    /// The simulation-wide RNG stream (actors with their own stochastic
    /// behaviour should hold their own [`RngStream`] instead).
    pub fn rng(&mut self) -> &mut RngStream {
        self.rng
    }

    /// Asks the engine to stop after the current message is handled.
    pub fn stop(&mut self) {
        *self.stop_requested = true;
    }
}

/// A deterministic discrete-event simulation over message type `M`.
///
/// The lifetime `'a` bounds the actors: owned actors are `'static`, while
/// `&mut actor` registrations borrow from the caller, who regains access to
/// the actor (for outcome extraction) once the simulation is dropped.
pub struct Simulation<'a, M> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Scheduled<M>>,
    actors: Vec<Box<dyn Actor<M> + 'a>>,
    rng: RngStream,
    events_handled: u64,
    horizon: Option<SimTime>,
    cancelled: FastHashSet<u64>,
    trace: TraceBus,
    /// Reused across `step` calls so dispatch does not allocate per event.
    outbox_scratch: Vec<(SimTime, ActorId, M, u64)>,
}

impl<M> fmt::Debug for Simulation<'_, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("actors", &self.actors.len())
            .field("events_handled", &self.events_handled)
            .field("trace_len", &self.trace.len())
            .finish()
    }
}

impl<'a, M> Simulation<'a, M> {
    /// Creates an empty simulation with the given experiment seed.
    pub fn new(seed: u64) -> Self {
        Simulation {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            actors: Vec::new(),
            rng: RngStream::new(seed, "simulation"),
            events_handled: 0,
            horizon: None,
            cancelled: FastHashSet::default(),
            trace: TraceBus::new(),
            outbox_scratch: Vec::new(),
        }
    }

    /// Registers an actor and returns its id.
    pub fn add_actor<A: Actor<M> + 'a>(&mut self, actor: A) -> ActorId {
        self.actors.push(Box::new(actor));
        ActorId(self.actors.len() - 1)
    }

    /// Stops the run when virtual time would pass `at` (events at later
    /// instants remain queued but are not delivered).
    pub fn set_horizon(&mut self, at: SimTime) {
        self.horizon = Some(at);
    }

    /// Schedules `msg` for `target` at absolute instant `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the simulated past or `target` is unknown; use
    /// [`Simulation::try_schedule`] for a fallible version.
    pub fn schedule(&mut self, at: SimTime, target: ActorId, msg: M) -> EventToken {
        self.try_schedule(at, target, msg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible scheduling: rejects past instants and unknown actors
    /// instead of panicking.
    ///
    /// # Errors
    /// Returns [`McsError::SchedulePast`] when `at` precedes the current
    /// virtual time and [`McsError::UnknownActor`] when `target` was never
    /// registered.
    pub fn try_schedule(
        &mut self,
        at: SimTime,
        target: ActorId,
        msg: M,
    ) -> Result<EventToken, McsError> {
        if at < self.now {
            return Err(McsError::SchedulePast { at, now: self.now });
        }
        if target.0 >= self.actors.len() {
            return Err(McsError::UnknownActor {
                actor: target.0,
                registered: self.actors.len(),
            });
        }
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled { at, seq, target, msg });
        Ok(EventToken(seq))
    }

    /// Schedules `msg` for `target` after `delay` from now.
    pub fn schedule_after(&mut self, delay: SimDuration, target: ActorId, msg: M) -> EventToken {
        let at = self.now + delay;
        self.schedule(at, target, msg)
    }

    /// Revokes a pending event; a no-op if it was already delivered or
    /// cancelled.
    pub fn cancel(&mut self, token: EventToken) {
        self.cancelled.insert(token.0);
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events delivered so far.
    pub fn events_handled(&self) -> u64 {
        self.events_handled
    }

    /// Number of events still queued (cancelled-but-unpopped events count
    /// until the queue reaches them).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// The structured record of everything actors emitted so far.
    pub fn trace(&self) -> &TraceBus {
        &self.trace
    }

    /// Mutable access to the bus (harnesses use it to record setup events
    /// before the run starts).
    pub fn trace_mut(&mut self) -> &mut TraceBus {
        &mut self.trace
    }

    /// Takes ownership of the trace, leaving an empty bus behind.
    pub fn take_trace(&mut self) -> TraceBus {
        std::mem::take(&mut self.trace)
    }

    /// Replaces the trace bus — how a scenario installs a streaming
    /// (bounded-memory) bus before the run starts.
    ///
    /// # Panics
    /// Panics if records were already emitted onto the current bus; swapping
    /// the sink mid-run would silently drop them.
    pub fn set_trace(&mut self, bus: TraceBus) {
        assert!(self.trace.is_empty(), "cannot replace a trace bus that already has records");
        self.trace = bus;
    }

    /// Drops cancelled events from the head of the queue so `peek` sees the
    /// next live event.
    fn discard_cancelled_head(&mut self) {
        while let Some(head) = self.queue.peek() {
            let seq = head.seq;
            if self.cancelled.contains(&seq) {
                self.queue.pop();
                self.cancelled.remove(&seq);
            } else {
                break;
            }
        }
    }

    /// Delivers the single earliest live event. Returns `false` when the
    /// queue is empty or the horizon has been reached.
    pub fn step(&mut self) -> bool {
        let ev = loop {
            let Some(ev) = self.queue.pop() else { return false };
            // Most runs never cancel anything; skip the hash probe entirely
            // until the first cancellation arrives.
            if !self.cancelled.is_empty() && self.cancelled.remove(&ev.seq) {
                continue;
            }
            break ev;
        };
        if let Some(h) = self.horizon {
            if ev.at > h {
                self.now = h;
                // Event is dropped: the run is over.
                return false;
            }
        }
        debug_assert!(ev.at >= self.now, "time went backwards");
        self.now = ev.at;
        self.events_handled += 1;

        let mut outbox = std::mem::take(&mut self.outbox_scratch);
        debug_assert!(outbox.is_empty());
        let mut stop = false;
        {
            let actor = &mut self.actors[ev.target.0];
            let mut ctx = Context {
                now: self.now,
                self_id: ev.target,
                outbox: &mut outbox,
                seq: &mut self.seq,
                cancelled: &mut self.cancelled,
                trace: &mut self.trace,
                rng: &mut self.rng,
                stop_requested: &mut stop,
            };
            actor.handle(&mut ctx, ev.msg);
        }
        for (at, target, msg, seq) in outbox.drain(..) {
            assert!(target.0 < self.actors.len(), "unknown actor {target}");
            self.queue.push(Scheduled { at, seq, target, msg });
        }
        self.outbox_scratch = outbox;
        !stop
    }

    /// Runs until the queue drains, the horizon passes, or an actor stops the
    /// run. Returns the number of events delivered.
    pub fn run(&mut self) -> u64 {
        let start = self.events_handled;
        while self.step() {}
        self.events_handled - start
    }

    /// Runs while delivering at most `max_events` further events; a safety
    /// valve for simulations that may not quiesce.
    pub fn run_bounded(&mut self, max_events: u64) -> u64 {
        let start = self.events_handled;
        while self.events_handled - start < max_events && self.step() {}
        self.events_handled - start
    }

    /// Delivers every event up to and including instant `until`, then
    /// advances virtual time to `until` (clamped to the horizon) even if no
    /// event sits exactly there. Later events stay queued, so runs can be
    /// interleaved with external inspection or scheduling. Returns the number
    /// of events delivered.
    pub fn run_until(&mut self, until: SimTime) -> u64 {
        let start = self.events_handled;
        loop {
            self.discard_cancelled_head();
            match self.queue.peek() {
                Some(head) if head.at <= until => {
                    if !self.step() {
                        // Stopped by an actor or clipped by the horizon.
                        return self.events_handled - start;
                    }
                }
                _ => break,
            }
        }
        let target = match self.horizon {
            Some(h) => until.min(h),
            None => until,
        };
        if self.now < target {
            self.now = target;
        }
        self.events_handled - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[derive(Debug, PartialEq, Clone)]
    enum Msg {
        Tick(u32),
        Fwd,
    }

    struct Recorder {
        log: Rc<RefCell<Vec<(SimTime, u32)>>>,
    }
    impl Actor<Msg> for Recorder {
        fn handle(&mut self, ctx: &mut Context<'_, Msg>, msg: Msg) {
            if let Msg::Tick(n) = msg {
                self.log.borrow_mut().push((ctx.now(), n));
            }
        }
    }

    #[test]
    fn events_delivered_in_time_order() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new(1);
        let id = sim.add_actor(Recorder { log: Rc::clone(&log) });
        sim.schedule(SimTime::from_secs(3), id, Msg::Tick(3));
        sim.schedule(SimTime::from_secs(1), id, Msg::Tick(1));
        sim.schedule(SimTime::from_secs(2), id, Msg::Tick(2));
        sim.run();
        let log = log.borrow();
        assert_eq!(
            *log,
            vec![
                (SimTime::from_secs(1), 1),
                (SimTime::from_secs(2), 2),
                (SimTime::from_secs(3), 3)
            ]
        );
    }

    #[test]
    fn ties_broken_by_scheduling_order() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new(1);
        let id = sim.add_actor(Recorder { log: Rc::clone(&log) });
        for n in 0..10 {
            sim.schedule(SimTime::from_secs(5), id, Msg::Tick(n));
        }
        sim.run();
        let ns: Vec<u32> = log.borrow().iter().map(|(_, n)| *n).collect();
        assert_eq!(ns, (0..10).collect::<Vec<_>>());
    }

    struct Chain {
        next: Option<ActorId>,
        hops: Rc<RefCell<u32>>,
    }
    impl Actor<Msg> for Chain {
        fn handle(&mut self, ctx: &mut Context<'_, Msg>, _msg: Msg) {
            *self.hops.borrow_mut() += 1;
            if let Some(next) = self.next {
                ctx.send(next, SimDuration::from_millis(10), Msg::Fwd);
            }
        }
    }

    #[test]
    fn actors_can_message_each_other() {
        let hops = Rc::new(RefCell::new(0));
        let mut sim = Simulation::new(1);
        let tail = sim.add_actor(Chain { next: None, hops: Rc::clone(&hops) });
        let head = sim.add_actor(Chain { next: Some(tail), hops: Rc::clone(&hops) });
        sim.schedule(SimTime::ZERO, head, Msg::Fwd);
        sim.run();
        assert_eq!(*hops.borrow(), 2);
        assert_eq!(sim.now(), SimTime::from_nanos(10_000_000));
    }

    struct Ticker {
        period: SimDuration,
        count: u32,
        limit: u32,
    }
    impl Actor<Msg> for Ticker {
        fn handle(&mut self, ctx: &mut Context<'_, Msg>, _msg: Msg) {
            self.count += 1;
            if self.count < self.limit {
                ctx.send_self(self.period, Msg::Fwd);
            }
        }
    }

    #[test]
    fn horizon_cuts_off_run() {
        let mut sim = Simulation::new(1);
        let id = sim.add_actor(Ticker {
            period: SimDuration::from_secs(1),
            count: 0,
            limit: u32::MAX,
        });
        sim.set_horizon(SimTime::from_secs(10));
        sim.schedule(SimTime::ZERO, id, Msg::Fwd);
        let delivered = sim.run();
        // Events at t = 0..=10 fit the horizon: 11 deliveries.
        assert_eq!(delivered, 11);
        assert_eq!(sim.now(), SimTime::from_secs(10));
    }

    struct Stopper;
    impl Actor<Msg> for Stopper {
        fn handle(&mut self, ctx: &mut Context<'_, Msg>, _msg: Msg) {
            ctx.stop();
        }
    }

    #[test]
    fn actor_can_stop_simulation() {
        let mut sim = Simulation::new(1);
        let s = sim.add_actor(Stopper);
        sim.schedule(SimTime::ZERO, s, Msg::Fwd);
        sim.schedule(SimTime::from_secs(1), s, Msg::Fwd);
        sim.run();
        assert_eq!(sim.events_handled(), 1);
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn run_bounded_limits_events() {
        let mut sim = Simulation::new(1);
        let id = sim.add_actor(Ticker {
            period: SimDuration::from_secs(1),
            count: 0,
            limit: u32::MAX,
        });
        sim.schedule(SimTime::ZERO, id, Msg::Fwd);
        let delivered = sim.run_bounded(100);
        assert_eq!(delivered, 100);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        struct Bad;
        impl Actor<Msg> for Bad {
            fn handle(&mut self, ctx: &mut Context<'_, Msg>, _msg: Msg) {
                ctx.send_at(ctx.self_id(), SimTime::ZERO, Msg::Fwd);
            }
        }
        let mut sim = Simulation::new(1);
        let id = sim.add_actor(Bad);
        sim.schedule(SimTime::from_secs(1), id, Msg::Fwd);
        sim.run();
    }

    #[test]
    fn try_schedule_rejects_bad_requests() {
        let mut sim: Simulation<'_, Msg> = Simulation::new(1);
        let id = sim.add_actor(Stopper);
        assert!(sim.try_schedule(SimTime::from_secs(1), id, Msg::Fwd).is_ok());
        let unknown = ActorId(99);
        assert_eq!(
            sim.try_schedule(SimTime::from_secs(1), unknown, Msg::Fwd).unwrap_err(),
            crate::error::McsError::UnknownActor { actor: 99, registered: 1 }
        );
        sim.run();
        assert_eq!(
            sim.try_schedule(SimTime::ZERO, id, Msg::Fwd).unwrap_err(),
            crate::error::McsError::SchedulePast { at: SimTime::ZERO, now: sim.now() }
        );
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn trace(seed: u64) -> Vec<(SimTime, u32)> {
            let log = Rc::new(RefCell::new(Vec::new()));
            let mut sim = Simulation::new(seed);
            let id = sim.add_actor(Recorder { log: Rc::clone(&log) });
            // Random-delay ticks driven through the shared sim RNG.
            struct Rand { target: ActorId, left: u32 }
            impl Actor<Msg> for Rand {
                fn handle(&mut self, ctx: &mut Context<'_, Msg>, _msg: Msg) {
                    if self.left == 0 {
                        return;
                    }
                    self.left -= 1;
                    let jitter = ctx.rng().uniform_usize(1000) as u64;
                    ctx.send(self.target, SimDuration::from_millis(jitter), Msg::Tick(self.left));
                    ctx.send_self(SimDuration::from_millis(1), Msg::Fwd);
                }
            }
            let r = sim.add_actor(Rand { target: id, left: 50 });
            sim.schedule(SimTime::ZERO, r, Msg::Fwd);
            sim.run();
            let v = log.borrow().clone();
            v
        }
        assert_eq!(trace(99), trace(99));
        assert_ne!(trace(99), trace(100));
    }

    #[test]
    fn run_until_advances_time_and_leaves_later_events() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new(1);
        let id = sim.add_actor(Recorder { log: Rc::clone(&log) });
        sim.schedule(SimTime::from_secs(1), id, Msg::Tick(1));
        sim.schedule(SimTime::from_secs(5), id, Msg::Tick(5));
        sim.schedule(SimTime::from_secs(9), id, Msg::Tick(9));

        // Boundary event at exactly `until` is delivered.
        let delivered = sim.run_until(SimTime::from_secs(5));
        assert_eq!(delivered, 2);
        assert_eq!(sim.now(), SimTime::from_secs(5));
        assert_eq!(sim.pending(), 1);

        // No event at t = 7: time still advances there.
        assert_eq!(sim.run_until(SimTime::from_secs(7)), 0);
        assert_eq!(sim.now(), SimTime::from_secs(7));

        sim.run_until(SimTime::from_secs(100));
        assert_eq!(sim.pending(), 0);
        assert_eq!(sim.now(), SimTime::from_secs(100));
        assert_eq!(log.borrow().len(), 3);
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut sim: Simulation<'_, Msg> = Simulation::new(1);
        let _ = sim.add_actor(Stopper);
        sim.set_horizon(SimTime::from_secs(4));
        sim.run_until(SimTime::from_secs(10));
        assert_eq!(sim.now(), SimTime::from_secs(4));
    }

    #[test]
    fn cancelled_event_is_not_delivered() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new(1);
        let id = sim.add_actor(Recorder { log: Rc::clone(&log) });
        let keep = sim.schedule(SimTime::from_secs(1), id, Msg::Tick(1));
        let drop_ = sim.schedule(SimTime::from_secs(2), id, Msg::Tick(2));
        sim.schedule(SimTime::from_secs(3), id, Msg::Tick(3));
        sim.cancel(drop_);
        let delivered = sim.run();
        assert_eq!(delivered, 2);
        let ns: Vec<u32> = log.borrow().iter().map(|(_, n)| *n).collect();
        assert_eq!(ns, vec![1, 3]);
        // Cancelling a delivered event is a harmless no-op.
        sim.cancel(keep);
    }

    #[test]
    fn actor_can_cancel_its_own_pending_event() {
        // A timer that reschedules itself and retracts the stale wake-up,
        // the pattern autoscalers and repair processes use.
        struct Retracting {
            pending: Option<EventToken>,
            fired: Rc<RefCell<u32>>,
        }
        impl Actor<Msg> for Retracting {
            fn handle(&mut self, ctx: &mut Context<'_, Msg>, msg: Msg) {
                match msg {
                    Msg::Fwd => {
                        // Cancel the old timer, arm a new one.
                        if let Some(tok) = self.pending.take() {
                            ctx.cancel(tok);
                        }
                        self.pending =
                            Some(ctx.send_self(SimDuration::from_secs(10), Msg::Tick(0)));
                    }
                    Msg::Tick(_) => *self.fired.borrow_mut() += 1,
                }
            }
        }
        let fired = Rc::new(RefCell::new(0));
        let mut sim = Simulation::new(1);
        let id = sim.add_actor(Retracting { pending: None, fired: Rc::clone(&fired) });
        // Three re-arms: only the final timer may fire.
        sim.schedule(SimTime::ZERO, id, Msg::Fwd);
        sim.schedule(SimTime::from_secs(1), id, Msg::Fwd);
        sim.schedule(SimTime::from_secs(2), id, Msg::Fwd);
        sim.run();
        assert_eq!(*fired.borrow(), 1);
        assert_eq!(sim.now(), SimTime::from_secs(12));
    }

    #[test]
    fn borrowed_actor_state_outlives_simulation() {
        let mut ticker = Ticker { period: SimDuration::from_secs(1), count: 0, limit: 5 };
        {
            let mut sim = Simulation::new(1);
            let id = sim.add_actor(&mut ticker);
            sim.schedule(SimTime::ZERO, id, Msg::Fwd);
            sim.run();
        }
        assert_eq!(ticker.count, 5);
    }

    #[test]
    fn context_emit_lands_on_trace_bus() {
        struct Emitter;
        impl Actor<Msg> for Emitter {
            fn handle(&mut self, ctx: &mut Context<'_, Msg>, msg: Msg) {
                if let Msg::Tick(n) = msg {
                    ctx.emit(
                        "emitter",
                        "tick",
                        crate::trace::payload(vec![("n", Json::UInt(u64::from(n)))]),
                    );
                }
            }
        }
        let mut sim = Simulation::new(1);
        let id = sim.add_actor(Emitter);
        sim.schedule(SimTime::from_secs(1), id, Msg::Tick(7));
        sim.schedule(SimTime::from_secs(2), id, Msg::Tick(8));
        sim.run();
        assert_eq!(sim.trace().count("emitter", "tick"), 2);
        let events = sim.take_trace();
        assert_eq!(events.events()[0].at, SimTime::from_secs(1));
        assert_eq!(events.events()[0].field_f64("n"), Some(7.0));
        assert!(sim.trace().is_empty());
    }

    #[test]
    fn message_envelope_identity_round_trips() {
        let m = Msg::Tick(3);
        let wrapped: Msg = MessageEnvelope::<Msg>::wrap(m.clone());
        assert_eq!(MessageEnvelope::<Msg>::unwrap(wrapped), Some(m));
        assert_eq!(ActorId::from_index(2), ActorId(2));
    }
}
