//! The Virtual World function of the Figure 4 gaming architecture.
//!
//! Players join and leave over a diurnal pattern with flash crowds (a patch
//! release, a streamer raid). Zones host a bounded number of players; a
//! static deployment rejects overflow, while an elastic deployment
//! (§6.3: "can elastically scale with the ups and downs of active players")
//! spins up zone instances with a provisioning delay.

use mcs_simcore::dist::{Dist, Sample};
use mcs_simcore::metrics::TimeWeighted;
use mcs_simcore::rng::RngStream;
use mcs_simcore::time::{SimDuration, SimTime};
use mcs_workload::arrival::{ArrivalProcess, Diurnal};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Deployment model of the virtual world.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ZoneProvisioning {
    /// A fixed number of zone instances (self-hosted studio hardware).
    Static {
        /// Zone instances available.
        zones: usize,
    },
    /// Elastic: instances added when occupancy crosses the high watermark,
    /// removed when it falls below the low watermark.
    Elastic {
        /// Start/minimum instances.
        min_zones: usize,
        /// Maximum instances (cloud budget cap).
        max_zones: usize,
        /// Scale up above this mean occupancy fraction.
        high_watermark: f64,
        /// Scale down below this mean occupancy fraction.
        low_watermark: f64,
        /// Boot delay of a new zone instance.
        boot_delay: SimDuration,
    },
}

/// Parameters of the player population.
#[derive(Debug, Clone, PartialEq)]
pub struct PlayerModel {
    /// Mean arrival rate, players/second.
    pub base_rate: f64,
    /// Diurnal amplitude (0–1).
    pub amplitude: f64,
    /// Day length.
    pub period: SimDuration,
    /// Optional flash crowd: (start, duration, multiplier).
    pub flash: Option<(SimTime, SimDuration, f64)>,
    /// Session-duration distribution, seconds.
    pub session: Dist,
}

impl Default for PlayerModel {
    fn default() -> Self {
        PlayerModel {
            base_rate: 1.0,
            amplitude: 0.6,
            period: SimDuration::from_hours(24),
            flash: None,
            session: Dist::LogNormal { mu: 7.2, sigma: 0.8 }, // median ~22 min
        }
    }
}

/// What one virtual-world run measured.
#[derive(Debug, Clone, PartialEq)]
pub struct WorldOutcome {
    /// Players who joined successfully.
    pub admitted: u64,
    /// Players turned away (no zone capacity).
    pub rejected: u64,
    /// Rejection fraction.
    pub rejection_rate: f64,
    /// Time-average concurrent players.
    pub mean_concurrent: f64,
    /// Peak concurrent players.
    pub peak_concurrent: f64,
    /// Time-average zone instances.
    pub mean_zones: f64,
    /// Zone-instance-hours used (cost proxy).
    pub zone_hours: f64,
}

/// Simulates the virtual world over `[0, horizon)`.
pub fn simulate_world(
    model: &PlayerModel,
    provisioning: ZoneProvisioning,
    zone_capacity: usize,
    horizon: SimTime,
    seed: u64,
) -> WorldOutcome {
    let mut rng = RngStream::new(seed, "virtual-world");
    let mut arrivals = Diurnal {
        base_rate: model.base_rate,
        amplitude: model.amplitude,
        period: model.period,
        flash: model.flash,
    };

    let (mut zones, min_zones, max_zones, high, low, boot) = match provisioning {
        ZoneProvisioning::Static { zones } => (zones, zones, zones, 2.0, -1.0, SimDuration::ZERO),
        ZoneProvisioning::Elastic { min_zones, max_zones, high_watermark, low_watermark, boot_delay } => {
            (min_zones, min_zones, max_zones, high_watermark, low_watermark, boot_delay)
        }
    };

    let mut online: u64 = 0;
    let mut admitted = 0u64;
    let mut rejected = 0u64;
    let mut departures: BinaryHeap<Reverse<(SimTime, u64)>> = BinaryHeap::new();
    let mut boots: BinaryHeap<Reverse<SimTime>> = BinaryHeap::new();
    let mut booting = 0usize;
    let mut seq = 0u64;
    let mut concurrent = TimeWeighted::new(SimTime::ZERO, 0.0);
    let mut zone_level = TimeWeighted::new(SimTime::ZERO, zones as f64);

    let mut now = SimTime::ZERO;
    while let Some(next_join) = arrivals.next_after(now, &mut rng) {
        if next_join >= horizon {
            break;
        }
        // Process departures and zone boots up to the join instant.
        while let Some(&Reverse((t, _))) = departures.peek() {
            if t > next_join {
                break;
            }
            departures.pop();
            online -= 1;
            concurrent.set(t, online as f64);
        }
        while let Some(&Reverse(t)) = boots.peek() {
            if t > next_join {
                break;
            }
            boots.pop();
            booting -= 1;
            zones += 1;
            zone_level.set(t, zones as f64);
        }
        now = next_join;

        let capacity = zones * zone_capacity;
        if (online as usize) < capacity {
            online += 1;
            admitted += 1;
            concurrent.set(now, online as f64);
            let session = model.session.sample(&mut rng).clamp(30.0, 12.0 * 3600.0);
            departures.push(Reverse((now + SimDuration::from_secs_f64(session), seq)));
            seq += 1;
        } else {
            rejected += 1;
        }

        // Elastic control loop, evaluated at every join.
        let occupancy = online as f64 / (zones * zone_capacity).max(1) as f64;
        if occupancy > high && zones + booting < max_zones {
            booting += 1;
            boots.push(Reverse(now + boot));
        } else if occupancy < low && zones > min_zones && booting == 0 {
            zones -= 1;
            zone_level.set(now, zones as f64);
        }
    }

    // Drain departures and boots queued after the final join so the tail
    // of the window is integrated at the true level.
    while let Some(&Reverse((t, _))) = departures.peek() {
        if t >= horizon {
            break;
        }
        departures.pop();
        online -= 1;
        concurrent.set(t, online as f64);
    }
    while let Some(&Reverse(t)) = boots.peek() {
        if t >= horizon {
            break;
        }
        boots.pop();
        zones += 1;
        zone_level.set(t, zones as f64);
    }

    let total = admitted + rejected;
    WorldOutcome {
        admitted,
        rejected,
        rejection_rate: if total == 0 { 0.0 } else { rejected as f64 / total as f64 },
        mean_concurrent: concurrent.average_until(horizon),
        peak_concurrent: concurrent.peak(),
        mean_zones: zone_level.average_until(horizon),
        zone_hours: zone_level.average_until(horizon) * horizon.as_secs_f64() / 3600.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flashy_model() -> PlayerModel {
        PlayerModel {
            base_rate: 0.5,
            amplitude: 0.5,
            period: SimDuration::from_hours(24),
            flash: Some((SimTime::from_secs(6 * 3600), SimDuration::from_hours(2), 3.0)),
            ..Default::default()
        }
    }

    const DAY: u64 = 24 * 3600;

    #[test]
    fn static_world_rejects_under_flash_crowd() {
        let out = simulate_world(
            &flashy_model(),
            ZoneProvisioning::Static { zones: 8 },
            100,
            SimTime::from_secs(DAY),
            1,
        );
        assert!(out.rejection_rate > 0.05, "rejections {:?}", out.rejection_rate);
        assert!(out.peak_concurrent >= 800.0 * 0.95);
    }

    #[test]
    fn elastic_world_absorbs_flash_crowd_cheaper_at_night() {
        let elastic = simulate_world(
            &flashy_model(),
            ZoneProvisioning::Elastic {
                min_zones: 2,
                max_zones: 60,
                high_watermark: 0.8,
                low_watermark: 0.3,
                boot_delay: SimDuration::from_secs(60),
            },
            100,
            SimTime::from_secs(DAY),
            1,
        );
        let static_big = simulate_world(
            &flashy_model(),
            ZoneProvisioning::Static { zones: 60 },
            100,
            SimTime::from_secs(DAY),
            1,
        );
        assert!(
            elastic.rejection_rate < 0.05,
            "elastic rejections {}",
            elastic.rejection_rate
        );
        assert!(
            elastic.zone_hours < static_big.zone_hours * 0.7,
            "elastic {} vs static {} zone-hours",
            elastic.zone_hours,
            static_big.zone_hours
        );
    }

    #[test]
    fn no_players_no_rejections() {
        let model = PlayerModel { base_rate: 1e-9, ..Default::default() };
        let out = simulate_world(
            &model,
            ZoneProvisioning::Static { zones: 1 },
            10,
            SimTime::from_secs(3600),
            2,
        );
        assert_eq!(out.rejected, 0);
    }

    #[test]
    fn deterministic() {
        let a = simulate_world(
            &flashy_model(),
            ZoneProvisioning::Static { zones: 4 },
            50,
            SimTime::from_secs(DAY / 2),
            9,
        );
        let b = simulate_world(
            &flashy_model(),
            ZoneProvisioning::Static { zones: 4 },
            50,
            SimTime::from_secs(DAY / 2),
            9,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let out = simulate_world(
            &flashy_model(),
            ZoneProvisioning::Static { zones: 3 },
            25,
            SimTime::from_secs(DAY / 2),
            3,
        );
        assert!(out.peak_concurrent <= 75.0);
    }
}
