//! # mcs-gaming — the online-gaming ecosystem of Figure 4
//!
//! The four functions of the paper's gaming reference
//! architecture, as working code:
//!
//! - **Virtual World** ([`world`]): diurnal player populations with flash
//!   crowds, static vs elastic zone provisioning (§6.3: "can small studios
//!   entertain one billion people with near-zero up-front cost?").
//! - **Gaming Analytics** ([`social`]): implicit social-tie graphs recovered
//!   from match logs \[48\]\[82\], community detection, and toxicity detection
//!   \[35\] with measurable precision/recall.
//! - **Social Meta-Gaming** ([`metagame`]): tournaments, skill-driven
//!   brackets, and spectator-stream capacity planning \[49\]\[50\].
//! - **Procedural Content Generation** ([`pcg`]): POGGI-style puzzle
//!   instances \[166\] with guaranteed solvability and measured difficulty.
//!
//! ## Example
//! ```
//! use mcs_gaming::pcg::PuzzleGenerator;
//! use mcs_simcore::rng::RngStream;
//!
//! let generator = PuzzleGenerator { side: 3, scramble_moves: 20 };
//! let mut rng = RngStream::new(1, "example");
//! let puzzle = generator.generate(&mut rng);
//! assert!(puzzle.is_solvable());
//! ```

pub mod actor;
pub mod metagame;
pub mod pcg;
pub mod social;
pub mod world;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::actor::{
        run_gaming_standalone, GamingConfig, GamingMsg, SyncConfig, WorldActor,
    };
    pub use crate::metagame::{
        stream_capacity_plan, PlayedMatch, Tournament, TournamentOutcome,
    };
    pub use crate::pcg::{PuzzleGenerator, PuzzleInstance};
    pub use crate::social::{
        community_recovery_f1, generate_matches, implicit_social_graph, toxicity_detector,
        MatchLog, MatchRecord, PopulationModel,
    };
    pub use crate::world::{simulate_world, PlayerModel, WorldOutcome, ZoneProvisioning};
}
