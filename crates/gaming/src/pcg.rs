//! Procedural content generation: POGGI-style puzzle instances \[166\].
//!
//! The paper's Figure 4 lists content generation as a core online-gaming
//! function that "is rarely updated, rarely player-customized, and never
//! fresh at the scale of the community". POGGI generated puzzle instances
//! with *guaranteed* properties on grid infrastructure; here we generate
//! sliding-puzzle (8/15-puzzle) instances with verified solvability and a
//! measured difficulty (optimal solution length via IDA*-free BFS for small
//! boards, scramble depth otherwise).

use mcs_simcore::rng::RngStream;
use std::collections::HashMap;

/// A sliding-puzzle instance on an `n × n` board; `0` is the blank.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PuzzleInstance {
    /// Board side length.
    pub side: u8,
    /// Tiles in row-major order; `0` is the blank.
    pub tiles: Vec<u8>,
}

impl PuzzleInstance {
    /// The solved board of side `n`: tiles `1..n²` then the blank.
    ///
    /// # Panics
    /// Panics unless `2 <= side <= 15`.
    pub fn solved(side: u8) -> Self {
        assert!((2..=15).contains(&side), "side must be in 2..=15");
        let n = side as usize * side as usize;
        let mut tiles: Vec<u8> = (1..n as u8).collect();
        tiles.push(0);
        PuzzleInstance { side, tiles }
    }

    /// True when the instance is the solved board.
    pub fn is_solved(&self) -> bool {
        *self == PuzzleInstance::solved(self.side)
    }

    /// Solvability by the inversion-parity rule.
    pub fn is_solvable(&self) -> bool {
        let inversions = self
            .tiles
            .iter()
            .filter(|&&t| t != 0)
            .enumerate()
            .map(|(i, &a)| {
                self.tiles[i + 1..]
                    .iter()
                    .filter(|&&b| b != 0 && b < a)
                    .count()
            })
            .sum::<usize>();
        let side = self.side as usize;
        if side % 2 == 1 {
            inversions % 2 == 0
        } else {
            let blank_row_from_bottom =
                side - self.tiles.iter().position(|&t| t == 0).unwrap() / side;
            (inversions + blank_row_from_bottom) % 2 == 1
        }
    }

    /// Neighbor states (one blank move each).
    pub fn moves(&self) -> Vec<PuzzleInstance> {
        let side = self.side as usize;
        let blank = self.tiles.iter().position(|&t| t == 0).unwrap();
        let (r, c) = (blank / side, blank % side);
        let mut out = Vec::with_capacity(4);
        let mut push = |nr: usize, nc: usize| {
            let mut tiles = self.tiles.clone();
            tiles.swap(blank, nr * side + nc);
            out.push(PuzzleInstance { side: self.side, tiles });
        };
        if r > 0 {
            push(r - 1, c);
        }
        if r + 1 < side {
            push(r + 1, c);
        }
        if c > 0 {
            push(r, c - 1);
        }
        if c + 1 < side {
            push(r, c + 1);
        }
        out
    }

    /// Optimal solution length by breadth-first search; `None` when the
    /// state space explored exceeds `node_budget` (use scramble depth as
    /// the difficulty proxy then).
    pub fn optimal_moves(&self, node_budget: usize) -> Option<usize> {
        if self.is_solved() {
            return Some(0);
        }
        let mut dist: HashMap<Vec<u8>, usize> = HashMap::new();
        dist.insert(self.tiles.clone(), 0);
        let mut frontier = vec![self.clone()];
        let mut depth = 0;
        while !frontier.is_empty() && dist.len() < node_budget {
            depth += 1;
            let mut next = Vec::new();
            for state in frontier {
                for mv in state.moves() {
                    if mv.is_solved() {
                        return Some(depth);
                    }
                    if !dist.contains_key(&mv.tiles) {
                        dist.insert(mv.tiles.clone(), depth);
                        next.push(mv);
                    }
                }
            }
            frontier = next;
        }
        None
    }
}

/// The POGGI-style generator: scrambles the solved board with random legal
/// moves, guaranteeing solvability by construction.
#[derive(Debug, Clone)]
pub struct PuzzleGenerator {
    /// Board side length.
    pub side: u8,
    /// Scramble depth: more moves, (statistically) harder instances.
    pub scramble_moves: usize,
}

impl PuzzleGenerator {
    /// Generates one instance.
    pub fn generate(&self, rng: &mut RngStream) -> PuzzleInstance {
        let mut state = PuzzleInstance::solved(self.side);
        let mut previous: Option<Vec<u8>> = None;
        for _ in 0..self.scramble_moves {
            let moves = state.moves();
            // Avoid immediately undoing the previous move.
            let candidates: Vec<&PuzzleInstance> = moves
                .iter()
                .filter(|m| Some(&m.tiles) != previous.as_ref())
                .collect();
            let next = candidates[rng.uniform_usize(candidates.len())].clone();
            previous = Some(state.tiles.clone());
            state = next;
        }
        state
    }

    /// Generates a batch, returning instances with their measured difficulty
    /// (optimal moves when the BFS budget allows, else the scramble depth).
    pub fn generate_batch(
        &self,
        count: usize,
        node_budget: usize,
        rng: &mut RngStream,
    ) -> Vec<(PuzzleInstance, usize)> {
        (0..count)
            .map(|_| {
                let p = self.generate(rng);
                let difficulty = p.optimal_moves(node_budget).unwrap_or(self.scramble_moves);
                (p, difficulty)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solved_board_properties() {
        let p = PuzzleInstance::solved(3);
        assert!(p.is_solved());
        assert!(p.is_solvable());
        assert_eq!(p.optimal_moves(100_000), Some(0));
    }

    #[test]
    fn one_move_from_solved() {
        let p = PuzzleInstance::solved(3);
        for mv in p.moves() {
            assert_eq!(mv.optimal_moves(100_000), Some(1));
            assert!(mv.is_solvable());
        }
    }

    #[test]
    fn generated_instances_always_solvable() {
        let gen = PuzzleGenerator { side: 3, scramble_moves: 40 };
        let mut rng = RngStream::new(1, "pcg");
        for _ in 0..50 {
            let p = gen.generate(&mut rng);
            assert!(p.is_solvable(), "{p:?}");
        }
    }

    #[test]
    fn unsolvable_swap_detected() {
        // Swapping two non-blank tiles of the solved board flips parity.
        let mut p = PuzzleInstance::solved(3);
        p.tiles.swap(0, 1);
        assert!(!p.is_solvable());
    }

    #[test]
    fn deeper_scrambles_are_harder_on_average() {
        let mut rng = RngStream::new(2, "pcg");
        let easy = PuzzleGenerator { side: 3, scramble_moves: 6 };
        let hard = PuzzleGenerator { side: 3, scramble_moves: 40 };
        let easy_batch = easy.generate_batch(20, 2_000_000, &mut rng);
        let hard_batch = hard.generate_batch(20, 2_000_000, &mut rng);
        let mean = |b: &[(PuzzleInstance, usize)]| {
            b.iter().map(|(_, d)| *d as f64).sum::<f64>() / b.len() as f64
        };
        assert!(
            mean(&hard_batch) > mean(&easy_batch) + 2.0,
            "hard {} vs easy {}",
            mean(&hard_batch),
            mean(&easy_batch)
        );
    }

    #[test]
    fn difficulty_is_at_most_scramble_depth() {
        let gen = PuzzleGenerator { side: 3, scramble_moves: 10 };
        let mut rng = RngStream::new(3, "pcg");
        for (p, d) in gen.generate_batch(20, 2_000_000, &mut rng) {
            assert!(d <= 10, "difficulty {d} exceeds scramble depth for {p:?}");
        }
    }

    #[test]
    fn budget_exhaustion_returns_none() {
        let gen = PuzzleGenerator { side: 4, scramble_moves: 80 };
        let mut rng = RngStream::new(4, "pcg");
        let p = gen.generate(&mut rng);
        assert!(p.optimal_moves(10).is_none());
    }
}
