//! The virtual world as a discrete-event actor.
//!
//! [`WorldActor`] puts the Figure 4 Virtual World function on the engine:
//! players join over a diurnal [`Diurnal`] process (armed online, one
//! pending event at a time), hold a session, and leave; zone instances are
//! provisioned statically or elastically exactly as in
//! [`simulate_world`](crate::world::simulate_world). What the engine
//! version adds is *ecosystem membership*: machine failures fanned in from
//! a scenario-level injector kill zone instances (disconnecting overflow
//! players), and co-tenant network pressure (a big-data shuffle window,
//! via [`GamingMsg::Pressure`]) shrinks effective zone capacity. Contiguous
//! intervals where occupancy sits above the overload watermark are traced
//! as `overload_start`/`overload_end` pairs, so the zone-overload-minutes
//! metric is computed from traces alone.

use crate::world::{PlayerModel, ZoneProvisioning};
use mcs_simcore::dist::Sample;
use mcs_simcore::engine::{Actor, Context, MessageEnvelope, Simulation};
use mcs_simcore::rng::RngStream;
use mcs_simcore::time::{SimDuration, SimTime};
use mcs_simcore::trace::{Field, TraceBus};
use mcs_workload::arrival::{ArrivalProcess, Diurnal};

/// Configuration of the gaming subsystem inside a scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct GamingConfig {
    /// Player population (arrival pattern + session distribution).
    pub players: PlayerModel,
    /// Zone deployment model.
    pub provisioning: ZoneProvisioning,
    /// Players one zone instance can host.
    pub zone_capacity: usize,
    /// Occupancy fraction above which the world counts as overloaded.
    pub overload_watermark: f64,
    /// Effective-capacity multiplier while co-tenant network pressure is on.
    pub pressure_capacity_factor: f64,
}

impl Default for GamingConfig {
    fn default() -> Self {
        GamingConfig {
            players: PlayerModel { base_rate: 0.5, ..PlayerModel::default() },
            provisioning: ZoneProvisioning::Elastic {
                min_zones: 2,
                max_zones: 24,
                high_watermark: 0.8,
                low_watermark: 0.3,
                boot_delay: SimDuration::from_secs(60),
            },
            zone_capacity: 100,
            overload_watermark: 0.95,
            pressure_capacity_factor: 0.85,
        }
    }
}

/// The gaming actor's message vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GamingMsg {
    /// Kick-off: arm the first player arrival.
    Start,
    /// One player tries to join now.
    Join,
    /// One player session ends now.
    Leave,
    /// A zone instance finished booting.
    ZoneReady,
    /// A machine hosting a zone died (from the scenario failure injector).
    NodeFail(u32),
    /// The machine came back.
    NodeRepair(u32),
    /// Co-tenant network pressure turned on (`true`) or off (`false`).
    Pressure(bool),
    /// Periodic state-sync tick (armed only when a sync hook is installed).
    SyncTick,
    /// A state-sync transfer was delivered; `true` when it arrived later
    /// than the lag budget (flow-level network mode).
    SyncDone(bool),
}

/// Periodic world-state synchronization traffic (Fig. 4's inter-zone and
/// client-update fan-out, aggregated): every `interval`, the world ships
/// `base_bytes + per_player_bytes * online` over the network model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncConfig {
    /// Time between sync bursts.
    pub interval: SimDuration,
    /// Fixed per-burst payload, bytes.
    pub base_bytes: u64,
    /// Additional payload per online player, bytes.
    pub per_player_bytes: u64,
}

/// Hook that carries one sync burst onto the network model:
/// `(ctx, sequence_number, bytes)`. The installer must deliver
/// [`GamingMsg::SyncDone`] when the transfer lands.
pub type SyncHook<'a, M> = Box<dyn FnMut(&mut Context<'_, M>, u64, u64) + 'a>;

/// Runs the virtual world as one engine actor.
pub struct WorldActor<'a, M = GamingMsg> {
    config: GamingConfig,
    sync: Option<(SyncConfig, SyncHook<'a, M>)>,
    sync_seq: u64,
    laggy_syncs: u64,
    arrivals: Diurnal,
    rng: RngStream,
    horizon: SimTime,
    zones: usize,
    min_zones: usize,
    max_zones: usize,
    high: f64,
    low: f64,
    boot: SimDuration,
    booting: usize,
    dead_zones: usize,
    pressure: u32,
    online: u64,
    ghost_leaves: u64,
    admitted: u64,
    rejected: u64,
    disconnected: u64,
    overloaded_since: Option<SimTime>,
}

impl<'a, M: MessageEnvelope<GamingMsg>> WorldActor<'a, M> {
    /// Builds the actor. The RNG stream must be dedicated to this actor
    /// (label `"gaming"` by convention) so composition does not perturb
    /// other subsystems; `horizon` bounds the arrival process.
    pub fn new(config: GamingConfig, horizon: SimTime, rng: RngStream) -> Self {
        let arrivals = Diurnal {
            base_rate: config.players.base_rate,
            amplitude: config.players.amplitude,
            period: config.players.period,
            flash: config.players.flash,
        };
        let (zones, min_zones, max_zones, high, low, boot) = match config.provisioning {
            ZoneProvisioning::Static { zones } => {
                (zones, zones, zones, 2.0, -1.0, SimDuration::ZERO)
            }
            ZoneProvisioning::Elastic {
                min_zones,
                max_zones,
                high_watermark,
                low_watermark,
                boot_delay,
            } => (min_zones, min_zones, max_zones, high_watermark, low_watermark, boot_delay),
        };
        WorldActor {
            config,
            sync: None,
            sync_seq: 0,
            laggy_syncs: 0,
            arrivals,
            rng,
            horizon,
            zones,
            min_zones,
            max_zones,
            high,
            low,
            boot,
            booting: 0,
            dead_zones: 0,
            pressure: 0,
            online: 0,
            ghost_leaves: 0,
            admitted: 0,
            rejected: 0,
            disconnected: 0,
            overloaded_since: None,
        }
    }

    /// Ships periodic state-sync traffic through the flow-level network
    /// model. The hook owner delivers [`GamingMsg::SyncDone`] per burst.
    #[must_use]
    pub fn with_sync(
        mut self,
        sync: SyncConfig,
        hook: impl FnMut(&mut Context<'_, M>, u64, u64) + 'a,
    ) -> Self {
        assert!(!sync.interval.is_zero(), "sync interval must be positive");
        self.sync = Some((sync, Box::new(hook)));
        self
    }

    /// Players who joined successfully.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Sync bursts that arrived later than the lag budget.
    pub fn laggy_syncs(&self) -> u64 {
        self.laggy_syncs
    }

    /// Players turned away at the door.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Players dropped mid-session by zone failures.
    pub fn disconnected(&self) -> u64 {
        self.disconnected
    }

    /// Zone instances currently serving players.
    fn available_zones(&self) -> usize {
        self.zones.saturating_sub(self.dead_zones)
    }

    /// Player slots available right now, shrunk under co-tenant pressure.
    fn capacity(&self) -> usize {
        let raw = self.available_zones() * self.config.zone_capacity;
        if self.pressure > 0 {
            (raw as f64 * self.config.pressure_capacity_factor.clamp(0.0, 1.0)).floor() as usize
        } else {
            raw
        }
    }

    /// Re-evaluates the overload predicate after any state change, tracing
    /// transitions so overload minutes fall out of the trace.
    fn refresh_overload(&mut self, ctx: &mut Context<'_, M>) {
        let capacity = self.capacity();
        let overloaded = self.online > 0
            && self.online as f64 >= capacity as f64 * self.config.overload_watermark;
        match (self.overloaded_since, overloaded) {
            (None, true) => {
                self.overloaded_since = Some(ctx.now());
                ctx.emit_fields(
                    "gaming",
                    "overload_start",
                    &[
                        ("online", Field::U64(self.online)),
                        ("capacity", Field::U64(capacity as u64)),
                    ],
                );
            }
            (Some(since), false) => {
                self.overloaded_since = None;
                ctx.emit_fields(
                    "gaming",
                    "overload_end",
                    &[("secs", Field::F64((ctx.now() - since).as_secs_f64()))],
                );
            }
            _ => {}
        }
    }

    fn arm_next_join(&mut self, ctx: &mut Context<'_, M>) {
        if let Some(t) = self.arrivals.next_after(ctx.now(), &mut self.rng) {
            if t < self.horizon {
                ctx.send_at(ctx.self_id(), t, M::wrap(GamingMsg::Join));
            }
        }
    }

    fn join(&mut self, ctx: &mut Context<'_, M>) {
        if (self.online as usize) < self.capacity() {
            self.online += 1;
            self.admitted += 1;
            ctx.emit_fields("gaming", "join", &[("online", Field::U64(self.online))]);
            let session = self
                .config
                .players
                .session
                .sample(&mut self.rng)
                .clamp(30.0, 12.0 * 3600.0);
            ctx.send_self(SimDuration::from_secs_f64(session), M::wrap(GamingMsg::Leave));
        } else {
            self.rejected += 1;
            ctx.emit_fields("gaming", "reject", &[("online", Field::U64(self.online))]);
        }

        // Elastic control loop, evaluated at every join (mirrors the legacy
        // fluid implementation). Failed zones count against occupancy, so
        // failures push the controller toward compensating capacity.
        let occupancy =
            self.online as f64 / (self.available_zones() * self.config.zone_capacity).max(1) as f64;
        if occupancy > self.high && self.zones + self.booting < self.max_zones {
            self.booting += 1;
            ctx.send_self(self.boot, M::wrap(GamingMsg::ZoneReady));
        } else if occupancy < self.low && self.zones > self.min_zones && self.booting == 0 {
            self.zones -= 1;
            ctx.emit_fields(
                "gaming",
                "zone_down",
                &[("zones", Field::U64(self.available_zones() as u64))],
            );
        }
        self.refresh_overload(ctx);
        self.arm_next_join(ctx);
    }

    fn leave(&mut self, ctx: &mut Context<'_, M>) {
        // A zone failure may have already disconnected this player.
        if self.ghost_leaves > 0 {
            self.ghost_leaves -= 1;
            return;
        }
        if self.online == 0 {
            return;
        }
        self.online -= 1;
        ctx.emit_fields("gaming", "leave", &[("online", Field::U64(self.online))]);
        self.refresh_overload(ctx);
    }

    fn zone_ready(&mut self, ctx: &mut Context<'_, M>) {
        self.booting = self.booting.saturating_sub(1);
        self.zones += 1;
        ctx.emit_fields(
            "gaming",
            "zone_up",
            &[("zones", Field::U64(self.available_zones() as u64))],
        );
        self.refresh_overload(ctx);
    }

    /// Kills one zone instance and disconnects the players the remaining
    /// capacity can no longer hold.
    fn node_fail(&mut self, ctx: &mut Context<'_, M>, node: u32) {
        if self.available_zones() == 0 {
            return;
        }
        self.dead_zones += 1;
        ctx.emit_fields(
            "gaming",
            "zone_fail",
            &[
                ("node", Field::U64(u64::from(node))),
                ("zones", Field::U64(self.available_zones() as u64)),
            ],
        );
        let capacity = self.capacity() as u64;
        while self.online > capacity {
            self.online -= 1;
            self.ghost_leaves += 1;
            self.disconnected += 1;
            ctx.emit_fields(
                "gaming",
                "disconnect",
                &[("online", Field::U64(self.online))],
            );
        }
        self.refresh_overload(ctx);
    }

    fn node_repair(&mut self, ctx: &mut Context<'_, M>, node: u32) {
        if self.dead_zones == 0 {
            return;
        }
        self.dead_zones -= 1;
        ctx.emit_fields(
            "gaming",
            "zone_repair",
            &[
                ("node", Field::U64(u64::from(node))),
                ("zones", Field::U64(self.available_zones() as u64)),
            ],
        );
        self.refresh_overload(ctx);
    }

    fn set_pressure(&mut self, ctx: &mut Context<'_, M>, on: bool) {
        if on {
            self.pressure += 1;
        } else {
            self.pressure = self.pressure.saturating_sub(1);
        }
        ctx.emit_fields(
            "gaming",
            "pressure",
            &[("windows", Field::U64(u64::from(self.pressure)))],
        );
        self.refresh_overload(ctx);
    }

    fn arm_sync(&mut self, ctx: &mut Context<'_, M>) {
        if let Some((cfg, _)) = &self.sync {
            let t = ctx.now() + cfg.interval;
            if t < self.horizon {
                ctx.send_at(ctx.self_id(), t, M::wrap(GamingMsg::SyncTick));
            }
        }
    }

    fn sync_tick(&mut self, ctx: &mut Context<'_, M>) {
        if let Some((cfg, hook)) = &mut self.sync {
            let bytes = cfg.base_bytes + cfg.per_player_bytes * self.online;
            let seq = self.sync_seq;
            self.sync_seq += 1;
            hook(ctx, seq, bytes);
        }
        self.arm_sync(ctx);
    }

    fn sync_done(&mut self, ctx: &mut Context<'_, M>, lagged: bool) {
        if lagged {
            self.laggy_syncs += 1;
        }
        ctx.emit_fields(
            "gaming",
            "sync_done",
            &[
                ("lagged", Field::Bool(lagged)),
                ("online", Field::U64(self.online)),
            ],
        );
    }
}

impl<M: MessageEnvelope<GamingMsg>> Actor<M> for WorldActor<'_, M> {
    fn handle(&mut self, ctx: &mut Context<'_, M>, msg: M) {
        let Some(msg) = msg.unwrap() else { return };
        match msg {
            GamingMsg::Start => {
                self.arm_next_join(ctx);
                self.arm_sync(ctx);
            }
            GamingMsg::Join => self.join(ctx),
            GamingMsg::Leave => self.leave(ctx),
            GamingMsg::ZoneReady => self.zone_ready(ctx),
            GamingMsg::NodeFail(node) => self.node_fail(ctx, node),
            GamingMsg::NodeRepair(node) => self.node_repair(ctx, node),
            GamingMsg::Pressure(on) => self.set_pressure(ctx, on),
            GamingMsg::SyncTick => self.sync_tick(ctx),
            GamingMsg::SyncDone(lagged) => self.sync_done(ctx, lagged),
        }
    }
}

/// Runs the virtual world standalone on a single-actor simulation — the
/// thin wrapper equivalent of composing [`WorldActor`] into a scenario.
/// Returns the trace; every metric is derived from it.
pub fn run_gaming_standalone(
    config: &GamingConfig,
    seed: u64,
    horizon: SimTime,
) -> TraceBus {
    let mut actor = WorldActor::new(config.clone(), horizon, RngStream::new(seed, "gaming"));
    let mut sim: Simulation<'_, GamingMsg> = Simulation::new(seed);
    sim.set_horizon(horizon);
    let id = sim.add_actor(&mut actor);
    sim.schedule(SimTime::ZERO, id, GamingMsg::Start);
    sim.run();
    sim.take_trace()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_simcore::codec::Json;

    const HOUR: u64 = 3600;

    fn flashy() -> GamingConfig {
        GamingConfig {
            players: PlayerModel {
                base_rate: 0.5,
                flash: Some((
                    SimTime::from_secs(2 * HOUR),
                    SimDuration::from_hours(1),
                    4.0,
                )),
                ..PlayerModel::default()
            },
            ..GamingConfig::default()
        }
    }

    #[test]
    fn standalone_run_admits_players_and_scales_zones() {
        let trace = run_gaming_standalone(&flashy(), 7, SimTime::from_secs(6 * HOUR));
        assert!(trace.count("gaming", "join") > 100);
        assert!(trace.count("gaming", "leave") > 0);
        assert!(trace.count("gaming", "zone_up") > 0, "flash crowd must trigger scale-up");
    }

    #[test]
    fn standalone_run_is_deterministic() {
        let a = run_gaming_standalone(&flashy(), 11, SimTime::from_secs(6 * HOUR));
        let b = run_gaming_standalone(&flashy(), 11, SimTime::from_secs(6 * HOUR));
        assert_eq!(a.to_json_string(), b.to_json_string());
    }

    #[test]
    fn static_world_overloads_under_flash_crowd() {
        let mut config = GamingConfig {
            provisioning: ZoneProvisioning::Static { zones: 4 },
            ..flashy()
        };
        // Steady state sits below the watermark, so the overload window is
        // the flash crowd and its drain — start AND end land in the trace.
        config.players.base_rate = 0.2;
        let trace = run_gaming_standalone(&config, 1, SimTime::from_secs(6 * HOUR));
        assert!(trace.count("gaming", "reject") > 0);
        let starts = trace.count("gaming", "overload_start");
        let ends = trace.count("gaming", "overload_end");
        assert!(starts > 0, "flash crowd must overload 4 static zones");
        assert!(ends == starts || ends + 1 == starts, "starts {starts} ends {ends}");
        let overload_secs: f64 = trace
            .select("gaming", "overload_end")
            .iter()
            .filter_map(|e| match e.payload.get("secs") {
                Some(Json::Float(s)) => Some(*s),
                _ => None,
            })
            .sum();
        assert!(overload_secs > 0.0);
    }

    #[test]
    fn zone_failures_disconnect_overflow_players() {
        let config = GamingConfig {
            provisioning: ZoneProvisioning::Static { zones: 3 },
            zone_capacity: 50,
            ..flashy()
        };
        let horizon = SimTime::from_secs(4 * HOUR);
        let mut actor = WorldActor::new(config, horizon, RngStream::new(5, "gaming"));
        let mut sim: Simulation<'_, GamingMsg> = Simulation::new(5);
        sim.set_horizon(horizon);
        let id = sim.add_actor(&mut actor);
        sim.schedule(SimTime::ZERO, id, GamingMsg::Start);
        // Kill two of three zones mid-flash, repair one later.
        sim.schedule(SimTime::from_secs(5 * HOUR / 2), id, GamingMsg::NodeFail(0));
        sim.schedule(SimTime::from_secs(5 * HOUR / 2), id, GamingMsg::NodeFail(1));
        sim.schedule(SimTime::from_secs(3 * HOUR), id, GamingMsg::NodeRepair(0));
        sim.run();
        let trace = sim.take_trace();
        drop(sim);

        assert_eq!(trace.count("gaming", "zone_fail"), 2);
        assert_eq!(trace.count("gaming", "zone_repair"), 1);
        assert!(actor.disconnected() > 0, "losing 2/3 zones at peak must disconnect players");
        assert_eq!(trace.count("gaming", "disconnect") as u64, actor.disconnected());
    }

    #[test]
    fn pressure_shrinks_capacity() {
        let config = GamingConfig {
            provisioning: ZoneProvisioning::Static { zones: 2 },
            zone_capacity: 100,
            pressure_capacity_factor: 0.5,
            ..flashy()
        };
        let horizon = SimTime::from_secs(4 * HOUR);
        let mut actor = WorldActor::new(config, horizon, RngStream::new(2, "gaming"));
        let mut sim: Simulation<'_, GamingMsg> = Simulation::new(2);
        sim.set_horizon(horizon);
        let id = sim.add_actor(&mut actor);
        sim.schedule(SimTime::ZERO, id, GamingMsg::Start);
        sim.schedule(SimTime::from_secs(2 * HOUR), id, GamingMsg::Pressure(true));
        sim.run();
        drop(sim);
        // With capacity halved during the flash window, the door closes.
        assert!(actor.rejected() > 0);
    }
}
