//! Gaming analytics: implicit social ties and toxicity detection.
//!
//! The paper's C5 ("socially aware systems") builds on the authors' work on
//! implicit social relationships in multiplayer games \[48\]\[82\] and toxicity
//! detection \[35\]. This module generates match logs from a latent community
//! structure, recovers the communities from nothing but co-play
//! observations, and runs a toxicity detector whose precision/recall can be
//! measured against the latent ground truth.

use mcs_graph::algorithms::cdlp_serial;
use mcs_graph::graph::Graph;
use mcs_simcore::rng::RngStream;
use std::collections::HashMap;

/// A match record: which players played together.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchRecord {
    /// Player ids in the match.
    pub players: Vec<u32>,
    /// Chat messages flagged by peers, per player (index-aligned).
    pub flags: Vec<u32>,
}

/// The latent population used to generate match logs.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationModel {
    /// Number of players.
    pub players: u32,
    /// Number of latent friend communities.
    pub communities: u32,
    /// Probability that a match is arranged within one community
    /// (the social signal strength).
    pub party_probability: f64,
    /// Players per match.
    pub match_size: usize,
    /// Fraction of players who are toxic.
    pub toxic_fraction: f64,
    /// Flag rate of toxic players, per match.
    pub toxic_flag_rate: f64,
    /// Flag rate of normal players (false reports), per match.
    pub normal_flag_rate: f64,
}

impl Default for PopulationModel {
    fn default() -> Self {
        PopulationModel {
            players: 400,
            communities: 8,
            party_probability: 0.7,
            match_size: 4,
            toxic_fraction: 0.05,
            toxic_flag_rate: 1.5,
            normal_flag_rate: 0.05,
        }
    }
}

/// A generated match log plus the latent truth (for evaluation only).
#[derive(Debug, Clone, PartialEq)]
pub struct MatchLog {
    /// The matches, in play order.
    pub matches: Vec<MatchRecord>,
    /// Latent community of each player.
    pub true_community: Vec<u32>,
    /// Latent toxicity of each player.
    pub truly_toxic: Vec<bool>,
}

/// Generates `match_count` matches from the population model.
pub fn generate_matches(model: &PopulationModel, match_count: usize, seed: u64) -> MatchLog {
    let mut rng = RngStream::new(seed, "match-log");
    let n = model.players;
    let true_community: Vec<u32> =
        (0..n).map(|p| p % model.communities.max(1)).collect();
    let truly_toxic: Vec<bool> =
        (0..n).map(|_| rng.bernoulli(model.toxic_fraction)).collect();
    let mut by_community: HashMap<u32, Vec<u32>> = HashMap::new();
    for (p, &c) in true_community.iter().enumerate() {
        by_community.entry(c).or_default().push(p as u32);
    }

    let mut matches = Vec::with_capacity(match_count);
    for _ in 0..match_count {
        let players: Vec<u32> = if rng.bernoulli(model.party_probability) {
            // Party match: everyone from one community.
            let c = rng.uniform_usize(model.communities.max(1) as usize) as u32;
            let pool = &by_community[&c];
            (0..model.match_size)
                .map(|_| pool[rng.uniform_usize(pool.len())])
                .collect()
        } else {
            // Matchmaking: uniform across the population.
            (0..model.match_size)
                .map(|_| rng.uniform_usize(n as usize) as u32)
                .collect()
        };
        let flags = players
            .iter()
            .map(|&p| {
                let rate = if truly_toxic[p as usize] {
                    model.toxic_flag_rate
                } else {
                    model.normal_flag_rate
                };
                // Poisson-ish flag count via repeated Bernoulli halves.
                let mut count = 0u32;
                let mut remaining = rate;
                while remaining > 0.0 {
                    if rng.bernoulli(remaining.min(1.0)) {
                        count += 1;
                    }
                    remaining -= 1.0;
                }
                count
            })
            .collect();
        matches.push(MatchRecord { players, flags });
    }
    MatchLog { matches, true_community, truly_toxic }
}

/// Builds the implicit social graph: an edge per co-play above
/// `min_coplays` shared matches (\[82\]'s tie-strength thresholding).
pub fn implicit_social_graph(log: &MatchLog, players: u32, min_coplays: u32) -> Graph {
    let mut coplay: HashMap<(u32, u32), u32> = HashMap::new();
    for m in &log.matches {
        for (i, &a) in m.players.iter().enumerate() {
            for &b in &m.players[i + 1..] {
                if a == b {
                    continue;
                }
                let key = if a < b { (a, b) } else { (b, a) };
                *coplay.entry(key).or_insert(0) += 1;
            }
        }
    }
    let edges: Vec<(u32, u32)> = coplay
        .into_iter()
        .filter(|(_, c)| *c >= min_coplays)
        .map(|(k, _)| k)
        .collect();
    let mut sorted = edges;
    sorted.sort_unstable();
    Graph::from_edges(players, &sorted, None)
}

/// Recovers communities from the implicit graph via label propagation and
/// scores them against the latent truth with pairwise precision/recall F1.
pub fn community_recovery_f1(log: &MatchLog, players: u32, min_coplays: u32) -> f64 {
    let g = implicit_social_graph(log, players, min_coplays);
    let labels = cdlp_serial(&g, 10);
    // Pairwise F1 over a deterministic sample of pairs.
    let mut tp = 0u64;
    let mut fp = 0u64;
    let mut fn_ = 0u64;
    let n = players as usize;
    for a in 0..n {
        for b in (a + 1)..n {
            let same_true = log.true_community[a] == log.true_community[b];
            let same_found = labels[a] == labels[b];
            match (same_true, same_found) {
                (true, true) => tp += 1,
                (false, true) => fp += 1,
                (true, false) => fn_ += 1,
                (false, false) => {}
            }
        }
    }
    if tp == 0 {
        return 0.0;
    }
    let precision = tp as f64 / (tp + fp) as f64;
    let recall = tp as f64 / (tp + fn_) as f64;
    2.0 * precision * recall / (precision + recall)
}

/// The toxicity detector: flag-rate thresholding over a player's matches.
/// Returns `(precision, recall)` against the latent truth.
pub fn toxicity_detector(log: &MatchLog, players: u32, threshold: f64) -> (f64, f64) {
    let mut flags = vec![0u32; players as usize];
    let mut games = vec![0u32; players as usize];
    for m in &log.matches {
        for (&p, &f) in m.players.iter().zip(&m.flags) {
            flags[p as usize] += f;
            games[p as usize] += 1;
        }
    }
    let predicted: Vec<bool> = (0..players as usize)
        .map(|p| games[p] >= 3 && flags[p] as f64 / games[p] as f64 >= threshold)
        .collect();
    let mut tp = 0.0;
    let mut fp = 0.0;
    let mut fn_ = 0.0;
    for (truth, pred) in log.truly_toxic.iter().zip(&predicted) {
        match (*truth, *pred) {
            (true, true) => tp += 1.0,
            (false, true) => fp += 1.0,
            (true, false) => fn_ += 1.0,
            _ => {}
        }
    }
    let precision = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
    let recall = if tp + fn_ > 0.0 { tp / (tp + fn_) } else { 0.0 };
    (precision, recall)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn social_graph_denser_inside_communities() {
        let model = PopulationModel::default();
        let log = generate_matches(&model, 20_000, 1);
        let g = implicit_social_graph(&log, model.players, 3);
        assert!(g.edge_count() > 0);
        let mut intra = 0u64;
        let mut inter = 0u64;
        for v in g.vertices() {
            for &t in g.neighbors(v) {
                if log.true_community[v as usize] == log.true_community[t as usize] {
                    intra += 1;
                } else {
                    inter += 1;
                }
            }
        }
        assert!(intra > inter * 3, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn communities_recoverable_when_parties_dominate() {
        let model = PopulationModel {
            players: 120,
            communities: 4,
            party_probability: 0.9,
            ..Default::default()
        };
        let log = generate_matches(&model, 30_000, 2);
        let f1 = community_recovery_f1(&log, model.players, 10);
        assert!(f1 > 0.6, "F1 = {f1}");
        // With no social signal, recovery should collapse.
        let noise = PopulationModel { party_probability: 0.0, ..model };
        let noise_log = generate_matches(&noise, 30_000, 3);
        let noise_f1 = community_recovery_f1(&noise_log, noise.players, 10);
        assert!(noise_f1 < f1 * 0.8, "signal {f1} vs noise {noise_f1}");
    }

    #[test]
    fn toxicity_detector_beats_chance() {
        let model = PopulationModel::default();
        let log = generate_matches(&model, 20_000, 4);
        let (precision, recall) = toxicity_detector(&log, model.players, 0.5);
        assert!(precision > 0.8, "precision {precision}");
        assert!(recall > 0.8, "recall {recall}");
    }

    #[test]
    fn toxicity_threshold_trades_precision_for_recall() {
        let model = PopulationModel::default();
        let log = generate_matches(&model, 20_000, 5);
        let (p_strict, r_strict) = toxicity_detector(&log, model.players, 1.2);
        let (p_lax, r_lax) = toxicity_detector(&log, model.players, 0.1);
        assert!(p_strict >= p_lax, "strict precision {p_strict} vs lax {p_lax}");
        assert!(r_lax >= r_strict, "lax recall {r_lax} vs strict {r_strict}");
    }

    #[test]
    fn deterministic_log_generation() {
        let m = PopulationModel::default();
        assert_eq!(generate_matches(&m, 100, 7), generate_matches(&m, 100, 7));
    }
}
