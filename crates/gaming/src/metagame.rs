//! Social meta-gaming: the fourth function of Figure 4.
//!
//! "Spending time in activities related to the game itself, such as playing
//! in a tournament or being spectators" (§6.3, citing the XFire meta-gaming
//! study \[49\] and the replay/streaming study \[50\]). This module models a
//! tournament's bracket and its spectator audience: viewers arrive per
//! match, concentrated on star players (Zipf), and the platform must
//! provision stream capacity for the audience peak — another elasticity
//! story, one layer above the virtual world.

use mcs_simcore::dist::{Dist, Sample};
use mcs_simcore::rng::RngStream;

/// A single-elimination tournament over `2^rounds` players.
#[derive(Debug, Clone, PartialEq)]
pub struct Tournament {
    /// Player ids, seeded in bracket order; length is a power of two.
    pub players: Vec<u32>,
    /// Per-player skill (higher tends to win).
    pub skill: Vec<f64>,
}

/// One played match.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlayedMatch {
    /// Bracket round, 0 = first round.
    pub round: u32,
    /// First contestant.
    pub a: u32,
    /// Second contestant.
    pub b: u32,
    /// The winner (`a` or `b`).
    pub winner: u32,
    /// Spectators who watched this match.
    pub spectators: u64,
}

/// The outcome of a tournament: matches in play order plus audience totals.
#[derive(Debug, Clone, PartialEq)]
pub struct TournamentOutcome {
    /// All matches, first round first.
    pub matches: Vec<PlayedMatch>,
    /// The champion.
    pub champion: u32,
    /// Largest single-match audience.
    pub peak_spectators: u64,
    /// Total spectator-matches.
    pub total_spectators: u64,
}

impl Tournament {
    /// Seeds a tournament of `2^rounds` players with Pareto-distributed
    /// skill (a few stars, many journeymen).
    ///
    /// # Panics
    /// Panics when `rounds == 0` or `rounds > 16`.
    pub fn seeded(rounds: u32, rng: &mut RngStream) -> Self {
        assert!((1..=16).contains(&rounds), "rounds must be 1..=16");
        let n = 1u32 << rounds;
        let skill_dist = Dist::Pareto { x_min: 1.0, alpha: 1.5 };
        Tournament {
            players: (0..n).collect(),
            skill: (0..n).map(|_| skill_dist.sample(rng)).collect(),
        }
    }

    /// Number of rounds.
    pub fn rounds(&self) -> u32 {
        self.players.len().trailing_zeros()
    }

    /// Plays the bracket. Win probability follows relative skill; the
    /// audience of a match scales with the contestants' combined skill
    /// (stars draw crowds) and doubles each round (stakes rise).
    pub fn play(&self, base_audience: f64, rng: &mut RngStream) -> TournamentOutcome {
        let mut alive: Vec<u32> = self.players.clone();
        let mut matches = Vec::new();
        let mut round = 0u32;
        let mut peak = 0u64;
        let mut total = 0u64;
        while alive.len() > 1 {
            let mut next = Vec::with_capacity(alive.len() / 2);
            for pair in alive.chunks(2) {
                let (a, b) = (pair[0], pair[1]);
                let (sa, sb) = (self.skill[a as usize], self.skill[b as usize]);
                let winner = if rng.next_f64() < sa / (sa + sb) { a } else { b };
                let spectators = (base_audience
                    * (sa + sb)
                    * 2f64.powi(round as i32))
                .round() as u64;
                peak = peak.max(spectators);
                total += spectators;
                matches.push(PlayedMatch { round, a, b, winner, spectators });
                next.push(winner);
            }
            alive = next;
            round += 1;
        }
        TournamentOutcome { champion: alive[0], peak_spectators: peak, total_spectators: total, matches }
    }
}

/// Stream capacity planning for a tournament: how many stream servers are
/// needed at `viewers_per_server`, statically (peak) vs per-round
/// (elastic). Returns `(static_server_rounds, elastic_server_rounds)` —
/// server-rounds are the cost unit.
pub fn stream_capacity_plan(
    outcome: &TournamentOutcome,
    viewers_per_server: u64,
) -> (u64, u64) {
    let viewers_per_server = viewers_per_server.max(1);
    let rounds = outcome.matches.iter().map(|m| m.round).max().unwrap_or(0) + 1;
    // Audience per round is the concurrent load (matches in a round overlap).
    let mut per_round = vec![0u64; rounds as usize];
    for m in &outcome.matches {
        per_round[m.round as usize] += m.spectators;
    }
    let peak_servers = per_round
        .iter()
        .map(|v| v.div_ceil(viewers_per_server))
        .max()
        .unwrap_or(0);
    let static_cost = peak_servers * rounds as u64;
    let elastic_cost: u64 = per_round.iter().map(|v| v.div_ceil(viewers_per_server)).sum();
    (static_cost, elastic_cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bracket_plays_all_matches() {
        let mut rng = RngStream::new(1, "meta");
        let t = Tournament::seeded(4, &mut rng); // 16 players
        let out = t.play(10.0, &mut rng);
        assert_eq!(out.matches.len(), 15); // n-1 matches
        assert_eq!(t.rounds(), 4);
        assert!(t.players.contains(&out.champion));
    }

    #[test]
    fn winners_advance() {
        let mut rng = RngStream::new(2, "meta");
        let t = Tournament::seeded(3, &mut rng);
        let out = t.play(10.0, &mut rng);
        // Every non-final winner appears in a later round.
        let final_round = out.matches.iter().map(|m| m.round).max().unwrap();
        for m in &out.matches {
            if m.round < final_round {
                assert!(
                    out.matches
                        .iter()
                        .any(|later| later.round == m.round + 1
                            && (later.a == m.winner || later.b == m.winner)),
                    "winner {} of round {} vanished",
                    m.winner,
                    m.round
                );
            }
        }
    }

    #[test]
    fn skill_wins_in_expectation() {
        let mut rng = RngStream::new(3, "meta");
        // A rigged bracket: player 0 has overwhelming skill.
        let mut t = Tournament::seeded(3, &mut rng);
        t.skill[0] = 1_000.0;
        let wins = (0..50)
            .filter(|i| {
                let mut r = RngStream::new(100 + i, "meta-play");
                t.play(10.0, &mut r).champion == 0
            })
            .count();
        assert!(wins > 40, "star won only {wins}/50");
    }

    #[test]
    fn audience_grows_toward_the_final() {
        let mut rng = RngStream::new(4, "meta");
        let t = Tournament::seeded(4, &mut rng);
        let out = t.play(100.0, &mut rng);
        let final_match = out.matches.last().unwrap();
        let first_match = &out.matches[0];
        assert!(final_match.spectators > first_match.spectators);
        assert_eq!(out.peak_spectators, out.matches.iter().map(|m| m.spectators).max().unwrap());
    }

    #[test]
    fn elastic_streaming_cheaper_than_static_peak() {
        let mut rng = RngStream::new(5, "meta");
        let t = Tournament::seeded(5, &mut rng);
        let out = t.play(100.0, &mut rng);
        let (static_cost, elastic_cost) = stream_capacity_plan(&out, 1_000);
        assert!(elastic_cost <= static_cost);
        assert!(
            elastic_cost as f64 <= static_cost as f64 * 0.9,
            "elastic {elastic_cost} vs static {static_cost}"
        );
    }

    #[test]
    #[should_panic(expected = "rounds must be")]
    fn zero_round_tournament_rejected() {
        let mut rng = RngStream::new(6, "meta");
        let _ = Tournament::seeded(0, &mut rng);
    }
}
