//! Workflow (DAG) construction and analysis.
//!
//! Scientific workflows — BLAST, Epigenomics, LIGO, Montage (paper §6.2) —
//! are DAGs of tasks. This module provides a validated DAG builder, critical-
//! path analysis, and generators for the canonical workflow shapes used in
//! the characterization literature the paper cites (\[114\]).

use crate::task::{Job, JobId, JobKind, Task, TaskId, UserId};
use mcs_infra::resource::ResourceVector;
use mcs_simcore::rng::RngStream;
use mcs_simcore::time::SimTime;
use std::collections::HashMap;

/// Errors from workflow validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkflowError {
    /// A dependency references a task id not present in the workflow.
    UnknownDependency {
        /// The task declaring the dependency.
        task: TaskId,
        /// The missing dependency.
        missing: TaskId,
    },
    /// The dependency graph contains a cycle.
    Cycle,
    /// The workflow has no tasks.
    Empty,
}

impl std::fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkflowError::UnknownDependency { task, missing } => {
                write!(f, "task {task} depends on unknown task {missing}")
            }
            WorkflowError::Cycle => write!(f, "dependency graph contains a cycle"),
            WorkflowError::Empty => write!(f, "workflow has no tasks"),
        }
    }
}

impl std::error::Error for WorkflowError {}

/// A validated workflow job: guaranteed acyclic with resolved dependencies.
#[derive(Debug, Clone, PartialEq)]
pub struct Workflow {
    job: Job,
    topo_order: Vec<usize>,
}

impl Workflow {
    /// Validates `job`'s dependency graph (existence + acyclicity).
    ///
    /// # Errors
    /// Returns [`WorkflowError`] when the job is empty, references unknown
    /// tasks, or contains a dependency cycle.
    pub fn validate(job: Job) -> Result<Workflow, WorkflowError> {
        if job.tasks.is_empty() {
            return Err(WorkflowError::Empty);
        }
        let index: HashMap<TaskId, usize> =
            job.tasks.iter().enumerate().map(|(i, t)| (t.id, i)).collect();
        for t in &job.tasks {
            for dep in &t.dependencies {
                if !index.contains_key(dep) {
                    return Err(WorkflowError::UnknownDependency { task: t.id, missing: *dep });
                }
            }
        }
        // Kahn's algorithm for topological order / cycle detection.
        let n = job.tasks.len();
        let mut indegree = vec![0usize; n];
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, t) in job.tasks.iter().enumerate() {
            for dep in &t.dependencies {
                let d = index[dep];
                children[d].push(i);
                indegree[i] += 1;
            }
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(i) = ready.pop() {
            topo.push(i);
            for &c in &children[i] {
                indegree[c] -= 1;
                if indegree[c] == 0 {
                    ready.push(c);
                }
            }
        }
        if topo.len() != n {
            return Err(WorkflowError::Cycle);
        }
        Ok(Workflow { job, topo_order: topo })
    }

    /// The underlying job.
    pub fn job(&self) -> &Job {
        &self.job
    }

    /// Consumes the workflow, returning the job.
    pub fn into_job(self) -> Job {
        self.job
    }

    /// Task indices in a valid topological order.
    pub fn topological_order(&self) -> &[usize] {
        &self.topo_order
    }

    /// Length of the critical path in ideal seconds (each task on its own
    /// requested cores at reference speed): the lower bound on makespan with
    /// infinite resources.
    pub fn critical_path_seconds(&self) -> f64 {
        let index: HashMap<TaskId, usize> =
            self.job.tasks.iter().enumerate().map(|(i, t)| (t.id, i)).collect();
        let mut finish = vec![0.0f64; self.job.tasks.len()];
        for &i in &self.topo_order {
            let t = &self.job.tasks[i];
            let start = t
                .dependencies
                .iter()
                .map(|d| finish[index[d]])
                .fold(0.0f64, f64::max);
            finish[i] = start + t.service_time(1.0).as_secs_f64();
        }
        finish.iter().fold(0.0f64, |a, &b| a.max(b))
    }

    /// The number of dependency levels (chain length in tasks).
    pub fn depth(&self) -> usize {
        let index: HashMap<TaskId, usize> =
            self.job.tasks.iter().enumerate().map(|(i, t)| (t.id, i)).collect();
        let mut level = vec![1usize; self.job.tasks.len()];
        for &i in &self.topo_order {
            let t = &self.job.tasks[i];
            let parent = t.dependencies.iter().map(|d| level[index[d]]).max().unwrap_or(0);
            level[i] = parent + 1;
        }
        level.into_iter().max().unwrap_or(0)
    }

    /// The widest level (maximum exploitable parallelism).
    pub fn max_width(&self) -> usize {
        let index: HashMap<TaskId, usize> =
            self.job.tasks.iter().enumerate().map(|(i, t)| (t.id, i)).collect();
        let mut level = vec![0usize; self.job.tasks.len()];
        for &i in &self.topo_order {
            let t = &self.job.tasks[i];
            level[i] = t.dependencies.iter().map(|d| level[index[d]] + 1).max().unwrap_or(0);
        }
        let mut width: HashMap<usize, usize> = HashMap::new();
        for l in level {
            *width.entry(l).or_insert(0) += 1;
        }
        width.into_values().max().unwrap_or(0)
    }
}

/// Generators for the canonical workflow shapes of the characterization
/// literature (chain, fork-join, and a Montage-like diamond ensemble).
#[derive(Debug, Clone)]
pub struct WorkflowShapes {
    next_task: u64,
}

impl Default for WorkflowShapes {
    fn default() -> Self {
        WorkflowShapes::new()
    }
}

impl WorkflowShapes {
    /// A generator with a fresh task-id counter.
    pub fn new() -> Self {
        WorkflowShapes { next_task: 0 }
    }

    fn fresh(&mut self) -> TaskId {
        let id = TaskId(self.next_task);
        self.next_task += 1;
        id
    }

    fn mk_task(
        &mut self,
        job: JobId,
        demand: f64,
        req: ResourceVector,
        deps: Vec<TaskId>,
    ) -> Task {
        Task {
            id: self.fresh(),
            job,
            demand_core_seconds: demand,
            req,
            dependencies: deps,
            deadline: None,
        }
    }

    /// A linear pipeline of `len` tasks.
    ///
    /// # Panics
    /// Panics if `len == 0`.
    pub fn chain(
        &mut self,
        job: JobId,
        user: UserId,
        submit: SimTime,
        len: usize,
        demand: f64,
        req: ResourceVector,
    ) -> Workflow {
        assert!(len > 0);
        let mut tasks = Vec::with_capacity(len);
        let mut prev: Option<TaskId> = None;
        for _ in 0..len {
            let deps = prev.into_iter().collect();
            let t = self.mk_task(job, demand, req, deps);
            prev = Some(t.id);
            tasks.push(t);
        }
        Workflow::validate(Job { id: job, user, kind: JobKind::Workflow, submit, tasks })
            .expect("chain is a valid DAG")
    }

    /// Fork-join: one source, `width` parallel tasks, one sink.
    ///
    /// # Panics
    /// Panics if `width == 0`.
    pub fn fork_join(
        &mut self,
        job: JobId,
        user: UserId,
        submit: SimTime,
        width: usize,
        demand: f64,
        req: ResourceVector,
    ) -> Workflow {
        assert!(width > 0);
        let mut tasks = Vec::with_capacity(width + 2);
        let src = self.mk_task(job, demand, req, vec![]);
        let src_id = src.id;
        tasks.push(src);
        let mut mids = Vec::with_capacity(width);
        for _ in 0..width {
            let t = self.mk_task(job, demand, req, vec![src_id]);
            mids.push(t.id);
            tasks.push(t);
        }
        let sink = self.mk_task(job, demand, req, mids);
        tasks.push(sink);
        Workflow::validate(Job { id: job, user, kind: JobKind::Workflow, submit, tasks })
            .expect("fork-join is a valid DAG")
    }

    /// A Montage-like multi-stage ensemble: `width` ingest tasks, pairwise
    /// combination stage, then a reduction chain — the diamond-ish structure
    /// of astronomy mosaicking workflows. Demands are drawn from `rng` in
    /// `[0.5, 1.5] × demand` to give realistic imbalance.
    #[allow(clippy::too_many_arguments)]
    pub fn montage_like(
        &mut self,
        job: JobId,
        user: UserId,
        submit: SimTime,
        width: usize,
        demand: f64,
        req: ResourceVector,
        rng: &mut RngStream,
    ) -> Workflow {
        let width = width.max(2);
        let mut tasks = Vec::new();
        let mut ingest = Vec::with_capacity(width);
        for _ in 0..width {
            let d = demand * rng.uniform_f64(0.5, 1.5);
            let t = self.mk_task(job, d, req, vec![]);
            ingest.push(t.id);
            tasks.push(t);
        }
        // Combination stage: each adjacent pair feeds one combiner.
        let mut combiners = Vec::new();
        for pair in ingest.windows(2) {
            let d = demand * rng.uniform_f64(0.5, 1.5);
            let t = self.mk_task(job, d, req, pair.to_vec());
            combiners.push(t.id);
            tasks.push(t);
        }
        // Reduction chain to a single output.
        let mut prev: Option<TaskId> = None;
        for c in combiners {
            let mut deps = vec![c];
            if let Some(p) = prev {
                deps.push(p);
            }
            let t = self.mk_task(job, demand * 0.25, req, deps);
            prev = Some(t.id);
            tasks.push(t);
        }
        Workflow::validate(Job { id: job, user, kind: JobKind::Workflow, submit, tasks })
            .expect("montage-like is a valid DAG")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> ResourceVector {
        ResourceVector::cores(1.0)
    }

    #[test]
    fn chain_properties() {
        let mut shapes = WorkflowShapes::new();
        let wf = shapes.chain(JobId(0), UserId(0), SimTime::ZERO, 5, 10.0, req());
        assert_eq!(wf.job().tasks.len(), 5);
        assert_eq!(wf.depth(), 5);
        assert_eq!(wf.max_width(), 1);
        assert!((wf.critical_path_seconds() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn fork_join_properties() {
        let mut shapes = WorkflowShapes::new();
        let wf = shapes.fork_join(JobId(0), UserId(0), SimTime::ZERO, 8, 10.0, req());
        assert_eq!(wf.job().tasks.len(), 10);
        assert_eq!(wf.depth(), 3);
        assert_eq!(wf.max_width(), 8);
        assert!((wf.critical_path_seconds() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn montage_like_is_valid_dag() {
        let mut shapes = WorkflowShapes::new();
        let mut rng = RngStream::new(1, "wf");
        let wf =
            shapes.montage_like(JobId(0), UserId(0), SimTime::ZERO, 6, 20.0, req(), &mut rng);
        assert!(wf.job().tasks.len() > 10);
        assert!(wf.depth() >= 3);
        assert!(wf.critical_path_seconds() > 0.0);
    }

    #[test]
    fn cycle_detected() {
        let mk = |id: u64, deps: Vec<u64>| Task {
            id: TaskId(id),
            job: JobId(0),
            demand_core_seconds: 1.0,
            req: req(),
            dependencies: deps.into_iter().map(TaskId).collect(),
            deadline: None,
        };
        let job = Job {
            id: JobId(0),
            user: UserId(0),
            kind: JobKind::Workflow,
            submit: SimTime::ZERO,
            tasks: vec![mk(0, vec![1]), mk(1, vec![0])],
        };
        assert_eq!(Workflow::validate(job).unwrap_err(), WorkflowError::Cycle);
    }

    #[test]
    fn unknown_dependency_detected() {
        let t = Task {
            id: TaskId(0),
            job: JobId(0),
            demand_core_seconds: 1.0,
            req: req(),
            dependencies: vec![TaskId(42)],
            deadline: None,
        };
        let job = Job {
            id: JobId(0),
            user: UserId(0),
            kind: JobKind::Workflow,
            submit: SimTime::ZERO,
            tasks: vec![t],
        };
        match Workflow::validate(job).unwrap_err() {
            WorkflowError::UnknownDependency { missing, .. } => assert_eq!(missing, TaskId(42)),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn empty_workflow_rejected() {
        let job = Job {
            id: JobId(0),
            user: UserId(0),
            kind: JobKind::Workflow,
            submit: SimTime::ZERO,
            tasks: vec![],
        };
        assert_eq!(Workflow::validate(job).unwrap_err(), WorkflowError::Empty);
    }

    #[test]
    fn topological_order_respects_dependencies() {
        let mut shapes = WorkflowShapes::new();
        let mut rng = RngStream::new(2, "wf");
        let wf =
            shapes.montage_like(JobId(0), UserId(0), SimTime::ZERO, 5, 10.0, req(), &mut rng);
        let pos: HashMap<TaskId, usize> = wf
            .topological_order()
            .iter()
            .enumerate()
            .map(|(rank, &idx)| (wf.job().tasks[idx].id, rank))
            .collect();
        for t in &wf.job().tasks {
            for d in &t.dependencies {
                assert!(pos[d] < pos[&t.id], "dependency {d} after {t:?}");
            }
        }
    }
}
