//! Arrival processes.
//!
//! Grid and cloud workloads are *bursty* over short timescales (paper C7,
//! citing Li \[113\]) and exhibit diurnal patterns over long ones. This module
//! provides Poisson, Markov-modulated Poisson (MMPP-2), and time-varying
//! (diurnal + flash-crowd) arrival processes, all deterministic under a
//! seeded [`RngStream`].

use mcs_simcore::dist::{Dist, Sample};
use mcs_simcore::rng::RngStream;
use mcs_simcore::time::{SimDuration, SimTime};

/// A source of arrival instants.
pub trait ArrivalProcess {
    /// The next arrival strictly after `now`, or `None` if the process has
    /// ended.
    fn next_after(&mut self, now: SimTime, rng: &mut RngStream) -> Option<SimTime>;
}

/// Homogeneous Poisson arrivals at `rate` per second.
#[derive(Debug, Clone)]
pub struct Poisson {
    rate: f64,
}

impl Poisson {
    /// A Poisson process with the given rate (arrivals/second).
    ///
    /// # Panics
    /// Panics if `rate` is not strictly positive.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0, "Poisson rate must be positive");
        Poisson { rate }
    }
}

impl ArrivalProcess for Poisson {
    fn next_after(&mut self, now: SimTime, rng: &mut RngStream) -> Option<SimTime> {
        let gap = Dist::Exponential { rate: self.rate }.sample(rng);
        now.checked_add(SimDuration::from_secs_f64(gap))
    }
}

/// Two-state Markov-modulated Poisson process: a *calm* state with low rate
/// and a *burst* state with high rate, switching with exponential sojourns.
/// The standard model for the short-term burstiness of grid traces.
#[derive(Debug, Clone)]
pub struct Mmpp2 {
    calm_rate: f64,
    burst_rate: f64,
    calm_mean_sojourn: f64,
    burst_mean_sojourn: f64,
    in_burst: bool,
    state_until: SimTime,
}

impl Mmpp2 {
    /// Creates an MMPP-2 starting in the calm state.
    ///
    /// # Panics
    /// Panics unless all rates and sojourn means are strictly positive.
    pub fn new(
        calm_rate: f64,
        burst_rate: f64,
        calm_mean_sojourn: f64,
        burst_mean_sojourn: f64,
    ) -> Self {
        assert!(calm_rate > 0.0 && burst_rate > 0.0, "rates must be positive");
        assert!(
            calm_mean_sojourn > 0.0 && burst_mean_sojourn > 0.0,
            "sojourn means must be positive"
        );
        Mmpp2 {
            calm_rate,
            burst_rate,
            calm_mean_sojourn,
            burst_mean_sojourn,
            in_burst: false,
            state_until: SimTime::ZERO,
        }
    }

    fn current_rate(&self) -> f64 {
        if self.in_burst {
            self.burst_rate
        } else {
            self.calm_rate
        }
    }

    fn advance_state(&mut self, now: SimTime, rng: &mut RngStream) {
        while now >= self.state_until {
            let mean = if self.in_burst { self.burst_mean_sojourn } else { self.calm_mean_sojourn };
            let sojourn = Dist::exponential_mean(mean).sample(rng);
            self.state_until += SimDuration::from_secs_f64(sojourn.max(1e-9));
            if now >= self.state_until {
                self.in_burst = !self.in_burst;
            }
        }
    }
}

impl ArrivalProcess for Mmpp2 {
    fn next_after(&mut self, now: SimTime, rng: &mut RngStream) -> Option<SimTime> {
        // Thinning-free approach: sample within the current state; if the
        // candidate falls past the state boundary, re-sample from there.
        // The iteration bound only trips for pathological parameters
        // (millions of state flips between consecutive arrivals); hitting
        // it ends the stream rather than looping forever.
        let mut t = now;
        for _ in 0..1_000_000 {
            self.advance_state(t, rng);
            let gap = Dist::Exponential { rate: self.current_rate() }.sample(rng);
            let candidate = t.checked_add(SimDuration::from_secs_f64(gap))?;
            if candidate <= self.state_until {
                return Some(candidate);
            }
            // Jump to the state boundary and flip state.
            t = self.state_until;
            self.in_burst = !self.in_burst;
            let mean = if self.in_burst { self.burst_mean_sojourn } else { self.calm_mean_sojourn };
            let sojourn = Dist::exponential_mean(mean).sample(rng);
            self.state_until = t + SimDuration::from_secs_f64(sojourn.max(1e-9));
        }
        None
    }
}

/// Non-homogeneous Poisson with a diurnal (sinusoidal) rate profile and an
/// optional flash crowd: the service-workload pattern of §6.3 (gaming) and
/// §6.5 (serverless).
#[derive(Debug, Clone)]
pub struct Diurnal {
    /// Mean arrival rate, per second.
    pub base_rate: f64,
    /// Fraction of the base rate the sinusoid swings (0 = flat).
    pub amplitude: f64,
    /// Period of one "day".
    pub period: SimDuration,
    /// Optional flash crowd: (start, duration, rate multiplier).
    pub flash: Option<(SimTime, SimDuration, f64)>,
}

impl Diurnal {
    /// The instantaneous rate at `t`, per second.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        let phase = (t.as_secs_f64() / self.period.as_secs_f64()) * std::f64::consts::TAU;
        let mut rate = self.base_rate * (1.0 + self.amplitude.clamp(0.0, 1.0) * phase.sin());
        if let Some((start, dur, mult)) = self.flash {
            if t >= start && t < start + dur {
                rate *= mult;
            }
        }
        rate.max(1e-12)
    }

    /// The maximum rate the process can reach (for thinning).
    fn rate_bound(&self) -> f64 {
        let peak = self.base_rate * (1.0 + self.amplitude.clamp(0.0, 1.0));
        match self.flash {
            Some((_, _, mult)) => peak * mult.max(1.0),
            None => peak,
        }
    }
}

impl ArrivalProcess for Diurnal {
    fn next_after(&mut self, now: SimTime, rng: &mut RngStream) -> Option<SimTime> {
        // Ogata thinning against the rate bound.
        let bound = self.rate_bound();
        let mut t = now;
        for _ in 0..100_000 {
            let gap = Dist::Exponential { rate: bound }.sample(rng);
            t = t.checked_add(SimDuration::from_secs_f64(gap))?;
            if rng.next_f64() < self.rate_at(t) / bound {
                return Some(t);
            }
        }
        None
    }
}

/// Collects the arrivals of any process within `[start, end)`, capped at
/// `max` events.
pub fn arrivals_between(
    process: &mut dyn ArrivalProcess,
    start: SimTime,
    end: SimTime,
    max: usize,
    rng: &mut RngStream,
) -> Vec<SimTime> {
    let mut out = Vec::new();
    let mut now = start;
    while out.len() < max {
        match process.next_after(now, rng) {
            Some(t) if t < end => {
                out.push(t);
                now = t;
            }
            _ => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_is_respected() {
        let mut p = Poisson::new(10.0);
        let mut rng = RngStream::new(1, "poisson");
        let arr = arrivals_between(
            &mut p,
            SimTime::ZERO,
            SimTime::from_secs(1_000),
            usize::MAX,
            &mut rng,
        );
        let rate = arr.len() as f64 / 1_000.0;
        assert!((rate - 10.0).abs() < 0.5, "rate = {rate}");
    }

    #[test]
    fn poisson_is_monotone() {
        let mut p = Poisson::new(5.0);
        let mut rng = RngStream::new(2, "poisson");
        let arr =
            arrivals_between(&mut p, SimTime::ZERO, SimTime::from_secs(100), usize::MAX, &mut rng);
        for w in arr.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn poisson_rejects_zero_rate() {
        let _ = Poisson::new(0.0);
    }

    #[test]
    fn mmpp_is_burstier_than_poisson() {
        // Equal average rates; MMPP should have a higher coefficient of
        // variation of inter-arrival times.
        let mut rng = RngStream::new(3, "mmpp");
        let mut mmpp = Mmpp2::new(1.0, 50.0, 100.0, 10.0);
        let horizon = SimTime::from_secs(20_000);
        let bursty = arrivals_between(&mut mmpp, SimTime::ZERO, horizon, usize::MAX, &mut rng);
        let mean_rate = bursty.len() as f64 / horizon.as_secs_f64();
        let mut poisson = Poisson::new(mean_rate);
        let mut rng2 = RngStream::new(3, "poisson-ref");
        let plain = arrivals_between(&mut poisson, SimTime::ZERO, horizon, usize::MAX, &mut rng2);

        let cov = |arr: &[SimTime]| {
            let gaps: Vec<f64> =
                arr.windows(2).map(|w| (w[1] - w[0]).as_secs_f64()).collect();
            let mut st = mcs_simcore::metrics::OnlineStats::new();
            for g in gaps {
                st.record(g);
            }
            st.cov()
        };
        let cov_bursty = cov(&bursty);
        let cov_plain = cov(&plain);
        assert!(
            cov_bursty > cov_plain * 1.5,
            "bursty CoV {cov_bursty} should exceed Poisson CoV {cov_plain}"
        );
    }

    #[test]
    fn diurnal_rate_profile() {
        let d = Diurnal {
            base_rate: 100.0,
            amplitude: 0.5,
            period: SimDuration::from_hours(24),
            flash: Some((SimTime::from_secs(3600), SimDuration::from_secs(600), 5.0)),
        };
        // Quarter period = peak of the sinusoid.
        let peak = d.rate_at(SimTime::from_secs(6 * 3600));
        assert!((peak - 150.0).abs() < 1.0, "peak = {peak}");
        // Inside the flash window the rate is multiplied.
        let flash = d.rate_at(SimTime::from_secs(3700));
        assert!(flash > 300.0, "flash = {flash}");
    }

    #[test]
    fn diurnal_thinning_tracks_profile() {
        let mut d = Diurnal {
            base_rate: 20.0,
            amplitude: 0.9,
            period: SimDuration::from_secs(1_000),
            flash: None,
        };
        let mut rng = RngStream::new(4, "diurnal");
        let arr = arrivals_between(
            &mut d,
            SimTime::ZERO,
            SimTime::from_secs(1_000),
            usize::MAX,
            &mut rng,
        );
        // Count arrivals in the peak quarter vs the trough quarter.
        let in_range = |arr: &[SimTime], lo: u64, hi: u64| {
            arr.iter()
                .filter(|t| **t >= SimTime::from_secs(lo) && **t < SimTime::from_secs(hi))
                .count()
        };
        let peak = in_range(&arr, 125, 375); // around sin peak at t=250
        let trough = in_range(&arr, 625, 875); // around sin trough at t=750
        assert!(peak > trough * 2, "peak {peak} vs trough {trough}");
    }
}
