//! Domain workload generators.
//!
//! Each generator produces the statistically realistic workload of one of
//! the paper's application domains (§6): grid/batch bags-of-tasks, e-science
//! workflows, interactive services, ML/accelerator jobs, serverless function
//! invocations, and deadline-bound transactions. Parameters follow the fits
//! published in the workload-characterization literature the paper cites
//! (lognormal/Weibull runtimes, Zipf users, bursty arrivals).

use crate::arrival::{ArrivalProcess, Mmpp2, Poisson};
use crate::task::{Job, JobId, JobKind, Task, TaskId, UserId};
use crate::trace::{Trace, TraceRecord};
use crate::workflow::{Workflow, WorkflowShapes};
use mcs_infra::resource::ResourceVector;
use mcs_simcore::dist::{Dist, Sample};
use mcs_simcore::rng::RngStream;
use mcs_simcore::time::SimTime;

/// Configuration of the synthetic grid/batch workload (GWA-style).
#[derive(Debug, Clone)]
pub struct BatchWorkloadConfig {
    /// Mean arrival rate, jobs/second.
    pub arrival_rate: f64,
    /// Use bursty MMPP-2 arrivals instead of Poisson.
    pub bursty: bool,
    /// Runtime distribution, seconds.
    pub runtime: Dist,
    /// Processor-count distribution (rounded up to ≥ 1).
    pub cpus: Dist,
    /// Memory per core, GiB.
    pub memory_per_core_gb: f64,
    /// Number of distinct users; activity is Zipf-distributed (the dominant
    /// users the paper's social-awareness work identifies, C5).
    pub users: u32,
    /// Fraction of jobs requesting one accelerator.
    pub accelerator_fraction: f64,
}

impl Default for BatchWorkloadConfig {
    fn default() -> Self {
        BatchWorkloadConfig {
            arrival_rate: 0.05,
            bursty: true,
            // Lognormal runtimes: median ~5.5 min, heavy right tail.
            runtime: Dist::LogNormal { mu: 5.8, sigma: 1.4 },
            // Power-of-two-ish CPU counts via a discretized lognormal.
            cpus: Dist::LogNormal { mu: 0.7, sigma: 0.9 },
            memory_per_core_gb: 2.0,
            users: 32,
            accelerator_fraction: 0.0,
        }
    }
}

/// Generates single-task batch jobs following the configuration.
#[derive(Debug)]
pub struct BatchWorkloadGenerator {
    config: BatchWorkloadConfig,
    user_pick: Dist,
    next_job: u64,
}

impl BatchWorkloadGenerator {
    /// Creates a generator for the given configuration.
    ///
    /// # Panics
    /// Panics if `config.users == 0`.
    pub fn new(config: BatchWorkloadConfig) -> Self {
        assert!(config.users > 0, "need at least one user");
        let user_pick = Dist::Zipf { n: config.users as u64, s: 1.1 };
        BatchWorkloadGenerator { config, user_pick, next_job: 0 }
    }

    /// Generates jobs arriving in `[0, horizon)`, at most `max_jobs`.
    pub fn generate(&mut self, horizon: SimTime, max_jobs: usize, rng: &mut RngStream) -> Vec<Job> {
        let mut arrivals: Box<dyn ArrivalProcess> = if self.config.bursty {
            Box::new(Mmpp2::new(
                self.config.arrival_rate * 0.5,
                self.config.arrival_rate * 8.0,
                600.0,
                40.0,
            ))
        } else {
            Box::new(Poisson::new(self.config.arrival_rate))
        };
        let mut jobs = Vec::new();
        let mut now = SimTime::ZERO;
        while jobs.len() < max_jobs {
            let Some(at) = arrivals.next_after(now, rng) else { break };
            if at >= horizon {
                break;
            }
            now = at;
            jobs.push(self.one_job(at, rng));
        }
        jobs
    }

    fn one_job(&mut self, submit: SimTime, rng: &mut RngStream) -> Job {
        let id = JobId(self.next_job);
        self.next_job += 1;
        let runtime = self.config.runtime.sample(rng).max(1.0);
        let cpus = self.config.cpus.sample(rng).ceil().clamp(1.0, 1024.0);
        let mut req = ResourceVector::new(cpus, cpus * self.config.memory_per_core_gb);
        if rng.bernoulli(self.config.accelerator_fraction) {
            req = req.with_accelerators(1.0);
        }
        let user = UserId(self.user_pick.sample(rng) as u32 - 1);
        Job {
            id,
            user,
            kind: JobKind::BagOfTasks,
            submit,
            tasks: vec![Task::independent(TaskId(id.0), id, runtime * cpus, req)],
        }
    }

    /// Generates a [`Trace`] instead of jobs (for archive round-trips).
    pub fn generate_trace(
        &mut self,
        horizon: SimTime,
        max_jobs: usize,
        rng: &mut RngStream,
    ) -> Trace {
        let jobs = self.generate(horizon, max_jobs, rng);
        Trace::from_records(
            jobs.iter()
                .map(|j| {
                    let t = &j.tasks[0];
                    TraceRecord {
                        job_id: j.id.0,
                        submit_secs: j.submit.as_secs_f64(),
                        runtime_secs: t.demand_core_seconds / t.req.cpu_cores,
                        cpus: t.req.cpu_cores,
                        memory_gb: t.req.memory_gb,
                        user: j.user.0,
                        kind: j.kind,
                    }
                })
                .collect(),
        )
    }
}

/// Configuration for the e-science workflow workload (§6.2).
#[derive(Debug, Clone)]
pub struct WorkflowWorkloadConfig {
    /// Mean arrival rate, workflows/second.
    pub arrival_rate: f64,
    /// Task-demand distribution, core-seconds.
    pub task_demand: Dist,
    /// Width parameter of generated DAGs.
    pub width: usize,
    /// Number of distinct users.
    pub users: u32,
}

impl Default for WorkflowWorkloadConfig {
    fn default() -> Self {
        WorkflowWorkloadConfig {
            arrival_rate: 0.01,
            task_demand: Dist::LogNormal { mu: 4.5, sigma: 1.0 },
            width: 8,
            users: 8,
        }
    }
}

/// Generates a mixture of chain, fork-join, and Montage-like workflows.
#[derive(Debug)]
pub struct WorkflowWorkloadGenerator {
    config: WorkflowWorkloadConfig,
    shapes: WorkflowShapes,
    next_job: u64,
}

impl WorkflowWorkloadGenerator {
    /// Creates a generator for the given configuration.
    pub fn new(config: WorkflowWorkloadConfig) -> Self {
        WorkflowWorkloadGenerator { config, shapes: WorkflowShapes::new(), next_job: 0 }
    }

    /// Generates workflows arriving in `[0, horizon)`, at most `max`.
    pub fn generate(&mut self, horizon: SimTime, max: usize, rng: &mut RngStream) -> Vec<Workflow> {
        let mut arrivals = Poisson::new(self.config.arrival_rate);
        let mut out = Vec::new();
        let mut now = SimTime::ZERO;
        while out.len() < max {
            let Some(at) = arrivals.next_after(now, rng) else { break };
            if at >= horizon {
                break;
            }
            now = at;
            out.push(self.one_workflow(at, rng));
        }
        out
    }

    fn one_workflow(&mut self, submit: SimTime, rng: &mut RngStream) -> Workflow {
        let id = JobId(self.next_job);
        self.next_job += 1;
        let user = UserId(rng.uniform_usize(self.config.users as usize) as u32);
        let demand = self.config.task_demand.sample(rng).max(1.0);
        let req = ResourceVector::new(1.0, 2.0);
        match rng.uniform_usize(3) {
            0 => self.shapes.chain(id, user, submit, self.config.width.max(2), demand, req),
            1 => self.shapes.fork_join(id, user, submit, self.config.width, demand, req),
            _ => self.shapes.montage_like(id, user, submit, self.config.width, demand, req, rng),
        }
    }
}

/// Generates deadline-bound transaction jobs (banking, §6.4): short, small,
/// and each carrying a hard completion deadline.
#[derive(Debug)]
pub struct TransactionWorkloadGenerator {
    /// Arrival rate, transactions/second.
    pub arrival_rate: f64,
    /// Service-demand distribution, core-seconds.
    pub demand: Dist,
    /// Deadline after submission, seconds.
    pub deadline_secs: f64,
    next_job: u64,
}

impl TransactionWorkloadGenerator {
    /// A generator with typical clearing-system parameters.
    pub fn new(arrival_rate: f64, deadline_secs: f64) -> Self {
        TransactionWorkloadGenerator {
            arrival_rate,
            demand: Dist::Gamma { shape: 2.0, scale: 0.05 },
            deadline_secs,
            next_job: 0,
        }
    }

    /// Generates transactions arriving in `[0, horizon)`, at most `max`.
    pub fn generate(&mut self, horizon: SimTime, max: usize, rng: &mut RngStream) -> Vec<Job> {
        let mut arrivals = Poisson::new(self.arrival_rate);
        let mut out = Vec::new();
        let mut now = SimTime::ZERO;
        while out.len() < max {
            let Some(at) = arrivals.next_after(now, rng) else { break };
            if at >= horizon {
                break;
            }
            now = at;
            let id = JobId(self.next_job);
            self.next_job += 1;
            let mut task = Task::independent(
                TaskId(id.0),
                id,
                self.demand.sample(rng).max(0.001),
                ResourceVector::new(1.0, 0.5),
            );
            task.deadline =
                Some(mcs_simcore::time::SimDuration::from_secs_f64(self.deadline_secs));
            out.push(Job { id, user: UserId(0), kind: JobKind::Transaction, submit: at, tasks: vec![task] });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_generator_produces_plausible_jobs() {
        let mut g = BatchWorkloadGenerator::new(BatchWorkloadConfig::default());
        let mut rng = RngStream::new(42, "batch");
        let jobs = g.generate(SimTime::from_secs(100_000), 500, &mut rng);
        assert!(jobs.len() >= 100, "got {} jobs", jobs.len());
        for w in jobs.windows(2) {
            assert!(w[0].submit <= w[1].submit);
        }
        for j in &jobs {
            assert_eq!(j.tasks.len(), 1);
            let t = &j.tasks[0];
            assert!(t.demand_core_seconds >= 1.0);
            assert!(t.req.cpu_cores >= 1.0);
            assert!(j.user.0 < 32);
        }
        // Distinct job ids.
        let mut ids: Vec<u64> = jobs.iter().map(|j| j.id.0).collect();
        ids.dedup();
        assert_eq!(ids.len(), jobs.len());
    }

    #[test]
    fn batch_generator_is_deterministic() {
        let run = |seed| {
            let mut g = BatchWorkloadGenerator::new(BatchWorkloadConfig::default());
            let mut rng = RngStream::new(seed, "batch");
            g.generate(SimTime::from_secs(10_000), 100, &mut rng)
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn zipf_users_dominate() {
        let mut g = BatchWorkloadGenerator::new(BatchWorkloadConfig {
            arrival_rate: 1.0,
            bursty: false,
            ..Default::default()
        });
        let mut rng = RngStream::new(7, "batch");
        let jobs = g.generate(SimTime::from_secs(5_000), 5_000, &mut rng);
        let mut counts = vec![0usize; 32];
        for j in &jobs {
            counts[j.user.0 as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let total: usize = counts.iter().sum();
        // The top user should own a disproportionate share (Zipf 1.1).
        assert!(max as f64 / total as f64 > 0.15, "top share {}", max as f64 / total as f64);
    }

    #[test]
    fn trace_round_trip_preserves_stats() {
        let mut g = BatchWorkloadGenerator::new(BatchWorkloadConfig::default());
        let mut rng = RngStream::new(3, "batch");
        let trace = g.generate_trace(SimTime::from_secs(50_000), 300, &mut rng);
        assert!(!trace.is_empty());
        let bytes = trace.to_jsonl().unwrap();
        let back = Trace::from_jsonl(&bytes).unwrap();
        let (a, b) = (trace.stats().unwrap(), back.stats().unwrap());
        // JSON may lose the last ULP of a float; compare with tolerance.
        assert_eq!(a.jobs, b.jobs);
        assert_eq!(a.users, b.users);
        assert!((a.runtime.mean - b.runtime.mean).abs() < 1e-9);
        assert!((a.total_core_seconds - b.total_core_seconds).abs() < 1e-6);
    }

    #[test]
    fn workflow_generator_mixture() {
        let mut g = WorkflowWorkloadGenerator::new(WorkflowWorkloadConfig::default());
        let mut rng = RngStream::new(9, "wf");
        let wfs = g.generate(SimTime::from_secs(100_000), 50, &mut rng);
        assert!(wfs.len() >= 20);
        let depths: Vec<usize> = wfs.iter().map(|w| w.depth()).collect();
        // The mixture must contain both deep chains and shallow fork-joins.
        assert!(depths.iter().any(|&d| d >= 6));
        assert!(depths.iter().any(|&d| d <= 3));
        // Task ids must be globally unique across workflows.
        let mut ids: Vec<u64> = wfs
            .iter()
            .flat_map(|w| w.job().tasks.iter().map(|t| t.id.0))
            .collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }

    #[test]
    fn transactions_carry_deadlines() {
        let mut g = TransactionWorkloadGenerator::new(10.0, 2.0);
        let mut rng = RngStream::new(11, "txn");
        let jobs = g.generate(SimTime::from_secs(100), 1_000, &mut rng);
        assert!(jobs.len() > 500);
        for j in &jobs {
            assert_eq!(j.kind, JobKind::Transaction);
            assert!(j.tasks[0].deadline.is_some());
        }
    }
}
