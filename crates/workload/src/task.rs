//! Tasks and jobs: the units of work that flow through ecosystems.
//!
//! The paper's workload vocabulary (C3, C7, §6.2) spans bags-of-tasks,
//! workflows, services, and fine-grained functions; all are expressed as
//! [`Job`]s containing [`Task`]s with explicit resource requirements and
//! (optionally) dependencies.

use mcs_infra::resource::ResourceVector;
use mcs_simcore::time::{SimDuration, SimTime};
use std::fmt;

/// Identifies a task within a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u64);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Identifies a job (a user-visible submission) within a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "j{}", self.0)
    }
}

/// Identifies a submitting user; the social-awareness analyses (C5) group
/// tasks by user.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UserId(pub u32);

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// The workload family a job belongs to (paper Fig. 1 / §6 use cases).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobKind {
    /// Independent tasks submitted together (grid computing staple).
    BagOfTasks,
    /// A DAG of dependent tasks (e-science, §6.2).
    Workflow,
    /// Long-running interactive service (web application).
    Service,
    /// Data-analytics job (MapReduce/Pregel, Fig. 1).
    Analytics,
    /// Fine-grained serverless function invocations (§6.5).
    Function,
    /// Online-gaming session load (§6.3).
    Gaming,
    /// Transaction processing with deadlines (§6.4, banking).
    Transaction,
}

mcs_simcore::impl_json!(newtype TaskId(u64));
mcs_simcore::impl_json!(newtype JobId(u64));
mcs_simcore::impl_json!(newtype UserId(u32));
mcs_simcore::impl_json!(enum JobKind {
    BagOfTasks, Workflow, Service, Analytics, Function, Gaming, Transaction,
});

/// One schedulable unit of work.
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    /// Task id, unique within the workload.
    pub id: TaskId,
    /// The owning job.
    pub job: JobId,
    /// Work volume in core-seconds at reference core speed: a task running
    /// alone on `req.cpu_cores` reference cores takes
    /// `demand / req.cpu_cores` seconds.
    pub demand_core_seconds: f64,
    /// Resources the task must be granted to run.
    pub req: ResourceVector,
    /// Tasks (by id) that must finish before this one may start.
    pub dependencies: Vec<TaskId>,
    /// Optional completion deadline relative to job submission (banking and
    /// interactive SLOs, §6.4).
    pub deadline: Option<SimDuration>,
}

impl Task {
    /// A dependency-free task.
    pub fn independent(id: TaskId, job: JobId, demand_core_seconds: f64, req: ResourceVector) -> Self {
        Task { id, job, demand_core_seconds, req, dependencies: Vec::new(), deadline: None }
    }

    /// Service time on `cores` reference-speed cores with a machine speed-up
    /// factor (see `Machine::speedup_for`).
    pub fn service_time(&self, speedup: f64) -> SimDuration {
        let cores = self.req.cpu_cores.max(1e-9);
        SimDuration::from_secs_f64(self.demand_core_seconds / (cores * speedup.max(1e-9)))
    }
}

/// A user-visible submission: one or more tasks plus metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Job id, unique within the workload.
    pub id: JobId,
    /// Submitting user.
    pub user: UserId,
    /// Workload family.
    pub kind: JobKind,
    /// Instant the job enters the system.
    pub submit: SimTime,
    /// The job's tasks. For workflows, dependency edges stay inside the job.
    pub tasks: Vec<Task>,
}

impl Job {
    /// Total work volume across tasks, core-seconds.
    pub fn total_demand(&self) -> f64 {
        self.tasks.iter().map(|t| t.demand_core_seconds).sum()
    }

    /// The maximum single-task resource request, dimension-wise.
    pub fn peak_request(&self) -> ResourceVector {
        self.tasks.iter().fold(ResourceVector::ZERO, |acc, t| ResourceVector {
            cpu_cores: acc.cpu_cores.max(t.req.cpu_cores),
            memory_gb: acc.memory_gb.max(t.req.memory_gb),
            accelerators: acc.accelerators.max(t.req.accelerators),
            storage_gb: acc.storage_gb.max(t.req.storage_gb),
            network_gbps: acc.network_gbps.max(t.req.network_gbps),
        })
    }

    /// True when no task depends on another (a bag of tasks).
    pub fn is_dependency_free(&self) -> bool {
        self.tasks.iter().all(|t| t.dependencies.is_empty())
    }
}

/// Per-task completion record, the raw material of workload metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskCompletion {
    /// Which task finished.
    pub task: TaskId,
    /// The owning job.
    pub job: JobId,
    /// When the job entered the system.
    pub submit: SimTime,
    /// When the task started executing.
    pub start: SimTime,
    /// When the task finished.
    pub finish: SimTime,
}

impl TaskCompletion {
    /// Queue wait: start − submit.
    pub fn wait_time(&self) -> SimDuration {
        self.start.saturating_since(self.submit)
    }

    /// Execution time: finish − start.
    pub fn run_time(&self) -> SimDuration {
        self.finish.saturating_since(self.start)
    }

    /// Sojourn/response time: finish − submit.
    pub fn response_time(&self) -> SimDuration {
        self.finish.saturating_since(self.submit)
    }

    /// Bounded slowdown with a 1-second floor on run time, the standard
    /// parallel-workloads metric.
    pub fn bounded_slowdown(&self) -> f64 {
        let run = self.run_time().as_secs_f64().max(1.0);
        (self.wait_time().as_secs_f64() + run) / run
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(demand: f64, cores: f64) -> Task {
        Task::independent(TaskId(0), JobId(0), demand, ResourceVector::cores(cores))
    }

    #[test]
    fn service_time_scales_with_cores_and_speedup() {
        let t = task(100.0, 4.0);
        assert_eq!(t.service_time(1.0), SimDuration::from_secs(25));
        assert_eq!(t.service_time(2.0), SimDuration::from_secs_f64(12.5));
    }

    #[test]
    fn job_aggregates() {
        let job = Job {
            id: JobId(1),
            user: UserId(0),
            kind: JobKind::BagOfTasks,
            submit: SimTime::ZERO,
            tasks: vec![
                Task::independent(TaskId(0), JobId(1), 10.0, ResourceVector::new(1.0, 8.0)),
                Task::independent(TaskId(1), JobId(1), 30.0, ResourceVector::new(4.0, 2.0)),
            ],
        };
        assert_eq!(job.total_demand(), 40.0);
        let peak = job.peak_request();
        assert_eq!(peak.cpu_cores, 4.0);
        assert_eq!(peak.memory_gb, 8.0);
        assert!(job.is_dependency_free());
    }

    #[test]
    fn completion_metrics() {
        let c = TaskCompletion {
            task: TaskId(0),
            job: JobId(0),
            submit: SimTime::from_secs(10),
            start: SimTime::from_secs(40),
            finish: SimTime::from_secs(100),
        };
        assert_eq!(c.wait_time(), SimDuration::from_secs(30));
        assert_eq!(c.run_time(), SimDuration::from_secs(60));
        assert_eq!(c.response_time(), SimDuration::from_secs(90));
        assert!((c.bounded_slowdown() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn bounded_slowdown_floors_tiny_tasks() {
        let c = TaskCompletion {
            task: TaskId(0),
            job: JobId(0),
            submit: SimTime::ZERO,
            start: SimTime::from_secs(10),
            finish: SimTime::from_secs(10) + SimDuration::from_millis(1),
        };
        // Run time 1 ms floors to 1 s: slowdown = (10 + 1) / 1 = 11.
        assert!((c.bounded_slowdown() - 11.0).abs() < 0.01);
    }
}
