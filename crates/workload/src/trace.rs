//! Workload traces in the spirit of the Grid Workloads Archive.
//!
//! The paper (C16) names the authors' Grid Workload Archive \[139\] as a key
//! reproducibility instrument: real traces plus tools to analyze them. This
//! module defines a GWA-like record format, JSON-lines serialization, and
//! trace-level statistics.

use crate::task::{Job, JobId, JobKind, Task, TaskId, UserId};
use mcs_infra::resource::ResourceVector;
use mcs_simcore::codec::{self, ByteWriter};
use mcs_simcore::error::McsError;
use mcs_simcore::metrics::Summary;
use mcs_simcore::time::{SimDuration, SimTime};

/// One trace row: a job observation in GWA style (submit time, runtime,
/// processor count, user).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Job identifier.
    pub job_id: u64,
    /// Submission instant, seconds since trace start.
    pub submit_secs: f64,
    /// Observed runtime, seconds.
    pub runtime_secs: f64,
    /// Processors requested.
    pub cpus: f64,
    /// Memory requested, GiB.
    pub memory_gb: f64,
    /// Submitting user.
    pub user: u32,
    /// Workload family tag.
    pub kind: JobKind,
}

mcs_simcore::impl_json!(struct TraceRecord {
    job_id, submit_secs, runtime_secs, cpus, memory_gb, user, kind,
});

impl TraceRecord {
    /// Converts the record into a single-task [`Job`].
    pub fn to_job(&self) -> Job {
        let id = JobId(self.job_id);
        let req = ResourceVector::new(self.cpus.max(0.01), self.memory_gb.max(0.0));
        let demand = self.runtime_secs.max(0.0) * self.cpus.max(0.01);
        Job {
            id,
            user: UserId(self.user),
            kind: self.kind,
            submit: SimTime::ZERO + SimDuration::from_secs_f64(self.submit_secs.max(0.0)),
            tasks: vec![Task::independent(TaskId(self.job_id), id, demand, req)],
        }
    }
}

/// An ordered collection of trace records.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

mcs_simcore::impl_json!(struct Trace { records });

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Builds a trace from records, sorting by submission time.
    pub fn from_records(mut records: Vec<TraceRecord>) -> Self {
        records.sort_by(|a, b| {
            a.submit_secs
                .partial_cmp(&b.submit_secs)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.job_id.cmp(&b.job_id))
        });
        Trace { records }
    }

    /// Appends a record (kept sorted lazily — call [`Trace::from_records`]
    /// semantics via re-sorting on read APIs that need order).
    pub fn push(&mut self, record: TraceRecord) {
        self.records.push(record);
    }

    /// All records in insertion order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when there are no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Serializes to JSON-lines (one record per line). Encoding is
    /// deterministic, so identical traces yield identical bytes.
    ///
    /// # Errors
    /// Infallible today (kept fallible for format evolution).
    pub fn to_jsonl(&self) -> Result<Vec<u8>, McsError> {
        let mut buf = ByteWriter::with_capacity(self.records.len() * 96);
        for r in &self.records {
            buf.put_str(&codec::to_string(r));
            buf.put_u8(b'\n');
        }
        Ok(buf.into_vec())
    }

    /// Parses JSON-lines produced by [`Trace::to_jsonl`] (blank lines are
    /// skipped).
    ///
    /// # Errors
    /// Returns [`McsError::Trace`] naming the first malformed line.
    pub fn from_jsonl(bytes: &[u8]) -> Result<Trace, McsError> {
        let mut records = Vec::new();
        for (idx, line) in bytes.split(|b| *b == b'\n').enumerate() {
            if line.iter().all(|b| b.is_ascii_whitespace()) {
                continue;
            }
            let text = std::str::from_utf8(line).map_err(|e| McsError::Trace {
                line: idx + 1,
                message: format!("not UTF-8: {e}"),
            })?;
            let record = codec::from_str::<TraceRecord>(text).map_err(|e| McsError::Trace {
                line: idx + 1,
                message: e.to_string(),
            })?;
            records.push(record);
        }
        Ok(Trace { records })
    }

    /// Converts every record into a single-task job, ordered by submit time.
    pub fn to_jobs(&self) -> Vec<Job> {
        let sorted = Trace::from_records(self.records.clone());
        sorted.records.iter().map(TraceRecord::to_job).collect()
    }

    /// Trace-level statistics, the rows a workload-archive paper reports.
    pub fn stats(&self) -> Option<TraceStats> {
        if self.records.is_empty() {
            return None;
        }
        let runtimes: Vec<f64> = self.records.iter().map(|r| r.runtime_secs).collect();
        let cpus: Vec<f64> = self.records.iter().map(|r| r.cpus).collect();
        let mut submits: Vec<f64> = self.records.iter().map(|r| r.submit_secs).collect();
        submits.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let gaps: Vec<f64> = submits.windows(2).map(|w| w[1] - w[0]).collect();
        let users = {
            let mut u: Vec<u32> = self.records.iter().map(|r| r.user).collect();
            u.sort_unstable();
            u.dedup();
            u.len()
        };
        Some(TraceStats {
            jobs: self.records.len(),
            users,
            span_secs: submits.last().copied().unwrap_or(0.0) - submits.first().copied().unwrap_or(0.0),
            runtime: Summary::of(&runtimes)?,
            cpus: Summary::of(&cpus)?,
            interarrival: Summary::of(&gaps),
            total_core_seconds: self
                .records
                .iter()
                .map(|r| r.runtime_secs * r.cpus)
                .sum(),
        })
    }
}

/// Aggregate statistics of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Number of jobs.
    pub jobs: usize,
    /// Number of distinct users.
    pub users: usize,
    /// Seconds between first and last submission.
    pub span_secs: f64,
    /// Runtime distribution.
    pub runtime: Summary,
    /// Processor-count distribution.
    pub cpus: Summary,
    /// Inter-arrival distribution (`None` for single-job traces).
    pub interarrival: Option<Summary>,
    /// Total consumed core-seconds.
    pub total_core_seconds: f64,
}

mcs_simcore::impl_json!(struct TraceStats {
    jobs, users, span_secs, runtime, cpus, interarrival, total_core_seconds,
});

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, submit: f64, runtime: f64, cpus: f64, user: u32) -> TraceRecord {
        TraceRecord {
            job_id: id,
            submit_secs: submit,
            runtime_secs: runtime,
            cpus,
            memory_gb: 4.0,
            user,
            kind: JobKind::BagOfTasks,
        }
    }

    #[test]
    fn jsonl_round_trip() {
        let t = Trace::from_records(vec![rec(1, 0.0, 100.0, 4.0, 0), rec(2, 5.0, 50.0, 2.0, 1)]);
        let bytes = t.to_jsonl().unwrap();
        let back = Trace::from_jsonl(&bytes).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn from_jsonl_skips_blank_lines() {
        let t = Trace::from_records(vec![rec(1, 0.0, 1.0, 1.0, 0)]);
        let mut bytes = t.to_jsonl().unwrap();
        bytes.extend_from_slice(b"\n\n  \n");
        let back = Trace::from_jsonl(&bytes).unwrap();
        assert_eq!(back.len(), 1);
    }

    #[test]
    fn malformed_line_is_error() {
        assert!(Trace::from_jsonl(b"{not json}\n").is_err());
    }

    #[test]
    fn from_records_sorts_by_submit() {
        let t = Trace::from_records(vec![rec(2, 9.0, 1.0, 1.0, 0), rec(1, 3.0, 1.0, 1.0, 0)]);
        assert_eq!(t.records()[0].job_id, 1);
        assert_eq!(t.records()[1].job_id, 2);
    }

    #[test]
    fn record_to_job() {
        let r = rec(7, 12.0, 60.0, 4.0, 3);
        let job = r.to_job();
        assert_eq!(job.id, JobId(7));
        assert_eq!(job.user, UserId(3));
        assert_eq!(job.submit, SimTime::from_secs(12));
        assert_eq!(job.tasks.len(), 1);
        assert_eq!(job.tasks[0].demand_core_seconds, 240.0);
        assert_eq!(job.tasks[0].req.cpu_cores, 4.0);
    }

    #[test]
    fn stats_hand_example() {
        let t = Trace::from_records(vec![
            rec(1, 0.0, 100.0, 2.0, 0),
            rec(2, 10.0, 200.0, 4.0, 0),
            rec(3, 30.0, 300.0, 6.0, 1),
        ]);
        let s = t.stats().unwrap();
        assert_eq!(s.jobs, 3);
        assert_eq!(s.users, 2);
        assert_eq!(s.span_secs, 30.0);
        assert!((s.runtime.mean - 200.0).abs() < 1e-12);
        assert!((s.total_core_seconds - (200.0 + 800.0 + 1800.0)).abs() < 1e-12);
        let ia = s.interarrival.unwrap();
        assert!((ia.mean - 15.0).abs() < 1e-12);
        assert!(Trace::new().stats().is_none());
    }
}
