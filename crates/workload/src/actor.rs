//! Workload arrival as a discrete-event actor.
//!
//! [`ArrivalActor`] drives any [`ArrivalProcess`] *online*: instead of
//! materialising the arrival schedule up front, it samples the next arrival
//! when the previous one fires, keeping exactly one pending event in the
//! simulation regardless of workload length. A caller-provided `deliver`
//! callback injects each arrival into the rest of the scenario (invoke a
//! function, submit a job, ...).

use crate::arrival::ArrivalProcess;
use mcs_simcore::engine::{Actor, Context, MessageEnvelope};
use mcs_simcore::rng::RngStream;
use mcs_simcore::time::SimTime;
use mcs_simcore::trace::Field;

/// The arrival actor's message vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalMsg {
    /// Kick-off: sample and arm the first arrival.
    Start,
    /// One arrival fires now.
    Arrive,
}

/// Callback receiving each arrival (with its zero-based index) as it fires.
pub type ArrivalSink<'a, M> = Box<dyn FnMut(&mut Context<'_, M>, usize) + 'a>;

/// Emits workload arrivals from an [`ArrivalProcess`] into a simulation.
pub struct ArrivalActor<'a, M> {
    process: &'a mut dyn ArrivalProcess,
    rng: RngStream,
    horizon: SimTime,
    max: usize,
    count: usize,
    deliver: ArrivalSink<'a, M>,
}

impl<'a, M: MessageEnvelope<ArrivalMsg>> ArrivalActor<'a, M> {
    /// Builds an arrival actor over `process`, stopping at `horizon` (and
    /// after `max` arrivals, whichever comes first). `deliver` receives the
    /// zero-based arrival index.
    pub fn new(
        process: &'a mut dyn ArrivalProcess,
        rng: RngStream,
        horizon: SimTime,
        max: usize,
        deliver: impl FnMut(&mut Context<'_, M>, usize) + 'a,
    ) -> Self {
        ArrivalActor { process, rng, horizon, max, count: 0, deliver: Box::new(deliver) }
    }

    /// Arrivals delivered so far.
    pub fn count(&self) -> usize {
        self.count
    }

    fn arm_next(&mut self, ctx: &mut Context<'_, M>) {
        if self.count >= self.max {
            return;
        }
        match self.process.next_after(ctx.now(), &mut self.rng) {
            Some(t) if t < self.horizon => {
                ctx.send_at(ctx.self_id(), t, M::wrap(ArrivalMsg::Arrive));
            }
            _ => {}
        }
    }

    fn arrive(&mut self, ctx: &mut Context<'_, M>) {
        let index = self.count;
        self.count += 1;
        ctx.emit_fields("workload", "arrival", &[("index", Field::U64(index as u64))]);
        (self.deliver)(ctx, index);
        self.arm_next(ctx);
    }
}

impl<M: MessageEnvelope<ArrivalMsg>> Actor<M> for ArrivalActor<'_, M> {
    fn handle(&mut self, ctx: &mut Context<'_, M>, msg: M) {
        let Some(msg) = msg.unwrap() else { return };
        match msg {
            ArrivalMsg::Start => self.arm_next(ctx),
            ArrivalMsg::Arrive => self.arrive(ctx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::{arrivals_between, Poisson};
    use mcs_simcore::engine::Simulation;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn online_arrivals_match_offline_schedule() {
        let horizon = SimTime::from_secs(500);
        // Offline reference: materialise the schedule with the same stream.
        let mut reference_rng = RngStream::new(9, "arrivals");
        let mut reference_process = Poisson::new(0.2);
        let expected = arrivals_between(
            &mut reference_process,
            SimTime::ZERO,
            horizon,
            usize::MAX,
            &mut reference_rng,
        );

        let seen: Rc<RefCell<Vec<SimTime>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&seen);
        let mut process = Poisson::new(0.2);
        let mut actor: ArrivalActor<'_, ArrivalMsg> = ArrivalActor::new(
            &mut process,
            RngStream::new(9, "arrivals"),
            horizon,
            usize::MAX,
            move |ctx, _index| sink.borrow_mut().push(ctx.now()),
        );
        let mut sim: Simulation<'_, ArrivalMsg> = Simulation::new(0);
        let id = sim.add_actor(&mut actor);
        sim.schedule(SimTime::ZERO, id, ArrivalMsg::Start);
        sim.run();
        let traced = sim.trace().count("workload", "arrival");
        drop(sim);

        assert!(!expected.is_empty());
        assert_eq!(*seen.borrow(), expected);
        assert_eq!(actor.count(), expected.len());
        assert_eq!(traced, expected.len());
    }

    #[test]
    fn max_arrivals_caps_the_stream() {
        let mut process = Poisson::new(10.0);
        let mut actor: ArrivalActor<'_, ArrivalMsg> = ArrivalActor::new(
            &mut process,
            RngStream::new(1, "arrivals"),
            SimTime::from_secs(1_000_000),
            5,
            |_ctx, _index| {},
        );
        let mut sim: Simulation<'_, ArrivalMsg> = Simulation::new(0);
        let id = sim.add_actor(&mut actor);
        sim.schedule(SimTime::ZERO, id, ArrivalMsg::Start);
        sim.run();
        drop(sim);
        assert_eq!(actor.count(), 5);
    }
}
