//! # mcs-workload — workload models, generators, and traces
//!
//! The workload substrate of the MCS workspace: tasks, jobs, validated DAG
//! workflows, bursty/diurnal arrival processes, GWA-style traces, and
//! per-domain workload generators (grid batch, e-science workflows,
//! deadline transactions).
//!
//! The paper's challenges C3 (vicissitude: workload mixes changing
//! arbitrarily over time) and C7 (drastically changing workloads over short
//! and long periods) are exercised by combining these generators.
//!
//! ## Example
//! ```
//! use mcs_workload::generator::{BatchWorkloadConfig, BatchWorkloadGenerator};
//! use mcs_simcore::prelude::*;
//!
//! let mut generator = BatchWorkloadGenerator::new(BatchWorkloadConfig::default());
//! let mut rng = RngStream::new(42, "example");
//! let jobs = generator.generate(SimTime::from_secs(3_600), 100, &mut rng);
//! assert!(jobs.iter().all(|j| j.submit < SimTime::from_secs(3_600)));
//! ```

pub mod actor;
pub mod arrival;
pub mod generator;
pub mod task;
pub mod trace;
pub mod workflow;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::actor::{ArrivalActor, ArrivalMsg};
    pub use crate::arrival::{ArrivalProcess, Diurnal, Mmpp2, Poisson};
    pub use crate::generator::{
        BatchWorkloadConfig, BatchWorkloadGenerator, TransactionWorkloadGenerator,
        WorkflowWorkloadConfig, WorkflowWorkloadGenerator,
    };
    pub use crate::task::{Job, JobId, JobKind, Task, TaskCompletion, TaskId, UserId};
    pub use crate::trace::{Trace, TraceRecord, TraceStats};
    pub use crate::workflow::{Workflow, WorkflowError, WorkflowShapes};
}
