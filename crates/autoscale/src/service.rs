//! The elastic-service simulator that exercises autoscalers.
//!
//! A service receives a time-varying request rate; every scaling interval
//! the autoscaler observes the demand history and sets a target instance
//! count. Scale-up takes a provisioning delay (VM boot time), scale-down is
//! immediate. The simulator reports the (demand, supply) series, the SPEC
//! elasticity metrics, SLO violations, and cost — the full row set of the
//! autoscaler comparison the paper cites (C7, \[43\]).
//!
//! The simulation is an engine actor: [`ServiceActor`] advances one scaling
//! interval per [`ServiceMsg::Tick`] on the shared
//! [`Simulation`] kernel, emitting an
//! `"autoscale"`/`"interval"` trace record each tick;
//! [`simulate_service`] is the thin single-actor wrapper.

use crate::autoscalers::{AutoscaleObservation, Autoscaler};
use crate::elasticity::{unserved_fraction, ElasticityMetrics};
use mcs_simcore::codec::Json;
use mcs_simcore::engine::{Actor, Context, MessageEnvelope, Simulation};
use mcs_simcore::time::{SimDuration, SimTime};
use mcs_simcore::trace::payload;

/// Parameters of the elastic service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Requests per second one instance can serve at its SLO.
    pub per_instance_rps: f64,
    /// Target utilization headroom: demand is computed so instances run at
    /// this fraction of capacity (≤ 1.0).
    pub target_utilization: f64,
    /// Length of one scaling interval.
    pub scaling_interval: SimDuration,
    /// Intervals between asking for an instance and it serving traffic.
    pub provisioning_delay_intervals: usize,
    /// Floor on instances.
    pub min_instances: usize,
    /// Ceiling on instances.
    pub max_instances: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            per_instance_rps: 100.0,
            target_utilization: 0.7,
            scaling_interval: SimDuration::from_secs(60),
            provisioning_delay_intervals: 2,
            min_instances: 1,
            max_instances: 1_000,
        }
    }
}

/// The measured outcome of one autoscaled run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceOutcome {
    /// Instances needed per interval.
    pub demand: Vec<f64>,
    /// Instances active per interval.
    pub supply: Vec<f64>,
    /// SPEC elasticity metrics of supply vs demand.
    pub elasticity: ElasticityMetrics,
    /// Fraction of demanded capacity that went unserved.
    pub unserved_fraction: f64,
    /// Fraction of intervals with demand > supply (SLO at risk).
    pub overload_fraction: f64,
    /// Total instance-hours provisioned (the cost proxy).
    pub instance_hours: f64,
}

/// The elastic service's message vocabulary: one `Tick` per scaling
/// interval, self-scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceMsg {
    /// Advance one scaling interval: observe demand, consult the
    /// autoscaler, advance the provisioning pipeline.
    Tick,
}

/// The elastic service as a simulation actor.
///
/// Each delivered `Tick` executes one scaling interval at the tick's
/// virtual instant; the actor re-arms itself until the configured number of
/// intervals has elapsed. Extract results with [`ServiceActor::outcome`]
/// after the simulation is dropped.
pub struct ServiceActor<'a> {
    rate: &'a dyn Fn(SimTime) -> f64,
    config: ServiceConfig,
    autoscaler: &'a mut dyn Autoscaler,
    intervals: usize,
    intervals_per_day: usize,
    capacity: f64,
    interval: usize,
    demand: Vec<f64>,
    supply: Vec<f64>,
    history: Vec<f64>,
    active: usize,
    pipeline: Vec<usize>,
}

impl<'a> ServiceActor<'a> {
    /// Builds the actor for `intervals` scaling intervals of `config`.
    ///
    /// # Panics
    /// Panics when the scaling interval is zero or `intervals` is zero.
    pub fn new(
        rate: &'a dyn Fn(SimTime) -> f64,
        config: ServiceConfig,
        autoscaler: &'a mut dyn Autoscaler,
        intervals: usize,
    ) -> Self {
        assert!(!config.scaling_interval.is_zero(), "scaling interval must be positive");
        assert!(intervals > 0, "horizon must cover at least one interval");
        let interval_secs = config.scaling_interval.as_secs_f64();
        let intervals_per_day = ((24.0 * 3600.0) / interval_secs).round().max(1.0) as usize;
        let capacity = config.per_instance_rps * config.target_utilization.clamp(0.01, 1.0);
        let active = config.min_instances.max(1);
        let pipeline = vec![0; config.provisioning_delay_intervals + 1];
        ServiceActor {
            rate,
            config,
            autoscaler,
            intervals,
            intervals_per_day,
            capacity,
            interval: 0,
            demand: Vec::with_capacity(intervals),
            supply: Vec::with_capacity(intervals),
            history: Vec::new(),
            active,
            pipeline,
        }
    }

    /// The measured outcome; call after the simulation has run.
    pub fn outcome(&self) -> ServiceOutcome {
        let interval_secs = self.config.scaling_interval.as_secs_f64();
        let elasticity = ElasticityMetrics::compute(&self.demand, &self.supply)
            .expect("demand/supply series are non-empty and aligned");
        let overload = self
            .demand
            .iter()
            .zip(&self.supply)
            .filter(|(d, s)| **d > **s + 1e-9)
            .count() as f64
            / self.demand.len() as f64;
        ServiceOutcome {
            unserved_fraction: unserved_fraction(&self.demand, &self.supply),
            overload_fraction: overload,
            instance_hours: self.supply.iter().sum::<f64>() * interval_secs / 3600.0,
            elasticity,
            demand: self.demand.clone(),
            supply: self.supply.clone(),
        }
    }

    /// One scaling interval at the tick's instant.
    fn tick<M: MessageEnvelope<ServiceMsg>>(&mut self, ctx: &mut Context<'_, M>) {
        let i = self.interval;
        // Demand of this interval, from the mid-interval rate.
        let mid = ctx.now() + self.config.scaling_interval / 2;
        let d = ((self.rate)(mid) / self.capacity).max(0.0);
        self.demand.push(d);
        self.supply.push(self.active as f64);
        self.history.push(d);

        // Autoscaler decides for the next interval.
        let obs = AutoscaleObservation {
            demand_history: self.history.clone(),
            supply: self.active,
            interval_index: i,
            intervals_per_day: self.intervals_per_day,
        };
        let target = self
            .autoscaler
            .decide(&obs)
            .clamp(self.config.min_instances, self.config.max_instances);

        // Advance the provisioning pipeline: slot 0 becomes active.
        let arriving = self.pipeline.remove(0);
        self.pipeline.push(0);
        self.active += arriving;
        let in_flight: usize = self.pipeline.iter().sum();

        if target > self.active + in_flight {
            let extra = target - self.active - in_flight;
            let last = self.pipeline.len() - 1;
            self.pipeline[last] += extra;
        } else if target < self.active {
            // Scale-down is immediate (instances stop at interval edge).
            self.active = target.max(self.config.min_instances);
        }

        ctx.emit(
            "autoscale",
            "interval",
            payload(vec![
                ("demand", Json::Float(d)),
                ("supply", Json::Float(self.supply[i])),
                ("target", Json::UInt(target as u64)),
            ]),
        );

        self.interval += 1;
        if self.interval < self.intervals {
            ctx.send_self(self.config.scaling_interval, M::wrap(ServiceMsg::Tick));
        }
    }
}

impl<M: MessageEnvelope<ServiceMsg>> Actor<M> for ServiceActor<'_> {
    fn handle(&mut self, ctx: &mut Context<'_, M>, msg: M) {
        let Some(ServiceMsg::Tick) = msg.unwrap() else { return };
        self.tick(ctx);
    }
}

/// Runs `autoscaler` against the request-rate function `rate` (requests per
/// second at instant `t`) over `[0, horizon)`.
///
/// A thin wrapper: builds a single-actor [`Simulation`] around
/// [`ServiceActor`] and runs it to quiescence.
///
/// # Panics
/// Panics when the scaling interval is zero or the horizon is empty.
pub fn simulate_service(
    rate: &dyn Fn(SimTime) -> f64,
    horizon: SimTime,
    config: ServiceConfig,
    autoscaler: &mut dyn Autoscaler,
) -> ServiceOutcome {
    assert!(!config.scaling_interval.is_zero(), "scaling interval must be positive");
    let intervals =
        (horizon.as_secs_f64() / config.scaling_interval.as_secs_f64()).ceil() as usize;
    let mut actor = ServiceActor::new(rate, config, autoscaler, intervals);
    let mut sim: Simulation<'_, ServiceMsg> = Simulation::new(0);
    let id = sim.add_actor(&mut actor);
    sim.schedule(SimTime::ZERO, id, ServiceMsg::Tick);
    sim.run();
    drop(sim);
    actor.outcome()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autoscalers::{React, StaticAutoscaler};

    fn config() -> ServiceConfig {
        ServiceConfig {
            per_instance_rps: 100.0,
            target_utilization: 1.0,
            scaling_interval: SimDuration::from_secs(60),
            provisioning_delay_intervals: 1,
            min_instances: 1,
            max_instances: 100,
        }
    }

    #[test]
    fn constant_rate_reaches_steady_state() {
        let rate = |_t: SimTime| 500.0; // needs 5 instances
        let mut scaler = React { headroom: 0.0 };
        let out =
            simulate_service(&rate, SimTime::from_secs(3600), config(), &mut scaler);
        // After the pipeline fills, supply should sit at 5.
        let tail = &out.supply[10..];
        assert!(tail.iter().all(|&s| (s - 5.0).abs() < 1e-9), "{tail:?}");
        assert!(out.overload_fraction < 0.2);
    }

    #[test]
    fn static_overprovision_serves_everything_expensively() {
        let rate = |_t: SimTime| 200.0; // needs 2
        let mut scaler = StaticAutoscaler(20);
        let out =
            simulate_service(&rate, SimTime::from_secs(3600), config(), &mut scaler);
        // Only the cold-start intervals (supply ramping from min_instances)
        // may be short; afterwards everything is served.
        assert!(out.unserved_fraction < 0.05, "{}", out.unserved_fraction);
        assert!(out.elasticity.timeshare_over > 0.9);
        // 20 instances for 1 h.
        assert!((out.instance_hours - 20.0).abs() < 1.0);
    }

    #[test]
    fn static_underprovision_starves() {
        let rate = |_t: SimTime| 1_000.0; // needs 10
        let mut scaler = StaticAutoscaler(2);
        let out =
            simulate_service(&rate, SimTime::from_secs(3600), config(), &mut scaler);
        assert!(out.unserved_fraction > 0.7);
        assert!(out.overload_fraction > 0.9);
    }

    #[test]
    fn provisioning_delay_creates_lag() {
        // A step function: quiet, then a jump.
        let rate = |t: SimTime| if t < SimTime::from_secs(1800) { 100.0 } else { 1_000.0 };
        let mut cfg = config();
        cfg.provisioning_delay_intervals = 5;
        let mut scaler = React { headroom: 0.0 };
        let out = simulate_service(&rate, SimTime::from_secs(3600), cfg, &mut scaler);
        // Some intervals right after the step must be overloaded.
        assert!(out.overload_fraction > 0.0);
        // But the tail catches up.
        let last = *out.supply.last().unwrap();
        assert!((last - 10.0).abs() < 1e-9, "final supply {last}");
    }

    #[test]
    fn scale_down_is_immediate() {
        let rate = |t: SimTime| if t < SimTime::from_secs(1800) { 1_000.0 } else { 100.0 };
        let mut scaler = React { headroom: 0.0 };
        let out =
            simulate_service(&rate, SimTime::from_secs(3600), config(), &mut scaler);
        let idx_after_drop = 1800 / 60 + 2;
        assert!(
            out.supply[idx_after_drop as usize] <= 2.0,
            "supply after drop: {}",
            out.supply[idx_after_drop as usize]
        );
    }

    #[test]
    fn respects_min_max_bounds() {
        let rate = |_t: SimTime| 100_000.0;
        let mut cfg = config();
        cfg.max_instances = 7;
        let mut scaler = React { headroom: 0.0 };
        let out = simulate_service(&rate, SimTime::from_secs(3600), cfg, &mut scaler);
        assert!(out.supply.iter().all(|&s| s <= 7.0));
    }

    #[test]
    fn service_emits_interval_trace() {
        let rate = |_t: SimTime| 300.0;
        let mut scaler = React { headroom: 0.0 };
        let mut actor = ServiceActor::new(&rate, config(), &mut scaler, 10);
        let mut sim: Simulation<'_, ServiceMsg> = Simulation::new(0);
        let id = sim.add_actor(&mut actor);
        sim.schedule(SimTime::ZERO, id, ServiceMsg::Tick);
        sim.run();
        assert_eq!(sim.trace().count("autoscale", "interval"), 10);
        // Ticks land on interval edges.
        assert_eq!(sim.trace().events()[1].at, SimTime::from_secs(60));
        let demand = sim.trace().series("autoscale", "interval", "demand");
        assert!(demand.iter().all(|(_, d)| (*d - 3.0).abs() < 1e-9));
    }
}
