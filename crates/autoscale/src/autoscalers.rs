//! The autoscaler portfolio from the experimental comparison the paper
//! cites (Ilyushkin et al., "An Experimental Performance Evaluation of
//! Autoscalers for Complex Workflows" \[43\]).
//!
//! Each autoscaler sees, at every scaling interval, the recent demand
//! history (instances needed) and the current supply, and returns a target
//! instance count. General-purpose autoscalers: React, Adapt, Hist, Reg,
//! ConPaaS-style EWMA prediction; plus the static baseline.


/// What an autoscaler observes at a scaling decision.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoscaleObservation {
    /// Demand (instances needed) per past interval, oldest first; the last
    /// element is the most recent completed interval.
    pub demand_history: Vec<f64>,
    /// Instances currently provisioned.
    pub supply: usize,
    /// Index of the current interval since the start of the run.
    pub interval_index: usize,
    /// Intervals per "day", for history-based (Hist) prediction.
    pub intervals_per_day: usize,
}

impl AutoscaleObservation {
    /// The most recent observed demand, or 0 with no history.
    pub fn current_demand(&self) -> f64 {
        self.demand_history.last().copied().unwrap_or(0.0)
    }
}

/// An autoscaling policy: returns the target instance count.
pub trait Autoscaler {
    /// The target supply for the next interval.
    fn decide(&mut self, obs: &AutoscaleObservation) -> usize;

    /// A short stable name for reports.
    fn name(&self) -> &'static str;
}

/// Static provisioning: the no-elasticity baseline.
#[derive(Debug, Clone, Copy)]
pub struct StaticAutoscaler(pub usize);

impl Autoscaler for StaticAutoscaler {
    fn decide(&mut self, _obs: &AutoscaleObservation) -> usize {
        self.0
    }
    fn name(&self) -> &'static str {
        "static"
    }
}

/// React (Chieu et al.): provision exactly the current demand, plus
/// headroom.
#[derive(Debug, Clone, Copy)]
pub struct React {
    /// Fractional headroom above current demand (e.g. 0.1 = 10%).
    pub headroom: f64,
}

impl Default for React {
    fn default() -> Self {
        React { headroom: 0.1 }
    }
}

impl Autoscaler for React {
    fn decide(&mut self, obs: &AutoscaleObservation) -> usize {
        (obs.current_demand() * (1.0 + self.headroom)).ceil() as usize
    }
    fn name(&self) -> &'static str {
        "react"
    }
}

/// Adapt (Ali-Eldin et al.): move toward demand with a bounded step,
/// trading reaction speed for stability.
#[derive(Debug, Clone, Copy)]
pub struct Adapt {
    /// Largest per-interval change in instances.
    pub max_step: usize,
}

impl Default for Adapt {
    fn default() -> Self {
        Adapt { max_step: 4 }
    }
}

impl Autoscaler for Adapt {
    fn decide(&mut self, obs: &AutoscaleObservation) -> usize {
        let want = obs.current_demand().ceil() as i64;
        let have = obs.supply as i64;
        let step = (want - have).clamp(-(self.max_step as i64), self.max_step as i64);
        (have + step).max(0) as usize
    }
    fn name(&self) -> &'static str {
        "adapt"
    }
}

/// Hist (Urgaonkar et al.): per time-of-day histogram of observed demand;
/// provision a high percentile of what this time of day has needed before.
#[derive(Debug, Clone)]
pub struct Hist {
    /// Which percentile of the per-slot history to provision (0–1).
    pub percentile: f64,
    slots: Vec<Vec<f64>>,
}

impl Hist {
    /// A Hist autoscaler tracking `intervals_per_day` time-of-day slots.
    pub fn new(intervals_per_day: usize, percentile: f64) -> Self {
        Hist { percentile, slots: vec![Vec::new(); intervals_per_day.max(1)] }
    }
}

impl Autoscaler for Hist {
    fn decide(&mut self, obs: &AutoscaleObservation) -> usize {
        let slot = obs.interval_index % self.slots.len();
        // Record the just-completed interval's demand into its slot.
        if let Some(d) = obs.demand_history.last() {
            let prev_slot =
                (obs.interval_index + self.slots.len() - 1) % self.slots.len();
            self.slots[prev_slot].push(*d);
        }
        let history = &self.slots[slot];
        if history.is_empty() {
            // No history for this time of day yet: fall back to reactive.
            return obs.current_demand().ceil() as usize;
        }
        mcs_simcore::metrics::quantile(history, self.percentile)
            .unwrap_or(0.0)
            .ceil() as usize
    }
    fn name(&self) -> &'static str {
        "hist"
    }
}

/// Reg (Iqbal et al.): least-squares linear regression over the recent
/// window, extrapolated one interval ahead.
#[derive(Debug, Clone, Copy)]
pub struct Reg {
    /// Window length in intervals.
    pub window: usize,
}

impl Default for Reg {
    fn default() -> Self {
        Reg { window: 12 }
    }
}

impl Autoscaler for Reg {
    fn decide(&mut self, obs: &AutoscaleObservation) -> usize {
        let h = &obs.demand_history;
        if h.len() < 2 {
            return obs.current_demand().ceil() as usize;
        }
        let w = h.len().min(self.window);
        let ys = &h[h.len() - w..];
        let n = w as f64;
        let sx = (0..w).map(|i| i as f64).sum::<f64>();
        let sy: f64 = ys.iter().sum();
        let sxx = (0..w).map(|i| (i * i) as f64).sum::<f64>();
        let sxy = ys.iter().enumerate().map(|(i, y)| i as f64 * y).sum::<f64>();
        let denom = n * sxx - sx * sx;
        let (slope, intercept) = if denom.abs() < 1e-12 {
            (0.0, sy / n)
        } else {
            let slope = (n * sxy - sx * sy) / denom;
            (slope, (sy - slope * sx) / n)
        };
        let predicted = intercept + slope * w as f64; // one step ahead
        predicted.max(0.0).ceil() as usize
    }
    fn name(&self) -> &'static str {
        "reg"
    }
}

/// ConPaaS-style exponentially weighted prediction with a small safety
/// margin.
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    /// Smoothing factor in (0, 1]; higher reacts faster.
    pub alpha: f64,
    /// Fractional safety margin.
    pub margin: f64,
    state: f64,
    primed: bool,
}

impl Ewma {
    /// A predictor with the given smoothing and margin.
    pub fn new(alpha: f64, margin: f64) -> Self {
        Ewma { alpha: alpha.clamp(0.01, 1.0), margin, state: 0.0, primed: false }
    }
}

impl Default for Ewma {
    fn default() -> Self {
        Ewma::new(0.5, 0.15)
    }
}

impl Autoscaler for Ewma {
    fn decide(&mut self, obs: &AutoscaleObservation) -> usize {
        let d = obs.current_demand();
        if !self.primed {
            self.state = d;
            self.primed = true;
        } else {
            self.state = self.alpha * d + (1.0 - self.alpha) * self.state;
        }
        (self.state * (1.0 + self.margin)).ceil() as usize
    }
    fn name(&self) -> &'static str {
        "ewma"
    }
}

/// The standard portfolio of the cited comparison.
pub fn standard_autoscalers(intervals_per_day: usize) -> Vec<Box<dyn Autoscaler>> {
    vec![
        Box::new(React::default()),
        Box::new(Adapt::default()),
        Box::new(Hist::new(intervals_per_day, 0.95)),
        Box::new(Reg::default()),
        Box::new(Ewma::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(history: &[f64], supply: usize, idx: usize) -> AutoscaleObservation {
        AutoscaleObservation {
            demand_history: history.to_vec(),
            supply,
            interval_index: idx,
            intervals_per_day: 24,
        }
    }

    #[test]
    fn static_ignores_demand() {
        let mut a = StaticAutoscaler(7);
        assert_eq!(a.decide(&obs(&[100.0], 1, 0)), 7);
        assert_eq!(a.decide(&obs(&[0.0], 1, 1)), 7);
    }

    #[test]
    fn react_tracks_current_demand_with_headroom() {
        let mut a = React { headroom: 0.1 };
        assert_eq!(a.decide(&obs(&[10.0], 5, 0)), 11);
        assert_eq!(a.decide(&obs(&[0.0], 5, 1)), 0);
    }

    #[test]
    fn adapt_bounds_steps() {
        let mut a = Adapt { max_step: 2 };
        assert_eq!(a.decide(&obs(&[10.0], 4, 0)), 6); // +2 cap
        assert_eq!(a.decide(&obs(&[0.0], 4, 1)), 2); // -2 cap
        assert_eq!(a.decide(&obs(&[5.0], 4, 2)), 5); // within cap
    }

    #[test]
    fn hist_learns_time_of_day_pattern() {
        let mut a = Hist::new(4, 0.9);
        // Two "days" of a repeating pattern 2,8,2,2.
        let pattern = [2.0, 8.0, 2.0, 2.0];
        let mut history: Vec<f64> = Vec::new();
        for day in 0..2 {
            for (i, &d) in pattern.iter().enumerate() {
                let idx = day * 4 + i;
                history.push(d);
                let _ = a.decide(&obs(&history, 2, idx + 1));
            }
        }
        // Entering slot 1 (the busy one) on day 2: prediction should be ~8
        // even though *current* demand is 2.
        let decision = a.decide(&obs(&history, 2, 9)); // 9 % 4 == 1
        assert!(decision >= 8, "hist predicted {decision}");
    }

    #[test]
    fn reg_extrapolates_trend() {
        let mut a = Reg { window: 4 };
        // Demand rising 2,4,6,8: next should be ≈10.
        let d = a.decide(&obs(&[2.0, 4.0, 6.0, 8.0], 8, 4));
        assert_eq!(d, 10);
        // Flat demand predicts itself.
        let d2 = a.decide(&obs(&[5.0, 5.0, 5.0], 5, 3));
        assert_eq!(d2, 5);
    }

    #[test]
    fn reg_short_history_reactive() {
        let mut a = Reg::default();
        assert_eq!(a.decide(&obs(&[3.0], 1, 0)), 3);
    }

    #[test]
    fn ewma_smooths_spikes() {
        let mut a = Ewma::new(0.3, 0.0);
        let _ = a.decide(&obs(&[10.0], 10, 0));
        let after_spike = a.decide(&obs(&[100.0], 10, 1));
        assert!(after_spike < 50, "EWMA should damp the spike, got {after_spike}");
        assert!(after_spike > 10);
    }

    #[test]
    fn portfolio_is_populated() {
        let p = standard_autoscalers(24);
        assert_eq!(p.len(), 5);
        let names: std::collections::HashSet<_> = p.iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), 5);
    }
}
