//! Elasticity metrics, after Herbst et al. and the SPEC RG Cloud group.
//!
//! The paper repeatedly points to "the over ten available metrics" of
//! elasticity \[32\] as the vocabulary for C3's sophisticated non-functional
//! requirements. Given a demand series `d(t)` (instances needed) and a
//! supply series `s(t)` (instances provisioned), these metrics quantify how
//! well the supply tracked the demand.


/// The SPEC-style elasticity report for one (demand, supply) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct ElasticityMetrics {
    /// Mean under-provisioned instances while under-provisioned
    /// (accuracy_U, in instances; 0 is perfect).
    pub accuracy_under: f64,
    /// Mean over-provisioned instances while over-provisioned
    /// (accuracy_O, in instances; 0 is perfect).
    pub accuracy_over: f64,
    /// Fraction of time spent under-provisioned (timeshare_U ∈ [0, 1]).
    pub timeshare_under: f64,
    /// Fraction of time spent over-provisioned (timeshare_O ∈ [0, 1]).
    pub timeshare_over: f64,
    /// Fraction of intervals where the supply changed direction relative to
    /// demand (instability ∈ [0, 1]); thrashing autoscalers score high.
    pub instability: f64,
    /// Total supplied instance-intervals (the cost proxy).
    pub supplied_instance_intervals: f64,
    /// Total demanded instance-intervals.
    pub demanded_instance_intervals: f64,
}

impl ElasticityMetrics {
    /// Computes the metrics over interval-aligned series.
    ///
    /// Returns `None` when the series are empty or of different lengths.
    pub fn compute(demand: &[f64], supply: &[f64]) -> Option<ElasticityMetrics> {
        if demand.is_empty() || demand.len() != supply.len() {
            return None;
        }
        let n = demand.len() as f64;
        let mut under_sum = 0.0;
        let mut under_t = 0.0;
        let mut over_sum = 0.0;
        let mut over_t = 0.0;
        for (&d, &s) in demand.iter().zip(supply) {
            let gap = d - s;
            if gap > 1e-9 {
                under_sum += gap;
                under_t += 1.0;
            } else if gap < -1e-9 {
                over_sum += -gap;
                over_t += 1.0;
            }
        }
        // Instability: supply moves against the demand trend.
        let mut against = 0.0;
        for i in 1..demand.len() {
            let dd = demand[i] - demand[i - 1];
            let ds = supply[i] - supply[i - 1];
            if dd * ds < 0.0 {
                against += 1.0;
            }
        }
        Some(ElasticityMetrics {
            accuracy_under: if under_t > 0.0 { under_sum / under_t } else { 0.0 },
            accuracy_over: if over_t > 0.0 { over_sum / over_t } else { 0.0 },
            timeshare_under: under_t / n,
            timeshare_over: over_t / n,
            instability: if demand.len() > 1 { against / (n - 1.0) } else { 0.0 },
            supplied_instance_intervals: supply.iter().sum(),
            demanded_instance_intervals: demand.iter().sum(),
        })
    }

    /// A single elastic-speedup-style score combining accuracy and
    /// timeshare (higher is better, 1.0 = perfect tracking). The geometric
    /// combination follows the SPEC aggregation style.
    pub fn score(&self) -> f64 {
        let au = 1.0 / (1.0 + self.accuracy_under);
        let ao = 1.0 / (1.0 + self.accuracy_over);
        let tu = 1.0 - self.timeshare_under;
        let to = 1.0 - self.timeshare_over;
        (au * ao * tu * to).powf(0.25)
    }
}

/// Operational-risk style metric from the same SPEC line of work: the
/// fraction of demanded instance-intervals that were *not* served
/// (under-provisioned area over demand area).
pub fn unserved_fraction(demand: &[f64], supply: &[f64]) -> f64 {
    let mut unserved = 0.0;
    let mut total = 0.0;
    for (&d, &s) in demand.iter().zip(supply) {
        unserved += (d - s).max(0.0);
        total += d;
    }
    if total <= 0.0 {
        0.0
    } else {
        unserved / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_tracking_scores_one() {
        let d = vec![1.0, 2.0, 3.0, 2.0];
        let m = ElasticityMetrics::compute(&d, &d).unwrap();
        assert_eq!(m.accuracy_under, 0.0);
        assert_eq!(m.accuracy_over, 0.0);
        assert_eq!(m.timeshare_under, 0.0);
        assert_eq!(m.timeshare_over, 0.0);
        assert_eq!(m.instability, 0.0);
        assert!((m.score() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hand_computed_example() {
        let demand = vec![2.0, 4.0, 4.0, 2.0];
        let supply = vec![2.0, 2.0, 6.0, 2.0];
        let m = ElasticityMetrics::compute(&demand, &supply).unwrap();
        // Under at i=1 by 2; over at i=2 by 2.
        assert!((m.accuracy_under - 2.0).abs() < 1e-12);
        assert!((m.accuracy_over - 2.0).abs() < 1e-12);
        assert!((m.timeshare_under - 0.25).abs() < 1e-12);
        assert!((m.timeshare_over - 0.25).abs() < 1e-12);
        // Transitions: (d +2, s 0), (d 0, s +4), (d -2, s -4): none against.
        assert_eq!(m.instability, 0.0);
    }

    #[test]
    fn instability_detects_thrash() {
        let demand = vec![2.0, 3.0, 4.0, 5.0];
        let supply = vec![5.0, 4.0, 3.0, 2.0]; // always against the trend
        let m = ElasticityMetrics::compute(&demand, &supply).unwrap();
        assert_eq!(m.instability, 1.0);
    }

    #[test]
    fn mismatched_or_empty_is_none() {
        assert!(ElasticityMetrics::compute(&[], &[]).is_none());
        assert!(ElasticityMetrics::compute(&[1.0], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn unserved_fraction_hand_example() {
        let d = vec![4.0, 4.0];
        let s = vec![2.0, 6.0];
        // Unserved = 2 of 8 demanded.
        assert!((unserved_fraction(&d, &s) - 0.25).abs() < 1e-12);
        assert_eq!(unserved_fraction(&[0.0], &[1.0]), 0.0);
    }

    #[test]
    fn score_bounded() {
        let d = vec![10.0, 10.0, 10.0];
        let s = vec![0.0, 0.0, 0.0];
        let m = ElasticityMetrics::compute(&d, &s).unwrap();
        // Fully under-provisioned: timeshare_under = 1 drives the score to 0.
        assert!(m.score() >= 0.0 && m.score() < 1.0);
        assert_eq!(m.timeshare_under, 1.0);
    }
}
