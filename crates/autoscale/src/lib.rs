//! # mcs-autoscale — autoscalers and elasticity metrics
//!
//! The adaptation substrate of the paper's challenge C7: the autoscaler
//! portfolio of the cited experimental comparison (React, Adapt, Hist, Reg,
//! EWMA/ConPaaS-style), an elastic-service simulator to exercise them, and
//! the SPEC RG elasticity metrics \[32\] the paper names as the vocabulary of
//! sophisticated non-functional requirements (C3).
//!
//! ## Example
//! ```
//! use mcs_autoscale::prelude::*;
//! use mcs_simcore::prelude::*;
//!
//! let rate = |t: SimTime| 200.0 + 100.0 * (t.as_secs_f64() / 600.0).sin();
//! let mut scaler = React::default();
//! let out = simulate_service(
//!     &rate, SimTime::from_secs(3_600), ServiceConfig::default(), &mut scaler,
//! );
//! assert!(out.elasticity.score() > 0.0 && out.instance_hours > 0.0);
//! ```

pub mod autoscalers;
pub mod elasticity;
pub mod governor;
pub mod service;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::autoscalers::{
        standard_autoscalers, Adapt, AutoscaleObservation, Autoscaler, Ewma, Hist, React, Reg,
        StaticAutoscaler,
    };
    pub use crate::elasticity::{unserved_fraction, ElasticityMetrics};
    pub use crate::governor::{GovernorActor, GovernorMsg};
    pub use crate::service::{
        simulate_service, ServiceActor, ServiceConfig, ServiceMsg, ServiceOutcome,
    };
}
