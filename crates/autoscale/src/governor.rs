//! The autoscaling governor for composed simulations.
//!
//! Where [`crate::service::ServiceActor`] simulates a closed world (it
//! invents its own demand from a rate function), the [`GovernorActor`]
//! governs *another* actor in the same simulation: it receives
//! [`GovernorMsg::Observe`] messages carrying the governed subsystem's
//! measured demand and supply, consults an [`Autoscaler`], and applies
//! capacity deltas back through a caller-provided callback — scale-ups
//! after the configured provisioning delay, scale-downs immediately. This
//! is the wiring the composed "ecosystem" scenario uses to autoscale the
//! FaaS platform.

use crate::autoscalers::{AutoscaleObservation, Autoscaler};
use crate::service::ServiceConfig;
use mcs_simcore::codec::Json;
use mcs_simcore::engine::{Actor, Context, MessageEnvelope};
use mcs_simcore::trace::payload;

/// The governor's message vocabulary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GovernorMsg {
    /// A periodic measurement of the governed subsystem.
    Observe {
        /// Instances needed over the last interval.
        demand: f64,
        /// Instances currently active.
        supply: usize,
    },
    /// Self-scheduled: instances requested one provisioning delay ago are
    /// ready.
    Provisioned(usize),
}

/// Governs another actor's capacity through an [`Autoscaler`].
///
/// The `apply` callback receives a signed instance delta: negative for
/// immediate scale-down, positive when provisioned instances arrive. It
/// runs inside the simulation, so it may send messages (typically to the
/// governed actor).
/// Callback applying a capacity delta to the governed actor.
pub type CapacityDelta<'a, M> = Box<dyn FnMut(&mut Context<'_, M>, i64) + 'a>;

/// Callback engaging (`true`) or disengaging (`false`) load shedding on the
/// governed actor (see [`GovernorActor::with_shedding`]).
pub type ShedSignal<'a, M> = Box<dyn FnMut(&mut Context<'_, M>, bool) + 'a>;

pub struct GovernorActor<'a, M> {
    autoscaler: &'a mut dyn Autoscaler,
    config: ServiceConfig,
    history: Vec<f64>,
    interval_index: usize,
    intervals_per_day: usize,
    in_flight: usize,
    decisions: usize,
    apply: CapacityDelta<'a, M>,
    on_shed: Option<ShedSignal<'a, M>>,
    shedding: bool,
}

impl<'a, M> GovernorActor<'a, M> {
    /// Builds a governor applying capacity deltas through `apply`.
    ///
    /// # Panics
    /// Panics when the scaling interval of `config` is zero.
    pub fn new(
        autoscaler: &'a mut dyn Autoscaler,
        config: ServiceConfig,
        apply: impl FnMut(&mut Context<'_, M>, i64) + 'a,
    ) -> Self {
        assert!(!config.scaling_interval.is_zero(), "scaling interval must be positive");
        let interval_secs = config.scaling_interval.as_secs_f64();
        let intervals_per_day = ((24.0 * 3600.0) / interval_secs).round().max(1.0) as usize;
        GovernorActor {
            autoscaler,
            config,
            history: Vec::new(),
            interval_index: 0,
            intervals_per_day,
            in_flight: 0,
            decisions: 0,
            apply: Box::new(apply),
            on_shed: None,
            shedding: false,
        }
    }

    /// Installs a load-shedding signal: when the autoscaler's raw (unclamped)
    /// target exceeds `max_instances` — demand the service cannot provision
    /// its way out of — the governor engages shedding on the governed actor,
    /// and disengages it once the target falls back inside the bounds.
    #[must_use]
    pub fn with_shedding(
        mut self,
        on_shed: impl FnMut(&mut Context<'_, M>, bool) + 'a,
    ) -> Self {
        self.on_shed = Some(Box::new(on_shed));
        self
    }

    /// Number of scaling decisions taken so far.
    pub fn decisions(&self) -> usize {
        self.decisions
    }

    /// Whether load shedding is currently engaged.
    pub fn shedding(&self) -> bool {
        self.shedding
    }

    fn observe(&mut self, ctx: &mut Context<'_, M>, demand: f64, supply: usize)
    where
        M: MessageEnvelope<GovernorMsg>,
    {
        self.history.push(demand);
        let obs = AutoscaleObservation {
            demand_history: self.history.clone(),
            supply,
            interval_index: self.interval_index,
            intervals_per_day: self.intervals_per_day,
        };
        self.interval_index += 1;
        self.decisions += 1;
        let raw = self.autoscaler.decide(&obs);
        let target = raw.clamp(self.config.min_instances, self.config.max_instances);
        ctx.emit(
            "autoscale",
            "decision",
            payload(vec![
                ("demand", Json::Float(demand)),
                ("supply", Json::UInt(supply as u64)),
                ("target", Json::UInt(target as u64)),
            ]),
        );
        if let Some(on_shed) = self.on_shed.as_mut() {
            let over_capacity = raw > self.config.max_instances;
            if over_capacity != self.shedding {
                self.shedding = over_capacity;
                ctx.emit(
                    "autoscale",
                    if over_capacity { "shed_on" } else { "shed_off" },
                    payload(vec![
                        ("raw_target", Json::UInt(raw as u64)),
                        ("max_instances", Json::UInt(self.config.max_instances as u64)),
                    ]),
                );
                on_shed(ctx, over_capacity);
            }
        }
        if target > supply + self.in_flight {
            let extra = target - supply - self.in_flight;
            self.in_flight += extra;
            let delay =
                self.config.scaling_interval * self.config.provisioning_delay_intervals as u64;
            ctx.send_self(delay, M::wrap(GovernorMsg::Provisioned(extra)));
        } else if target < supply {
            // Scale-down is immediate.
            let floor = self.config.min_instances.max(target);
            (self.apply)(ctx, floor as i64 - supply as i64);
        }
    }

    fn provisioned(&mut self, ctx: &mut Context<'_, M>, n: usize) {
        self.in_flight = self.in_flight.saturating_sub(n);
        ctx.emit(
            "autoscale",
            "provisioned",
            payload(vec![("instances", Json::UInt(n as u64))]),
        );
        (self.apply)(ctx, n as i64);
    }
}

impl<M: MessageEnvelope<GovernorMsg>> Actor<M> for GovernorActor<'_, M> {
    fn handle(&mut self, ctx: &mut Context<'_, M>, msg: M) {
        let Some(msg) = msg.unwrap() else { return };
        match msg {
            GovernorMsg::Observe { demand, supply } => self.observe(ctx, demand, supply),
            GovernorMsg::Provisioned(n) => self.provisioned(ctx, n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_simcore::engine::Simulation;
    use mcs_simcore::time::{SimDuration, SimTime};
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Fixed(usize);
    impl Autoscaler for Fixed {
        fn decide(&mut self, _obs: &AutoscaleObservation) -> usize {
            self.0
        }
        fn name(&self) -> &'static str {
            "fixed"
        }
    }

    fn config() -> ServiceConfig {
        ServiceConfig {
            scaling_interval: SimDuration::from_secs(60),
            provisioning_delay_intervals: 2,
            min_instances: 1,
            max_instances: 100,
            ..Default::default()
        }
    }

    #[test]
    fn scale_up_arrives_after_provisioning_delay() {
        let deltas: Rc<RefCell<Vec<(SimTime, i64)>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&deltas);
        let mut scaler = Fixed(5);
        let mut gov = GovernorActor::new(&mut scaler, config(), move |ctx, d| {
            sink.borrow_mut().push((ctx.now(), d));
        });
        let mut sim: Simulation<'_, GovernorMsg> = Simulation::new(0);
        let id = sim.add_actor(&mut gov);
        sim.schedule(SimTime::ZERO, id, GovernorMsg::Observe { demand: 5.0, supply: 1 });
        sim.run();
        // +4 instances, 2 intervals (120 s) later.
        assert_eq!(*deltas.borrow(), vec![(SimTime::from_secs(120), 4)]);
        drop(sim);
        assert_eq!(gov.decisions(), 1);
    }

    #[test]
    fn scale_down_is_immediate_and_floored() {
        let deltas: Rc<RefCell<Vec<(SimTime, i64)>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&deltas);
        let mut scaler = Fixed(0);
        let mut cfg = config();
        cfg.min_instances = 2;
        let mut gov = GovernorActor::new(&mut scaler, cfg, move |ctx, d| {
            sink.borrow_mut().push((ctx.now(), d));
        });
        let mut sim: Simulation<'_, GovernorMsg> = Simulation::new(0);
        let id = sim.add_actor(&mut gov);
        sim.schedule(
            SimTime::from_secs(60),
            id,
            GovernorMsg::Observe { demand: 0.0, supply: 10 },
        );
        sim.run();
        // Down to the min_instances floor (2), immediately.
        assert_eq!(*deltas.borrow(), vec![(SimTime::from_secs(60), -8)]);
    }

    #[test]
    fn shedding_engages_over_capacity_and_disengages_after() {
        let signals: Rc<RefCell<Vec<bool>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&signals);
        struct Ramp(Vec<usize>);
        impl Autoscaler for Ramp {
            fn decide(&mut self, _obs: &AutoscaleObservation) -> usize {
                self.0.remove(0)
            }
            fn name(&self) -> &'static str {
                "ramp"
            }
        }
        // max_instances is 100: 150 is over capacity, 80 and 90 are not.
        let mut scaler = Ramp(vec![80, 150, 150, 90]);
        let mut gov = GovernorActor::new(&mut scaler, config(), |_ctx, _d| {})
            .with_shedding(move |_ctx, on| sink.borrow_mut().push(on));
        let mut sim: Simulation<'_, GovernorMsg> = Simulation::new(0);
        let id = sim.add_actor(&mut gov);
        for t in 0..4 {
            sim.schedule(
                SimTime::from_secs(t * 60),
                id,
                GovernorMsg::Observe { demand: 1.0, supply: 100 },
            );
        }
        sim.run();
        // One engage at the first over-capacity tick (no repeat while it
        // persists), one disengage when the target returns in bounds.
        assert_eq!(*signals.borrow(), vec![true, false]);
        assert_eq!(sim.trace().count("autoscale", "shed_on"), 1);
        assert_eq!(sim.trace().count("autoscale", "shed_off"), 1);
        drop(sim);
        assert!(!gov.shedding());
    }

    #[test]
    fn in_flight_instances_are_not_rerequested() {
        let deltas: Rc<RefCell<Vec<i64>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&deltas);
        let mut scaler = Fixed(5);
        let mut gov = GovernorActor::new(&mut scaler, config(), move |_ctx, d| {
            sink.borrow_mut().push(d);
        });
        let mut sim: Simulation<'_, GovernorMsg> = Simulation::new(0);
        let id = sim.add_actor(&mut gov);
        // Two observations before the first provisioning completes: the
        // second must not double-request.
        sim.schedule(SimTime::ZERO, id, GovernorMsg::Observe { demand: 5.0, supply: 1 });
        sim.schedule(
            SimTime::from_secs(60),
            id,
            GovernorMsg::Observe { demand: 5.0, supply: 1 },
        );
        sim.run();
        assert_eq!(*deltas.borrow(), vec![4]);
    }
}
