//! Portfolio scheduling: simulate the candidates, run the winner.
//!
//! The paper lists portfolio scheduling among the proven self-adaptation
//! approaches (C6, approach iv; applied to business-critical workloads in
//! van Beek et al. \[112\]). At every decision tick the portfolio selector
//! forward-simulates the *currently queued work* under each candidate
//! configuration on an idle copy of the cluster, and adopts the
//! configuration with the best predicted objective.
//!
//! The idle-clone lookahead is an approximation (running tasks keep their
//! machines in reality); it is the standard simulation-based selector and is
//! cheap enough to run inside the decision loop.

use crate::scheduler::{
    ClusterScheduler, PolicySelector, SchedulerConfig, SchedulerView,
};
use mcs_infra::cluster::{Cluster, ClusterId};
use mcs_simcore::time::SimTime;
use mcs_workload::task::{Job, JobId, JobKind, Task, TaskId, UserId};

/// What the portfolio optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Minimize predicted makespan of the queued work.
    Makespan,
    /// Minimize predicted mean response time.
    MeanResponse,
}

/// A simulation-based portfolio selector.
#[derive(Debug)]
pub struct PortfolioSelector {
    candidates: Vec<SchedulerConfig>,
    objective: Objective,
    lookahead: SimTime,
    seed: u64,
    /// History of `(decision instant, chosen candidate index)`.
    decisions: Vec<(SimTime, usize)>,
    consultations: u64,
}

impl PortfolioSelector {
    /// Creates a selector over `candidates`.
    ///
    /// # Panics
    /// Panics when `candidates` is empty.
    pub fn new(candidates: Vec<SchedulerConfig>, objective: Objective, seed: u64) -> Self {
        assert!(!candidates.is_empty(), "portfolio needs at least one candidate");
        PortfolioSelector {
            candidates,
            objective,
            lookahead: SimTime::from_secs(24 * 3600),
            seed,
            decisions: Vec::new(),
            consultations: 0,
        }
    }

    /// The decision log: when each candidate was chosen (ticks with an
    /// empty queue keep the current configuration and are not logged).
    pub fn decisions(&self) -> &[(SimTime, usize)] {
        &self.decisions
    }

    /// How many times the scheduler consulted this selector.
    pub fn consultations(&self) -> u64 {
        self.consultations
    }

    /// The candidate list.
    pub fn candidates(&self) -> &[SchedulerConfig] {
        &self.candidates
    }

    fn evaluate(&self, cluster: Cluster, config: SchedulerConfig, jobs: Vec<Job>) -> f64 {
        let mut sim = ClusterScheduler::new(cluster, config, self.seed ^ 0xF0F0);
        let out = sim.run(jobs, self.lookahead);
        match self.objective {
            Objective::Makespan => {
                if out.unfinished > 0 {
                    f64::INFINITY
                } else {
                    out.makespan.as_secs_f64()
                }
            }
            Objective::MeanResponse => {
                if out.completions.is_empty() {
                    f64::INFINITY
                } else {
                    out.mean_response_secs() + out.unfinished as f64 * 1e6
                }
            }
        }
    }
}

/// Builds an idle cluster with the same machine specs as `cluster`.
fn idle_clone(cluster: &Cluster) -> Cluster {
    let mut c = Cluster::new(ClusterId(0), "portfolio-lookahead");
    for m in cluster.machines() {
        // Preserve Down machines as failed so the lookahead sees true capacity.
        let id = c.add_machine(m.spec().clone());
        if m.state() != mcs_infra::machine::MachineState::Up {
            c.machine_mut(id).fail();
        }
    }
    c
}

impl PolicySelector for PortfolioSelector {
    fn select(&mut self, view: &SchedulerView<'_>) -> SchedulerConfig {
        self.consultations += 1;
        if view.queued.is_empty() {
            // Nothing to optimize; keep the current configuration.
            return view.current;
        }
        // Re-materialize the queue as an immediate bag of tasks.
        let job_id = JobId(u64::MAX);
        let jobs = vec![Job {
            id: job_id,
            user: UserId(0),
            kind: JobKind::BagOfTasks,
            submit: SimTime::ZERO,
            tasks: view
                .queued
                .iter()
                .enumerate()
                .map(|(i, (demand, req))| {
                    Task::independent(TaskId(i as u64), job_id, *demand, *req)
                })
                .collect(),
        }];
        let mut best = 0usize;
        let mut best_score = f64::INFINITY;
        for (i, cand) in self.candidates.iter().enumerate() {
            let score = self.evaluate(idle_clone(view.cluster), *cand, jobs.clone());
            if score < best_score {
                best_score = score;
                best = i;
            }
        }
        self.decisions.push((view.now, best));
        self.candidates[best]
    }
}

/// A portfolio of the standard policy corners: FCFS+backfill/best-fit (the
/// grid default), SJF/worst-fit (interactive), LJF/best-fit (throughput),
/// and FCFS/fastest-first (heterogeneity).
pub fn default_portfolio() -> Vec<SchedulerConfig> {
    use crate::allocation::AllocationPolicy as A;
    use crate::scheduler::QueuePolicy as Q;
    let base = SchedulerConfig::default();
    vec![
        SchedulerConfig { queue: Q::Fcfs, allocation: A::BestFit, backfill: true, ..base },
        SchedulerConfig { queue: Q::Sjf, allocation: A::WorstFit, backfill: false, ..base },
        SchedulerConfig { queue: Q::Ljf, allocation: A::BestFit, backfill: true, ..base },
        SchedulerConfig { queue: Q::Fcfs, allocation: A::FastestFirst, backfill: true, ..base },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_infra::machine::MachineSpec;
    use mcs_infra::resource::ResourceVector;
    use mcs_simcore::time::SimDuration;

    fn cluster() -> Cluster {
        Cluster::homogeneous(
            ClusterId(0),
            "c",
            MachineSpec::commodity("std-4", 4.0, 16.0),
            4,
        )
    }

    fn bag(id: u64, submit: u64, tasks: &[(f64, f64)]) -> Job {
        Job {
            id: JobId(id),
            user: UserId(0),
            kind: JobKind::BagOfTasks,
            submit: SimTime::from_secs(submit),
            tasks: tasks
                .iter()
                .enumerate()
                .map(|(i, &(d, c))| {
                    Task::independent(
                        TaskId(id * 1000 + i as u64),
                        JobId(id),
                        d,
                        ResourceVector::new(c, c),
                    )
                })
                .collect(),
        }
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_portfolio_rejected() {
        let _ = PortfolioSelector::new(vec![], Objective::Makespan, 1);
    }

    #[test]
    fn portfolio_runs_and_records_decisions() {
        let jobs: Vec<Job> = (0..50)
            .map(|i| bag(i, i * 20, &[(200.0, 2.0), (10.0, 1.0), (10.0, 1.0)]))
            .collect();
        let mut selector =
            PortfolioSelector::new(default_portfolio(), Objective::MeanResponse, 7);
        let mut sched = ClusterScheduler::new(cluster(), SchedulerConfig::default(), 7);
        let out = sched.run_adaptive(
            jobs,
            SimTime::from_secs(1_000_000),
            &mut selector,
            SimDuration::from_secs(60),
        );
        assert_eq!(out.unfinished, 0);
        assert!(selector.consultations() > 0, "selector should have been consulted");
    }

    #[test]
    fn portfolio_not_much_worse_than_best_fixed() {
        // A mixed workload in which no single policy dominates.
        let mut jobs: Vec<Job> = Vec::new();
        for i in 0..30 {
            jobs.push(bag(i, i * 30, &[(600.0, 4.0)])); // long wide
            jobs.push(bag(100 + i, i * 30 + 1, &[(5.0, 1.0), (5.0, 1.0)])); // short
        }
        jobs.sort_by_key(|j| j.submit);
        let horizon = SimTime::from_secs(1_000_000);

        let mut fixed_scores = Vec::new();
        for cand in default_portfolio() {
            let out = ClusterScheduler::new(cluster(), cand, 3).run(jobs.clone(), horizon);
            fixed_scores.push(out.mean_response_secs());
        }
        let best_fixed = fixed_scores.iter().cloned().fold(f64::INFINITY, f64::min);
        let worst_fixed = fixed_scores.iter().cloned().fold(0.0, f64::max);

        let mut selector =
            PortfolioSelector::new(default_portfolio(), Objective::MeanResponse, 3);
        let out = ClusterScheduler::new(cluster(), SchedulerConfig::default(), 3)
            .run_adaptive(jobs, horizon, &mut selector, SimDuration::from_secs(120));
        let portfolio_score = out.mean_response_secs();

        // The portfolio must beat the worst fixed policy and stay within 2x
        // of the best fixed policy (selection overhead is approximation).
        assert!(
            portfolio_score < worst_fixed,
            "portfolio {portfolio_score} vs worst fixed {worst_fixed}"
        );
        assert!(
            portfolio_score < best_fixed * 2.0,
            "portfolio {portfolio_score} vs best fixed {best_fixed}"
        );
    }

    #[test]
    fn default_portfolio_is_diverse() {
        let p = default_portfolio();
        assert!(p.len() >= 3);
        let queues: std::collections::HashSet<_> = p.iter().map(|c| c.queue.name()).collect();
        assert!(queues.len() >= 2);
    }
}
