//! Provisioning policies: how many machines to lease, and when.
//!
//! The first half of the dual scheduling problem (C7): acquiring resources
//! on the user's behalf. A provisioning plan is computed over epochs from a
//! fluid backlog estimate and *materialized as an outage schedule* — an
//! unleased machine is indistinguishable from a down machine to the
//! allocation layer, so [`ClusterScheduler`](crate::scheduler::ClusterScheduler)
//! consumes plans without modification. Scale-down reclaims the
//! highest-indexed machines (spot-style: running work is requeued).

use mcs_failure::model::Outage;
use mcs_simcore::time::{SimDuration, SimTime};
use mcs_workload::task::Job;

/// What a provisioning policy observes at each epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProvisioningObservation {
    /// Estimated outstanding work, core-seconds.
    pub backlog_core_seconds: f64,
    /// Work that arrived during the last epoch, core-seconds.
    pub arrived_core_seconds: f64,
    /// Machines currently leased.
    pub leased: usize,
    /// Cores per machine.
    pub cores_per_machine: f64,
    /// Epoch length, seconds.
    pub epoch_secs: f64,
}

/// Decides the machine count for the next epoch.
pub trait ProvisioningPolicy {
    /// Target lease count, clamped by the driver to `[min, max]`.
    fn target(&mut self, obs: &ProvisioningObservation) -> usize;

    /// A short stable name for reports.
    fn name(&self) -> &'static str;
}

/// Always lease a fixed number of machines (the non-elastic baseline).
#[derive(Debug, Clone, Copy)]
pub struct StaticProvisioning(pub usize);

impl ProvisioningPolicy for StaticProvisioning {
    fn target(&mut self, _obs: &ProvisioningObservation) -> usize {
        self.0
    }
    fn name(&self) -> &'static str {
        "static"
    }
}

/// Lease enough machines to drain the current backlog within
/// `drain_target_secs`, plus the steady-state rate.
#[derive(Debug, Clone, Copy)]
pub struct BacklogDriven {
    /// How quickly the backlog should be drained, seconds.
    pub drain_target_secs: f64,
}

impl ProvisioningPolicy for BacklogDriven {
    fn target(&mut self, obs: &ProvisioningObservation) -> usize {
        let rate_cores = obs.arrived_core_seconds / obs.epoch_secs.max(1e-9);
        let drain_cores = obs.backlog_core_seconds / self.drain_target_secs.max(1e-9);
        ((rate_cores + drain_cores) / obs.cores_per_machine.max(1e-9)).ceil() as usize
    }
    fn name(&self) -> &'static str {
        "backlog-driven"
    }
}

/// A provisioning plan: per-epoch lease counts plus the outage schedule that
/// encodes the unleased machines.
#[derive(Debug, Clone, PartialEq)]
pub struct ProvisioningPlan {
    /// Lease count per epoch.
    pub leases: Vec<usize>,
    /// Epoch length.
    pub epoch: SimDuration,
    /// Machine-hours leased in total.
    pub machine_hours: f64,
    /// Unleased periods encoded as outages for the scheduler.
    pub outages: Vec<Outage>,
}

/// Builds a provisioning plan for `jobs` over `[0, horizon)`.
///
/// The fluid model estimates the backlog at each epoch boundary: arrivals
/// add their total demand; the leased capacity drains it.
///
/// # Panics
/// Panics if `max_machines == 0` or the epoch is zero.
pub fn plan_provisioning(
    jobs: &[Job],
    cores_per_machine: f64,
    min_machines: usize,
    max_machines: usize,
    epoch: SimDuration,
    horizon: SimTime,
    policy: &mut dyn ProvisioningPolicy,
) -> ProvisioningPlan {
    assert!(max_machines > 0, "need at least one machine");
    assert!(!epoch.is_zero(), "epoch must be positive");
    let epoch_secs = epoch.as_secs_f64();
    let epochs = (horizon.as_secs_f64() / epoch_secs).ceil() as usize;

    // Demand arriving per epoch.
    let mut arrived = vec![0.0f64; epochs.max(1)];
    for j in jobs {
        let e = (j.submit.as_secs_f64() / epoch_secs) as usize;
        if e < arrived.len() {
            arrived[e] += j.total_demand();
        }
    }

    let mut leases = Vec::with_capacity(epochs);
    let mut backlog = 0.0f64;
    let mut leased = min_machines.max(1);
    for a in &arrived {
        backlog += a;
        let obs = ProvisioningObservation {
            backlog_core_seconds: backlog,
            arrived_core_seconds: *a,
            leased,
            cores_per_machine,
            epoch_secs,
        };
        leased = policy.target(&obs).clamp(min_machines, max_machines);
        leases.push(leased);
        let drained = leased as f64 * cores_per_machine * epoch_secs;
        backlog = (backlog - drained).max(0.0);
    }

    // Encode unleased machines as outages: machine m is out during every
    // epoch whose lease count is ≤ m (contiguous epochs are merged).
    let mut outages = Vec::new();
    for m in 0..max_machines {
        let mut out_since: Option<usize> = None;
        for (e, &l) in leases.iter().enumerate() {
            let is_out = m >= l;
            match (is_out, out_since) {
                (true, None) => out_since = Some(e),
                (false, Some(s)) => {
                    outages.push(Outage {
                        machine: m,
                        fail_at: SimTime::ZERO + epoch * s as u64,
                        repair_at: SimTime::ZERO + epoch * e as u64,
                    });
                    out_since = None;
                }
                _ => {}
            }
        }
        if let Some(s) = out_since {
            outages.push(Outage {
                machine: m,
                fail_at: SimTime::ZERO + epoch * s as u64,
                repair_at: horizon,
            });
        }
    }
    outages.sort_by_key(|o| (o.fail_at, o.machine));

    let machine_hours =
        leases.iter().map(|&l| l as f64).sum::<f64>() * epoch_secs / 3600.0;
    ProvisioningPlan { leases, epoch, machine_hours, outages }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_infra::resource::ResourceVector;
    use mcs_workload::task::{JobId, JobKind, Task, TaskId, UserId};

    fn job(id: u64, submit: u64, demand: f64) -> Job {
        Job {
            id: JobId(id),
            user: UserId(0),
            kind: JobKind::BagOfTasks,
            submit: SimTime::from_secs(submit),
            tasks: vec![Task::independent(
                TaskId(id),
                JobId(id),
                demand,
                ResourceVector::new(1.0, 1.0),
            )],
        }
    }

    #[test]
    fn static_plan_has_constant_leases_and_no_outages_at_full_size() {
        let jobs: Vec<Job> = (0..10).map(|i| job(i, i * 10, 100.0)).collect();
        let mut policy = StaticProvisioning(4);
        let plan = plan_provisioning(
            &jobs,
            4.0,
            4,
            4,
            SimDuration::from_secs(100),
            SimTime::from_secs(1_000),
            &mut policy,
        );
        assert!(plan.leases.iter().all(|&l| l == 4));
        assert!(plan.outages.is_empty());
        assert!((plan.machine_hours - 4.0 * 1000.0 / 3600.0).abs() < 1e-9);
    }

    #[test]
    fn backlog_driven_scales_with_load() {
        // Quiet first half, heavy second half.
        let mut jobs = Vec::new();
        for i in 0..5 {
            jobs.push(job(i, i * 100, 10.0));
        }
        for i in 5..50 {
            jobs.push(job(i, 500 + (i - 5) * 10, 2_000.0));
        }
        let mut policy = BacklogDriven { drain_target_secs: 200.0 };
        let plan = plan_provisioning(
            &jobs,
            4.0,
            1,
            32,
            SimDuration::from_secs(100),
            SimTime::from_secs(1_000),
            &mut policy,
        );
        let first_half_max = plan.leases[..5].iter().copied().max().unwrap();
        let second_half_max = plan.leases[5..].iter().copied().max().unwrap();
        assert!(second_half_max > first_half_max * 2, "{plan:?}");
        assert!(plan.machine_hours > 0.0);
    }

    #[test]
    fn outages_cover_unleased_machines_exactly() {
        // Leases: 2 machines for epoch 0, 1 for epoch 1 (max 2).
        let jobs = vec![job(0, 0, 800.0)];
        struct Seq(Vec<usize>, usize);
        impl ProvisioningPolicy for Seq {
            fn target(&mut self, _o: &ProvisioningObservation) -> usize {
                let v = self.0[self.1.min(self.0.len() - 1)];
                self.1 += 1;
                v
            }
            fn name(&self) -> &'static str {
                "seq"
            }
        }
        let mut policy = Seq(vec![2, 1], 0);
        let plan = plan_provisioning(
            &jobs,
            4.0,
            1,
            2,
            SimDuration::from_secs(100),
            SimTime::from_secs(200),
            &mut policy,
        );
        assert_eq!(plan.leases, vec![2, 1]);
        // Machine 1 is unleased during epoch 1 only.
        assert_eq!(plan.outages.len(), 1);
        let o = &plan.outages[0];
        assert_eq!(o.machine, 1);
        assert_eq!(o.fail_at, SimTime::from_secs(100));
        assert_eq!(o.repair_at, SimTime::from_secs(200));
    }

    #[test]
    fn plan_feeds_scheduler() {
        use crate::scheduler::{ClusterScheduler, SchedulerConfig};
        use mcs_infra::cluster::{Cluster, ClusterId};
        use mcs_infra::machine::MachineSpec;

        let jobs: Vec<Job> = (0..20).map(|i| job(i, i * 50, 200.0)).collect();
        let mut policy = BacklogDriven { drain_target_secs: 100.0 };
        let horizon = SimTime::from_secs(10_000);
        let plan = plan_provisioning(
            &jobs,
            4.0,
            1,
            8,
            SimDuration::from_secs(100),
            horizon,
            &mut policy,
        );
        let cluster = Cluster::homogeneous(
            ClusterId(0),
            "elastic",
            MachineSpec::commodity("std-4", 4.0, 16.0),
            8,
        );
        let mut sched = ClusterScheduler::new(cluster, SchedulerConfig::default(), 1)
            .with_outages(plan.outages.clone());
        let out = sched.run(jobs, horizon);
        assert_eq!(out.unfinished, 0);
        // Elastic plan should lease far fewer machine-hours than static-8.
        let static_hours = 8.0 * horizon.as_secs_f64() / 3600.0;
        assert!(plan.machine_hours < static_hours * 0.8, "{}", plan.machine_hours);
    }
}
