//! Memory scavenging (C7, after Uta et al. \[118\]).
//!
//! "By using small portions of available memory from other tenants or
//! nodes, a relative small performance overhead can be traded for
//! significant gains in resource consumption." A scavenging plan lets a
//! memory-starved task borrow idle memory from donor machines over the
//! network, paying a slowdown proportional to the remote fraction of its
//! working set — instead of waiting for a machine with enough local memory.

use mcs_infra::cluster::Cluster;
use mcs_infra::machine::MachineId;
use mcs_infra::resource::ResourceVector;

/// Parameters of the scavenging fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScavengeConfig {
    /// Largest fraction of a task's memory that may live remotely.
    pub max_remote_fraction: f64,
    /// Slowdown per unit of remote fraction: effective speed is
    /// `1 / (1 + penalty * remote_fraction)`. Uta et al. measure small
    /// penalties on fast networks (~0.1–0.5).
    pub remote_penalty: f64,
    /// Fraction of a donor machine's *free* memory that may be lent
    /// (protects donors from their own bursts).
    pub donor_lend_fraction: f64,
}

impl Default for ScavengeConfig {
    fn default() -> Self {
        ScavengeConfig {
            max_remote_fraction: 0.5,
            remote_penalty: 0.3,
            donor_lend_fraction: 0.5,
        }
    }
}

/// A scavenging placement: host machine plus remote-memory donors.
#[derive(Debug, Clone, PartialEq)]
pub struct ScavengePlacement {
    /// The machine running the task (provides CPU and local memory).
    pub host: MachineId,
    /// Memory taken on the host, GiB.
    pub local_gb: f64,
    /// `(donor, GiB)` loans, in donor order.
    pub loans: Vec<(MachineId, f64)>,
    /// Fraction of the working set that is remote.
    pub remote_fraction: f64,
    /// Execution slowdown factor ≥ 1 implied by the remote fraction.
    pub slowdown: f64,
}

impl ScavengePlacement {
    /// Total borrowed memory, GiB.
    pub fn borrowed_gb(&self) -> f64 {
        self.loans.iter().map(|(_, gb)| gb).sum()
    }
}

/// Attempts to place `req` on a cluster where no single machine has enough
/// free memory, by borrowing from donors. Returns `None` when no host can
/// fit the CPU side plus the minimum local share of memory, or when donors
/// cannot cover the remainder.
///
/// Deterministic: the host is the feasible machine with the most free
/// memory; donors are scanned in id order.
pub fn plan_scavenge(
    cluster: &Cluster,
    req: &ResourceVector,
    config: &ScavengeConfig,
) -> Option<ScavengePlacement> {
    let min_local_gb = req.memory_gb * (1.0 - config.max_remote_fraction.clamp(0.0, 1.0));
    // CPU (and accelerator/storage/network) must be local; memory may split.
    let cpu_req = ResourceVector { memory_gb: min_local_gb, ..*req };
    let host = cluster
        .machines()
        .iter()
        .filter(|m| cpu_req.fits_in(&m.available()))
        .max_by(|a, b| {
            a.available()
                .memory_gb
                .partial_cmp(&b.available().memory_gb)
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
    let local_gb = host.available().memory_gb.min(req.memory_gb);
    let mut needed = req.memory_gb - local_gb;
    if needed <= 1e-9 {
        // Fits locally after all: degenerate placement, no loans.
        return Some(ScavengePlacement {
            host: host.id(),
            local_gb: req.memory_gb,
            loans: Vec::new(),
            remote_fraction: 0.0,
            slowdown: 1.0,
        });
    }
    let mut loans = Vec::new();
    for donor in cluster.machines() {
        if donor.id() == host.id() || needed <= 1e-9 {
            continue;
        }
        let lendable = donor.available().memory_gb * config.donor_lend_fraction;
        if lendable <= 1e-9 {
            continue;
        }
        let take = lendable.min(needed);
        loans.push((donor.id(), take));
        needed -= take;
    }
    if needed > 1e-9 {
        return None; // donors cannot cover the remainder
    }
    let borrowed: f64 = loans.iter().map(|(_, gb)| gb).sum();
    let remote_fraction = borrowed / req.memory_gb;
    Some(ScavengePlacement {
        host: host.id(),
        local_gb,
        loans,
        remote_fraction,
        slowdown: 1.0 + config.remote_penalty * remote_fraction,
    })
}

/// Applies a placement: allocates CPU+local memory on the host and the
/// loaned memory on each donor. Returns `false` (and rolls back nothing —
/// call only with a fresh plan) when any allocation fails.
pub fn apply_scavenge(
    cluster: &mut Cluster,
    req: &ResourceVector,
    placement: &ScavengePlacement,
) -> bool {
    let host_req = ResourceVector { memory_gb: placement.local_gb, ..*req };
    if !cluster.machine_mut(placement.host).try_allocate(&host_req) {
        return false;
    }
    for (donor, gb) in &placement.loans {
        let loan = ResourceVector { memory_gb: *gb, ..ResourceVector::ZERO };
        if !cluster.machine_mut(*donor).try_allocate(&loan) {
            return false;
        }
    }
    true
}

/// Releases a previously applied placement.
pub fn release_scavenge(
    cluster: &mut Cluster,
    req: &ResourceVector,
    placement: &ScavengePlacement,
) {
    let host_req = ResourceVector { memory_gb: placement.local_gb, ..*req };
    cluster.machine_mut(placement.host).release(&host_req);
    for (donor, gb) in &placement.loans {
        let loan = ResourceVector { memory_gb: *gb, ..ResourceVector::ZERO };
        cluster.machine_mut(*donor).release(&loan);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_infra::cluster::ClusterId;
    use mcs_infra::machine::MachineSpec;

    fn cluster() -> Cluster {
        // 4 machines, 8 cores / 32 GiB each.
        Cluster::homogeneous(ClusterId(0), "scv", MachineSpec::commodity("std-8", 8.0, 32.0), 4)
    }

    #[test]
    fn oversized_memory_request_scavenges() {
        let c = cluster();
        // 48 GiB > any machine's 32; CPU fits anywhere.
        let req = ResourceVector::new(4.0, 48.0);
        let plan = plan_scavenge(&c, &req, &ScavengeConfig::default()).expect("should scavenge");
        assert_eq!(plan.local_gb, 32.0);
        assert!((plan.borrowed_gb() - 16.0).abs() < 1e-9);
        assert!((plan.remote_fraction - 16.0 / 48.0).abs() < 1e-9);
        assert!(plan.slowdown > 1.0 && plan.slowdown < 1.2);
    }

    #[test]
    fn local_fit_is_free() {
        let c = cluster();
        let req = ResourceVector::new(4.0, 16.0);
        let plan = plan_scavenge(&c, &req, &ScavengeConfig::default()).unwrap();
        assert!(plan.loans.is_empty());
        assert_eq!(plan.slowdown, 1.0);
    }

    #[test]
    fn max_remote_fraction_enforced() {
        let c = cluster();
        // Needs 80 GiB; max 50% remote means 40 local, but hosts have 32:
        // the CPU+min-local probe fails.
        let req = ResourceVector::new(1.0, 80.0);
        assert!(plan_scavenge(&c, &req, &ScavengeConfig::default()).is_none());
        // Relaxing the bound makes it plannable.
        let relaxed = ScavengeConfig { max_remote_fraction: 0.9, ..Default::default() };
        let plan = plan_scavenge(&c, &req, &relaxed).unwrap();
        assert!(plan.borrowed_gb() >= 48.0 - 1e-9);
    }

    #[test]
    fn donors_protected_by_lend_fraction() {
        let c = cluster();
        let config = ScavengeConfig { donor_lend_fraction: 0.25, ..Default::default() };
        let req = ResourceVector::new(1.0, 50.0);
        let plan = plan_scavenge(&c, &req, &config).unwrap();
        for (_, gb) in &plan.loans {
            assert!(*gb <= 32.0 * 0.25 + 1e-9, "loan {gb} exceeds donor cap");
        }
    }

    #[test]
    fn apply_and_release_round_trip() {
        let mut c = cluster();
        let req = ResourceVector::new(4.0, 48.0);
        let plan = plan_scavenge(&c, &req, &ScavengeConfig::default()).unwrap();
        assert!(apply_scavenge(&mut c, &req, &plan));
        // Host is fully memory-committed.
        assert!(c.machine(plan.host).available().memory_gb < 1e-9);
        release_scavenge(&mut c, &req, &plan);
        assert!((c.available().memory_gb - 128.0).abs() < 1e-9);
        assert!(c.available().cpu_cores == 32.0);
    }

    #[test]
    fn scavenging_admits_work_a_plain_scheduler_rejects() {
        // The headline claim of [118]: memory disaggregation turns "cannot
        // run" into "runs slightly slower".
        let c = cluster();
        let req = ResourceVector::new(2.0, 40.0);
        let plain_fits = c.machines().iter().any(|m| req.fits_in(&m.capacity()));
        assert!(!plain_fits, "no single machine fits 40 GiB");
        let plan = plan_scavenge(&c, &req, &ScavengeConfig::default()).unwrap();
        assert!(plan.slowdown < 1.1, "overhead stays small: {}", plan.slowdown);
    }

    #[test]
    fn impossible_when_cluster_lacks_total_memory() {
        let c = cluster(); // 128 GiB total
        let req = ResourceVector::new(1.0, 500.0);
        let relaxed = ScavengeConfig { max_remote_fraction: 0.99, ..Default::default() };
        assert!(plan_scavenge(&c, &req, &relaxed).is_none());
    }
}
