//! # mcs-rms — resource management and scheduling
//!
//! Principle P4 of the paper makes Resource Management & Scheduling "the key
//! building block without which MCS is not sustainable or often even
//! achievable". This crate implements the paper's *dual problem* of
//! scheduling (C7):
//!
//! - **allocation** — placing tasks on provisioned machines
//!   ([`allocation`], [`scheduler`]), with queue disciplines, EASY
//!   backfilling, failure-driven requeues, and checkpointing;
//! - **provisioning** — acquiring machines on the user's behalf
//!   ([`provisioning`]) and routing work across a federation of clusters
//!   ([`multicluster`]), including overload offloading (C10);
//! - **adaptation** — portfolio scheduling ([`portfolio`]): simulate the
//!   policy candidates at runtime and adopt the current winner (C6).
//!
//! ## Example
//! ```
//! use mcs_rms::prelude::*;
//! use mcs_infra::prelude::*;
//! use mcs_workload::prelude::*;
//! use mcs_simcore::prelude::*;
//!
//! let cluster = Cluster::homogeneous(
//!     ClusterId(0), "batch", MachineSpec::commodity("std-8", 8.0, 32.0), 4,
//! );
//! let mut generator = BatchWorkloadGenerator::new(BatchWorkloadConfig::default());
//! let mut rng = RngStream::new(1, "example");
//! let jobs = generator.generate(SimTime::from_secs(3_600), 50, &mut rng);
//! let mut scheduler = ClusterScheduler::new(cluster, SchedulerConfig::default(), 1);
//! let outcome = scheduler.run(jobs, SimTime::from_secs(100_000));
//! assert!(outcome.mean_utilization <= 1.0);
//! ```

pub mod allocation;
pub mod multicluster;
pub mod policy;
pub mod portfolio;
pub mod provisioning;
pub mod scavenge;
pub mod scheduler;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::allocation::AllocationPolicy;
    pub use crate::multicluster::{Federation, FederationOutcome, RoutingPolicy};
    pub use crate::policy::{
        GreedyReadyPolicy, HeftPolicy, LocalityFirstPolicy, QueuedTaskView, SchedulingPolicy,
    };
    pub use crate::portfolio::{default_portfolio, Objective, PortfolioSelector};
    pub use crate::scavenge::{
        apply_scavenge, plan_scavenge, release_scavenge, ScavengeConfig, ScavengePlacement,
    };
    pub use crate::provisioning::{
        plan_provisioning, BacklogDriven, ProvisioningObservation, ProvisioningPlan,
        ProvisioningPolicy, StaticProvisioning,
    };
    pub use crate::scheduler::{
        ClusterScheduler, PolicySelector, QueuePolicy, RmsMsg, ScheduleOutcome, SchedulerActor,
        SchedulerConfig, SchedulerView,
    };
}
