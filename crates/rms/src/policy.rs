//! The unified scheduling-policy surface.
//!
//! Historically the scheduler's policy space was two ad-hoc knobs — a
//! [`QueuePolicy`] match inside `sort_queue` and an
//! [`AllocationPolicy`](crate::allocation::AllocationPolicy) call inside
//! `try_place` — which DAG-aware disciplines (HEFT ranks, data locality)
//! cannot express: they need to order by precedence-derived priority and
//! place by where a task's inputs live. [`SchedulingPolicy`] unifies both
//! halves behind one trait: *compare* decides queue order, *select_machine*
//! decides placement, and *backfill* gates EASY backfilling. The legacy
//! [`SchedulerConfig`] implements the trait by delegating to its knobs, so
//! every existing configuration is already a policy object; the DAG layer
//! (`mcs-dag`) and portfolio selection work purely in terms of trait
//! objects.

use crate::allocation::AllocationPolicy;
use crate::scheduler::{QueuePolicy, SchedulerConfig};
use mcs_infra::cluster::Cluster;
use mcs_infra::machine::MachineId;
use mcs_infra::resource::ResourceVector;
use mcs_simcore::rng::RngStream;
use mcs_simcore::time::{SimDuration, SimTime};
use mcs_workload::task::TaskId;
use std::cmp::Ordering;

/// A queued task as a policy sees it: enough to order the queue and pick a
/// machine, nothing more. `rank` is the upward rank (critical-path length
/// from this task to a sink, in core-seconds or seconds depending on the
/// producer) and `data_home` the node holding the task's largest input —
/// both zero/`None` for independent batch tasks, populated by DAG drivers.
#[derive(Debug, Clone, Copy)]
pub struct QueuedTaskView<'a> {
    /// Stable task identity, the universal tie-breaker.
    pub id: TaskId,
    /// Submit time of the owning job.
    pub submit: SimTime,
    /// When the task became dependency-free (joined the queue).
    pub ready_at: SimTime,
    /// Remaining demand in core-seconds.
    pub demand_left: f64,
    /// Resource request.
    pub req: &'a ResourceVector,
    /// Relative deadline, when the task has one.
    pub deadline: Option<SimDuration>,
    /// Upward rank (0 for tasks outside any DAG).
    pub rank: f64,
    /// Node holding the task's dominant input data, when known.
    pub data_home: Option<u32>,
}

/// One scheduling discipline: queue order plus machine selection.
///
/// Implementations must be deterministic — equal inputs, equal outputs —
/// and must break compare ties on `id` so queue order never depends on
/// insertion history.
pub trait SchedulingPolicy {
    /// Short stable name for reports and traces.
    fn name(&self) -> &'static str;

    /// Queue ordering: `Less` means `a` runs first.
    fn compare(&self, a: &QueuedTaskView<'_>, b: &QueuedTaskView<'_>) -> Ordering;

    /// Picks a machine for `task`, or `None` when nothing feasible exists.
    fn select_machine(
        &self,
        cluster: &Cluster,
        task: &QueuedTaskView<'_>,
        rng: &mut RngStream,
    ) -> Option<MachineId>;

    /// Whether tasks behind a blocked head may EASY-backfill.
    fn backfill(&self) -> bool;
}

/// The legacy knob pair is itself a policy: queue discipline orders, the
/// allocation policy places. This is the bridge that keeps every existing
/// `ScenarioConfig` field working unchanged.
impl SchedulingPolicy for SchedulerConfig {
    fn name(&self) -> &'static str {
        self.queue.name()
    }

    fn compare(&self, a: &QueuedTaskView<'_>, b: &QueuedTaskView<'_>) -> Ordering {
        match self.queue {
            QueuePolicy::Fcfs => {
                (a.submit, a.ready_at, a.id).cmp(&(b.submit, b.ready_at, b.id))
            }
            QueuePolicy::Sjf => a
                .demand_left
                .partial_cmp(&b.demand_left)
                .unwrap_or(Ordering::Equal)
                .then(a.id.cmp(&b.id)),
            QueuePolicy::Ljf => b
                .demand_left
                .partial_cmp(&a.demand_left)
                .unwrap_or(Ordering::Equal)
                .then(a.id.cmp(&b.id)),
            QueuePolicy::EarliestDeadline => {
                let abs = |v: &QueuedTaskView<'_>| {
                    v.deadline.map(|d| v.submit + d).unwrap_or(SimTime::MAX)
                };
                (abs(a), a.id).cmp(&(abs(b), b.id))
            }
        }
    }

    fn select_machine(
        &self,
        cluster: &Cluster,
        task: &QueuedTaskView<'_>,
        rng: &mut RngStream,
    ) -> Option<MachineId> {
        self.allocation.select(cluster, task.req, rng)
    }

    fn backfill(&self) -> bool {
        self.backfill
    }
}

/// HEFT-like list scheduling: highest upward rank first (critical-path
/// tasks lead), placed on the machine with the highest speed-up for the
/// request. No backfilling — rank order *is* the plan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeftPolicy;

impl SchedulingPolicy for HeftPolicy {
    fn name(&self) -> &'static str {
        "heft"
    }

    fn compare(&self, a: &QueuedTaskView<'_>, b: &QueuedTaskView<'_>) -> Ordering {
        b.rank
            .partial_cmp(&a.rank)
            .unwrap_or(Ordering::Equal)
            .then(a.id.cmp(&b.id))
    }

    fn select_machine(
        &self,
        cluster: &Cluster,
        task: &QueuedTaskView<'_>,
        rng: &mut RngStream,
    ) -> Option<MachineId> {
        AllocationPolicy::FastestFirst.select(cluster, task.req, rng)
    }

    fn backfill(&self) -> bool {
        false
    }
}

/// Greedy ready-task scheduling: whichever task became ready first runs
/// first, on the first machine that fits. The cheap baseline every DAG
/// scheduler must beat.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GreedyReadyPolicy;

impl SchedulingPolicy for GreedyReadyPolicy {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn compare(&self, a: &QueuedTaskView<'_>, b: &QueuedTaskView<'_>) -> Ordering {
        (a.ready_at, a.id).cmp(&(b.ready_at, b.id))
    }

    fn select_machine(
        &self,
        cluster: &Cluster,
        task: &QueuedTaskView<'_>,
        rng: &mut RngStream,
    ) -> Option<MachineId> {
        AllocationPolicy::FirstFit.select(cluster, task.req, rng)
    }

    fn backfill(&self) -> bool {
        true
    }
}

/// Locality-first scheduling: run a task where its input data already sits
/// (same node, else same rack), falling back to best-fit when the home
/// neighbourhood is full. Queue order is HEFT rank so the critical path
/// still leads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalityFirstPolicy {
    /// Rack width of the fabric: nodes `[r*n, (r+1)*n)` share a rack.
    pub nodes_per_rack: u32,
}

impl LocalityFirstPolicy {
    fn rack_of(&self, node: u32) -> u32 {
        node / self.nodes_per_rack.max(1)
    }
}

impl SchedulingPolicy for LocalityFirstPolicy {
    fn name(&self) -> &'static str {
        "locality"
    }

    fn compare(&self, a: &QueuedTaskView<'_>, b: &QueuedTaskView<'_>) -> Ordering {
        HeftPolicy.compare(a, b)
    }

    fn select_machine(
        &self,
        cluster: &Cluster,
        task: &QueuedTaskView<'_>,
        rng: &mut RngStream,
    ) -> Option<MachineId> {
        if let Some(home) = task.data_home {
            let mid = MachineId(home);
            if (home as usize) < cluster.len()
                && cluster
                    .feasible_machines(task.req)
                    .any(|m| m.id() == mid)
            {
                return Some(mid);
            }
            // Same rack, tightest fit wins.
            let rack = self.rack_of(home);
            if let Some(m) = cluster
                .feasible_machines(task.req)
                .filter(|m| self.rack_of(m.id().0) == rack)
                .min_by(|a, b| {
                    crate::allocation::remaining_after(a, task.req)
                        .partial_cmp(&crate::allocation::remaining_after(b, task.req))
                        .unwrap_or(Ordering::Equal)
                })
            {
                return Some(m.id());
            }
        }
        AllocationPolicy::BestFit.select(cluster, task.req, rng)
    }

    fn backfill(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_infra::cluster::ClusterId;
    use mcs_infra::machine::MachineSpec;

    fn view(id: u64, demand: f64, rank: f64, req: &ResourceVector) -> QueuedTaskView<'_> {
        QueuedTaskView {
            id: TaskId(id),
            submit: SimTime::ZERO,
            ready_at: SimTime::from_secs(id),
            demand_left: demand,
            req,
            deadline: None,
            rank,
            data_home: None,
        }
    }

    #[test]
    fn legacy_config_orders_like_its_queue_policy() {
        let req = ResourceVector::new(1.0, 1.0);
        let short = view(1, 5.0, 0.0, &req);
        let long = view(0, 50.0, 0.0, &req);
        let sjf = SchedulerConfig { queue: QueuePolicy::Sjf, ..Default::default() };
        let ljf = SchedulerConfig { queue: QueuePolicy::Ljf, ..Default::default() };
        assert_eq!(sjf.compare(&short, &long), Ordering::Less);
        assert_eq!(ljf.compare(&short, &long), Ordering::Greater);
        // FCFS falls back to id order at equal submit/ready instants.
        let fcfs = SchedulerConfig::default();
        let a = QueuedTaskView { ready_at: SimTime::ZERO, ..short };
        let b = QueuedTaskView { ready_at: SimTime::ZERO, ..long };
        assert_eq!(fcfs.compare(&a, &b), Ordering::Greater); // id 1 after id 0
    }

    #[test]
    fn heft_orders_by_rank_descending() {
        let req = ResourceVector::new(1.0, 1.0);
        let critical = view(5, 10.0, 900.0, &req);
        let leaf = view(1, 10.0, 30.0, &req);
        assert_eq!(HeftPolicy.compare(&critical, &leaf), Ordering::Less);
        // Equal ranks break on ascending id.
        let twin = view(2, 10.0, 30.0, &req);
        assert_eq!(HeftPolicy.compare(&leaf, &twin), Ordering::Less);
    }

    #[test]
    fn greedy_orders_by_ready_time() {
        let req = ResourceVector::new(1.0, 1.0);
        let early = view(3, 10.0, 0.0, &req); // ready_at = 3 s
        let late = view(7, 1.0, 99.0, &req); // ready_at = 7 s
        assert_eq!(GreedyReadyPolicy.compare(&early, &late), Ordering::Less);
    }

    #[test]
    fn locality_prefers_home_then_rack_then_anywhere() {
        // 4 machines, 2 per rack; home node 2 (rack 1).
        let mut cluster = Cluster::homogeneous(
            ClusterId(0),
            "c",
            MachineSpec::commodity("std-4", 4.0, 16.0),
            4,
        );
        let policy = LocalityFirstPolicy { nodes_per_rack: 2 };
        let req = ResourceVector::new(2.0, 2.0);
        let mut rng = RngStream::new(1, "test");
        let task = QueuedTaskView { data_home: Some(2), ..view(0, 10.0, 0.0, &req) };
        assert_eq!(policy.select_machine(&cluster, &task, &mut rng), Some(MachineId(2)));
        // Fill the home machine: same-rack neighbour (3) wins.
        cluster.machine_mut(MachineId(2)).try_allocate(&ResourceVector::new(4.0, 4.0));
        assert_eq!(policy.select_machine(&cluster, &task, &mut rng), Some(MachineId(3)));
        // Fill the rack: falls back to best-fit elsewhere.
        cluster.machine_mut(MachineId(3)).try_allocate(&ResourceVector::new(4.0, 4.0));
        let chosen = policy.select_machine(&cluster, &task, &mut rng).unwrap();
        assert!(chosen == MachineId(0) || chosen == MachineId(1));
    }

    #[test]
    fn policy_names_are_stable() {
        assert_eq!(HeftPolicy.name(), "heft");
        assert_eq!(GreedyReadyPolicy.name(), "greedy");
        assert_eq!(LocalityFirstPolicy { nodes_per_rack: 8 }.name(), "locality");
        assert_eq!(SchedulingPolicy::name(&SchedulerConfig::default()), "fcfs");
    }
}
