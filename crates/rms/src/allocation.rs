//! Allocation policies: which machine gets the task.
//!
//! The second half of the paper's *dual problem* of scheduling (C7) is
//! allocating tasks to already-provisioned resources. These policies cover
//! the classic spectrum — first/best/worst-fit bin packing, random, least
//! loaded — plus the heterogeneity-aware fastest-machine policy that C4
//! motivates.

use mcs_infra::cluster::Cluster;
use mcs_infra::machine::MachineId;
use mcs_infra::resource::ResourceVector;
use mcs_simcore::rng::RngStream;

/// The machine-selection policies available to the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllocationPolicy {
    /// First machine (by id) that fits.
    FirstFit,
    /// Feasible machine with the least remaining capacity (tight packing).
    BestFit,
    /// Feasible machine with the most remaining capacity (load spreading).
    WorstFit,
    /// Uniformly random feasible machine.
    Random,
    /// Feasible machine with the lowest dominant-share utilization.
    LeastLoaded,
    /// Feasible machine with the highest speed-up for this request
    /// (heterogeneity-aware, C4).
    FastestFirst,
}

impl AllocationPolicy {
    /// All policies, for sweeps and portfolio construction.
    pub const ALL: [AllocationPolicy; 6] = [
        AllocationPolicy::FirstFit,
        AllocationPolicy::BestFit,
        AllocationPolicy::WorstFit,
        AllocationPolicy::Random,
        AllocationPolicy::LeastLoaded,
        AllocationPolicy::FastestFirst,
    ];

    /// A short stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            AllocationPolicy::FirstFit => "first-fit",
            AllocationPolicy::BestFit => "best-fit",
            AllocationPolicy::WorstFit => "worst-fit",
            AllocationPolicy::Random => "random",
            AllocationPolicy::LeastLoaded => "least-loaded",
            AllocationPolicy::FastestFirst => "fastest-first",
        }
    }

    /// Selects a machine for `req` in `cluster`, or `None` when nothing fits.
    pub fn select(
        &self,
        cluster: &Cluster,
        req: &ResourceVector,
        rng: &mut RngStream,
    ) -> Option<MachineId> {
        let feasible: Vec<&mcs_infra::machine::Machine> =
            cluster.feasible_machines(req).collect();
        if feasible.is_empty() {
            return None;
        }
        let chosen = match self {
            AllocationPolicy::FirstFit => feasible[0],
            AllocationPolicy::BestFit => feasible
                .iter()
                .min_by(|a, b| {
                    let ra = remaining_after(a, req);
                    let rb = remaining_after(b, req);
                    ra.partial_cmp(&rb).unwrap_or(std::cmp::Ordering::Equal)
                })
                .unwrap(),
            AllocationPolicy::WorstFit => feasible
                .iter()
                .max_by(|a, b| {
                    let ra = remaining_after(a, req);
                    let rb = remaining_after(b, req);
                    ra.partial_cmp(&rb).unwrap_or(std::cmp::Ordering::Equal)
                })
                .unwrap(),
            AllocationPolicy::Random => feasible[rng.uniform_usize(feasible.len())],
            AllocationPolicy::LeastLoaded => feasible
                .iter()
                .min_by(|a, b| {
                    a.utilization()
                        .partial_cmp(&b.utilization())
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .unwrap(),
            AllocationPolicy::FastestFirst => feasible
                .iter()
                .max_by(|a, b| {
                    a.speedup_for(req)
                        .partial_cmp(&b.speedup_for(req))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .unwrap(),
        };
        Some(chosen.id())
    }
}

/// Scalar "how much room is left after placing req": the sum of normalized
/// residuals over the dimensions the request actually uses, lower = tighter
/// fit. Ignoring unrequested dimensions keeps a GPU box from looking "empty"
/// to a CPU-only task.
pub(crate) fn remaining_after(m: &mcs_infra::machine::Machine, req: &ResourceVector) -> f64 {
    let avail = m.available();
    let cap = m.capacity();
    let resid = avail - *req;
    let norm = |want: f64, v: f64, c: f64| if want > 0.0 && c > 0.0 { v / c } else { 0.0 };
    norm(req.cpu_cores, resid.cpu_cores, cap.cpu_cores)
        + norm(req.memory_gb, resid.memory_gb, cap.memory_gb)
        + norm(req.accelerators, resid.accelerators, cap.accelerators)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_infra::cluster::ClusterId;
    use mcs_infra::machine::MachineSpec;

    fn mixed_cluster() -> Cluster {
        let mut c = Cluster::new(ClusterId(0), "mixed");
        c.add_machine(MachineSpec::commodity("small", 4.0, 16.0)); // m0
        c.add_machine(MachineSpec::commodity("big", 16.0, 64.0)); // m1
        c.add_machine(MachineSpec::gpu("gpu", 8.0, 32.0, 2.0)); // m2
        c
    }

    #[test]
    fn first_fit_takes_lowest_id() {
        let c = mixed_cluster();
        let mut rng = RngStream::new(1, "alloc");
        let id = AllocationPolicy::FirstFit
            .select(&c, &ResourceVector::new(2.0, 4.0), &mut rng)
            .unwrap();
        assert_eq!(id, MachineId(0));
    }

    #[test]
    fn best_fit_packs_tightly() {
        let c = mixed_cluster();
        let mut rng = RngStream::new(1, "alloc");
        // 4 cores fits exactly on the small machine: best fit.
        let id = AllocationPolicy::BestFit
            .select(&c, &ResourceVector::new(4.0, 16.0), &mut rng)
            .unwrap();
        assert_eq!(id, MachineId(0));
    }

    #[test]
    fn worst_fit_spreads() {
        let c = mixed_cluster();
        let mut rng = RngStream::new(1, "alloc");
        let id = AllocationPolicy::WorstFit
            .select(&c, &ResourceVector::new(1.0, 1.0), &mut rng)
            .unwrap();
        assert_eq!(id, MachineId(1)); // the big machine has most residual
    }

    #[test]
    fn least_loaded_avoids_busy_machines() {
        let mut c = mixed_cluster();
        c.machine_mut(MachineId(0)).try_allocate(&ResourceVector::new(3.0, 1.0));
        c.machine_mut(MachineId(1)).try_allocate(&ResourceVector::new(2.0, 1.0));
        let mut rng = RngStream::new(1, "alloc");
        let id = AllocationPolicy::LeastLoaded
            .select(&c, &ResourceVector::new(1.0, 1.0), &mut rng)
            .unwrap();
        assert_eq!(id, MachineId(2)); // empty GPU box
    }

    #[test]
    fn fastest_first_prefers_accelerators_for_accel_work() {
        let c = mixed_cluster();
        let mut rng = RngStream::new(1, "alloc");
        let req = ResourceVector::new(1.0, 1.0).with_accelerators(1.0);
        let id = AllocationPolicy::FastestFirst.select(&c, &req, &mut rng).unwrap();
        assert_eq!(id, MachineId(2));
    }

    #[test]
    fn none_when_nothing_fits() {
        let c = mixed_cluster();
        let mut rng = RngStream::new(1, "alloc");
        assert!(AllocationPolicy::FirstFit
            .select(&c, &ResourceVector::new(64.0, 1.0), &mut rng)
            .is_none());
    }

    #[test]
    fn random_is_feasible_and_varied() {
        let c = mixed_cluster();
        let mut rng = RngStream::new(2, "alloc");
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let id = AllocationPolicy::Random
                .select(&c, &ResourceVector::new(1.0, 1.0), &mut rng)
                .unwrap();
            seen.insert(id);
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn all_policies_have_names() {
        for p in AllocationPolicy::ALL {
            assert!(!p.name().is_empty());
        }
    }
}
