//! The cluster scheduler: an event-driven allocation engine.
//!
//! Implements the allocation half of the paper's dual scheduling problem
//! (C7): jobs arrive over virtual time, their tasks wait for dependencies,
//! queue under a [`QueuePolicy`], are placed by an
//! `AllocationPolicy`, optionally
//! backfilled (EASY-style, with clairvoyant runtimes), and may be killed and
//! requeued by injected machine failures.

use crate::allocation::AllocationPolicy;
use mcs_failure::model::Outage;
use mcs_infra::cluster::Cluster;
use mcs_infra::machine::MachineId;
use mcs_infra::resource::ResourceVector;
use mcs_simcore::metrics::TimeWeighted;
use mcs_simcore::rng::RngStream;
use mcs_simcore::time::{SimDuration, SimTime};
use mcs_workload::task::{Job, TaskCompletion, TaskId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Queue-ordering disciplines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueuePolicy {
    /// First come, first served (by job submit time).
    Fcfs,
    /// Shortest job first (by task demand).
    Sjf,
    /// Largest job first (by task demand).
    Ljf,
    /// Earliest deadline first; tasks without deadlines sort last.
    EarliestDeadline,
}

impl QueuePolicy {
    /// All disciplines, for sweeps.
    pub const ALL: [QueuePolicy; 4] = [
        QueuePolicy::Fcfs,
        QueuePolicy::Sjf,
        QueuePolicy::Ljf,
        QueuePolicy::EarliestDeadline,
    ];

    /// A short stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            QueuePolicy::Fcfs => "fcfs",
            QueuePolicy::Sjf => "sjf",
            QueuePolicy::Ljf => "ljf",
            QueuePolicy::EarliestDeadline => "edf",
        }
    }
}

/// Scheduler configuration: one point in the policy space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedulerConfig {
    /// Queue discipline.
    pub queue: QueuePolicy,
    /// Machine-selection policy.
    pub allocation: AllocationPolicy,
    /// EASY backfilling: tasks behind a blocked queue head may run early if
    /// (clairvoyantly) they finish before the head's earliest start.
    pub backfill: bool,
    /// Fraction of work preserved when a task is killed by a failure and
    /// requeued (0 = restart from scratch, 1 = perfect checkpointing).
    pub checkpoint_factor: f64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            queue: QueuePolicy::Fcfs,
            allocation: AllocationPolicy::BestFit,
            backfill: true,
            checkpoint_factor: 0.0,
        }
    }
}

/// What the scheduler measured over one run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleOutcome {
    /// Per-task completion records.
    pub completions: Vec<TaskCompletion>,
    /// Finish of the last task (virtual time).
    pub makespan: SimDuration,
    /// Time-averaged cluster utilization (dominant share) in `[0, 1]`.
    pub mean_utilization: f64,
    /// Time-averaged queue length.
    pub mean_queue_length: f64,
    /// Peak queue length.
    pub peak_queue_length: f64,
    /// Tasks whose deadline was missed.
    pub deadline_misses: usize,
    /// Task kills caused by machine failures (each leads to a requeue).
    pub failure_requeues: usize,
    /// Tasks rejected because no machine in the cluster can ever satisfy
    /// their resource request (admission control).
    pub rejected: usize,
    /// Tasks still unfinished when the run ended (excluding rejected ones).
    pub unfinished: usize,
}

impl ScheduleOutcome {
    /// Mean bounded slowdown over completed tasks.
    pub fn mean_slowdown(&self) -> f64 {
        if self.completions.is_empty() {
            return 0.0;
        }
        self.completions.iter().map(TaskCompletion::bounded_slowdown).sum::<f64>()
            / self.completions.len() as f64
    }

    /// Mean response time in seconds over completed tasks.
    pub fn mean_response_secs(&self) -> f64 {
        if self.completions.is_empty() {
            return 0.0;
        }
        self.completions
            .iter()
            .map(|c| c.response_time().as_secs_f64())
            .sum::<f64>()
            / self.completions.len() as f64
    }
}

#[derive(Debug, Clone)]
struct PendingTask {
    task_idx: usize,
    ready_at: SimTime,
}

#[derive(Debug, Clone)]
struct RunningTask {
    machine: MachineId,
    req: ResourceVector,
    started: SimTime,
    ends: SimTime,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    JobArrival(usize),
    TaskFinish { task_idx: usize, generation: u32 },
    MachineFail(u32),
    MachineRepair(u32),
    PolicyTick,
}

/// A read-only snapshot handed to a [`PolicySelector`] at each decision tick.
#[derive(Debug)]
pub struct SchedulerView<'a> {
    /// Current virtual time.
    pub now: SimTime,
    /// `(demand_left, request)` of every queued-but-not-running task.
    pub queued: Vec<(f64, ResourceVector)>,
    /// The cluster, with live allocation state.
    pub cluster: &'a Cluster,
    /// Number of running tasks.
    pub running: usize,
    /// The configuration currently in force.
    pub current: SchedulerConfig,
}

/// Chooses the scheduler configuration at runtime (the paper's portfolio
/// scheduling, C6 approach iv: keep a portfolio of policies and switch to
/// whichever currently serves the workload best).
pub trait PolicySelector {
    /// Returns the configuration to use until the next tick.
    fn select(&mut self, view: &SchedulerView<'_>) -> SchedulerConfig;
}

#[derive(Debug, Clone)]
struct FlatTask {
    id: TaskId,
    job_idx: usize,
    demand_left: f64,
    req: ResourceVector,
    deps_left: usize,
    children: Vec<usize>,
    deadline: Option<SimDuration>,
    submit: SimTime,
    done: bool,
    feasible: bool,
}

/// An event-driven single-cluster scheduler.
///
/// # Examples
/// ```
/// use mcs_rms::scheduler::{ClusterScheduler, SchedulerConfig};
/// use mcs_infra::prelude::*;
/// use mcs_workload::prelude::*;
/// use mcs_simcore::prelude::*;
///
/// let cluster = Cluster::homogeneous(
///     ClusterId(0), "c", MachineSpec::commodity("std-4", 4.0, 16.0), 4,
/// );
/// let job = Job {
///     id: JobId(0), user: UserId(0), kind: JobKind::BagOfTasks,
///     submit: SimTime::ZERO,
///     tasks: vec![Task::independent(
///         TaskId(0), JobId(0), 40.0,
///         mcs_infra::resource::ResourceVector::new(4.0, 4.0),
///     )],
/// };
/// let mut sched = ClusterScheduler::new(cluster, SchedulerConfig::default(), 42);
/// let outcome = sched.run(vec![job], SimTime::from_secs(3_600));
/// assert_eq!(outcome.completions.len(), 1);
/// assert_eq!(outcome.makespan, SimDuration::from_secs(10));
/// ```
#[derive(Debug)]
pub struct ClusterScheduler {
    cluster: Cluster,
    config: SchedulerConfig,
    rng: RngStream,
    outages: Vec<Outage>,
}

impl ClusterScheduler {
    /// Creates a scheduler over a cluster.
    pub fn new(cluster: Cluster, config: SchedulerConfig, seed: u64) -> Self {
        ClusterScheduler { cluster, config, rng: RngStream::new(seed, "scheduler"), outages: Vec::new() }
    }

    /// Injects an outage schedule (machines indexed within the cluster).
    pub fn with_outages(mut self, outages: Vec<Outage>) -> Self {
        self.outages = outages;
        self
    }

    /// The cluster after the run (or before, if not yet run).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Runs the workload to completion or until `horizon`, whichever comes
    /// first, and returns the measured outcome.
    pub fn run(&mut self, jobs: Vec<Job>, horizon: SimTime) -> ScheduleOutcome {
        self.run_inner(jobs, horizon, None)
    }

    /// Like [`ClusterScheduler::run`], but consults `selector` every
    /// `interval` of virtual time and adopts whatever configuration it
    /// returns — the runtime half of portfolio scheduling.
    pub fn run_adaptive(
        &mut self,
        jobs: Vec<Job>,
        horizon: SimTime,
        selector: &mut dyn PolicySelector,
        interval: SimDuration,
    ) -> ScheduleOutcome {
        self.run_inner(jobs, horizon, Some((selector, interval)))
    }

    fn run_inner(
        &mut self,
        jobs: Vec<Job>,
        horizon: SimTime,
        mut adaptive: Option<(&mut dyn PolicySelector, SimDuration)>,
    ) -> ScheduleOutcome {
        // Flatten tasks, index dependencies.
        let mut flat: Vec<FlatTask> = Vec::new();
        let mut index: HashMap<TaskId, usize> = HashMap::new();
        for (j, job) in jobs.iter().enumerate() {
            for t in &job.tasks {
                let idx = flat.len();
                index.insert(t.id, idx);
                // Admission control, decided once per task: no machine in
                // this cluster can ever host a request larger than its
                // total capacity (machine capacity is static).
                let feasible =
                    self.cluster.machines().iter().any(|m| t.req.fits_in(&m.capacity()));
                flat.push(FlatTask {
                    id: t.id,
                    job_idx: j,
                    demand_left: t.demand_core_seconds,
                    req: t.req,
                    deps_left: 0,
                    children: Vec::new(),
                    deadline: t.deadline,
                    submit: job.submit,
                    done: false,
                    feasible,
                });
            }
        }
        for job in &jobs {
            for t in &job.tasks {
                let ti = index[&t.id];
                for d in &t.dependencies {
                    let di = *index.get(d).expect("dependency must be within the workload");
                    flat[di].children.push(ti);
                    flat[ti].deps_left += 1;
                }
            }
        }

        let mut events: BinaryHeap<Reverse<(SimTime, u64, Event)>> = BinaryHeap::new();
        let mut seq: u64 = 0;
        let push = |h: &mut BinaryHeap<Reverse<(SimTime, u64, Event)>>,
                        seq: &mut u64,
                        at: SimTime,
                        ev: Event| {
            h.push(Reverse((at, *seq, ev)));
            *seq += 1;
        };
        for (j, job) in jobs.iter().enumerate() {
            push(&mut events, &mut seq, job.submit, Event::JobArrival(j));
        }
        for o in &self.outages {
            if o.fail_at < horizon {
                push(&mut events, &mut seq, o.fail_at, Event::MachineFail(o.machine as u32));
                push(&mut events, &mut seq, o.repair_at.min(horizon), Event::MachineRepair(o.machine as u32));
            }
        }
        if let Some((_, interval)) = &adaptive {
            push(&mut events, &mut seq, SimTime::ZERO + *interval, Event::PolicyTick);
        }

        let mut queue: Vec<PendingTask> = Vec::new();
        let mut queue_dirty = false;
        let mut running: HashMap<usize, RunningTask> = HashMap::new();
        let mut on_machine: HashMap<u32, HashSet<usize>> = HashMap::new();
        let mut generation: Vec<u32> = vec![0; flat.len()];
        let mut completions: Vec<TaskCompletion> = Vec::new();
        let mut failure_requeues = 0usize;
        let mut deadline_misses = 0usize;
        let mut rejected_tasks: HashSet<usize> = HashSet::new();

        let core_capacity = self.cluster.capacity().cpu_cores.max(1e-9);
        let mut util = TimeWeighted::new(SimTime::ZERO, 0.0);
        let mut used_cores = 0.0f64;
        let mut qlen = TimeWeighted::new(SimTime::ZERO, 0.0);
        let mut last_finish = SimTime::ZERO;

        while let Some(Reverse((at, _, ev))) = events.pop() {
            if at > horizon {
                break;
            }
            let now = at;
            match ev {
                Event::JobArrival(j) => {
                    for t in &jobs[j].tasks {
                        let ti = index[&t.id];
                        if flat[ti].deps_left == 0 {
                            if flat[ti].feasible {
                                queue.push(PendingTask { task_idx: ti, ready_at: now });
                                queue_dirty = true;
                            } else {
                                rejected_tasks.insert(ti);
                            }
                        }
                    }
                }
                Event::TaskFinish { task_idx, generation: g } => {
                    if generation[task_idx] != g {
                        continue; // stale: the task was killed and requeued
                    }
                    let Some(rt) = running.remove(&task_idx) else { continue };
                    on_machine.entry(rt.machine.0).or_default().remove(&task_idx);
                    self.cluster.machine_mut(rt.machine).release(&rt.req);
                    used_cores -= rt.req.cpu_cores;
                    util.set(now, used_cores / core_capacity);
                    let ft = &mut flat[task_idx];
                    ft.done = true;
                    ft.demand_left = 0.0;
                    last_finish = last_finish.max(now);
                    let comp = TaskCompletion {
                        task: ft.id,
                        job: jobs[ft.job_idx].id,
                        submit: ft.submit,
                        start: rt.started,
                        finish: now,
                    };
                    if let Some(dl) = ft.deadline {
                        if comp.response_time() > dl {
                            deadline_misses += 1;
                        }
                    }
                    completions.push(comp);
                    let children = flat[task_idx].children.clone();
                    for c in children {
                        flat[c].deps_left -= 1;
                        if flat[c].deps_left == 0 && !flat[c].done {
                            if flat[c].feasible {
                                queue.push(PendingTask { task_idx: c, ready_at: now });
                                queue_dirty = true;
                            } else {
                                rejected_tasks.insert(c);
                            }
                        }
                    }
                }
                Event::MachineFail(m) => {
                    let mid = MachineId(m);
                    if (mid.0 as usize) < self.cluster.len() {
                        self.cluster.machine_mut(mid).fail();
                        // Kill and requeue everything that was running there.
                        if let Some(victims) = on_machine.remove(&m) {
                            for ti in victims {
                                if let Some(rt) = running.remove(&ti) {
                                    used_cores -= rt.req.cpu_cores;
                                    failure_requeues += 1;
                                    generation[ti] += 1;
                                    // Keep checkpointed progress.
                                    let progressed = (now - rt.started).as_secs_f64()
                                        * rt.req.cpu_cores
                                        * self.config.checkpoint_factor;
                                    flat[ti].demand_left =
                                        (flat[ti].demand_left - progressed).max(0.01);
                                    queue.push(PendingTask { task_idx: ti, ready_at: now });
                                    queue_dirty = true;
                                }
                            }
                            util.set(now, used_cores / core_capacity);
                        }
                    }
                }
                Event::MachineRepair(m) => {
                    let mid = MachineId(m);
                    if (mid.0 as usize) < self.cluster.len() {
                        self.cluster.machine_mut(mid).repair();
                    }
                }
                Event::PolicyTick => {
                    if let Some((selector, interval)) = &mut adaptive {
                        let view = SchedulerView {
                            now,
                            queued: queue
                                .iter()
                                .map(|p| (flat[p.task_idx].demand_left, flat[p.task_idx].req))
                                .collect(),
                            cluster: &self.cluster,
                            running: running.len(),
                            current: self.config,
                        };
                        let new_config = selector.select(&view);
                        if new_config != self.config {
                            self.config = new_config;
                            queue_dirty = true;
                        }
                        let next = now + *interval;
                        if next <= horizon {
                            events.push(Reverse((next, seq, Event::PolicyTick)));
                            seq += 1;
                        }
                    }
                }
            }

            // Dispatch pass.
            self.dispatch(
                now,
                &mut queue,
                &mut queue_dirty,
                &mut flat,
                &mut running,
                &mut on_machine,
                &mut generation,
                &mut events,
                &mut seq,
                &mut used_cores,
                core_capacity,
                &mut util,
            );
            qlen.set(now, queue.len() as f64);
        }

        let end = last_finish;
        let unfinished = flat
            .iter()
            .enumerate()
            .filter(|(i, t)| !t.done && !rejected_tasks.contains(i))
            .count();
        ScheduleOutcome {
            makespan: end.saturating_since(SimTime::ZERO),
            mean_utilization: util.average_until(end.max(SimTime::from_nanos(1))),
            mean_queue_length: qlen.average_until(end.max(SimTime::from_nanos(1))),
            peak_queue_length: qlen.peak(),
            deadline_misses,
            failure_requeues,
            rejected: rejected_tasks.len(),
            unfinished,
            completions,
        }
    }

    #[allow(clippy::too_many_arguments)]
    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        &mut self,
        now: SimTime,
        queue: &mut Vec<PendingTask>,
        queue_dirty: &mut bool,
        flat: &mut [FlatTask],
        running: &mut HashMap<usize, RunningTask>,
        on_machine: &mut HashMap<u32, HashSet<usize>>,
        generation: &mut [u32],
        events: &mut BinaryHeap<Reverse<(SimTime, u64, Event)>>,
        seq: &mut u64,
        used_cores: &mut f64,
        core_capacity: f64,
        util: &mut TimeWeighted,
    ) {
        if *queue_dirty {
            self.sort_queue(queue, flat);
            *queue_dirty = false;
        }
        let mut i = 0;
        let mut head_blocked = false;
        let mut shadow: Option<SimTime> = None;
        while i < queue.len() {
            let ti = queue[i].task_idx;
            let req = flat[ti].req;
            if head_blocked {
                if !self.config.backfill {
                    break;
                }
                // EASY backfill: only tasks that (clairvoyantly) finish before
                // the head's earliest possible start may jump the queue.
                let Some(shadow_t) = shadow else { break };
                let placed = self.try_place(
                    now, ti, flat, running, on_machine, generation, events, seq,
                    Some(shadow_t),
                );
                if placed {
                    *used_cores += req.cpu_cores;
                    util.set(now, *used_cores / core_capacity);
                    queue.remove(i);
                } else {
                    i += 1;
                }
                continue;
            }
            let placed = self.try_place(
                now, ti, flat, running, on_machine, generation, events, seq, None,
            );
            if placed {
                *used_cores += req.cpu_cores;
                util.set(now, *used_cores / core_capacity);
                queue.remove(i);
            } else {
                head_blocked = true;
                shadow = self.shadow_time(now, &req, running);
                i += 1;
            }
        }
    }

    /// Earliest instant at which `req` could start, assuming running tasks
    /// end as predicted and nothing new arrives: replay releases in end
    /// order on a copy of the availability state.
    fn shadow_time(
        &self,
        now: SimTime,
        req: &ResourceVector,
        running: &HashMap<usize, RunningTask>,
    ) -> Option<SimTime> {
        let mut avail: Vec<ResourceVector> =
            self.cluster.machines().iter().map(|m| m.available()).collect();
        if avail.iter().any(|a| req.fits_in(a)) {
            return Some(now);
        }
        let mut frees: Vec<(&RunningTask, usize)> =
            running.values().map(|rt| (rt, rt.machine.0 as usize)).collect();
        frees.sort_by_key(|(rt, _)| rt.ends);
        for (rt, m) in frees {
            avail[m] += rt.req;
            if req.fits_in(&avail[m]) {
                return Some(rt.ends);
            }
        }
        None
    }

    #[allow(clippy::too_many_arguments)]
    fn try_place(
        &mut self,
        now: SimTime,
        ti: usize,
        flat: &mut [FlatTask],
        running: &mut HashMap<usize, RunningTask>,
        on_machine: &mut HashMap<u32, HashSet<usize>>,
        generation: &mut [u32],
        events: &mut BinaryHeap<Reverse<(SimTime, u64, Event)>>,
        seq: &mut u64,
        must_finish_by: Option<SimTime>,
    ) -> bool {
        let req = flat[ti].req;
        let Some(mid) = self.config.allocation.select(&self.cluster, &req, &mut self.rng)
        else {
            return false;
        };
        let machine = self.cluster.machine(mid);
        let speedup = machine.speedup_for(&req);
        let runtime = SimDuration::from_secs_f64(
            flat[ti].demand_left / (req.cpu_cores.max(1e-9) * speedup.max(1e-9)),
        );
        let ends = now + runtime;
        if let Some(limit) = must_finish_by {
            if ends > limit {
                return false;
            }
        }
        let ok = self.cluster.machine_mut(mid).try_allocate(&req);
        debug_assert!(ok, "allocation policy selected an infeasible machine");
        if !ok {
            return false;
        }
        let g = generation[ti];
        running.insert(ti, RunningTask { machine: mid, req, started: now, ends });
        on_machine.entry(mid.0).or_default().insert(ti);
        events.push(Reverse((ends, *seq, Event::TaskFinish { task_idx: ti, generation: g })));
        *seq += 1;
        true
    }

    fn sort_queue(&self, queue: &mut [PendingTask], flat: &[FlatTask]) {
        match self.config.queue {
            QueuePolicy::Fcfs => queue.sort_by_key(|p| (flat[p.task_idx].submit, p.ready_at, flat[p.task_idx].id)),
            QueuePolicy::Sjf => queue.sort_by(|a, b| {
                flat[a.task_idx]
                    .demand_left
                    .partial_cmp(&flat[b.task_idx].demand_left)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(flat[a.task_idx].id.cmp(&flat[b.task_idx].id))
            }),
            QueuePolicy::Ljf => queue.sort_by(|a, b| {
                flat[b.task_idx]
                    .demand_left
                    .partial_cmp(&flat[a.task_idx].demand_left)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(flat[a.task_idx].id.cmp(&flat[b.task_idx].id))
            }),
            QueuePolicy::EarliestDeadline => queue.sort_by_key(|p| {
                let f = &flat[p.task_idx];
                let abs = f
                    .deadline
                    .map(|d| f.submit + d)
                    .unwrap_or(SimTime::MAX);
                (abs, f.id)
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_infra::cluster::ClusterId;
    use mcs_infra::machine::MachineSpec;
    use mcs_workload::task::{JobId, JobKind, Task, UserId};

    fn cluster(machines: u32, cores: f64) -> Cluster {
        Cluster::homogeneous(
            ClusterId(0),
            "test",
            MachineSpec::commodity("std", cores, cores * 4.0),
            machines,
        )
    }

    fn bag(job_id: u64, submit: u64, tasks: &[(f64, f64)]) -> Job {
        // tasks: (demand, cores)
        Job {
            id: JobId(job_id),
            user: UserId(0),
            kind: JobKind::BagOfTasks,
            submit: SimTime::from_secs(submit),
            tasks: tasks
                .iter()
                .enumerate()
                .map(|(i, &(demand, cores))| {
                    Task::independent(
                        TaskId(job_id * 1000 + i as u64),
                        JobId(job_id),
                        demand,
                        ResourceVector::new(cores, cores),
                    )
                })
                .collect(),
        }
    }

    fn run(
        cluster: Cluster,
        config: SchedulerConfig,
        jobs: Vec<Job>,
    ) -> ScheduleOutcome {
        ClusterScheduler::new(cluster, config, 1).run(jobs, SimTime::from_secs(1_000_000))
    }

    #[test]
    fn single_task_runtime_exact() {
        let out = run(cluster(1, 4.0), SchedulerConfig::default(), vec![bag(0, 0, &[(40.0, 4.0)])]);
        assert_eq!(out.completions.len(), 1);
        assert_eq!(out.makespan, SimDuration::from_secs(10));
        assert_eq!(out.unfinished, 0);
    }

    #[test]
    fn parallel_tasks_share_cluster() {
        // 4 machines x 4 cores; 4 tasks of 4 cores, 10 s each: all parallel.
        let out = run(
            cluster(4, 4.0),
            SchedulerConfig::default(),
            vec![bag(0, 0, &[(40.0, 4.0), (40.0, 4.0), (40.0, 4.0), (40.0, 4.0)])],
        );
        assert_eq!(out.makespan, SimDuration::from_secs(10));
    }

    #[test]
    fn serialization_when_cluster_too_small() {
        // 1 machine; 2 tasks that each need the whole machine: serial.
        let out = run(
            cluster(1, 4.0),
            SchedulerConfig::default(),
            vec![bag(0, 0, &[(40.0, 4.0), (40.0, 4.0)])],
        );
        assert_eq!(out.makespan, SimDuration::from_secs(20));
    }

    #[test]
    fn dependencies_respected() {
        let mut job = bag(0, 0, &[(40.0, 4.0), (40.0, 4.0)]);
        job.kind = JobKind::Workflow;
        let dep = job.tasks[0].id;
        job.tasks[1].dependencies.push(dep);
        // Plenty of machines, but the chain forces 20 s.
        let out = run(cluster(4, 4.0), SchedulerConfig::default(), vec![job]);
        assert_eq!(out.makespan, SimDuration::from_secs(20));
        let c0 = out.completions.iter().find(|c| c.task == TaskId(0)).unwrap();
        let c1 = out.completions.iter().find(|c| c.task == TaskId(1)).unwrap();
        assert!(c1.start >= c0.finish);
    }

    #[test]
    fn sjf_reduces_mean_response_vs_ljf() {
        // One 1-core machine, one long and many short tasks at t=0.
        let mut tasks = vec![(1000.0, 1.0)];
        for _ in 0..10 {
            tasks.push((10.0, 1.0));
        }
        let mk = |queue| SchedulerConfig { queue, backfill: false, ..Default::default() };
        let sjf = run(cluster(1, 1.0), mk(QueuePolicy::Sjf), vec![bag(0, 0, &tasks)]);
        let ljf = run(cluster(1, 1.0), mk(QueuePolicy::Ljf), vec![bag(0, 0, &tasks)]);
        assert!(sjf.mean_response_secs() < ljf.mean_response_secs() / 2.0);
        // Same makespan either way.
        assert_eq!(sjf.makespan, ljf.makespan);
    }

    #[test]
    fn backfill_improves_utilization() {
        // Machine of 4 cores. Queue: [4-core 10 s] [4-core 10 s] [1-core 5 s].
        // FCFS w/o backfill: the 1-core task waits; with backfill it cannot
        // help here (head fits). Use a blocking pattern instead:
        // t0: 3-core 100 s running; head needs 4 cores (blocked until 100);
        // backfill candidate: 1-core 50 s fits and finishes before 100.
        let jobs = vec![
            bag(0, 0, &[(300.0, 3.0)]), // occupies 3 cores until t=100
            bag(1, 1, &[(400.0, 4.0)]), // head, blocked until t=100
            bag(2, 2, &[(50.0, 1.0)]),  // backfill candidate
        ];
        let with = run(
            cluster(1, 4.0),
            SchedulerConfig { backfill: true, queue: QueuePolicy::Fcfs, ..Default::default() },
            jobs.clone(),
        );
        let without = run(
            cluster(1, 4.0),
            SchedulerConfig { backfill: false, queue: QueuePolicy::Fcfs, ..Default::default() },
            jobs,
        );
        let bf_with = with.completions.iter().find(|c| c.job == JobId(2)).unwrap();
        let bf_without = without.completions.iter().find(|c| c.job == JobId(2)).unwrap();
        assert!(
            bf_with.finish < bf_without.finish,
            "backfill should finish the small task earlier ({} vs {})",
            bf_with.finish,
            bf_without.finish
        );
        // Backfill must not delay the blocked head.
        let head_with = with.completions.iter().find(|c| c.job == JobId(1)).unwrap();
        let head_without = without.completions.iter().find(|c| c.job == JobId(1)).unwrap();
        assert_eq!(head_with.finish, head_without.finish);
    }

    #[test]
    fn failure_requeues_task() {
        let outage = Outage {
            machine: 0,
            fail_at: SimTime::from_secs(5),
            repair_at: SimTime::from_secs(6),
        };
        let mut sched = ClusterScheduler::new(
            cluster(1, 4.0),
            SchedulerConfig { checkpoint_factor: 0.0, ..Default::default() },
            1,
        )
        .with_outages(vec![outage]);
        let out = sched.run(vec![bag(0, 0, &[(40.0, 4.0)])], SimTime::from_secs(10_000));
        assert_eq!(out.failure_requeues, 1);
        assert_eq!(out.unfinished, 0);
        // Restarted from scratch at t=6: finishes at 16.
        assert_eq!(out.makespan, SimDuration::from_secs(16));
    }

    #[test]
    fn checkpointing_preserves_progress() {
        let outage = Outage {
            machine: 0,
            fail_at: SimTime::from_secs(5),
            repair_at: SimTime::from_secs(6),
        };
        let mut sched = ClusterScheduler::new(
            cluster(1, 4.0),
            SchedulerConfig { checkpoint_factor: 1.0, ..Default::default() },
            1,
        )
        .with_outages(vec![outage]);
        let out = sched.run(vec![bag(0, 0, &[(40.0, 4.0)])], SimTime::from_secs(10_000));
        // 5 s of work done, 5 s left, resumes at 6: finishes at 11.
        assert_eq!(out.makespan, SimDuration::from_secs(11));
    }

    #[test]
    fn deadline_misses_counted() {
        let mut job = bag(0, 0, &[(40.0, 4.0), (40.0, 4.0)]);
        for t in &mut job.tasks {
            t.deadline = Some(SimDuration::from_secs(15));
        }
        // 1 machine: second task finishes at 20 > 15.
        let out = run(cluster(1, 4.0), SchedulerConfig::default(), vec![job]);
        assert_eq!(out.deadline_misses, 1);
    }

    #[test]
    fn utilization_accounts_busy_time() {
        // One 4-core machine busy 10 of 20 s at full width.
        let jobs = vec![bag(0, 0, &[(40.0, 4.0)]), bag(1, 10, &[(0.04, 4.0)])];
        let out = run(cluster(1, 4.0), SchedulerConfig::default(), jobs);
        assert!(out.mean_utilization > 0.9, "util = {}", out.mean_utilization);
    }

    #[test]
    fn deterministic_given_seed() {
        let jobs: Vec<Job> = (0..20).map(|i| bag(i, i, &[(30.0, 2.0), (20.0, 1.0)])).collect();
        let cfg = SchedulerConfig { allocation: AllocationPolicy::Random, ..Default::default() };
        let a = ClusterScheduler::new(cluster(3, 4.0), cfg, 5)
            .run(jobs.clone(), SimTime::from_secs(100_000));
        let b = ClusterScheduler::new(cluster(3, 4.0), cfg, 5)
            .run(jobs, SimTime::from_secs(100_000));
        assert_eq!(a, b);
    }

    #[test]
    fn horizon_leaves_tasks_unfinished() {
        let out = ClusterScheduler::new(cluster(1, 1.0), SchedulerConfig::default(), 1)
            .run(vec![bag(0, 0, &[(1_000_000.0, 1.0)])], SimTime::from_secs(10));
        assert_eq!(out.unfinished, 1);
        assert!(out.completions.is_empty());
    }
}
