//! The cluster scheduler: an event-driven allocation engine.
//!
//! Implements the allocation half of the paper's dual scheduling problem
//! (C7): jobs arrive over virtual time, their tasks wait for dependencies,
//! queue under a [`QueuePolicy`], are placed by an
//! `AllocationPolicy`, optionally
//! backfilled (EASY-style, with clairvoyant runtimes), and may be killed and
//! requeued by injected machine failures.
//!
//! The scheduler is an engine actor: [`SchedulerActor`] implements
//! [`Actor`] over any message type enveloping [`RmsMsg`], so the same code
//! drives both the single-actor wrappers ([`ClusterScheduler::run`],
//! [`ClusterScheduler::run_adaptive`]) and composed multi-subsystem
//! scenarios (`mcs_core::scenario`), where machine failures arrive as
//! messages from a failure-injector actor instead of a self-scheduled
//! outage cursor. Every state change is emitted onto the simulation's
//! trace bus under component `"rms"`.

use crate::allocation::AllocationPolicy;
use crate::policy::{QueuedTaskView, SchedulingPolicy};
use mcs_failure::model::Outage;
use mcs_infra::cluster::Cluster;
use mcs_infra::machine::MachineId;
use mcs_infra::resource::ResourceVector;
use mcs_simcore::engine::{Actor, Context, MessageEnvelope, Simulation};
use mcs_simcore::error::McsError;
use mcs_simcore::metrics::TimeWeighted;
use mcs_simcore::resilience::RestartConfig;
use mcs_simcore::rng::RngStream;
use mcs_simcore::time::{SimDuration, SimTime};
use mcs_simcore::trace::Field;
use mcs_workload::task::{Job, TaskCompletion, TaskId};
use std::collections::{HashMap, HashSet};

/// Queue-ordering disciplines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueuePolicy {
    /// First come, first served (by job submit time).
    Fcfs,
    /// Shortest job first (by task demand).
    Sjf,
    /// Largest job first (by task demand).
    Ljf,
    /// Earliest deadline first; tasks without deadlines sort last.
    EarliestDeadline,
}

impl QueuePolicy {
    /// All disciplines, for sweeps.
    pub const ALL: [QueuePolicy; 4] = [
        QueuePolicy::Fcfs,
        QueuePolicy::Sjf,
        QueuePolicy::Ljf,
        QueuePolicy::EarliestDeadline,
    ];

    /// A short stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            QueuePolicy::Fcfs => "fcfs",
            QueuePolicy::Sjf => "sjf",
            QueuePolicy::Ljf => "ljf",
            QueuePolicy::EarliestDeadline => "edf",
        }
    }
}

/// Scheduler configuration: one point in the policy space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedulerConfig {
    /// Queue discipline.
    pub queue: QueuePolicy,
    /// Machine-selection policy.
    pub allocation: AllocationPolicy,
    /// EASY backfilling: tasks behind a blocked queue head may run early if
    /// (clairvoyantly) they finish before the head's earliest start.
    pub backfill: bool,
    /// Fraction of work preserved when a task is killed by a failure and
    /// requeued (0 = restart from scratch, 1 = perfect checkpointing).
    pub checkpoint_factor: f64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            queue: QueuePolicy::Fcfs,
            allocation: AllocationPolicy::BestFit,
            backfill: true,
            checkpoint_factor: 0.0,
        }
    }
}

impl SchedulerConfig {
    /// Validates the configuration, rejecting a `checkpoint_factor` outside
    /// `[0, 1]` (a fraction of preserved work; anything else is nonsense).
    pub fn validate(self) -> Result<Self, McsError> {
        if self.checkpoint_factor.is_nan() || !(0.0..=1.0).contains(&self.checkpoint_factor) {
            return Err(McsError::Config(format!(
                "checkpoint_factor must be in [0, 1], got {}",
                self.checkpoint_factor
            )));
        }
        Ok(self)
    }
}

/// Forces `checkpoint_factor` into `[0, 1]` (NaN becomes 0), the constructor
/// counterpart of [`SchedulerConfig::validate`] for callers that prefer
/// clamping to failing.
fn sanitize_checkpoint(factor: f64) -> f64 {
    if factor.is_nan() {
        0.0
    } else {
        factor.clamp(0.0, 1.0)
    }
}

/// What the scheduler measured over one run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleOutcome {
    /// Per-task completion records.
    pub completions: Vec<TaskCompletion>,
    /// Finish of the last task (virtual time).
    pub makespan: SimDuration,
    /// Time-averaged cluster utilization (dominant share) in `[0, 1]`.
    pub mean_utilization: f64,
    /// Time-averaged queue length.
    pub mean_queue_length: f64,
    /// Peak queue length.
    pub peak_queue_length: f64,
    /// Tasks whose deadline was missed.
    pub deadline_misses: usize,
    /// Task kills caused by machine failures (each leads to a requeue).
    pub failure_requeues: usize,
    /// Tasks rejected because no machine in the cluster can ever satisfy
    /// their resource request (admission control).
    pub rejected: usize,
    /// Tasks abandoned after exhausting their checkpoint-restart budget
    /// (only under [`SchedulerActor::with_restart`]).
    pub abandoned: usize,
    /// Tasks still unfinished when the run ended (excluding rejected ones).
    pub unfinished: usize,
}

impl ScheduleOutcome {
    /// Mean bounded slowdown over completed tasks.
    pub fn mean_slowdown(&self) -> f64 {
        if self.completions.is_empty() {
            return 0.0;
        }
        self.completions.iter().map(TaskCompletion::bounded_slowdown).sum::<f64>()
            / self.completions.len() as f64
    }

    /// Mean response time in seconds over completed tasks.
    pub fn mean_response_secs(&self) -> f64 {
        if self.completions.is_empty() {
            return 0.0;
        }
        self.completions
            .iter()
            .map(|c| c.response_time().as_secs_f64())
            .sum::<f64>()
            / self.completions.len() as f64
    }
}

#[derive(Debug, Clone)]
struct PendingTask {
    task_idx: usize,
    ready_at: SimTime,
}

#[derive(Debug, Clone)]
struct RunningTask {
    machine: MachineId,
    req: ResourceVector,
    started: SimTime,
    ends: SimTime,
}

/// The scheduler's message vocabulary on the simulation engine.
///
/// `Start`, `TaskFinish`, `PolicyTick`, and `NextOutage` are self-scheduled;
/// `JobArrival` comes from `Start` (single-actor runs) or a workload actor,
/// and `MachineFail` / `MachineRepair` from the outage cursor (single-actor
/// runs) or a failure-injector actor (composed scenarios).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmsMsg {
    /// Bootstraps a run: schedules arrivals, outages, and policy ticks.
    Start,
    /// Job `jobs[idx]` submits; its dependency-free tasks join the queue.
    JobArrival(usize),
    /// A placed task's (clairvoyant) runtime elapsed. Stale if `generation`
    /// no longer matches (the task was killed and requeued meanwhile).
    TaskFinish {
        /// Index into the flattened task table.
        task_idx: usize,
        /// Placement generation the finish belongs to.
        generation: u32,
    },
    /// Machine `m` fails; running tasks there are killed and requeued.
    MachineFail(u32),
    /// Machine `m` comes back.
    MachineRepair(u32),
    /// Consult the [`PolicySelector`] and adopt its configuration.
    PolicyTick,
    /// Apply the next entry of the sorted outage schedule.
    NextOutage,
    /// A checkpoint-restart backoff elapsed: the killed task re-enters the
    /// queue now (only under [`SchedulerActor::with_restart`]).
    Requeue(usize),
}

/// A read-only snapshot handed to a [`PolicySelector`] at each decision tick.
#[derive(Debug)]
pub struct SchedulerView<'a> {
    /// Current virtual time.
    pub now: SimTime,
    /// `(demand_left, request)` of every queued-but-not-running task.
    pub queued: Vec<(f64, ResourceVector)>,
    /// The cluster, with live allocation state.
    pub cluster: &'a Cluster,
    /// Number of running tasks.
    pub running: usize,
    /// The configuration currently in force.
    pub current: SchedulerConfig,
}

/// Chooses the scheduler configuration at runtime (the paper's portfolio
/// scheduling, C6 approach iv: keep a portfolio of policies and switch to
/// whichever currently serves the workload best).
pub trait PolicySelector {
    /// Returns the configuration to use until the next tick.
    fn select(&mut self, view: &SchedulerView<'_>) -> SchedulerConfig;
}

#[derive(Debug, Clone)]
struct FlatTask {
    id: TaskId,
    job_idx: usize,
    demand_left: f64,
    req: ResourceVector,
    deps_left: usize,
    children: Vec<usize>,
    deadline: Option<SimDuration>,
    submit: SimTime,
    done: bool,
    feasible: bool,
    /// Upward rank: critical-path core-seconds from this task to a sink
    /// (its own demand included). Feeds rank-ordering policies (HEFT);
    /// equals plain demand for independent tasks.
    rank: f64,
}

/// Computes upward ranks over the flattened DAG: a task's rank is its own
/// demand plus the largest child rank. Sinks seed the reverse-topological
/// sweep; each task is ranked exactly once, so the result is independent of
/// traversal order.
fn compute_upward_ranks(flat: &mut [FlatTask]) {
    let n = flat.len();
    let mut parents: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut pending_children: Vec<usize> = vec![0; n];
    for (i, t) in flat.iter().enumerate() {
        pending_children[i] = t.children.len();
        for &c in &t.children {
            parents[c].push(i);
        }
    }
    let mut stack: Vec<usize> = (0..n).filter(|&i| pending_children[i] == 0).collect();
    while let Some(i) = stack.pop() {
        let max_child = flat[i].children.iter().map(|&c| flat[c].rank).fold(0.0, f64::max);
        flat[i].rank = flat[i].demand_left + max_child;
        for &p in &parents[i] {
            pending_children[p] -= 1;
            if pending_children[p] == 0 {
                stack.push(p);
            }
        }
    }
}

/// An event-driven single-cluster scheduler.
///
/// # Examples
/// ```
/// use mcs_rms::scheduler::{ClusterScheduler, SchedulerConfig};
/// use mcs_infra::prelude::*;
/// use mcs_workload::prelude::*;
/// use mcs_simcore::prelude::*;
///
/// let cluster = Cluster::homogeneous(
///     ClusterId(0), "c", MachineSpec::commodity("std-4", 4.0, 16.0), 4,
/// );
/// let job = Job {
///     id: JobId(0), user: UserId(0), kind: JobKind::BagOfTasks,
///     submit: SimTime::ZERO,
///     tasks: vec![Task::independent(
///         TaskId(0), JobId(0), 40.0,
///         mcs_infra::resource::ResourceVector::new(4.0, 4.0),
///     )],
/// };
/// let mut sched = ClusterScheduler::new(cluster, SchedulerConfig::default(), 42);
/// let outcome = sched.run(vec![job], SimTime::from_secs(3_600));
/// assert_eq!(outcome.completions.len(), 1);
/// assert_eq!(outcome.makespan, SimDuration::from_secs(10));
/// ```
#[derive(Debug)]
pub struct ClusterScheduler {
    cluster: Cluster,
    config: SchedulerConfig,
    rng: RngStream,
    outages: Vec<Outage>,
    seed: u64,
}

impl ClusterScheduler {
    /// Creates a scheduler over a cluster. Out-of-range `checkpoint_factor`
    /// values are clamped into `[0, 1]`; use [`SchedulerConfig::validate`]
    /// to reject them instead.
    pub fn new(cluster: Cluster, mut config: SchedulerConfig, seed: u64) -> Self {
        config.checkpoint_factor = sanitize_checkpoint(config.checkpoint_factor);
        ClusterScheduler {
            cluster,
            config,
            rng: RngStream::new(seed, "scheduler"),
            outages: Vec::new(),
            seed,
        }
    }

    /// Injects an outage schedule (machines indexed within the cluster).
    pub fn with_outages(mut self, outages: Vec<Outage>) -> Self {
        self.outages = outages;
        self
    }

    /// The cluster after the run (or before, if not yet run).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Builds the engine actor for this scheduler over one workload, for
    /// embedding in a composed [`Simulation`] (see `mcs_core::scenario`).
    /// The actor borrows the scheduler; extract results with
    /// [`SchedulerActor::outcome`] after the simulation is dropped.
    pub fn actor<M: MessageEnvelope<RmsMsg>>(
        &mut self,
        jobs: Vec<Job>,
        horizon: SimTime,
    ) -> SchedulerActor<'_, M> {
        SchedulerActor::new(&mut self.cluster, &mut self.config, &mut self.rng, jobs, horizon)
    }

    /// Runs the workload to completion or until `horizon`, whichever comes
    /// first, and returns the measured outcome.
    ///
    /// A thin wrapper: builds a single-actor [`Simulation`] around
    /// [`SchedulerActor`] (with the outage schedule self-applied) and runs
    /// it to quiescence.
    pub fn run(&mut self, jobs: Vec<Job>, horizon: SimTime) -> ScheduleOutcome {
        let seed = self.seed;
        let outages = self.outages.clone();
        let mut actor = SchedulerActor::new(
            &mut self.cluster,
            &mut self.config,
            &mut self.rng,
            jobs,
            horizon,
        )
        .with_outages(outages);
        run_single(seed, horizon, &mut actor);
        actor.outcome()
    }

    /// Like [`ClusterScheduler::run`], but consults `selector` every
    /// `interval` of virtual time and adopts whatever configuration it
    /// returns — the runtime half of portfolio scheduling.
    pub fn run_adaptive(
        &mut self,
        jobs: Vec<Job>,
        horizon: SimTime,
        selector: &mut dyn PolicySelector,
        interval: SimDuration,
    ) -> ScheduleOutcome {
        let seed = self.seed;
        let outages = self.outages.clone();
        let mut actor = SchedulerActor::new(
            &mut self.cluster,
            &mut self.config,
            &mut self.rng,
            jobs,
            horizon,
        )
        .with_outages(outages)
        .with_selector(selector, interval);
        run_single(seed, horizon, &mut actor);
        actor.outcome()
    }
}

/// Drives one borrowed actor through a dedicated single-actor simulation.
fn run_single(seed: u64, horizon: SimTime, actor: &mut SchedulerActor<'_>) {
    let mut sim: Simulation<'_, RmsMsg> = Simulation::new(seed);
    sim.set_horizon(horizon);
    let id = sim.add_actor(actor);
    sim.schedule(SimTime::ZERO, id, RmsMsg::Start);
    sim.run();
}

/// The scheduler as a simulation actor.
///
/// Generic over any envelope of [`RmsMsg`], so it runs unchanged inside the
/// single-actor wrappers and inside composed scenarios. Borrows the
/// cluster, configuration, and RNG stream from its [`ClusterScheduler`] so
/// the owner observes post-run state (adopted policy, machine health).
/// Callback fired instead of the fixed backoff delay when a killed task's
/// checkpoint image must be fetched before it can re-enter the queue:
/// `(ctx, task_index, attempt)`. The installer (a composed scenario with a
/// network model) must eventually deliver [`RmsMsg::Requeue`] with the same
/// task index — typically when the restore transfer's flow completes, so
/// recovery time is a function of network contention, not a constant.
pub type CheckpointHook<'a, M> = Box<dyn FnMut(&mut Context<'_, M>, usize, u32) + 'a>;

pub struct SchedulerActor<'a, M = RmsMsg> {
    cluster: &'a mut Cluster,
    config: &'a mut SchedulerConfig,
    rng: &'a mut RngStream,
    jobs: Vec<Job>,
    horizon: SimTime,
    selector: Option<(&'a mut dyn PolicySelector, SimDuration)>,
    // Outage schedule, pre-sorted by start time; `next_outage` is the cursor
    // so each `NextOutage` event applies one entry and arms the next,
    // keeping the event queue small regardless of schedule length.
    outages: Vec<Outage>,
    next_outage: usize,
    flat: Vec<FlatTask>,
    index: HashMap<TaskId, usize>,
    queue: Vec<PendingTask>,
    queue_dirty: bool,
    running: HashMap<usize, RunningTask>,
    on_machine: HashMap<u32, HashSet<usize>>,
    generation: Vec<u32>,
    completions: Vec<TaskCompletion>,
    failure_requeues: usize,
    deadline_misses: usize,
    rejected: HashSet<usize>,
    restart: Option<RestartConfig>,
    restart_attempts: Vec<u32>,
    checkpoint_hook: Option<CheckpointHook<'a, M>>,
    abandoned: HashSet<usize>,
    core_capacity: f64,
    used_cores: f64,
    util: TimeWeighted,
    qlen: TimeWeighted,
    last_finish: SimTime,
}

impl<'a, M: MessageEnvelope<RmsMsg>> SchedulerActor<'a, M> {
    /// Builds the actor: flattens tasks, indexes dependencies, and decides
    /// admission per task (no machine can ever host an oversized request).
    pub fn new(
        cluster: &'a mut Cluster,
        config: &'a mut SchedulerConfig,
        rng: &'a mut RngStream,
        jobs: Vec<Job>,
        horizon: SimTime,
    ) -> Self {
        let mut flat: Vec<FlatTask> = Vec::new();
        let mut index: HashMap<TaskId, usize> = HashMap::new();
        for (j, job) in jobs.iter().enumerate() {
            for t in &job.tasks {
                let idx = flat.len();
                index.insert(t.id, idx);
                let feasible = cluster.machines().iter().any(|m| t.req.fits_in(&m.capacity()));
                flat.push(FlatTask {
                    id: t.id,
                    job_idx: j,
                    demand_left: t.demand_core_seconds,
                    req: t.req,
                    deps_left: 0,
                    children: Vec::new(),
                    deadline: t.deadline,
                    submit: job.submit,
                    done: false,
                    feasible,
                    rank: 0.0,
                });
            }
        }
        for job in &jobs {
            for t in &job.tasks {
                let ti = index[&t.id];
                for d in &t.dependencies {
                    let di = *index.get(d).expect("dependency must be within the workload");
                    flat[di].children.push(ti);
                    flat[ti].deps_left += 1;
                }
            }
        }
        compute_upward_ranks(&mut flat);
        config.checkpoint_factor = sanitize_checkpoint(config.checkpoint_factor);
        let generation = vec![0; flat.len()];
        let restart_attempts = vec![0; flat.len()];
        let core_capacity = cluster.capacity().cpu_cores.max(1e-9);
        SchedulerActor {
            cluster,
            config,
            rng,
            jobs,
            horizon,
            selector: None,
            outages: Vec::new(),
            next_outage: 0,
            flat,
            index,
            queue: Vec::new(),
            queue_dirty: false,
            running: HashMap::new(),
            on_machine: HashMap::new(),
            generation,
            completions: Vec::new(),
            failure_requeues: 0,
            deadline_misses: 0,
            rejected: HashSet::new(),
            restart: None,
            restart_attempts,
            checkpoint_hook: None,
            abandoned: HashSet::new(),
            core_capacity,
            used_cores: 0.0,
            util: TimeWeighted::new(SimTime::ZERO, 0.0),
            qlen: TimeWeighted::new(SimTime::ZERO, 0.0),
            last_finish: SimTime::ZERO,
        }
    }

    /// Self-applies an outage schedule (sorted by start time internally).
    /// Composed scenarios leave this empty and route failures through a
    /// failure-injector actor instead.
    pub fn with_outages(mut self, mut outages: Vec<Outage>) -> Self {
        outages.sort_by_key(|o| (o.fail_at, o.machine));
        self.outages = outages;
        self
    }

    /// Enables checkpoint-restart with backoff: a task killed by a machine
    /// failure re-enters the queue only after the policy's backoff delay
    /// (instead of instantly), keeps `restart.checkpoint_factor` of its
    /// progress, and is abandoned once the attempt budget is spent.
    #[must_use]
    pub fn with_restart(mut self, restart: RestartConfig) -> Self {
        self.config.checkpoint_factor = sanitize_checkpoint(restart.checkpoint_factor);
        self.restart = Some(restart);
        self
    }

    /// Routes checkpoint-restore images over the network model: the backoff
    /// draw still happens (so RNG streams stay aligned with legacy runs),
    /// but the requeue is delivered by the restore transfer's completion
    /// instead of the drawn delay. See [`CheckpointHook`].
    #[must_use]
    pub fn with_checkpoint_hook(
        mut self,
        hook: impl FnMut(&mut Context<'_, M>, usize, u32) + 'a,
    ) -> Self {
        self.checkpoint_hook = Some(Box::new(hook));
        self
    }

    /// Consults `selector` every `interval` of virtual time.
    pub fn with_selector(
        mut self,
        selector: &'a mut dyn PolicySelector,
        interval: SimDuration,
    ) -> Self {
        self.selector = Some((selector, interval));
        self
    }

    /// The measured outcome; call after the simulation has run (consumes
    /// the completion log).
    pub fn outcome(&mut self) -> ScheduleOutcome {
        let end = self.last_finish;
        let unfinished = self
            .flat
            .iter()
            .enumerate()
            .filter(|(i, t)| !t.done && !self.rejected.contains(i))
            .count();
        ScheduleOutcome {
            makespan: end.saturating_since(SimTime::ZERO),
            mean_utilization: self.util.average_until(end.max(SimTime::from_nanos(1))),
            mean_queue_length: self.qlen.average_until(end.max(SimTime::from_nanos(1))),
            peak_queue_length: self.qlen.peak(),
            deadline_misses: self.deadline_misses,
            failure_requeues: self.failure_requeues,
            rejected: self.rejected.len(),
            abandoned: self.abandoned.len(),
            unfinished,
            completions: std::mem::take(&mut self.completions),
        }
    }

    fn on_start(&mut self, ctx: &mut Context<'_, M>) {
        for (j, job) in self.jobs.iter().enumerate() {
            ctx.send_at(ctx.self_id(), job.submit, M::wrap(RmsMsg::JobArrival(j)));
        }
        self.arm_next_outage(ctx);
        if let Some((_, interval)) = &self.selector {
            let first = SimTime::ZERO + *interval;
            if first <= self.horizon {
                ctx.send_at(ctx.self_id(), first, M::wrap(RmsMsg::PolicyTick));
            }
        }
    }

    /// Schedules the outage at the cursor, if any starts before the horizon.
    fn arm_next_outage(&mut self, ctx: &mut Context<'_, M>) {
        if let Some(o) = self.outages.get(self.next_outage) {
            if o.fail_at < self.horizon {
                ctx.send_at(ctx.self_id(), o.fail_at, M::wrap(RmsMsg::NextOutage));
            }
        }
    }

    fn on_next_outage(&mut self, ctx: &mut Context<'_, M>) {
        let o = self.outages[self.next_outage];
        self.next_outage += 1;
        self.machine_fail(ctx, o.machine as u32);
        ctx.send_at(
            ctx.self_id(),
            o.repair_at.min(self.horizon),
            M::wrap(RmsMsg::MachineRepair(o.machine as u32)),
        );
        self.arm_next_outage(ctx);
    }

    fn on_job_arrival(&mut self, ctx: &mut Context<'_, M>, j: usize) {
        let now = ctx.now();
        ctx.emit_fields("rms", "job_arrival", &[("job", Field::U64(j as u64))]);
        let task_ids: Vec<TaskId> = self.jobs[j].tasks.iter().map(|t| t.id).collect();
        for tid in task_ids {
            let ti = self.index[&tid];
            if self.flat[ti].deps_left == 0 {
                self.make_ready(ctx, ti, now);
            }
        }
    }

    /// Queues a dependency-free task, or rejects it if infeasible.
    fn make_ready(
        &mut self,
        ctx: &mut Context<'_, M>,
        ti: usize,
        now: SimTime,
    ) {
        if self.flat[ti].feasible {
            self.queue.push(PendingTask { task_idx: ti, ready_at: now });
            self.queue_dirty = true;
        } else {
            self.rejected.insert(ti);
            ctx.emit_fields("rms", "task_reject", &[("task", Field::U64(self.flat[ti].id.0))]);
        }
    }

    fn on_task_finish(
        &mut self,
        ctx: &mut Context<'_, M>,
        task_idx: usize,
        g: u32,
    ) {
        if self.generation[task_idx] != g {
            return; // stale: the task was killed and requeued
        }
        let Some(rt) = self.running.remove(&task_idx) else { return };
        let now = ctx.now();
        self.on_machine.entry(rt.machine.0).or_default().remove(&task_idx);
        self.cluster.machine_mut(rt.machine).release(&rt.req);
        self.used_cores -= rt.req.cpu_cores;
        self.util.set(now, self.used_cores / self.core_capacity);
        let ft = &mut self.flat[task_idx];
        ft.done = true;
        ft.demand_left = 0.0;
        self.last_finish = self.last_finish.max(now);
        let comp = TaskCompletion {
            task: ft.id,
            job: self.jobs[ft.job_idx].id,
            submit: ft.submit,
            start: rt.started,
            finish: now,
        };
        let mut missed = false;
        if let Some(dl) = ft.deadline {
            if comp.response_time() > dl {
                self.deadline_misses += 1;
                missed = true;
            }
        }
        ctx.emit_fields(
            "rms",
            "task_finish",
            &[
                ("task", Field::U64(comp.task.0)),
                ("wait_secs", Field::F64((comp.start - comp.submit).as_secs_f64())),
                ("response_secs", Field::F64(comp.response_time().as_secs_f64())),
                ("missed_deadline", Field::Bool(missed)),
            ],
        );
        self.completions.push(comp);
        let children = self.flat[task_idx].children.clone();
        for c in children {
            self.flat[c].deps_left -= 1;
            if self.flat[c].deps_left == 0 && !self.flat[c].done {
                self.make_ready(ctx, c, now);
            }
        }
    }

    fn machine_fail(&mut self, ctx: &mut Context<'_, M>, m: u32) {
        let mid = MachineId(m);
        if (mid.0 as usize) >= self.cluster.len() {
            return;
        }
        let now = ctx.now();
        self.cluster.machine_mut(mid).fail();
        // Kill and requeue everything that was running there.
        let mut requeued = 0u64;
        let mut lost_core_secs = 0.0_f64;
        if let Some(victims) = self.on_machine.remove(&m) {
            // Fixed kill order: backoff draws must not depend on hash order.
            let mut victims: Vec<usize> = victims.into_iter().collect();
            victims.sort_unstable();
            for ti in victims {
                if let Some(rt) = self.running.remove(&ti) {
                    self.used_cores -= rt.req.cpu_cores;
                    self.failure_requeues += 1;
                    requeued += 1;
                    self.generation[ti] += 1;
                    // Keep checkpointed progress; the rest is wasted work.
                    let elapsed_core_secs = (now - rt.started).as_secs_f64() * rt.req.cpu_cores;
                    let progressed = elapsed_core_secs * self.config.checkpoint_factor;
                    lost_core_secs += elapsed_core_secs - progressed;
                    self.flat[ti].demand_left = (self.flat[ti].demand_left - progressed).max(0.01);
                    match self.restart {
                        None => {
                            // Legacy behaviour: requeue instantly.
                            self.queue.push(PendingTask { task_idx: ti, ready_at: now });
                            self.queue_dirty = true;
                        }
                        Some(rc) => {
                            self.restart_attempts[ti] += 1;
                            let attempt = self.restart_attempts[ti];
                            match rc.backoff.delay_after(attempt, self.rng) {
                                Some(delay) if self.checkpoint_hook.is_none() => {
                                    ctx.emit_fields(
                                        "rms",
                                        "requeue_scheduled",
                                        &[
                                            ("task", Field::U64(self.flat[ti].id.0)),
                                            ("attempt", Field::U64(u64::from(attempt))),
                                            ("delay_secs", Field::F64(delay.as_secs_f64())),
                                        ],
                                    );
                                    ctx.send_at(
                                        ctx.self_id(),
                                        now + delay,
                                        M::wrap(RmsMsg::Requeue(ti)),
                                    );
                                }
                                Some(_) => {
                                    // Flow-level network mode: the restore
                                    // image travels the fabric, and *that*
                                    // transfer's completion delivers the
                                    // requeue — recovery time is contended
                                    // bandwidth, not a drawn constant. (The
                                    // draw above still happened, keeping
                                    // RNG streams aligned with legacy runs.)
                                    ctx.emit_fields(
                                        "rms",
                                        "checkpoint_xfer_start",
                                        &[
                                            ("task", Field::U64(self.flat[ti].id.0)),
                                            ("attempt", Field::U64(u64::from(attempt))),
                                        ],
                                    );
                                    if let Some(hook) = self.checkpoint_hook.as_mut() {
                                        hook(ctx, ti, attempt);
                                    }
                                }
                                None => {
                                    self.abandoned.insert(ti);
                                    ctx.emit_fields(
                                        "rms",
                                        "task_abandoned",
                                        &[
                                            ("task", Field::U64(self.flat[ti].id.0)),
                                            ("attempts", Field::U64(u64::from(attempt))),
                                        ],
                                    );
                                }
                            }
                        }
                    }
                }
            }
            self.util.set(now, self.used_cores / self.core_capacity);
        }
        ctx.emit_fields(
            "rms",
            "machine_fail",
            &[
                ("machine", Field::U64(u64::from(m))),
                ("requeued", Field::U64(requeued)),
                ("lost_core_secs", Field::F64(lost_core_secs)),
            ],
        );
    }

    /// Delivers a checkpoint-restart: the task re-enters the queue with its
    /// checkpointed remaining demand.
    fn on_requeue(&mut self, ctx: &mut Context<'_, M>, ti: usize) {
        let now = ctx.now();
        if self.flat[ti].done || self.abandoned.contains(&ti) {
            return;
        }
        ctx.emit_fields(
            "rms",
            "checkpoint_restore",
            &[
                ("task", Field::U64(self.flat[ti].id.0)),
                ("demand_left", Field::F64(self.flat[ti].demand_left)),
            ],
        );
        self.queue.push(PendingTask { task_idx: ti, ready_at: now });
        self.queue_dirty = true;
    }

    fn machine_repair(&mut self, ctx: &mut Context<'_, M>, m: u32) {
        let mid = MachineId(m);
        if (mid.0 as usize) < self.cluster.len() {
            self.cluster.machine_mut(mid).repair();
            ctx.emit_fields("rms", "machine_repair", &[("machine", Field::U64(u64::from(m)))]);
        }
    }

    fn on_policy_tick(&mut self, ctx: &mut Context<'_, M>) {
        let now = ctx.now();
        let Some((selector, interval)) = &mut self.selector else { return };
        let view = SchedulerView {
            now,
            queued: self
                .queue
                .iter()
                .map(|p| (self.flat[p.task_idx].demand_left, self.flat[p.task_idx].req))
                .collect(),
            cluster: self.cluster,
            running: self.running.len(),
            current: *self.config,
        };
        let new_config = selector.select(&view);
        if new_config != *self.config {
            *self.config = new_config;
            self.queue_dirty = true;
        }
        ctx.emit_fields(
            "rms",
            "policy_tick",
            &[
                ("queue_policy", Field::Str(self.config.queue.name())),
                ("queued", Field::U64(self.queue.len() as u64)),
            ],
        );
        let next = now + *interval;
        if next <= self.horizon {
            ctx.send_at(ctx.self_id(), next, M::wrap(RmsMsg::PolicyTick));
        }
    }

    fn dispatch(&mut self, ctx: &mut Context<'_, M>) {
        if self.queue_dirty {
            self.sort_queue();
            self.queue_dirty = false;
        }
        let now = ctx.now();
        let mut i = 0;
        let mut head_blocked = false;
        let mut shadow: Option<SimTime> = None;
        while i < self.queue.len() {
            let ti = self.queue[i].task_idx;
            let ready_at = self.queue[i].ready_at;
            let req = self.flat[ti].req;
            if head_blocked {
                if !self.config.backfill {
                    break;
                }
                // EASY backfill: only tasks that (clairvoyantly) finish before
                // the head's earliest possible start may jump the queue.
                let Some(shadow_t) = shadow else { break };
                if self.try_place(ctx, ti, ready_at, Some(shadow_t)) {
                    self.used_cores += req.cpu_cores;
                    self.util.set(now, self.used_cores / self.core_capacity);
                    self.queue.remove(i);
                } else {
                    i += 1;
                }
                continue;
            }
            if self.try_place(ctx, ti, ready_at, None) {
                self.used_cores += req.cpu_cores;
                self.util.set(now, self.used_cores / self.core_capacity);
                self.queue.remove(i);
            } else {
                head_blocked = true;
                shadow = self.shadow_time(now, &req);
                i += 1;
            }
        }
    }

    /// Earliest instant at which `req` could start, assuming running tasks
    /// end as predicted and nothing new arrives: replay releases in end
    /// order on a copy of the availability state.
    fn shadow_time(&self, now: SimTime, req: &ResourceVector) -> Option<SimTime> {
        let mut avail: Vec<ResourceVector> =
            self.cluster.machines().iter().map(|m| m.available()).collect();
        if avail.iter().any(|a| req.fits_in(a)) {
            return Some(now);
        }
        let mut frees: Vec<(&RunningTask, usize)> =
            self.running.values().map(|rt| (rt, rt.machine.0 as usize)).collect();
        frees.sort_by_key(|(rt, _)| rt.ends);
        for (rt, m) in frees {
            avail[m] += rt.req;
            if req.fits_in(&avail[m]) {
                return Some(rt.ends);
            }
        }
        None
    }

    fn try_place(
        &mut self,
        ctx: &mut Context<'_, M>,
        ti: usize,
        ready_at: SimTime,
        must_finish_by: Option<SimTime>,
    ) -> bool {
        let now = ctx.now();
        let req = self.flat[ti].req;
        let view = task_view(&self.flat[ti], ready_at);
        let Some(mid) = self.config.select_machine(self.cluster, &view, self.rng) else {
            return false;
        };
        let machine = self.cluster.machine(mid);
        let speedup = machine.speedup_for(&req);
        let runtime = SimDuration::from_secs_f64(
            self.flat[ti].demand_left / (req.cpu_cores.max(1e-9) * speedup.max(1e-9)),
        );
        let ends = now + runtime;
        if let Some(limit) = must_finish_by {
            if ends > limit {
                return false;
            }
        }
        let ok = self.cluster.machine_mut(mid).try_allocate(&req);
        debug_assert!(ok, "allocation policy selected an infeasible machine");
        if !ok {
            return false;
        }
        let g = self.generation[ti];
        self.running.insert(ti, RunningTask { machine: mid, req, started: now, ends });
        self.on_machine.entry(mid.0).or_default().insert(ti);
        ctx.send_at(
            ctx.self_id(),
            ends,
            M::wrap(RmsMsg::TaskFinish { task_idx: ti, generation: g }),
        );
        ctx.emit_fields(
            "rms",
            "task_start",
            &[
                ("task", Field::U64(self.flat[ti].id.0)),
                ("machine", Field::U64(u64::from(mid.0))),
            ],
        );
        true
    }

    /// One sort, any policy: the per-discipline branches live behind
    /// [`SchedulingPolicy::compare`] now.
    fn sort_queue(&mut self) {
        let Self { queue, flat, config, .. } = self;
        queue.sort_by(|a, b| {
            config.compare(
                &task_view(&flat[a.task_idx], a.ready_at),
                &task_view(&flat[b.task_idx], b.ready_at),
            )
        });
    }
}

/// Projects a flattened task into the policy-facing view. Batch tasks have
/// no data home; their rank is the precedence-derived upward rank.
fn task_view(flat: &FlatTask, ready_at: SimTime) -> QueuedTaskView<'_> {
    QueuedTaskView {
        id: flat.id,
        submit: flat.submit,
        ready_at,
        demand_left: flat.demand_left,
        req: &flat.req,
        deadline: flat.deadline,
        rank: flat.rank,
        data_home: None,
    }
}

impl<M: MessageEnvelope<RmsMsg>> Actor<M> for SchedulerActor<'_, M> {
    fn handle(&mut self, ctx: &mut Context<'_, M>, msg: M) {
        let Some(msg) = msg.unwrap() else { return };
        match msg {
            RmsMsg::Start => self.on_start(ctx),
            RmsMsg::JobArrival(j) => self.on_job_arrival(ctx, j),
            RmsMsg::TaskFinish { task_idx, generation } => {
                self.on_task_finish(ctx, task_idx, generation)
            }
            RmsMsg::MachineFail(m) => self.machine_fail(ctx, m),
            RmsMsg::MachineRepair(m) => self.machine_repair(ctx, m),
            RmsMsg::PolicyTick => self.on_policy_tick(ctx),
            RmsMsg::NextOutage => self.on_next_outage(ctx),
            RmsMsg::Requeue(ti) => self.on_requeue(ctx, ti),
        }
        // A dispatch pass after every event, mirroring the queue-length
        // gauge at the same instant.
        self.dispatch(ctx);
        let now = ctx.now();
        self.qlen.set(now, self.queue.len() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_infra::cluster::ClusterId;
    use mcs_infra::machine::MachineSpec;
    use mcs_workload::task::{JobId, JobKind, Task, UserId};

    fn cluster(machines: u32, cores: f64) -> Cluster {
        Cluster::homogeneous(
            ClusterId(0),
            "test",
            MachineSpec::commodity("std", cores, cores * 4.0),
            machines,
        )
    }

    fn bag(job_id: u64, submit: u64, tasks: &[(f64, f64)]) -> Job {
        // tasks: (demand, cores)
        Job {
            id: JobId(job_id),
            user: UserId(0),
            kind: JobKind::BagOfTasks,
            submit: SimTime::from_secs(submit),
            tasks: tasks
                .iter()
                .enumerate()
                .map(|(i, &(demand, cores))| {
                    Task::independent(
                        TaskId(job_id * 1000 + i as u64),
                        JobId(job_id),
                        demand,
                        ResourceVector::new(cores, cores),
                    )
                })
                .collect(),
        }
    }

    fn run(
        cluster: Cluster,
        config: SchedulerConfig,
        jobs: Vec<Job>,
    ) -> ScheduleOutcome {
        ClusterScheduler::new(cluster, config, 1).run(jobs, SimTime::from_secs(1_000_000))
    }

    #[test]
    fn single_task_runtime_exact() {
        let out = run(cluster(1, 4.0), SchedulerConfig::default(), vec![bag(0, 0, &[(40.0, 4.0)])]);
        assert_eq!(out.completions.len(), 1);
        assert_eq!(out.makespan, SimDuration::from_secs(10));
        assert_eq!(out.unfinished, 0);
    }

    #[test]
    fn parallel_tasks_share_cluster() {
        // 4 machines x 4 cores; 4 tasks of 4 cores, 10 s each: all parallel.
        let out = run(
            cluster(4, 4.0),
            SchedulerConfig::default(),
            vec![bag(0, 0, &[(40.0, 4.0), (40.0, 4.0), (40.0, 4.0), (40.0, 4.0)])],
        );
        assert_eq!(out.makespan, SimDuration::from_secs(10));
    }

    #[test]
    fn serialization_when_cluster_too_small() {
        // 1 machine; 2 tasks that each need the whole machine: serial.
        let out = run(
            cluster(1, 4.0),
            SchedulerConfig::default(),
            vec![bag(0, 0, &[(40.0, 4.0), (40.0, 4.0)])],
        );
        assert_eq!(out.makespan, SimDuration::from_secs(20));
    }

    #[test]
    fn dependencies_respected() {
        let mut job = bag(0, 0, &[(40.0, 4.0), (40.0, 4.0)]);
        job.kind = JobKind::Workflow;
        let dep = job.tasks[0].id;
        job.tasks[1].dependencies.push(dep);
        // Plenty of machines, but the chain forces 20 s.
        let out = run(cluster(4, 4.0), SchedulerConfig::default(), vec![job]);
        assert_eq!(out.makespan, SimDuration::from_secs(20));
        let c0 = out.completions.iter().find(|c| c.task == TaskId(0)).unwrap();
        let c1 = out.completions.iter().find(|c| c.task == TaskId(1)).unwrap();
        assert!(c1.start >= c0.finish);
    }

    #[test]
    fn sjf_reduces_mean_response_vs_ljf() {
        // One 1-core machine, one long and many short tasks at t=0.
        let mut tasks = vec![(1000.0, 1.0)];
        for _ in 0..10 {
            tasks.push((10.0, 1.0));
        }
        let mk = |queue| SchedulerConfig { queue, backfill: false, ..Default::default() };
        let sjf = run(cluster(1, 1.0), mk(QueuePolicy::Sjf), vec![bag(0, 0, &tasks)]);
        let ljf = run(cluster(1, 1.0), mk(QueuePolicy::Ljf), vec![bag(0, 0, &tasks)]);
        assert!(sjf.mean_response_secs() < ljf.mean_response_secs() / 2.0);
        // Same makespan either way.
        assert_eq!(sjf.makespan, ljf.makespan);
    }

    #[test]
    fn backfill_improves_utilization() {
        // Machine of 4 cores. Queue: [4-core 10 s] [4-core 10 s] [1-core 5 s].
        // FCFS w/o backfill: the 1-core task waits; with backfill it cannot
        // help here (head fits). Use a blocking pattern instead:
        // t0: 3-core 100 s running; head needs 4 cores (blocked until 100);
        // backfill candidate: 1-core 50 s fits and finishes before 100.
        let jobs = vec![
            bag(0, 0, &[(300.0, 3.0)]), // occupies 3 cores until t=100
            bag(1, 1, &[(400.0, 4.0)]), // head, blocked until t=100
            bag(2, 2, &[(50.0, 1.0)]),  // backfill candidate
        ];
        let with = run(
            cluster(1, 4.0),
            SchedulerConfig { backfill: true, queue: QueuePolicy::Fcfs, ..Default::default() },
            jobs.clone(),
        );
        let without = run(
            cluster(1, 4.0),
            SchedulerConfig { backfill: false, queue: QueuePolicy::Fcfs, ..Default::default() },
            jobs,
        );
        let bf_with = with.completions.iter().find(|c| c.job == JobId(2)).unwrap();
        let bf_without = without.completions.iter().find(|c| c.job == JobId(2)).unwrap();
        assert!(
            bf_with.finish < bf_without.finish,
            "backfill should finish the small task earlier ({} vs {})",
            bf_with.finish,
            bf_without.finish
        );
        // Backfill must not delay the blocked head.
        let head_with = with.completions.iter().find(|c| c.job == JobId(1)).unwrap();
        let head_without = without.completions.iter().find(|c| c.job == JobId(1)).unwrap();
        assert_eq!(head_with.finish, head_without.finish);
    }

    #[test]
    fn failure_requeues_task() {
        let outage = Outage {
            machine: 0,
            fail_at: SimTime::from_secs(5),
            repair_at: SimTime::from_secs(6),
        };
        let mut sched = ClusterScheduler::new(
            cluster(1, 4.0),
            SchedulerConfig { checkpoint_factor: 0.0, ..Default::default() },
            1,
        )
        .with_outages(vec![outage]);
        let out = sched.run(vec![bag(0, 0, &[(40.0, 4.0)])], SimTime::from_secs(10_000));
        assert_eq!(out.failure_requeues, 1);
        assert_eq!(out.unfinished, 0);
        // Restarted from scratch at t=6: finishes at 16.
        assert_eq!(out.makespan, SimDuration::from_secs(16));
    }

    #[test]
    fn checkpointing_preserves_progress() {
        let outage = Outage {
            machine: 0,
            fail_at: SimTime::from_secs(5),
            repair_at: SimTime::from_secs(6),
        };
        let mut sched = ClusterScheduler::new(
            cluster(1, 4.0),
            SchedulerConfig { checkpoint_factor: 1.0, ..Default::default() },
            1,
        )
        .with_outages(vec![outage]);
        let out = sched.run(vec![bag(0, 0, &[(40.0, 4.0)])], SimTime::from_secs(10_000));
        // 5 s of work done, 5 s left, resumes at 6: finishes at 11.
        assert_eq!(out.makespan, SimDuration::from_secs(11));
    }

    #[test]
    fn checkpoint_factor_is_validated_and_clamped() {
        // validate(): errors outside [0, 1], passes inside.
        for bad in [-0.1, 1.5, f64::NAN] {
            let cfg = SchedulerConfig { checkpoint_factor: bad, ..Default::default() };
            assert!(cfg.validate().is_err(), "checkpoint_factor {bad} must be rejected");
        }
        for ok in [0.0, 0.5, 1.0] {
            let cfg = SchedulerConfig { checkpoint_factor: ok, ..Default::default() };
            assert_eq!(cfg.validate().unwrap().checkpoint_factor, ok);
        }
        // Constructors clamp: factor 5.0 behaves exactly like 1.0 (perfect
        // checkpointing finishes at 11 s, see checkpointing_preserves_progress).
        let outage = Outage {
            machine: 0,
            fail_at: SimTime::from_secs(5),
            repair_at: SimTime::from_secs(6),
        };
        let mut sched = ClusterScheduler::new(
            cluster(1, 4.0),
            SchedulerConfig { checkpoint_factor: 5.0, ..Default::default() },
            1,
        )
        .with_outages(vec![outage]);
        let out = sched.run(vec![bag(0, 0, &[(40.0, 4.0)])], SimTime::from_secs(10_000));
        assert_eq!(out.makespan, SimDuration::from_secs(11));
    }

    #[test]
    fn restart_requeues_after_backoff_not_instantly() {
        use mcs_simcore::resilience::{Backoff, RetryPolicy};

        let outage = Outage {
            machine: 0,
            fail_at: SimTime::from_secs(5),
            repair_at: SimTime::from_secs(6),
        };
        let restart = RestartConfig {
            backoff: RetryPolicy {
                backoff: Backoff::Fixed(SimDuration::from_secs(10)),
                max_attempts: 4,
            },
            checkpoint_factor: 1.0,
        };
        let mut cl = cluster(1, 4.0);
        let mut cfg = SchedulerConfig::default();
        let mut rng = RngStream::new(1, "scheduler");
        let horizon = SimTime::from_secs(10_000);
        let mut actor =
            SchedulerActor::new(&mut cl, &mut cfg, &mut rng, vec![bag(0, 0, &[(40.0, 4.0)])], horizon)
                .with_outages(vec![outage])
                .with_restart(restart);
        let mut sim: Simulation<'_, RmsMsg> = Simulation::new(1);
        sim.set_horizon(horizon);
        let id = sim.add_actor(&mut actor);
        sim.schedule(SimTime::ZERO, id, RmsMsg::Start);
        sim.run();
        assert_eq!(sim.trace().count("rms", "requeue_scheduled"), 1);
        assert_eq!(sim.trace().count("rms", "checkpoint_restore"), 1);
        drop(sim);
        let out = actor.outcome();
        // Killed at 5 s with 5 s of work left (perfect checkpoint); the
        // requeue lands at 5 + 10 = 15 s, so the task finishes at 20 s —
        // not 11 s as with the instant requeue.
        assert_eq!(out.makespan, SimDuration::from_secs(20));
        assert_eq!(out.failure_requeues, 1);
        assert_eq!(out.abandoned, 0);
    }

    #[test]
    fn restart_budget_exhaustion_abandons_the_task() {
        use mcs_simcore::resilience::{Backoff, RetryPolicy};

        // max_attempts 1: the first kill already exhausts the budget.
        let restart = RestartConfig {
            backoff: RetryPolicy {
                backoff: Backoff::Fixed(SimDuration::from_secs(1)),
                max_attempts: 1,
            },
            checkpoint_factor: 0.0,
        };
        let outage = Outage {
            machine: 0,
            fail_at: SimTime::from_secs(5),
            repair_at: SimTime::from_secs(6),
        };
        let mut cl = cluster(1, 4.0);
        let mut cfg = SchedulerConfig::default();
        let mut rng = RngStream::new(1, "scheduler");
        let horizon = SimTime::from_secs(10_000);
        let mut actor =
            SchedulerActor::new(&mut cl, &mut cfg, &mut rng, vec![bag(0, 0, &[(40.0, 4.0)])], horizon)
                .with_outages(vec![outage])
                .with_restart(restart);
        let mut sim: Simulation<'_, RmsMsg> = Simulation::new(1);
        sim.set_horizon(horizon);
        let id = sim.add_actor(&mut actor);
        sim.schedule(SimTime::ZERO, id, RmsMsg::Start);
        sim.run();
        assert_eq!(sim.trace().count("rms", "task_abandoned"), 1);
        assert_eq!(sim.trace().count("rms", "requeue_scheduled"), 0);
        drop(sim);
        let out = actor.outcome();
        assert_eq!(out.abandoned, 1);
        assert_eq!(out.unfinished, 1, "the abandoned task never completes");
        assert!(out.completions.is_empty());
    }

    #[test]
    fn restart_budget_spends_every_attempt_before_abandoning() {
        use mcs_simcore::resilience::{Backoff, RetryPolicy};

        // max_attempts 3 with no checkpointing: each kill restarts the task
        // from scratch after a 10 s fixed delay; the third kill exhausts the
        // budget. The 40 core-sec task runs 10 s on the 4-core machine, so
        // outages at 5, 20, and 35 s each catch it mid-run (requeues land at
        // 15 and 30 s).
        let restart = RestartConfig {
            backoff: RetryPolicy {
                backoff: Backoff::Fixed(SimDuration::from_secs(10)),
                max_attempts: 3,
            },
            checkpoint_factor: 0.0,
        };
        let outages: Vec<Outage> = [5u64, 20, 35]
            .iter()
            .map(|&s| Outage {
                machine: 0,
                fail_at: SimTime::from_secs(s),
                repair_at: SimTime::from_secs(s + 1),
            })
            .collect();
        let mut cl = cluster(1, 4.0);
        let mut cfg = SchedulerConfig::default();
        let mut rng = RngStream::new(1, "scheduler");
        let horizon = SimTime::from_secs(10_000);
        let mut actor =
            SchedulerActor::new(&mut cl, &mut cfg, &mut rng, vec![bag(0, 0, &[(40.0, 4.0)])], horizon)
                .with_outages(outages)
                .with_restart(restart);
        let mut sim: Simulation<'_, RmsMsg> = Simulation::new(1);
        sim.set_horizon(horizon);
        let id = sim.add_actor(&mut actor);
        sim.schedule(SimTime::ZERO, id, RmsMsg::Start);
        sim.run();

        // Attempts 1 and 2 restart; attempt 3 abandons.
        assert_eq!(sim.trace().count("rms", "requeue_scheduled"), 2);
        assert_eq!(sim.trace().count("rms", "checkpoint_restore"), 2);
        let abandoned = sim.trace().select("rms", "task_abandoned");
        assert_eq!(abandoned.len(), 1);
        assert_eq!(
            abandoned[0].field_f64("attempts"),
            Some(3.0),
            "the abandon event records the exhausted budget"
        );
        // The budget is terminal: nothing is scheduled after the abandon,
        // and the only task never finishes.
        let abandon_at = abandoned[0].at;
        for event in ["requeue_scheduled", "checkpoint_restore"] {
            for e in sim.trace().select("rms", event) {
                assert!(e.at < abandon_at, "{event} after task_abandoned");
            }
        }
        assert_eq!(sim.trace().count("rms", "task_finish"), 0);
        drop(sim);
        let out = actor.outcome();
        assert_eq!(out.failure_requeues, 3, "all three kills are counted");
        assert_eq!(out.abandoned, 1);
        assert_eq!(out.unfinished, 1, "the abandoned task is permanently failed");
        assert!(out.completions.is_empty());
    }

    #[test]
    fn deadline_misses_counted() {
        let mut job = bag(0, 0, &[(40.0, 4.0), (40.0, 4.0)]);
        for t in &mut job.tasks {
            t.deadline = Some(SimDuration::from_secs(15));
        }
        // 1 machine: second task finishes at 20 > 15.
        let out = run(cluster(1, 4.0), SchedulerConfig::default(), vec![job]);
        assert_eq!(out.deadline_misses, 1);
    }

    #[test]
    fn utilization_accounts_busy_time() {
        // One 4-core machine busy 10 of 20 s at full width.
        let jobs = vec![bag(0, 0, &[(40.0, 4.0)]), bag(1, 10, &[(0.04, 4.0)])];
        let out = run(cluster(1, 4.0), SchedulerConfig::default(), jobs);
        assert!(out.mean_utilization > 0.9, "util = {}", out.mean_utilization);
    }

    #[test]
    fn deterministic_given_seed() {
        let jobs: Vec<Job> = (0..20).map(|i| bag(i, i, &[(30.0, 2.0), (20.0, 1.0)])).collect();
        let cfg = SchedulerConfig { allocation: AllocationPolicy::Random, ..Default::default() };
        let a = ClusterScheduler::new(cluster(3, 4.0), cfg, 5)
            .run(jobs.clone(), SimTime::from_secs(100_000));
        let b = ClusterScheduler::new(cluster(3, 4.0), cfg, 5)
            .run(jobs, SimTime::from_secs(100_000));
        assert_eq!(a, b);
    }

    #[test]
    fn horizon_leaves_tasks_unfinished() {
        let out = ClusterScheduler::new(cluster(1, 1.0), SchedulerConfig::default(), 1)
            .run(vec![bag(0, 0, &[(1_000_000.0, 1.0)])], SimTime::from_secs(10));
        assert_eq!(out.unfinished, 1);
        assert!(out.completions.is_empty());
    }

    #[test]
    fn scheduler_emits_lifecycle_trace() {
        // Drive the actor through an explicit Simulation to observe the bus.
        let mut cl = cluster(1, 4.0);
        let mut cfg = SchedulerConfig::default();
        let mut rng = RngStream::new(1, "scheduler");
        let horizon = SimTime::from_secs(1_000);
        let mut actor = SchedulerActor::new(
            &mut cl,
            &mut cfg,
            &mut rng,
            vec![bag(0, 0, &[(40.0, 4.0)])],
            horizon,
        );
        let mut sim: Simulation<'_, RmsMsg> = Simulation::new(1);
        sim.set_horizon(horizon);
        let id = sim.add_actor(&mut actor);
        sim.schedule(SimTime::ZERO, id, RmsMsg::Start);
        sim.run();
        assert_eq!(sim.trace().count("rms", "job_arrival"), 1);
        assert_eq!(sim.trace().count("rms", "task_start"), 1);
        assert_eq!(sim.trace().count("rms", "task_finish"), 1);
        let finish = sim.trace().select("rms", "task_finish")[0];
        assert_eq!(finish.at, SimTime::from_secs(10));
        assert_eq!(finish.field_f64("response_secs"), Some(10.0));
        drop(sim);
        assert_eq!(actor.outcome().completions.len(), 1);
    }
}
