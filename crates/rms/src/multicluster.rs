//! Federated multi-cluster scheduling: routing and offloading.
//!
//! The provisioning half of the dual problem (C7) and the federation
//! challenge (C10): jobs are routed across geo-distributed clusters at
//! submission, optionally offloaded away from an overloaded home cluster,
//! with wide-area transfer delay charged on remote placement.

use crate::scheduler::{ClusterScheduler, ScheduleOutcome, SchedulerConfig};
use mcs_infra::cluster::{Cluster, DatacenterId};
use mcs_infra::network::Topology;
use mcs_simcore::time::SimTime;
use mcs_workload::task::Job;

/// How jobs are routed across the federation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RoutingPolicy {
    /// Cycle through clusters regardless of load.
    RoundRobin,
    /// Send each job to the cluster with the least estimated backlog
    /// (outstanding core-seconds divided by core capacity).
    LeastBacklog,
    /// Keep jobs at the user's home cluster until its estimated backlog
    /// exceeds `threshold_secs`, then offload to the least-backlogged remote
    /// (the offloading technique of C7).
    LocalFirstOffload {
        /// Backlog (seconds of work per core) above which jobs leave home.
        threshold_secs: f64,
    },
    /// Always the user's home cluster (the no-federation baseline).
    HomeOnly,
}

impl RoutingPolicy {
    /// A short stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            RoutingPolicy::RoundRobin => "round-robin",
            RoutingPolicy::LeastBacklog => "least-backlog",
            RoutingPolicy::LocalFirstOffload { .. } => "offload",
            RoutingPolicy::HomeOnly => "home-only",
        }
    }
}

/// The outcome of a federated run.
#[derive(Debug, Clone, PartialEq)]
pub struct FederationOutcome {
    /// Per-cluster scheduling outcomes, in cluster order.
    pub per_cluster: Vec<ScheduleOutcome>,
    /// Jobs routed to each cluster.
    pub jobs_per_cluster: Vec<usize>,
    /// Jobs placed away from their home cluster.
    pub offloaded_jobs: usize,
    /// Total data-transfer delay charged on offloaded jobs, seconds.
    pub transfer_delay_secs: f64,
}

impl FederationOutcome {
    /// Mean response time across all completions, seconds.
    pub fn mean_response_secs(&self) -> f64 {
        let (sum, n) = self.per_cluster.iter().fold((0.0, 0usize), |(s, n), o| {
            (
                s + o.completions.iter().map(|c| c.response_time().as_secs_f64()).sum::<f64>(),
                n + o.completions.len(),
            )
        });
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Total completed tasks.
    pub fn completed(&self) -> usize {
        self.per_cluster.iter().map(|o| o.completions.len()).sum()
    }

    /// Total unfinished tasks.
    pub fn unfinished(&self) -> usize {
        self.per_cluster.iter().map(|o| o.unfinished).sum()
    }
}

/// A federation of clusters at different sites, joined by a topology.
#[derive(Debug)]
pub struct Federation {
    clusters: Vec<Cluster>,
    sites: Vec<DatacenterId>,
    topology: Topology,
    config: SchedulerConfig,
    policy: RoutingPolicy,
    /// Mean bytes a job must move when placed off-site.
    pub job_input_bytes: u64,
    seed: u64,
}

impl Federation {
    /// Creates a federation; `sites[i]` is the site of `clusters[i]` in
    /// `topology`.
    ///
    /// # Panics
    /// Panics when `clusters` and `sites` lengths differ or are empty.
    pub fn new(
        clusters: Vec<Cluster>,
        sites: Vec<DatacenterId>,
        topology: Topology,
        config: SchedulerConfig,
        policy: RoutingPolicy,
        seed: u64,
    ) -> Self {
        assert!(!clusters.is_empty(), "federation needs clusters");
        assert_eq!(clusters.len(), sites.len(), "one site per cluster");
        Federation {
            clusters,
            sites,
            topology,
            config,
            policy,
            job_input_bytes: 256 << 20,
            seed,
        }
    }

    /// Routes and runs `jobs` (each user has a home cluster
    /// `user.0 % clusters`), returning the merged outcome.
    pub fn run(&mut self, jobs: Vec<Job>, horizon: SimTime) -> FederationOutcome {
        let n = self.clusters.len();
        let capacities: Vec<f64> =
            self.clusters.iter().map(|c| c.capacity().cpu_cores.max(1e-9)).collect();
        // Fluid backlog estimate per cluster, in core-seconds.
        let mut backlog = vec![0.0f64; n];
        let mut last_at = SimTime::ZERO;
        let mut rr = 0usize;
        let mut routed: Vec<Vec<Job>> = vec![Vec::new(); n];
        let mut offloaded = 0usize;
        let mut transfer_delay_secs = 0.0f64;

        let mut jobs = jobs;
        jobs.sort_by_key(|j| (j.submit, j.id));
        for mut job in jobs {
            // Drain backlog since the previous arrival.
            let dt = job.submit.saturating_since(last_at).as_secs_f64();
            last_at = job.submit;
            for (b, cap) in backlog.iter_mut().zip(&capacities) {
                *b = (*b - cap * dt).max(0.0);
            }
            let home = (job.user.0 as usize) % n;
            let least = (0..n)
                .min_by(|&a, &b| {
                    let sa = backlog[a] / capacities[a];
                    let sb = backlog[b] / capacities[b];
                    sa.partial_cmp(&sb).unwrap_or(std::cmp::Ordering::Equal)
                })
                .unwrap_or(home);
            let target = match self.policy {
                RoutingPolicy::RoundRobin => {
                    rr = (rr + 1) % n;
                    rr
                }
                RoutingPolicy::LeastBacklog => least,
                RoutingPolicy::HomeOnly => home,
                RoutingPolicy::LocalFirstOffload { threshold_secs } => {
                    if backlog[home] / capacities[home] > threshold_secs && least != home {
                        least
                    } else {
                        home
                    }
                }
            };
            if target != home {
                offloaded += 1;
                // Charge the wide-area transfer by delaying the submission.
                if let Some(dt) = self.topology.transfer_time(
                    self.sites[home],
                    self.sites[target],
                    self.job_input_bytes,
                ) {
                    transfer_delay_secs += dt.as_secs_f64();
                    job.submit += dt;
                    for t in &mut job.tasks {
                        // Deadlines are relative to original submission.
                        if let Some(d) = &mut t.deadline {
                            *d = d.saturating_sub(dt);
                        }
                    }
                }
            }
            backlog[target] += job.total_demand();
            routed[target].push(job);
        }

        let jobs_per_cluster: Vec<usize> = routed.iter().map(Vec::len).collect();
        let mut per_cluster = Vec::with_capacity(n);
        for (i, cluster_jobs) in routed.into_iter().enumerate() {
            let cluster = self.clusters[i].clone();
            let mut sched =
                ClusterScheduler::new(cluster, self.config, self.seed.wrapping_add(i as u64));
            per_cluster.push(sched.run(cluster_jobs, horizon));
        }
        FederationOutcome { per_cluster, jobs_per_cluster, offloaded_jobs: offloaded, transfer_delay_secs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_infra::cluster::ClusterId;
    use mcs_infra::machine::MachineSpec;
    use mcs_infra::network::Link;
    use mcs_infra::resource::ResourceVector;
    use mcs_simcore::time::SimDuration;
    use mcs_workload::task::{JobId, JobKind, Task, TaskId, UserId};

    fn cluster(n: u32) -> Cluster {
        Cluster::homogeneous(ClusterId(0), "c", MachineSpec::commodity("std-4", 4.0, 16.0), n)
    }

    fn topology() -> Topology {
        let mut t = Topology::new(2);
        t.connect(
            DatacenterId(0),
            DatacenterId(1),
            Link { latency: SimDuration::from_millis(50), bandwidth_gbps: 10.0 },
        );
        t
    }

    fn job(id: u64, user: u32, submit: u64, demand: f64) -> Job {
        Job {
            id: JobId(id),
            user: UserId(user),
            kind: JobKind::BagOfTasks,
            submit: SimTime::from_secs(submit),
            tasks: vec![Task::independent(
                TaskId(id),
                JobId(id),
                demand,
                ResourceVector::new(2.0, 4.0),
            )],
        }
    }

    fn federation(policy: RoutingPolicy) -> Federation {
        Federation::new(
            vec![cluster(2), cluster(2)],
            vec![DatacenterId(0), DatacenterId(1)],
            topology(),
            SchedulerConfig::default(),
            policy,
            42,
        )
    }

    #[test]
    fn round_robin_balances_counts() {
        let jobs: Vec<Job> = (0..40).map(|i| job(i, 0, i, 60.0)).collect();
        let out = federation(RoutingPolicy::RoundRobin).run(jobs, SimTime::from_secs(100_000));
        assert_eq!(out.jobs_per_cluster, vec![20, 20]);
        assert_eq!(out.completed(), 40);
    }

    #[test]
    fn home_only_keeps_users_local() {
        let jobs: Vec<Job> = (0..20).map(|i| job(i, (i % 2) as u32, i, 60.0)).collect();
        let out = federation(RoutingPolicy::HomeOnly).run(jobs, SimTime::from_secs(100_000));
        assert_eq!(out.offloaded_jobs, 0);
        assert_eq!(out.jobs_per_cluster, vec![10, 10]);
    }

    #[test]
    fn offload_relieves_hot_home_cluster() {
        // All users live on cluster 0; a burst overloads it.
        let jobs: Vec<Job> = (0..40).map(|i| job(i, 0, 0, 400.0)).collect();
        let horizon = SimTime::from_secs(1_000_000);
        let home = federation(RoutingPolicy::HomeOnly).run(jobs.clone(), horizon);
        let off = federation(RoutingPolicy::LocalFirstOffload { threshold_secs: 60.0 })
            .run(jobs, horizon);
        assert!(off.offloaded_jobs > 0);
        assert!(off.transfer_delay_secs > 0.0);
        assert!(
            off.mean_response_secs() < home.mean_response_secs() * 0.75,
            "offload {} vs home {}",
            off.mean_response_secs(),
            home.mean_response_secs()
        );
    }

    #[test]
    fn least_backlog_beats_home_only_under_skew() {
        let jobs: Vec<Job> = (0..40).map(|i| job(i, 0, i, 300.0)).collect();
        let horizon = SimTime::from_secs(1_000_000);
        let home = federation(RoutingPolicy::HomeOnly).run(jobs.clone(), horizon);
        let lb = federation(RoutingPolicy::LeastBacklog).run(jobs, horizon);
        assert!(lb.mean_response_secs() < home.mean_response_secs());
    }

    #[test]
    #[should_panic(expected = "one site per cluster")]
    fn mismatched_sites_rejected() {
        let _ = Federation::new(
            vec![cluster(1)],
            vec![],
            topology(),
            SchedulerConfig::default(),
            RoutingPolicy::RoundRobin,
            1,
        );
    }
}
