//! Minimal-reproducer extraction by delta debugging.
//!
//! [`ddmin`] is Zeller-style delta debugging over an arbitrary item slice:
//! given a failing input (a fault schedule whose run violates an invariant)
//! and an oracle that replays a candidate subset, it returns a subset that
//! still fails but is *1-minimal* — removing any single remaining item makes
//! the violation disappear. Because every simulation run is deterministic,
//! the oracle is a pure function of the candidate schedule, so shrinking is
//! reproducible and the shrunk schedule replays to the same violation
//! forever.

/// Delta-debugging minimisation of a failing item list.
///
/// `oracle(candidate)` must return `true` when the candidate still exhibits
/// the failure. `items` itself is expected to fail; if it does not, it is
/// returned unchanged (there is nothing coherent to shrink). The result is
/// 1-minimal with respect to the oracle.
pub fn ddmin<T: Clone>(items: &[T], mut oracle: impl FnMut(&[T]) -> bool) -> Vec<T> {
    let mut current: Vec<T> = items.to_vec();
    if current.is_empty() || !oracle(&current) {
        return current;
    }
    let mut granularity = 2usize;
    while current.len() >= 2 {
        let chunks = chunk_ranges(current.len(), granularity);
        let mut reduced = false;

        // Try each chunk alone, then each complement.
        for &(start, end) in &chunks {
            let subset: Vec<T> = current[start..end].to_vec();
            if subset.len() < current.len() && oracle(&subset) {
                current = subset;
                granularity = 2;
                reduced = true;
                break;
            }
        }
        if !reduced && granularity > 2 {
            for &(start, end) in &chunks {
                let complement: Vec<T> = current[..start]
                    .iter()
                    .chain(current[end..].iter())
                    .cloned()
                    .collect();
                if !complement.is_empty()
                    && complement.len() < current.len()
                    && oracle(&complement)
                {
                    current = complement;
                    granularity = (granularity - 1).max(2);
                    reduced = true;
                    break;
                }
            }
        }
        if !reduced {
            if granularity >= current.len() {
                break; // 1-minimal: no single chunk or complement fails.
            }
            granularity = (granularity * 2).min(current.len());
        }
    }
    current
}

/// Splits `len` items into `n` contiguous, non-empty ranges.
fn chunk_ranges(len: usize, n: usize) -> Vec<(usize, usize)> {
    let n = n.min(len).max(1);
    let base = len / n;
    let extra = len % n;
    let mut ranges = Vec::with_capacity(n);
    let mut start = 0;
    for i in 0..n {
        let width = base + usize::from(i < extra);
        ranges.push((start, start + width));
        start += width;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_exactly_without_gaps() {
        for len in 1..20 {
            for n in 1..25 {
                let ranges = chunk_ranges(len, n);
                assert_eq!(ranges.first().unwrap().0, 0);
                assert_eq!(ranges.last().unwrap().1, len);
                for pair in ranges.windows(2) {
                    assert_eq!(pair[0].1, pair[1].0);
                }
                assert!(ranges.iter().all(|&(s, e)| e > s), "empty range in {ranges:?}");
            }
        }
    }

    #[test]
    fn shrinks_to_the_single_culprit() {
        let items: Vec<u32> = (0..32).collect();
        let mut calls = 0;
        let minimal = ddmin(&items, |subset| {
            calls += 1;
            subset.contains(&19)
        });
        assert_eq!(minimal, vec![19]);
        assert!(calls < 200, "ddmin used {calls} oracle calls");
    }

    #[test]
    fn shrinks_to_a_pair_of_interacting_culprits() {
        let items: Vec<u32> = (0..24).collect();
        let minimal = ddmin(&items, |s| s.contains(&3) && s.contains(&17));
        assert_eq!(minimal, vec![3, 17]);
    }

    #[test]
    fn result_is_one_minimal() {
        let items: Vec<u32> = (0..16).collect();
        let oracle = |s: &[u32]| s.iter().filter(|&&x| x % 3 == 0).count() >= 2;
        let minimal = ddmin(&items, oracle);
        assert!(oracle(&minimal));
        for i in 0..minimal.len() {
            let mut reduced = minimal.clone();
            reduced.remove(i);
            assert!(!oracle(&reduced), "removing {i} from {minimal:?} still fails");
        }
    }

    #[test]
    fn non_failing_input_returns_unchanged() {
        let items = vec![1, 2, 3];
        assert_eq!(ddmin(&items, |_| false), items);
        assert_eq!(ddmin::<u32>(&[], |_| true), Vec::<u32>::new());
    }

    #[test]
    fn preserves_relative_order() {
        let items: Vec<u32> = (0..12).collect();
        let minimal = ddmin(&items, |s| {
            let pos2 = s.iter().position(|&x| x == 2);
            let pos9 = s.iter().position(|&x| x == 9);
            matches!((pos2, pos9), (Some(a), Some(b)) if a < b)
        });
        assert_eq!(minimal, vec![2, 9]);
    }
}
