//! Chaos engineering for the composed ecosystem: scripted fault schedules,
//! machine-checked invariants over the trace bus, and a campaign driver
//! that shrinks violating schedules to minimal reproducers.
//!
//! The paper's engineering pitch is that ecosystem resilience claims must
//! hold *under composition*, not just in per-subsystem unit tests. This
//! crate is the adversarial half of that claim:
//!
//! - [`schedule`] — a serializable [`schedule::FaultSchedule`] (a list of
//!   `(at, target, fault, duration)` entries covering crash, slowdown,
//!   gray, and partition faults) that the scenario's failure injector
//!   replays *exactly*, replacing the stochastic outage generator for
//!   campaign runs while the legacy random mode stays byte-identical;
//! - [`invariant`] — an [`invariant::Invariant`] trait evaluated over the
//!   [`mcs_simcore::trace::TraceBus`], with built-in monitors for flow
//!   conservation, FaaS invocation termination, restart-budget compliance,
//!   breaker recovery, post-restore drain, fault-window closure, and
//!   per-component timestamp monotonicity;
//! - [`campaign`] — a seed-swept grid of schedules fanned out in parallel
//!   (`mcs_simcore::par`), collecting invariant violations and recovery
//!   statistics;
//! - [`shrink`] — ddmin-style delta debugging that reduces a violating
//!   schedule to a minimal JSON reproducer which replays deterministically.

pub mod campaign;
pub mod invariant;
pub mod schedule;
pub mod shrink;

pub use campaign::{Campaign, CampaignReport, RunResult};
pub use invariant::{builtin_suite, check_all, Invariant, InvariantCx, Violation};
pub use schedule::{FaultSchedule, ScheduledFault};
pub use shrink::ddmin;
