//! The chaos campaign driver: a seed-swept grid of fault schedules, run in
//! parallel, checked against the invariant suite, with violating schedules
//! shrunk to minimal reproducers.
//!
//! A [`Campaign`] is `schedules × seeds` scripted scenario runs. Each run
//! replaces the base configuration's stochastic failure generator with one
//! explicit [`FaultSchedule`] (everything else — workload, topology,
//! resilience budgets — stays as configured), replays it deterministically,
//! and evaluates the full built-in invariant suite over the resulting
//! trace. The grid fans out over `mcs_simcore::par`, which returns results
//! in grid order regardless of worker count, so a campaign report is
//! byte-stable for a given `(base, schedules, seeds)` triple.
//!
//! When a run violates an invariant, [`shrink_violation`] delta-debugs the
//! schedule down to a 1-minimal reproducer: the smallest sub-schedule that
//! still trips the same invariant under the same seed. Because runs are
//! deterministic, the reproducer's JSON form replays the violation exactly.

use crate::invariant::{check_all, InvariantCx, Violation};
use crate::schedule::FaultSchedule;
use crate::shrink::ddmin;
use mcs_core::scenario::{FailureConfig, Scenario, ScenarioConfig};
use mcs_simcore::error::McsError;
use mcs_simcore::par;
use std::collections::BTreeMap;

/// The base configuration with one scripted schedule swapped in: the seed is
/// replaced, the failure slice replays exactly `schedule`, and every other
/// knob (including the stochastic generator's parameters, which scripted
/// mode ignores) is preserved.
pub fn scripted_config(
    base: &ScenarioConfig,
    schedule: &FaultSchedule,
    seed: u64,
) -> Result<ScenarioConfig, McsError> {
    let faults = schedule.to_faults()?;
    let mut cfg = base.clone();
    cfg.seed = seed;
    cfg.failure = Some(match &base.failure {
        Some(failure) => FailureConfig { schedule: Some(faults), ..failure.clone() },
        None => FailureConfig::scripted(faults),
    });
    Ok(cfg)
}

/// One grid cell's outcome: the violations found plus the recovery
/// statistics the campaign report aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Index of the schedule in the campaign's grid.
    pub schedule_index: usize,
    /// Master seed of the run.
    pub seed: u64,
    /// Invariant violations found on the trace (empty: a clean run).
    pub violations: Vec<Violation>,
    /// Flows the fabric aborted after stalling on a cut endpoint.
    pub flows_aborted: u64,
    /// Total seconds flows lost to contention, faults, and degraded links.
    pub stall_secs: f64,
    /// Longest single-flow wait observed (seconds): worst-case transfer
    /// recovery time.
    pub worst_flow_wait_secs: f64,
    /// Longest breaker open→closed gap observed (seconds): worst-case
    /// service recovery time.
    pub worst_breaker_open_secs: f64,
}

/// Runs one scripted scenario and checks the invariant suite over its trace.
///
/// The `schedule_index` of the returned result is `0`; the campaign grid
/// overwrites it with the cell's position.
pub fn run_one(
    base: &ScenarioConfig,
    schedule: &FaultSchedule,
    seed: u64,
) -> Result<RunResult, McsError> {
    let cfg = scripted_config(base, schedule, seed)?;
    let cx = InvariantCx::from_config(&cfg);
    let outcome = Scenario::try_new(cfg)?.run();
    let violations = check_all(&outcome.trace, &cx);

    let worst_flow_wait_secs = ["flow_end", "flow_aborted"]
        .iter()
        .flat_map(|event| outcome.trace.select("net", event))
        .filter_map(|e| e.field_f64("waited_secs"))
        .fold(0.0f64, f64::max);

    // Worst open→closed gap per breaker: how long any function's circuit
    // stayed tripped before recovering.
    let mut open_since: BTreeMap<String, f64> = BTreeMap::new();
    let mut worst_breaker_open_secs = 0.0f64;
    for e in outcome.trace.select("faas", "breaker") {
        let Some(function) = e.field_str("function") else { continue };
        match e.field_str("state") {
            Some("open") => {
                open_since.entry(function.to_owned()).or_insert(e.at.as_secs_f64());
            }
            Some("closed") => {
                if let Some(opened) = open_since.remove(function) {
                    worst_breaker_open_secs =
                        worst_breaker_open_secs.max(e.at.as_secs_f64() - opened);
                }
            }
            _ => {}
        }
    }

    Ok(RunResult {
        schedule_index: 0,
        seed,
        violations,
        flows_aborted: outcome.net_flows_aborted,
        stall_secs: outcome.net_stall_secs,
        worst_flow_wait_secs,
        worst_breaker_open_secs,
    })
}

/// A seed-swept grid of fault schedules over one base configuration.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// The configuration every cell starts from.
    pub base: ScenarioConfig,
    /// The fault schedules to sweep (the grid's rows).
    pub schedules: Vec<FaultSchedule>,
    /// The master seeds to replay each schedule under (the grid's columns).
    pub seeds: Vec<u64>,
}

impl Campaign {
    /// A campaign over the given grid.
    pub fn new(base: ScenarioConfig, schedules: Vec<FaultSchedule>, seeds: Vec<u64>) -> Self {
        Campaign { base, schedules, seeds }
    }

    /// Runs the whole grid in parallel and collects the report.
    ///
    /// Results arrive in grid order (schedule-major, then seed) regardless
    /// of `MCS_PAR_WORKERS`, so the report is deterministic.
    pub fn run(&self) -> Result<CampaignReport, McsError> {
        self.base.validate()?;
        self.schedules.iter().try_for_each(FaultSchedule::validate)?;
        if self.seeds.is_empty() {
            return Err(McsError::invalid_config("campaign.seeds", "must be non-empty"));
        }
        let cells = self.schedules.len() * self.seeds.len();
        let runs = par::run_indexed(cells, |i| {
            let schedule_index = i / self.seeds.len();
            let seed = self.seeds[i % self.seeds.len()];
            let mut run = run_one(&self.base, &self.schedules[schedule_index], seed)
                .expect("campaign grid validated up front");
            run.schedule_index = schedule_index;
            run
        });
        Ok(CampaignReport { runs })
    }
}

/// The collected outcome of a campaign grid.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// One result per grid cell, in grid order.
    pub runs: Vec<RunResult>,
}

impl CampaignReport {
    /// Grid cells executed.
    pub fn total_runs(&self) -> usize {
        self.runs.len()
    }

    /// Cells whose trace satisfied the whole invariant suite.
    pub fn clean_runs(&self) -> usize {
        self.runs.iter().filter(|r| r.violations.is_empty()).count()
    }

    /// Per-invariant `(violating cells, total violations)` rows, sorted by
    /// invariant name — only invariants that fired appear.
    pub fn violations_by_invariant(&self) -> Vec<(&'static str, usize, usize)> {
        let mut rows: BTreeMap<&'static str, (usize, usize)> = BTreeMap::new();
        for run in &self.runs {
            let mut fired: Vec<&'static str> =
                run.violations.iter().map(|v| v.invariant).collect();
            fired.sort_unstable();
            fired.dedup();
            for name in fired {
                rows.entry(name).or_default().0 += 1;
            }
            for v in &run.violations {
                rows.entry(v.invariant).or_default().1 += 1;
            }
        }
        rows.into_iter().map(|(name, (cells, total))| (name, cells, total)).collect()
    }

    /// The runs that violated the named invariant, in grid order.
    pub fn violating(&self, invariant: &str) -> Vec<&RunResult> {
        self.runs
            .iter()
            .filter(|r| r.violations.iter().any(|v| v.invariant == invariant))
            .collect()
    }

    /// Worst single-flow wait across the grid, seconds.
    pub fn worst_flow_wait_secs(&self) -> f64 {
        self.runs.iter().map(|r| r.worst_flow_wait_secs).fold(0.0, f64::max)
    }

    /// Worst breaker open→closed gap across the grid, seconds.
    pub fn worst_breaker_open_secs(&self) -> f64 {
        self.runs.iter().map(|r| r.worst_breaker_open_secs).fold(0.0, f64::max)
    }

    /// Flows aborted across the grid.
    pub fn flows_aborted(&self) -> u64 {
        self.runs.iter().map(|r| r.flows_aborted).sum()
    }
}

/// Shrinks a violating schedule to a 1-minimal reproducer of the named
/// invariant violation under the given seed.
///
/// The returned schedule still trips `invariant` when replayed with
/// [`run_one`] (the caller can serialize it with
/// [`FaultSchedule::to_json_string`] as a standalone reproducer). If the
/// input schedule does not actually violate the invariant, it is returned
/// unchanged.
pub fn shrink_violation(
    base: &ScenarioConfig,
    schedule: &FaultSchedule,
    seed: u64,
    invariant: &str,
) -> Result<FaultSchedule, McsError> {
    schedule.validate()?;
    let trips = |candidate: &FaultSchedule| -> bool {
        run_one(base, candidate, seed)
            .map(|run| run.violations.iter().any(|v| v.invariant == invariant))
            .unwrap_or(false)
    };
    let minimal = ddmin(&schedule.faults, |subset| trips(&FaultSchedule::new(subset.to_vec())));
    Ok(FaultSchedule::new(minimal))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ScheduledFault;
    use mcs_core::scenario::{BigdataConfig, NetworkConfig};
    use mcs_simcore::time::{SimDuration, SimTime};

    /// A small networked bigdata tenant: map-input and shuffle flows ride
    /// the fabric, so partitions have something to strand.
    fn networked_base(flow_timeout: Option<SimDuration>) -> ScenarioConfig {
        let mut cfg = ScenarioConfig::bare(11, SimTime::from_secs(4 * 3600), 16)
            .with_bigdata(BigdataConfig::default());
        cfg.network = Some(NetworkConfig { flow_timeout, ..NetworkConfig::default() });
        cfg
    }

    #[test]
    fn campaign_grid_is_deterministic_and_ordered() {
        let campaign = Campaign::new(
            networked_base(Some(SimDuration::from_secs(30))),
            vec![
                FaultSchedule::empty(),
                FaultSchedule::new(vec![ScheduledFault::crash(600.0, 300.0, 3)]),
            ],
            vec![1, 2],
        );
        let report = campaign.run().unwrap();
        assert_eq!(report.total_runs(), 4);
        let cells: Vec<(usize, u64)> =
            report.runs.iter().map(|r| (r.schedule_index, r.seed)).collect();
        assert_eq!(cells, vec![(0, 1), (0, 2), (1, 1), (1, 2)]);
        // Same grid, same report — byte-stable across reruns.
        assert_eq!(campaign.run().unwrap(), report);
        // With aborts enabled and short faults, the suite holds everywhere.
        assert_eq!(report.clean_runs(), 4, "{:?}", report.violations_by_invariant());
    }

    #[test]
    fn empty_seed_grid_is_rejected() {
        let campaign =
            Campaign::new(networked_base(None), vec![FaultSchedule::empty()], Vec::new());
        assert!(campaign.run().is_err());
    }

    #[test]
    fn scripted_config_preserves_base_failure_knobs() {
        let mut base = networked_base(None);
        base.failure = Some(FailureConfig { kill_fraction: 0.9, ..FailureConfig::default() });
        let schedule = FaultSchedule::new(vec![ScheduledFault::crash(10.0, 5.0, 0)]);
        let cfg = scripted_config(&base, &schedule, 77).unwrap();
        assert_eq!(cfg.seed, 77);
        let failure = cfg.failure.unwrap();
        assert_eq!(failure.kill_fraction, 0.9);
        assert_eq!(failure.schedule.as_ref().map(Vec::len), Some(1));
    }

    /// The acceptance path: a schedule that strands flows with the abort
    /// machinery disabled violates flow conservation, and ddmin shrinks it
    /// to a partition-only reproducer that replays to the same violation.
    #[test]
    fn stranded_flows_are_detected_and_shrunk_to_a_minimal_reproducer() {
        let base = networked_base(None); // no flow timeout: strandings are silent
        let mut faults = vec![
            // Crash noise that contributes nothing to the violation.
            ScheduledFault::crash(400.0, 120.0, 9),
            ScheduledFault::crash(2_000.0, 120.0, 10),
        ];
        // Long partitions across the data nodes, never healing before the
        // horizon's grace window.
        for node in 0..8 {
            faults.push(ScheduledFault::partition(5.0, 4.0 * 3600.0, node));
        }
        let schedule = FaultSchedule::new(faults);

        let run = run_one(&base, &schedule, base.seed).unwrap();
        assert!(
            run.violations.iter().any(|v| v.invariant == "flow-conservation"),
            "expected a stranded-flow violation, got {:?}",
            run.violations
        );
        assert_eq!(run.flows_aborted, 0, "aborts are disabled in this config");

        let minimal =
            shrink_violation(&base, &schedule, base.seed, "flow-conservation").unwrap();
        assert!(!minimal.is_empty());
        assert!(minimal.len() < schedule.len(), "nothing was shrunk: {minimal:?}");
        assert!(
            minimal.faults.iter().all(|f| f.kind == "partition"),
            "crash noise survived shrinking: {minimal:?}"
        );

        // The serialized reproducer replays deterministically to the same
        // violation.
        let replayed = FaultSchedule::from_json_str(&minimal.to_json_string()).unwrap();
        let rerun = run_one(&base, &replayed, base.seed).unwrap();
        assert!(rerun.violations.iter().any(|v| v.invariant == "flow-conservation"));
        // And the matching run with aborts enabled is clean: the satellite
        // fix (flow timeouts) is exactly what the invariant demands.
        let fixed = networked_base(Some(SimDuration::from_secs(30)));
        let fixed_run = run_one(&fixed, &replayed, fixed.seed).unwrap();
        assert!(
            fixed_run.violations.is_empty(),
            "abort-enabled run still violates: {:?}",
            fixed_run.violations
        );
        assert!(fixed_run.flows_aborted > 0);
    }
}
