//! Explicit, serializable fault schedules for scripted chaos runs.
//!
//! A [`FaultSchedule`] is the portable form of "what goes wrong, when":
//! a flat list of [`ScheduledFault`] entries, each `(at, duration, target,
//! kind)` with the kind-specific knob (slowdown factor, gray error rate)
//! inline. It round-trips through the in-house JSON codec, converts to the
//! failure model's [`Fault`] vocabulary for the scenario's injector
//! ([`FaultSchedule::to_faults`]), and back ([`FaultSchedule::from_faults`]).
//! When a network fabric is attached, partition entries cut the target's
//! access link and gray entries degrade it — the same mapping the random
//! injector uses — so one schedule vocabulary drives both the machine-level
//! (`FailureInjector`) and topology-level (`NetActor`) fault paths.

use mcs_failure::model::{Fault, FaultKind, Outage};
use mcs_simcore::codec::{from_str, to_string};
use mcs_simcore::error::McsError;
use mcs_simcore::impl_json;
use mcs_simcore::time::{SimDuration, SimTime};

/// The stable fault-kind names accepted in [`ScheduledFault::kind`].
pub const FAULT_KINDS: [&str; 4] = ["crash", "slowdown", "gray", "partition"];

/// One scripted fault: what strikes, whom, when, and for how long.
///
/// Flat on purpose: every field is a plain JSON scalar so reproducers stay
/// hand-editable. `factor` is only meaningful for `kind == "slowdown"`
/// (latency multiplier > 1) and `error_rate` only for `kind == "gray"`
/// (work-failure probability in `[0, 1]`, mapped to an access-link degrade
/// of `1 - error_rate` when a network is attached).
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledFault {
    /// Strike instant, seconds of virtual time.
    pub at_secs: f64,
    /// Fault window length, seconds (must be positive).
    pub duration_secs: f64,
    /// The victim machine (doubles as the topology node when networked).
    pub target: u32,
    /// One of [`FAULT_KINDS`].
    pub kind: String,
    /// Slowdown latency multiplier (`kind == "slowdown"` only).
    pub factor: f64,
    /// Gray work-failure probability (`kind == "gray"` only).
    pub error_rate: f64,
}

impl_json!(struct ScheduledFault { at_secs, duration_secs, target, kind, factor, error_rate });

impl ScheduledFault {
    fn base(at_secs: f64, duration_secs: f64, target: u32, kind: &str) -> Self {
        ScheduledFault {
            at_secs,
            duration_secs,
            target,
            kind: kind.to_owned(),
            factor: 1.0,
            error_rate: 0.0,
        }
    }

    /// A crash-stop fault: the target is down for the window.
    pub fn crash(at_secs: f64, duration_secs: f64, target: u32) -> Self {
        Self::base(at_secs, duration_secs, target, "crash")
    }

    /// A straggler window: the target runs `factor`× slower.
    pub fn slowdown(at_secs: f64, duration_secs: f64, target: u32, factor: f64) -> Self {
        ScheduledFault { factor, ..Self::base(at_secs, duration_secs, target, "slowdown") }
    }

    /// A gray window: work on the target fails with `error_rate`.
    pub fn gray(at_secs: f64, duration_secs: f64, target: u32, error_rate: f64) -> Self {
        ScheduledFault { error_rate, ..Self::base(at_secs, duration_secs, target, "gray") }
    }

    /// A partition window: the target is cut off for the window.
    pub fn partition(at_secs: f64, duration_secs: f64, target: u32) -> Self {
        Self::base(at_secs, duration_secs, target, "partition")
    }

    /// Checks this entry's fields, returning the first offence.
    pub fn validate(&self) -> Result<(), McsError> {
        if !self.at_secs.is_finite() || self.at_secs < 0.0 {
            return Err(McsError::invalid_config(
                "schedule.at_secs",
                "must be finite and non-negative",
            ));
        }
        if !self.duration_secs.is_finite() || self.duration_secs <= 0.0 {
            return Err(McsError::invalid_config(
                "schedule.duration_secs",
                "must be finite and positive",
            ));
        }
        match self.kind.as_str() {
            "crash" | "partition" => {}
            "slowdown" => {
                if !self.factor.is_finite() || self.factor < 1.0 {
                    return Err(McsError::invalid_config(
                        "schedule.factor",
                        "slowdown factor must be finite and >= 1",
                    ));
                }
            }
            "gray" => {
                if !self.error_rate.is_finite() || !(0.0..=1.0).contains(&self.error_rate) {
                    return Err(McsError::invalid_config(
                        "schedule.error_rate",
                        "gray error rate must lie in [0, 1]",
                    ));
                }
            }
            other => {
                return Err(McsError::invalid_config(
                    "schedule.kind",
                    format!("unknown fault kind {other:?} (expected one of {FAULT_KINDS:?})"),
                ));
            }
        }
        Ok(())
    }

    /// Converts into the failure model's vocabulary.
    pub fn to_fault(&self) -> Result<Fault, McsError> {
        self.validate()?;
        let fail_at = SimTime::ZERO + SimDuration::from_secs_f64(self.at_secs);
        let repair_at = fail_at + SimDuration::from_secs_f64(self.duration_secs);
        let kind = match self.kind.as_str() {
            "crash" => FaultKind::Crash,
            "slowdown" => FaultKind::Slowdown { factor: self.factor },
            "gray" => FaultKind::Gray { error_rate: self.error_rate },
            _ => FaultKind::Partition,
        };
        Ok(Fault {
            outage: Outage { machine: self.target as usize, fail_at, repair_at },
            kind,
        })
    }

    /// The portable form of a model-level [`Fault`].
    pub fn from_fault(fault: &Fault) -> Self {
        let at_secs = fault.outage.fail_at.as_secs_f64();
        let duration_secs = fault.outage.duration().as_secs_f64();
        let target = fault.outage.machine as u32;
        match fault.kind {
            FaultKind::Crash => Self::crash(at_secs, duration_secs, target),
            FaultKind::Slowdown { factor } => {
                Self::slowdown(at_secs, duration_secs, target, factor)
            }
            FaultKind::Gray { error_rate } => {
                Self::gray(at_secs, duration_secs, target, error_rate)
            }
            FaultKind::Partition => Self::partition(at_secs, duration_secs, target),
        }
    }
}

/// An explicit fault schedule: the unit chaos campaigns sweep, shrink, and
/// serialize as reproducers.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSchedule {
    /// The scripted faults, in any order (the injector sorts by strike time).
    pub faults: Vec<ScheduledFault>,
}

impl_json!(struct FaultSchedule { faults });

impl FaultSchedule {
    /// A schedule over the given entries.
    pub fn new(faults: Vec<ScheduledFault>) -> Self {
        FaultSchedule { faults }
    }

    /// The empty schedule (a fault-free baseline run).
    pub fn empty() -> Self {
        FaultSchedule { faults: Vec::new() }
    }

    /// Number of scripted faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Checks every entry, returning the first offence.
    pub fn validate(&self) -> Result<(), McsError> {
        self.faults.iter().try_for_each(ScheduledFault::validate)
    }

    /// Converts the whole schedule into injector-ready [`Fault`]s.
    pub fn to_faults(&self) -> Result<Vec<Fault>, McsError> {
        self.faults.iter().map(ScheduledFault::to_fault).collect()
    }

    /// The portable form of a model-level schedule.
    pub fn from_faults(faults: &[Fault]) -> Self {
        FaultSchedule { faults: faults.iter().map(ScheduledFault::from_fault).collect() }
    }

    /// Canonical JSON, byte-stable for a given schedule.
    pub fn to_json_string(&self) -> String {
        to_string(self)
    }

    /// Parses (and validates) a schedule from its JSON form.
    pub fn from_json_str(text: &str) -> Result<Self, McsError> {
        let schedule: FaultSchedule = from_str(text)?;
        schedule.validate()?;
        Ok(schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FaultSchedule {
        FaultSchedule::new(vec![
            ScheduledFault::crash(600.0, 300.0, 3),
            ScheduledFault::slowdown(900.0, 60.0, 7, 4.0),
            ScheduledFault::gray(1200.0, 45.5, 1, 0.3),
            ScheduledFault::partition(1800.0, 120.0, 5),
        ])
    }

    #[test]
    fn json_round_trip_is_lossless_and_byte_stable() {
        let schedule = sample();
        let text = schedule.to_json_string();
        let back = FaultSchedule::from_json_str(&text).unwrap();
        assert_eq!(back, schedule);
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn fault_round_trip_preserves_every_kind() {
        let schedule = sample();
        let faults = schedule.to_faults().unwrap();
        assert_eq!(faults.len(), 4);
        assert_eq!(FaultSchedule::from_faults(&faults), schedule);
        // Spot-check the window arithmetic.
        assert_eq!(faults[0].outage.fail_at, SimTime::from_secs(600));
        assert_eq!(faults[0].outage.repair_at, SimTime::from_secs(900));
        assert!(matches!(faults[3].kind, FaultKind::Partition));
    }

    #[test]
    fn invalid_entries_are_rejected() {
        let bad = [
            ScheduledFault::crash(-1.0, 10.0, 0),
            ScheduledFault::crash(0.0, 0.0, 0),
            ScheduledFault::slowdown(0.0, 10.0, 0, 0.5),
            ScheduledFault::gray(0.0, 10.0, 0, 1.5),
            ScheduledFault { kind: "meteor".to_owned(), ..ScheduledFault::crash(0.0, 1.0, 0) },
        ];
        for fault in bad {
            assert!(
                FaultSchedule::new(vec![fault.clone()]).validate().is_err(),
                "{fault:?} must be rejected"
            );
        }
        assert!(sample().validate().is_ok());
    }

    #[test]
    fn parsing_validates_entries() {
        let text = FaultSchedule::new(vec![ScheduledFault::crash(0.0, -5.0, 0)])
            .to_json_string();
        assert!(FaultSchedule::from_json_str(&text).is_err());
    }
}
