//! Machine-checked invariants over the composed ecosystem's trace bus.
//!
//! Each [`Invariant`] is a pure function of one finished run's
//! [`TraceBus`] plus a small amount of configuration context
//! ([`InvariantCx`]). The built-ins ([`builtin_suite`]) encode the safety
//! and liveness claims the resilience machinery makes across subsystem
//! boundaries — exactly the claims that hold trivially in per-crate unit
//! tests but can break under composition:
//!
//! - [`FlowConservation`] — every network flow that starts either finishes,
//!   is aborted, or is excusably still in flight at the horizon; flows
//!   stranded by an access-link cut that persists to the end of the run
//!   must have been aborted (no silent strandings), and every abort must be
//!   attributable to an active cut;
//! - [`FaasTermination`] — no invocation is lost: workload arrivals plus
//!   scheduled retries are fully accounted for by terminal FaaS events,
//!   in-flight or aborted invocation payloads, and retries pending past the
//!   horizon;
//! - [`RestartBudget`] — checkpoint-restart never exceeds its attempt
//!   budget, and abandoned tasks stay abandoned;
//! - [`BreakerRecovery`] — circuit breakers re-close once faults clear and
//!   enough probe traffic has flowed;
//! - [`StallDrain`] — after the last link restore, previously stalled flows
//!   drain within a bound;
//! - [`MonotoneTimestamps`] — every component's events carry non-decreasing
//!   instants in bus order;
//! - [`FaultClosure`] — every fault window that opens also closes: machine
//!   outages are matched by repairs and per-node link cuts (degrades) by
//!   restores (heals).
//!
//! All built-ins are designed to pass on every healthy trace the existing
//! experiments produce — violations mean a real robustness bug (or a
//! deliberately seeded one; see the `chaos_sweep` experiment).

use mcs_core::scenario::ScenarioConfig;
use mcs_simcore::trace::{TraceBus, TraceEvent};
use std::collections::BTreeMap;

/// Comparison slack for virtual instants handed around as `f64` seconds.
const EPS: f64 = 1e-6;

/// One invariant violation: which monitor fired, when, and why.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Name of the invariant that fired (see [`Invariant::name`]).
    pub invariant: &'static str,
    /// Virtual instant the violation is anchored to, seconds.
    pub at_secs: f64,
    /// Human-readable account of the broken claim.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] t={:.3}s: {}", self.invariant, self.at_secs, self.message)
    }
}

/// The configuration context invariants evaluate against: the run's horizon
/// plus the resilience budgets whose compliance they check.
#[derive(Debug, Clone, PartialEq)]
pub struct InvariantCx {
    /// The run's horizon, seconds (events at the horizon were delivered).
    pub horizon_secs: f64,
    /// Checkpoint-restart attempt budget (`None`: restart not configured,
    /// [`RestartBudget`] is vacuous).
    pub restart_max_attempts: Option<u32>,
    /// Breaker open window, seconds (`None`: no breaker,
    /// [`BreakerRecovery`] is vacuous).
    pub breaker_open_secs: Option<f64>,
    /// Probe successes a healthy breaker needs to re-close.
    pub breaker_close_threshold: u32,
    /// How long after the last link restore stalled flows may take to
    /// drain ([`StallDrain`]).
    pub drain_bound_secs: f64,
    /// Grace window before the horizon: a flow stranded by a cut counts as
    /// a violation only when the cut opened at least this long before the
    /// end of the run (so the abort machinery had time to fire).
    pub flow_grace_secs: f64,
}

impl Default for InvariantCx {
    fn default() -> Self {
        InvariantCx {
            horizon_secs: 0.0,
            restart_max_attempts: None,
            breaker_open_secs: None,
            breaker_close_threshold: 2,
            drain_bound_secs: 600.0,
            flow_grace_secs: 120.0,
        }
    }
}

impl InvariantCx {
    /// The context implied by a scenario configuration: horizon and
    /// resilience budgets are read straight from the config, and the flow
    /// grace window tracks the configured flow-abort timeout (plus slack)
    /// so a working abort path is always faster than the monitor's patience.
    pub fn from_config(cfg: &ScenarioConfig) -> Self {
        let flow_grace_secs = cfg
            .network
            .as_ref()
            .and_then(|net| net.flow_timeout)
            .map_or(120.0, |timeout| timeout.as_secs_f64() + 60.0);
        InvariantCx {
            horizon_secs: cfg.horizon.as_secs_f64(),
            restart_max_attempts: cfg
                .resilience
                .restart
                .as_ref()
                .map(|restart| restart.backoff.max_attempts),
            breaker_open_secs: cfg
                .resilience
                .breaker
                .as_ref()
                .map(|breaker| breaker.open_for.as_secs_f64()),
            breaker_close_threshold: cfg
                .resilience
                .breaker
                .as_ref()
                .map_or(2, |breaker| breaker.half_open_successes.max(1)),
            drain_bound_secs: 600.0,
            flow_grace_secs,
        }
    }
}

/// A machine-checked claim over one finished run's trace.
pub trait Invariant {
    /// Stable identifier used in reports and reproducers.
    fn name(&self) -> &'static str;
    /// Evaluates the claim; an empty vector means the trace satisfies it.
    fn check(&self, trace: &TraceBus, cx: &InvariantCx) -> Vec<Violation>;
}

/// The built-in monitor suite, in a fixed deterministic order.
pub fn builtin_suite() -> Vec<Box<dyn Invariant>> {
    vec![
        Box::new(FlowConservation),
        Box::new(FaasTermination),
        Box::new(RestartBudget),
        Box::new(BreakerRecovery),
        Box::new(StallDrain),
        Box::new(MonotoneTimestamps),
        Box::new(FaultClosure),
    ]
}

/// Runs the whole built-in suite, concatenating violations in suite order.
pub fn check_all(trace: &TraceBus, cx: &InvariantCx) -> Vec<Violation> {
    builtin_suite().iter().flat_map(|inv| inv.check(trace, cx)).collect()
}

fn violation(invariant: &'static str, at_secs: f64, message: String) -> Violation {
    Violation { invariant, at_secs, message }
}

/// Per-node cut (or degrade) windows `[start, end]`, paired in emission
/// order; windows still open at the horizon close there.
fn link_windows(trace: &TraceBus, open: &str, close: &str, horizon: f64) -> BTreeMap<u64, Vec<(f64, f64)>> {
    let mut windows: BTreeMap<u64, Vec<(f64, f64)>> = BTreeMap::new();
    let mut opens: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
    let mut timeline: Vec<(&TraceEvent, bool)> = trace
        .select("net", open)
        .into_iter()
        .map(|e| (e, true))
        .chain(trace.select("net", close).into_iter().map(|e| (e, false)))
        .collect();
    timeline.sort_by(|(a, a_open), (b, b_open)| {
        a.at.cmp(&b.at).then_with(|| b_open.cmp(a_open)) // opens before closes at ties
    });
    for (e, is_open) in timeline {
        let Some(node) = e.field_f64("node") else { continue };
        let node = node as u64;
        let at = e.at.as_secs_f64();
        if is_open {
            opens.entry(node).or_default().push(at);
        } else if let Some(start) = opens.entry(node).or_default().pop() {
            windows.entry(node).or_default().push((start, at));
        }
    }
    for (node, starts) in opens {
        for start in starts {
            windows.entry(node).or_default().push((start, horizon));
        }
    }
    windows
}

fn window_active(windows: &BTreeMap<u64, Vec<(f64, f64)>>, node: u64, at: f64) -> bool {
    windows
        .get(&node)
        .is_some_and(|w| w.iter().any(|&(s, e)| s - EPS <= at && at <= e + EPS))
}

/// Per-`(owner, id)` flow ledger: start/end/abort instants plus the
/// endpoint nodes seen on starts.
#[derive(Debug, Default)]
struct FlowGroup {
    starts: Vec<f64>,
    ends: Vec<f64>,
    aborts: Vec<f64>,
    endpoints: Vec<u64>,
}

fn flow_groups(trace: &TraceBus) -> BTreeMap<(String, u64), FlowGroup> {
    let mut groups: BTreeMap<(String, u64), FlowGroup> = BTreeMap::new();
    let mut visit = |event: &str, push: fn(&mut FlowGroup, f64, Option<u64>, Option<u64>)| {
        for e in trace.select("net", event) {
            let owner = e.field_str("owner").unwrap_or("?").to_owned();
            let id = e.field_f64("id").unwrap_or(0.0) as u64;
            let src = e.field_f64("src").map(|x| x as u64);
            let dst = e.field_f64("dst").map(|x| x as u64);
            push(groups.entry((owner, id)).or_default(), e.at.as_secs_f64(), src, dst);
        }
    };
    visit("flow_start", |g, at, src, dst| {
        g.starts.push(at);
        g.endpoints.extend(src);
        g.endpoints.extend(dst);
    });
    visit("flow_end", |g, at, _, _| g.ends.push(at));
    visit("flow_aborted", |g, at, _, _| g.aborts.push(at));
    groups
}

/// Every flow that starts either finishes, aborts, or is excusably still in
/// flight at the horizon; silent strandings and unattributable aborts fire.
pub struct FlowConservation;

impl Invariant for FlowConservation {
    fn name(&self) -> &'static str {
        "flow-conservation"
    }

    fn check(&self, trace: &TraceBus, cx: &InvariantCx) -> Vec<Violation> {
        let mut out = Vec::new();
        let horizon = cx.horizon_secs;
        let cuts = link_windows(trace, "link_cut", "link_restored", horizon);
        for ((owner, id), group) in flow_groups(trace) {
            let started = group.starts.len();
            let resolved = group.ends.len() + group.aborts.len();
            if resolved > started {
                out.push(violation(
                    self.name(),
                    horizon,
                    format!(
                        "flow {owner}/{id}: {resolved} completions for {started} starts"
                    ),
                ));
                continue;
            }
            let pending = started - resolved;
            if pending == 0 {
                continue;
            }
            // A recent start proves liveness: either the flow simply began
            // near the horizon, or an abort-and-reissue loop is cycling (each
            // abort re-starts the transfer, so the one pending flow is young).
            let last_start = group.starts.iter().fold(f64::MIN, |a, &b| a.max(b));
            if last_start > horizon - cx.flow_grace_secs {
                continue;
            }
            // Still in flight at the horizon: fine for a merely slow flow,
            // a violation when an endpoint's access link was cut long
            // enough ago that the abort path must have fired, and the cut
            // never lifted before the end of the run.
            let stranding = group.endpoints.iter().find_map(|&node| {
                cuts.get(&node)?.iter().find(|&&(start, end)| {
                    end >= horizon - EPS && start <= horizon - cx.flow_grace_secs
                })
            });
            if let Some(&(cut_start, _)) = stranding {
                out.push(violation(
                    self.name(),
                    cut_start,
                    format!(
                        "flow {owner}/{id}: {pending} flow(s) stranded by a link cut \
                         open since t={cut_start:.1}s, never completed or aborted"
                    ),
                ));
            }
        }
        // Every abort must be attributable to an active cut on an endpoint.
        for e in trace.select("net", "flow_aborted") {
            let at = e.at.as_secs_f64();
            let attributable = [e.field_f64("src"), e.field_f64("dst")]
                .into_iter()
                .flatten()
                .any(|node| window_active(&cuts, node as u64, at));
            if !attributable {
                let owner = e.field_str("owner").unwrap_or("?");
                out.push(violation(
                    self.name(),
                    at,
                    format!(
                        "flow {owner}/{}: aborted with no active cut on either endpoint",
                        e.field_f64("id").unwrap_or(0.0) as u64
                    ),
                ));
            }
        }
        out
    }
}

/// No invocation is lost: arrivals plus scheduled retries equal terminal
/// FaaS events plus in-flight/aborted payloads plus horizon-pending retries.
pub struct FaasTermination;

impl Invariant for FaasTermination {
    fn name(&self) -> &'static str {
        "faas-termination"
    }

    fn check(&self, trace: &TraceBus, cx: &InvariantCx) -> Vec<Violation> {
        let arrivals = trace.count("workload", "arrival");
        let retries = trace.count("faas", "retry_scheduled");
        let terminals = trace.count("faas", "invoke")
            + trace.count("faas", "invoke_failed")
            + trace.count("faas", "shed")
            + trace.count("faas", "reject");
        if arrivals + retries + terminals == 0 {
            return Vec::new(); // FaaS not attached.
        }
        // Invocation payloads still on the wire (or lost to a flow abort,
        // which the scenario routes as a fail-fast) never reach invoke().
        let faas_flow = |event: &str| {
            trace
                .select("net", event)
                .into_iter()
                .filter(|e| e.field_str("owner") == Some("faas"))
                .count()
        };
        let on_wire = faas_flow("flow_start") - faas_flow("flow_end");
        // Retries scheduled to fire past the horizon never re-invoke.
        let retries_pending = trace
            .select("faas", "retry_scheduled")
            .into_iter()
            .filter(|e| {
                let delay = e.field_f64("delay_secs").unwrap_or(0.0);
                e.at.as_secs_f64() + delay > cx.horizon_secs + 1e-9
            })
            .count();
        let issued = arrivals + retries;
        let accounted = terminals + on_wire + retries_pending;
        if issued != accounted {
            return vec![violation(
                self.name(),
                cx.horizon_secs,
                format!(
                    "{issued} invocations issued ({arrivals} arrivals + {retries} retries) \
                     but {accounted} accounted for ({terminals} terminal events + \
                     {on_wire} on the wire + {retries_pending} retries pending past \
                     the horizon)"
                ),
            )];
        }
        Vec::new()
    }
}

/// Checkpoint-restart respects its attempt budget, and abandoned tasks see
/// no further scheduler activity.
pub struct RestartBudget;

impl Invariant for RestartBudget {
    fn name(&self) -> &'static str {
        "restart-budget"
    }

    fn check(&self, trace: &TraceBus, cx: &InvariantCx) -> Vec<Violation> {
        let Some(max_attempts) = cx.restart_max_attempts else {
            return Vec::new();
        };
        let budget = f64::from(max_attempts);
        let mut out = Vec::new();
        for (event, field) in [
            ("requeue_scheduled", "attempt"),
            ("checkpoint_xfer_start", "attempt"),
            ("task_abandoned", "attempts"),
        ] {
            for e in trace.select("rms", event) {
                let attempt = e.field_f64(field).unwrap_or(0.0);
                if attempt > budget + EPS {
                    out.push(violation(
                        self.name(),
                        e.at.as_secs_f64(),
                        format!(
                            "rms/{event} for task {} at attempt {attempt} exceeds the \
                             budget of {max_attempts}",
                            e.field_f64("task").unwrap_or(-1.0) as i64
                        ),
                    ));
                }
            }
        }
        let abandoned: BTreeMap<u64, f64> = trace
            .select("rms", "task_abandoned")
            .into_iter()
            .filter_map(|e| {
                Some((e.field_f64("task")? as u64, e.at.as_secs_f64()))
            })
            .collect();
        for event in ["requeue_scheduled", "checkpoint_xfer_start", "checkpoint_restore"] {
            for e in trace.select("rms", event) {
                let Some(task) = e.field_f64("task").map(|t| t as u64) else { continue };
                let at = e.at.as_secs_f64();
                if abandoned.get(&task).is_some_and(|&gave_up| at > gave_up + EPS) {
                    out.push(violation(
                        self.name(),
                        at,
                        format!("rms/{event} for task {task} after it was abandoned"),
                    ));
                }
            }
        }
        out
    }
}

/// Breakers re-close once faults clear: a breaker left non-closed at the end
/// of the run despite enough post-fault probe traffic is stuck.
pub struct BreakerRecovery;

impl Invariant for BreakerRecovery {
    fn name(&self) -> &'static str {
        "breaker-recovery"
    }

    fn check(&self, trace: &TraceBus, cx: &InvariantCx) -> Vec<Violation> {
        let Some(open_secs) = cx.breaker_open_secs else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let transitions = trace.select("faas", "breaker");
        let mut functions: Vec<&str> =
            transitions.iter().filter_map(|e| e.field_str("function")).collect();
        functions.sort_unstable();
        functions.dedup();
        for function in functions {
            let mine: Vec<&&TraceEvent> = transitions
                .iter()
                .filter(|e| e.field_str("function") == Some(function))
                .collect();
            let last = mine.last().expect("function has transitions");
            let last_state = last.field_str("state").unwrap_or("?");
            if last_state == "closed" {
                continue;
            }
            // Faults "clear" at the last genuine failure; anything after
            // that is the breaker's own rejections or successes.
            let cleared = trace
                .select("faas", "invoke_failed")
                .into_iter()
                .filter(|e| {
                    e.field_str("function") == Some(function)
                        && e.field_str("reason") != Some("breaker_open")
                })
                .map(|e| e.at.as_secs_f64())
                .fold(None, |acc: Option<f64>, at| Some(acc.map_or(at, |a| a.max(at))))
                .unwrap_or_else(|| last.at.as_secs_f64());
            let probe_after = cleared + open_secs + 1.0;
            let probes = ["invoke", "invoke_failed"]
                .iter()
                .map(|event| {
                    trace
                        .select("faas", event)
                        .into_iter()
                        .filter(|e| {
                            e.field_str("function") == Some(function)
                                && e.at.as_secs_f64() > probe_after
                        })
                        .count()
                })
                .sum::<usize>();
            if probes >= cx.breaker_close_threshold as usize {
                out.push(violation(
                    self.name(),
                    last.at.as_secs_f64(),
                    format!(
                        "breaker for {function} ended {last_state} despite {probes} \
                         attempts after faults cleared at t={cleared:.1}s"
                    ),
                ));
            }
        }
        out
    }
}

/// After the last link restore, flows that were stalled drain within
/// [`InvariantCx::drain_bound_secs`].
pub struct StallDrain;

impl Invariant for StallDrain {
    fn name(&self) -> &'static str {
        "stall-drain"
    }

    fn check(&self, trace: &TraceBus, cx: &InvariantCx) -> Vec<Violation> {
        let last_restore = trace
            .select("net", "link_restored")
            .last()
            .map(|e| e.at.as_secs_f64());
        let Some(t_restore) = last_restore else {
            return Vec::new();
        };
        let last_cut =
            trace.select("net", "link_cut").last().map_or(f64::MIN, |e| e.at.as_secs_f64());
        if last_cut > t_restore {
            return Vec::new(); // The fabric is still faulted at the end.
        }
        let deadline = t_restore + cx.drain_bound_secs;
        if deadline > cx.horizon_secs - EPS {
            return Vec::new(); // The drain window is not observable.
        }
        let mut out = Vec::new();
        for ((owner, id), group) in flow_groups(trace) {
            let open_at_restore =
                group.starts.iter().filter(|&&at| at <= t_restore).count();
            let resolved_by_deadline = group
                .ends
                .iter()
                .chain(group.aborts.iter())
                .filter(|&&at| at <= deadline + EPS)
                .count();
            if open_at_restore > resolved_by_deadline {
                let unresolved = open_at_restore - resolved_by_deadline;
                out.push(violation(
                    self.name(),
                    deadline,
                    format!(
                        "flow {owner}/{id}: {unresolved} flow(s) open at the last restore \
                         (t={t_restore:.1}s) still unresolved {:.0}s later",
                        cx.drain_bound_secs
                    ),
                ));
            }
        }
        out
    }
}

/// Every component's events carry non-decreasing virtual instants in bus
/// (delivery) order.
pub struct MonotoneTimestamps;

impl Invariant for MonotoneTimestamps {
    fn name(&self) -> &'static str {
        "monotone-timestamps"
    }

    fn check(&self, trace: &TraceBus, _cx: &InvariantCx) -> Vec<Violation> {
        let mut out = Vec::new();
        let mut last: Vec<Option<mcs_simcore::time::SimTime>> = Vec::new();
        for e in trace.events() {
            let idx = e.component.index();
            if idx >= last.len() {
                last.resize(idx + 1, None);
            }
            if let Some(prev) = last[idx] {
                if e.at < prev {
                    out.push(violation(
                        self.name(),
                        e.at.as_secs_f64(),
                        format!(
                            "component {} went back in time: {:.6}s after {:.6}s",
                            trace.interner().resolve(e.component),
                            e.at.as_secs_f64(),
                            prev.as_secs_f64()
                        ),
                    ));
                }
            }
            last[idx] = Some(e.at);
        }
        out
    }
}

/// Every fault window that opens also closes before (or at) the horizon:
/// outages match repairs, per-node cuts match restores, degrades match heals.
pub struct FaultClosure;

impl Invariant for FaultClosure {
    fn name(&self) -> &'static str {
        "fault-closure"
    }

    fn check(&self, trace: &TraceBus, cx: &InvariantCx) -> Vec<Violation> {
        let mut out = Vec::new();
        let outages = trace.count("failure", "outage");
        let repairs = trace.count("failure", "repair");
        if outages != repairs {
            out.push(violation(
                self.name(),
                cx.horizon_secs,
                format!("{outages} machine outages but {repairs} repairs"),
            ));
        }
        for (open, close) in [("link_cut", "link_restored"), ("link_degraded", "link_healed")] {
            let mut per_node: BTreeMap<u64, (usize, usize)> = BTreeMap::new();
            for e in trace.select("net", open) {
                if let Some(node) = e.field_f64("node") {
                    per_node.entry(node as u64).or_default().0 += 1;
                }
            }
            for e in trace.select("net", close) {
                if let Some(node) = e.field_f64("node") {
                    per_node.entry(node as u64).or_default().1 += 1;
                }
            }
            for (node, (opened, closed)) in per_node {
                if opened != closed {
                    out.push(violation(
                        self.name(),
                        cx.horizon_secs,
                        format!("node {node}: {opened} {open} but {closed} {close}"),
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_simcore::codec::Json;
    use mcs_simcore::time::SimTime;
    use mcs_simcore::trace::payload;

    fn cx(horizon_secs: f64) -> InvariantCx {
        InvariantCx { horizon_secs, ..InvariantCx::default() }
    }

    fn at(secs: f64) -> SimTime {
        SimTime::ZERO + mcs_simcore::time::SimDuration::from_secs_f64(secs)
    }

    fn flow_fields(owner: &str, id: u64, src: u64, dst: u64) -> Vec<(&'static str, Json)> {
        vec![
            ("owner", Json::Str(owner.to_owned())),
            ("id", Json::UInt(id)),
            ("src", Json::UInt(src)),
            ("dst", Json::UInt(dst)),
        ]
    }

    #[test]
    fn empty_trace_satisfies_every_builtin() {
        let trace = TraceBus::new();
        assert!(check_all(&trace, &cx(100.0)).is_empty());
    }

    #[test]
    fn stranded_flow_without_abort_fires_flow_conservation() {
        let mut trace = TraceBus::new();
        trace.record(at(1.0), "net", "flow_start", payload(flow_fields("rms", 7, 3, 0)));
        trace.record(
            at(5.0),
            "net",
            "link_cut",
            payload(vec![("node", Json::UInt(3))]),
        );
        // The cut never lifts; the flow never ends or aborts.
        let ctx = cx(3600.0);
        let hits = FlowConservation.check(&trace, &ctx);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("stranded"), "{}", hits[0].message);
        // The full suite flags it too (plus the unclosed cut window).
        let all = check_all(&trace, &ctx);
        assert!(all.iter().any(|v| v.invariant == "flow-conservation"));
        assert!(all.iter().any(|v| v.invariant == "fault-closure"));
    }

    #[test]
    fn aborted_stranded_flow_is_clean() {
        let mut trace = TraceBus::new();
        trace.record(at(1.0), "net", "flow_start", payload(flow_fields("rms", 7, 3, 0)));
        trace.record(at(5.0), "net", "link_cut", payload(vec![("node", Json::UInt(3))]));
        trace.record(at(65.0), "net", "flow_aborted", payload(flow_fields("rms", 7, 3, 0)));
        trace.record(
            at(3600.0),
            "net",
            "link_restored",
            payload(vec![("node", Json::UInt(3))]),
        );
        assert!(FlowConservation.check(&trace, &cx(3600.0)).is_empty());
        assert!(FaultClosure.check(&trace, &cx(3600.0)).is_empty());
    }

    #[test]
    fn slow_flow_at_horizon_is_not_a_violation() {
        let mut trace = TraceBus::new();
        trace.record(at(3599.0), "net", "flow_start", payload(flow_fields("bd-map", 1, 2, 5)));
        assert!(FlowConservation.check(&trace, &cx(3600.0)).is_empty());
    }

    #[test]
    fn unattributable_abort_fires() {
        let mut trace = TraceBus::new();
        trace.record(at(1.0), "net", "flow_start", payload(flow_fields("rms", 2, 4, 0)));
        trace.record(at(20.0), "net", "flow_aborted", payload(flow_fields("rms", 2, 4, 0)));
        let hits = FlowConservation.check(&trace, &cx(100.0));
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("no active cut"));
    }

    #[test]
    fn lost_invocation_fires_faas_termination() {
        let mut trace = TraceBus::new();
        trace.record(at(1.0), "workload", "arrival", payload(vec![("index", Json::UInt(0))]));
        trace.record(at(2.0), "workload", "arrival", payload(vec![("index", Json::UInt(1))]));
        trace.record(
            at(1.1),
            "faas",
            "invoke",
            payload(vec![("function", Json::Str("f".into()))]),
        );
        // The second arrival vanished: no terminal, no flow, no retry.
        let hits = FaasTermination.check(&trace, &cx(100.0));
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("2 invocations issued"), "{}", hits[0].message);
    }

    #[test]
    fn on_wire_and_pending_retries_balance_the_faas_ledger() {
        let mut trace = TraceBus::new();
        trace.record(at(1.0), "workload", "arrival", payload(vec![]));
        trace.record(at(1.0), "net", "flow_start", payload(flow_fields("faas", 0, 1, 0)));
        trace.record(at(2.0), "workload", "arrival", payload(vec![]));
        trace.record(at(2.0), "net", "flow_start", payload(flow_fields("faas", 1, 2, 0)));
        trace.record(at(2.5), "net", "flow_end", payload(flow_fields("faas", 1, 2, 0)));
        trace.record(
            at(2.5),
            "faas",
            "reject",
            payload(vec![("function", Json::Str("f".into()))]),
        );
        trace.record(
            at(2.5),
            "faas",
            "retry_scheduled",
            payload(vec![("delay_secs", Json::Float(200.0))]),
        );
        // arrivals=2 retries=1; terminals=1, on-wire=1, retry pending=1.
        assert!(FaasTermination.check(&trace, &cx(100.0)).is_empty());
    }

    #[test]
    fn over_budget_restart_and_zombie_task_fire() {
        let mut trace = TraceBus::new();
        trace.record(
            at(10.0),
            "rms",
            "requeue_scheduled",
            payload(vec![("task", Json::UInt(3)), ("attempt", Json::UInt(9))]),
        );
        trace.record(
            at(20.0),
            "rms",
            "task_abandoned",
            payload(vec![("task", Json::UInt(4)), ("attempts", Json::UInt(5))]),
        );
        trace.record(
            at(30.0),
            "rms",
            "checkpoint_restore",
            payload(vec![("task", Json::UInt(4))]),
        );
        let ctx = InvariantCx { restart_max_attempts: Some(5), ..cx(100.0) };
        let hits = RestartBudget.check(&trace, &ctx);
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert!(hits[0].message.contains("exceeds the budget"));
        assert!(hits[1].message.contains("after it was abandoned"));
        // Without a configured budget the monitor is vacuous.
        assert!(RestartBudget.check(&trace, &cx(100.0)).is_empty());
    }

    #[test]
    fn stuck_breaker_fires_and_recovered_breaker_passes() {
        let brk = |state: &str| {
            payload(vec![
                ("function", Json::Str("f".into())),
                ("state", Json::Str(state.to_owned())),
            ])
        };
        let probe = || payload(vec![("function", Json::Str("f".into()))]);
        let mut stuck = TraceBus::new();
        stuck.record(at(10.0), "faas", "breaker", brk("open"));
        stuck.record(at(100.0), "faas", "invoke", probe());
        stuck.record(at(110.0), "faas", "invoke", probe());
        stuck.record(at(120.0), "faas", "invoke", probe());
        let ctx = InvariantCx { breaker_open_secs: Some(30.0), ..cx(1000.0) };
        let hits = BreakerRecovery.check(&stuck, &ctx);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("ended open"));

        let mut healthy = stuck.clone();
        healthy.record(at(130.0), "faas", "breaker", brk("closed"));
        assert!(BreakerRecovery.check(&healthy, &ctx).is_empty());
    }

    #[test]
    fn undrained_flow_after_restore_fires_stall_drain() {
        let mut trace = TraceBus::new();
        trace.record(at(1.0), "net", "flow_start", payload(flow_fields("bd-map", 1, 2, 5)));
        trace.record(at(5.0), "net", "link_cut", payload(vec![("node", Json::UInt(2))]));
        trace.record(at(50.0), "net", "link_restored", payload(vec![("node", Json::UInt(2))]));
        // Restored at t=50, drain bound 600 — still unresolved at t=650.
        let ctx = InvariantCx { drain_bound_secs: 600.0, ..cx(3600.0) };
        let hits = StallDrain.check(&trace, &ctx);
        assert_eq!(hits.len(), 1, "{hits:?}");
        let mut drained = trace.clone();
        drained.record(at(120.0), "net", "flow_end", payload(flow_fields("bd-map", 1, 2, 5)));
        assert!(StallDrain.check(&drained, &ctx).is_empty());
        // An unobservable drain window is vacuous.
        assert!(StallDrain.check(&trace, &InvariantCx { drain_bound_secs: 600.0, ..cx(100.0) })
            .is_empty());
    }

    #[test]
    fn time_regression_fires_monotone_timestamps() {
        let mut trace = TraceBus::new();
        trace.record(at(10.0), "rms", "machine_fail", payload(vec![]));
        trace.record(at(5.0), "rms", "machine_fail", payload(vec![]));
        trace.record(at(7.0), "faas", "invoke", payload(vec![])); // other component: fine
        let hits = MonotoneTimestamps.check(&trace, &cx(100.0));
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("rms"));
    }

    #[test]
    fn unbalanced_fault_windows_fire_fault_closure() {
        let mut trace = TraceBus::new();
        trace.record(at(10.0), "failure", "outage", payload(vec![]));
        trace.record(
            at(12.0),
            "net",
            "link_degraded",
            payload(vec![("node", Json::UInt(1))]),
        );
        let hits = FaultClosure.check(&trace, &cx(100.0));
        assert_eq!(hits.len(), 2, "{hits:?}");
        trace.record(at(20.0), "failure", "repair", payload(vec![]));
        trace.record(at(22.0), "net", "link_healed", payload(vec![("node", Json::UInt(1))]));
        assert!(FaultClosure.check(&trace, &cx(100.0)).is_empty());
    }

    #[test]
    fn from_config_reads_budgets_and_grace() {
        let bare = InvariantCx::from_config(&ScenarioConfig::default());
        assert_eq!(bare.horizon_secs, ScenarioConfig::default().horizon.as_secs_f64());
        // The default config runs resilience-off: both budgets are vacuous.
        assert!(bare.breaker_open_secs.is_none());
        assert!(bare.restart_max_attempts.is_none());

        let cfg = ScenarioConfig::default()
            .with_resilience(mcs_simcore::resilience::ResilienceConfig::all_on());
        let ctx = InvariantCx::from_config(&cfg);
        assert!(ctx.breaker_open_secs.is_some());
        assert!(ctx.restart_max_attempts.is_some());
        assert!(ctx.breaker_close_threshold >= 1);
    }
}
