//! The Ecosystem Navigation challenge (C9): comparison, selection, and
//! composition of components on the user's behalf.
//!
//! Given a catalog of components (capability + measured NFR profile) and a
//! user's requirement — a chain of capabilities plus NFR targets — the
//! navigator ranks the alternatives per capability, composes the best
//! pipeline under the NFR composition algebra, and *explains* its decision
//! in plain text (P6: stakeholders must be able to understand the system's
//! choices).

use crate::nfr::{NfrProfile, NfrTarget};

/// A catalog entry: one selectable component.
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogEntry {
    /// Component name.
    pub name: String,
    /// The capability it provides.
    pub capability: String,
    /// Its measured/advertised profile.
    pub profile: NfrProfile,
}

/// The component catalog.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Catalog {
    entries: Vec<CatalogEntry>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Adds a component (builder style).
    pub fn with(mut self, name: &str, capability: &str, profile: NfrProfile) -> Self {
        self.entries.push(CatalogEntry {
            name: name.to_owned(),
            capability: capability.to_owned(),
            profile,
        });
        self
    }

    /// All entries providing `capability`.
    pub fn providers(&self, capability: &str) -> Vec<&CatalogEntry> {
        self.entries.iter().filter(|e| e.capability == capability).collect()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Why navigation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NavigationError {
    /// No catalog entry provides a required capability.
    NoProvider {
        /// The missing capability.
        capability: String,
    },
    /// A pipeline exists but none satisfies every target.
    NoSatisfyingComposition,
}

impl std::fmt::Display for NavigationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NavigationError::NoProvider { capability } => {
                write!(f, "no component provides capability '{capability}'")
            }
            NavigationError::NoSatisfyingComposition => {
                write!(f, "no composition satisfies all non-functional targets")
            }
        }
    }
}

impl std::error::Error for NavigationError {}

/// A selected pipeline with its predicted profile and explanation.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// Chosen component names, one per requested capability, in order.
    pub components: Vec<String>,
    /// The serial-composed profile of the pipeline.
    pub predicted: NfrProfile,
    /// Whether every target is satisfied by the prediction.
    pub satisfies_all: bool,
    /// A human-readable account of the decision.
    pub explanation: String,
}

/// Selects one component per capability in `pipeline`, maximizing the
/// weighted NFR score of the serial composition (exhaustive over the
/// per-capability alternatives; catalogs are small by construction).
///
/// # Errors
/// Returns [`NavigationError::NoProvider`] when a capability has no
/// provider, and [`NavigationError::NoSatisfyingComposition`] when no
/// combination satisfies all targets (the best-scoring one is described in
/// the error path via [`navigate_best_effort`]).
pub fn navigate(
    catalog: &Catalog,
    pipeline: &[&str],
    targets: &[NfrTarget],
) -> Result<Selection, NavigationError> {
    let selection = navigate_best_effort(catalog, pipeline, targets)?;
    if selection.satisfies_all {
        Ok(selection)
    } else {
        Err(NavigationError::NoSatisfyingComposition)
    }
}

/// Like [`navigate`] but returns the best-scoring composition even when it
/// violates some targets (satisficing, §3.5).
///
/// # Errors
/// Returns [`NavigationError::NoProvider`] when a capability has no
/// provider at all.
pub fn navigate_best_effort(
    catalog: &Catalog,
    pipeline: &[&str],
    targets: &[NfrTarget],
) -> Result<Selection, NavigationError> {
    let mut alternatives: Vec<Vec<&CatalogEntry>> = Vec::with_capacity(pipeline.len());
    for cap in pipeline {
        let providers = catalog.providers(cap);
        if providers.is_empty() {
            return Err(NavigationError::NoProvider { capability: (*cap).to_owned() });
        }
        alternatives.push(providers);
    }

    // Exhaustive product search with odometer indexing.
    let mut best: Option<(f64, Vec<usize>, NfrProfile)> = None;
    let mut idx = vec![0usize; alternatives.len()];
    loop {
        let profile = idx
            .iter()
            .zip(&alternatives)
            .map(|(&i, alts)| alts[i].profile.clone())
            .reduce(|a, b| a.compose_serial(&b))
            .unwrap_or_default();
        let score = profile.score(targets);
        let better = match &best {
            None => true,
            Some((s, _, _)) => score > *s,
        };
        if better {
            best = Some((score, idx.clone(), profile));
        }
        // Advance the odometer.
        let mut pos = 0;
        loop {
            if pos == idx.len() {
                let (score, chosen, predicted) = best.expect("at least one combination");
                let components: Vec<String> = chosen
                    .iter()
                    .zip(&alternatives)
                    .map(|(&i, alts)| alts[i].name.clone())
                    .collect();
                let satisfies_all = predicted.satisfies(targets);
                let explanation = explain(pipeline, &components, &predicted, targets, score);
                return Ok(Selection { components, predicted, satisfies_all, explanation });
            }
            idx[pos] += 1;
            if idx[pos] < alternatives[pos].len() {
                break;
            }
            idx[pos] = 0;
            pos += 1;
        }
    }
}

fn explain(
    pipeline: &[&str],
    components: &[String],
    predicted: &NfrProfile,
    targets: &[NfrTarget],
    score: f64,
) -> String {
    let mut s = String::new();
    s.push_str("selected pipeline:");
    for (cap, comp) in pipeline.iter().zip(components) {
        s.push_str(&format!(" {cap}→{comp}"));
    }
    s.push_str(&format!(" (score {score:.3});"));
    for t in targets {
        match predicted.get(t.kind) {
            Some(m) => {
                let verdict = if t.satisfied_by(m) { "meets" } else { "VIOLATES" };
                s.push_str(&format!(" {} {verdict} target {:.4} (predicted {:.4});", t.kind, t.bound, m));
            }
            None => s.push_str(&format!(" {} unknown;", t.kind)),
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfr::NfrKind;

    fn catalog() -> Catalog {
        Catalog::new()
            .with(
                "fast-cache",
                "cache",
                NfrProfile::new()
                    .with(NfrKind::LatencyP95, 0.001)
                    .with(NfrKind::Availability, 0.999)
                    .with(NfrKind::CostPerHour, 2.0),
            )
            .with(
                "cheap-cache",
                "cache",
                NfrProfile::new()
                    .with(NfrKind::LatencyP95, 0.01)
                    .with(NfrKind::Availability, 0.99)
                    .with(NfrKind::CostPerHour, 0.2),
            )
            .with(
                "sql-db",
                "database",
                NfrProfile::new()
                    .with(NfrKind::LatencyP95, 0.02)
                    .with(NfrKind::Availability, 0.999)
                    .with(NfrKind::CostPerHour, 3.0),
            )
            .with(
                "kv-db",
                "database",
                NfrProfile::new()
                    .with(NfrKind::LatencyP95, 0.005)
                    .with(NfrKind::Availability, 0.995)
                    .with(NfrKind::CostPerHour, 1.0),
            )
    }

    #[test]
    fn picks_latency_optimal_pipeline_under_latency_pressure() {
        let targets = [NfrTarget::new(NfrKind::LatencyP95, 0.01)];
        let sel = navigate(&catalog(), &["cache", "database"], &targets).unwrap();
        assert_eq!(sel.components, vec!["fast-cache", "kv-db"]);
        assert!(sel.satisfies_all);
        assert!(sel.explanation.contains("meets"));
    }

    #[test]
    fn cost_pressure_flips_the_choice() {
        let targets = [
            NfrTarget { kind: NfrKind::CostPerHour, bound: 1.5, weight: 5.0 },
            NfrTarget { kind: NfrKind::LatencyP95, bound: 0.1, weight: 0.5 },
        ];
        let sel = navigate(&catalog(), &["cache", "database"], &targets).unwrap();
        assert_eq!(sel.components, vec!["cheap-cache", "kv-db"]);
    }

    #[test]
    fn missing_capability_is_an_error() {
        let err = navigate(&catalog(), &["gpu-farm"], &[]).unwrap_err();
        assert_eq!(err, NavigationError::NoProvider { capability: "gpu-farm".into() });
    }

    #[test]
    fn impossible_targets_fail_but_best_effort_answers() {
        let targets = [NfrTarget::new(NfrKind::LatencyP95, 0.000_1)];
        let err = navigate(&catalog(), &["cache", "database"], &targets).unwrap_err();
        assert_eq!(err, NavigationError::NoSatisfyingComposition);
        let sel = navigate_best_effort(&catalog(), &["cache", "database"], &targets).unwrap();
        assert!(!sel.satisfies_all);
        assert!(sel.explanation.contains("VIOLATES"));
        // An impossible target clamps every margin, so any pipeline ties;
        // the selection must still be structurally valid.
        assert_eq!(sel.components.len(), 2);
    }

    #[test]
    fn prediction_uses_serial_composition() {
        let sel = navigate_best_effort(&catalog(), &["cache", "database"], &[]).unwrap();
        let lat = sel.predicted.get(NfrKind::LatencyP95).unwrap();
        let cost = sel.predicted.get(NfrKind::CostPerHour).unwrap();
        // Some pair of (cache, db): latency adds, cost adds.
        assert!(lat >= 0.006 - 1e-12);
        assert!(cost >= 1.2 - 1e-12);
    }
}
