//! Reference architectures as data: the paper's Figures 1, 3, 4, and 5.
//!
//! The paper argues (C9, §6.1, §6.5) that community reference architectures
//! are the navigation charts of ecosystems. This module encodes the four
//! figures as validated layer structures and provides deployment-coverage
//! checking — the "highlighted components cover the minimum set of layers
//! necessary for execution" analysis of Figure 1.

use std::collections::BTreeSet;

/// One layer of a reference architecture.
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    /// Layer name.
    pub name: String,
    /// Example components that live in this layer.
    pub example_components: Vec<String>,
    /// Whether a working deployment must cover this layer.
    pub mandatory: bool,
}

/// A reference architecture: ordered layers, top (user-facing) first.
#[derive(Debug, Clone, PartialEq)]
pub struct ReferenceArchitecture {
    /// Architecture name.
    pub name: String,
    /// The layers, user-facing first.
    pub layers: Vec<Layer>,
}

impl ReferenceArchitecture {
    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// The layer that contains `component`, if any.
    pub fn layer_of(&self, component: &str) -> Option<&Layer> {
        self.layers
            .iter()
            .find(|l| l.example_components.iter().any(|c| c == component))
    }

    /// Checks whether a deployment (a set of component names) covers every
    /// mandatory layer; returns the names of uncovered mandatory layers.
    pub fn coverage_gaps(&self, deployment: &[&str]) -> Vec<String> {
        let chosen: BTreeSet<&str> = deployment.iter().copied().collect();
        self.layers
            .iter()
            .filter(|l| {
                l.mandatory
                    && !l.example_components.iter().any(|c| chosen.contains(c.as_str()))
            })
            .map(|l| l.name.clone())
            .collect()
    }

    /// True when the deployment covers all mandatory layers.
    pub fn is_executable(&self, deployment: &[&str]) -> bool {
        self.coverage_gaps(deployment).is_empty()
    }
}

fn layer(name: &str, components: &[&str], mandatory: bool) -> Layer {
    Layer {
        name: name.to_owned(),
        example_components: components.iter().map(|c| (*c).to_owned()).collect(),
        mandatory,
    }
}

/// Figure 1: the big-data ecosystem (four conceptual layers).
pub fn bigdata_refarch() -> ReferenceArchitecture {
    ReferenceArchitecture {
        name: "big-data (Fig. 1)".into(),
        layers: vec![
            layer("High-Level Language", &["Pig", "Hive", "mcs-dataflow"], false),
            layer(
                "Programming Model",
                &["MapReduce", "Pregel", "mcs-mapreduce", "mcs-bsp"],
                true,
            ),
            layer(
                "Execution Engine",
                &["Hadoop", "Giraph", "mcs-mapreduce-engine", "mcs-bsp-engine"],
                true,
            ),
            layer("Storage Engine", &["HDFS", "mcs-blockstore"], true),
        ],
    }
}

/// Figure 3: the datacenter reference architecture (5 core layers + DevOps).
pub fn datacenter_refarch() -> ReferenceArchitecture {
    ReferenceArchitecture {
        name: "datacenter (Fig. 3)".into(),
        layers: vec![
            layer("Front-end", &["app-frontend", "api-gateway"], true),
            layer("Back-end", &["task-manager", "mcs-scheduler"], true),
            layer("Resources", &["resource-manager", "mcs-provisioner"], true),
            layer("Operations Service", &["naming", "locking", "mcs-simcore"], false),
            layer("Infrastructure", &["machines", "mcs-infra"], true),
            layer("DevOps", &["monitoring", "logging", "benchmarking"], false),
        ],
    }
}

/// Figure 4: the online-gaming functional architecture.
pub fn gaming_refarch() -> ReferenceArchitecture {
    ReferenceArchitecture {
        name: "online gaming (Fig. 4)".into(),
        layers: vec![
            layer("Virtual World", &["zone-servers", "mcs-world"], true),
            layer("Gaming Analytics", &["social-graph", "mcs-social"], false),
            layer("Procedural Content Generation", &["puzzle-gen", "mcs-pcg"], false),
            layer("Social Meta-Gaming", &["tournaments", "spectating", "mcs-metagame"], false),
        ],
    }
}

/// Figure 5: the FaaS reference architecture.
pub fn faas_refarch() -> ReferenceArchitecture {
    ReferenceArchitecture {
        name: "FaaS (Fig. 5)".into(),
        layers: vec![
            layer("Function Composition", &["workflow-engine", "mcs-composition"], false),
            layer("Function Management", &["router", "instance-pool", "mcs-faas-platform"], true),
            layer("Resource Orchestration", &["kubernetes", "mcs-rms"], true),
            layer("Resources", &["vms", "mcs-infra"], true),
        ],
    }
}

/// The registry of all four encoded figures.
pub fn all_refarchs() -> Vec<ReferenceArchitecture> {
    vec![bigdata_refarch(), datacenter_refarch(), gaming_refarch(), faas_refarch()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_architectures_encoded() {
        let all = all_refarchs();
        assert_eq!(all.len(), 4);
        for arch in &all {
            assert!(arch.depth() >= 4, "{} too shallow", arch.name);
            assert!(arch.layers.iter().any(|l| l.mandatory));
        }
    }

    #[test]
    fn fig1_mapreduce_minimum_set() {
        // The Fig. 1 highlight: MapReduce + engine + storage suffice; the
        // HLL layer is optional.
        let arch = bigdata_refarch();
        assert!(arch.is_executable(&["MapReduce", "Hadoop", "HDFS"]));
        assert!(!arch.is_executable(&["Pig", "MapReduce", "Hadoop"]));
        let gaps = arch.coverage_gaps(&["MapReduce"]);
        assert_eq!(gaps, vec!["Execution Engine".to_owned(), "Storage Engine".to_owned()]);
    }

    #[test]
    fn layer_lookup() {
        let arch = faas_refarch();
        assert_eq!(arch.layer_of("kubernetes").unwrap().name, "Resource Orchestration");
        assert!(arch.layer_of("not-a-thing").is_none());
    }

    #[test]
    fn datacenter_devops_is_orthogonal() {
        let arch = datacenter_refarch();
        let devops = arch.layers.iter().find(|l| l.name == "DevOps").unwrap();
        assert!(!devops.mandatory);
        assert!(arch.is_executable(&[
            "app-frontend",
            "mcs-scheduler",
            "resource-manager",
            "machines",
        ]));
    }
}
