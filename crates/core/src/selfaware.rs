//! Self-awareness: MAPE-K feedback loops and emergence detection.
//!
//! Principle P4 makes self-awareness "a key building block, without which
//! scalability and efficiency … are not attainable"; C6 catalogs the
//! adaptation approaches. This module provides the classic
//! Monitor–Analyze–Plan–Execute loop over a knowledge base, a z-score
//! anomaly detector, and a dispersion-based emergence detector (P9:
//! "constantly monitoring for evolutionary and emergent behavior").

use std::collections::VecDeque;

/// What the analyzer concluded about the latest observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Analysis {
    /// Within expectations.
    Nominal,
    /// Above the target band.
    TooHigh,
    /// Below the target band.
    TooLow,
    /// Statistically anomalous relative to recent history.
    Anomalous,
}

/// A planned adaptation action.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Action {
    /// Do nothing.
    Hold,
    /// Add `usize` units of capacity.
    ScaleUp(usize),
    /// Remove `usize` units of capacity.
    ScaleDown(usize),
    /// Raise an alert for the human in the loop (P2: humans can still
    /// shape and control the loop).
    Alert,
}

/// The knowledge base of the loop: bounded observation history.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Knowledge {
    window: VecDeque<f64>,
    capacity: usize,
}

impl Knowledge {
    /// A knowledge base retaining `capacity` observations.
    pub fn new(capacity: usize) -> Self {
        Knowledge { window: VecDeque::new(), capacity: capacity.max(2) }
    }

    /// Records an observation.
    pub fn record(&mut self, value: f64) {
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(value);
    }

    /// Mean of the retained window.
    pub fn mean(&self) -> f64 {
        if self.window.is_empty() {
            0.0
        } else {
            self.window.iter().sum::<f64>() / self.window.len() as f64
        }
    }

    /// Standard deviation of the retained window.
    pub fn std_dev(&self) -> f64 {
        let n = self.window.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean();
        (self.window.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64).sqrt()
    }

    /// Number of retained observations.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// True when no observations are retained.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }
}

/// A MAPE-K loop controlling a scalar metric toward a target band.
#[derive(Debug, Clone, PartialEq)]
pub struct MapeLoop {
    /// Lower edge of the acceptable band.
    pub low: f64,
    /// Upper edge of the acceptable band.
    pub high: f64,
    /// Z-score above which an observation is anomalous.
    pub anomaly_z: f64,
    /// Units of capacity to adjust per action.
    pub step: usize,
    knowledge: Knowledge,
    actions: Vec<Action>,
}

impl MapeLoop {
    /// A loop holding the metric inside `[low, high]`.
    ///
    /// # Panics
    /// Panics when the band is empty.
    pub fn new(low: f64, high: f64) -> Self {
        assert!(low < high, "band must be non-empty");
        MapeLoop {
            low,
            high,
            anomaly_z: 4.0,
            step: 1,
            knowledge: Knowledge::new(64),
            actions: Vec::new(),
        }
    }

    /// The knowledge base.
    pub fn knowledge(&self) -> &Knowledge {
        &self.knowledge
    }

    /// The action log.
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }

    /// Monitor: ingest an observation; Analyze, Plan, and return the action
    /// to Execute.
    pub fn observe(&mut self, value: f64) -> Action {
        // Analyze.
        let analysis = if self.knowledge.len() >= 8 && self.knowledge.std_dev() > 1e-12 {
            let z = (value - self.knowledge.mean()).abs() / self.knowledge.std_dev();
            if z > self.anomaly_z {
                Analysis::Anomalous
            } else {
                self.band_analysis(value)
            }
        } else {
            self.band_analysis(value)
        };
        self.knowledge.record(value);
        // Plan.
        let action = match analysis {
            Analysis::Nominal => Action::Hold,
            Analysis::TooHigh => Action::ScaleUp(self.step),
            Analysis::TooLow => Action::ScaleDown(self.step),
            Analysis::Anomalous => Action::Alert,
        };
        self.actions.push(action);
        action
    }

    fn band_analysis(&self, value: f64) -> Analysis {
        if value > self.high {
            Analysis::TooHigh
        } else if value < self.low {
            Analysis::TooLow
        } else {
            Analysis::Nominal
        }
    }
}

/// Emergence detector (P9): flags when the *dispersion* of a fleet-wide
/// metric grows far beyond its historical level — the statistical signature
/// of emergent, correlated behaviour (flash crowds, cascades, thundering
/// herds) as opposed to independent noise.
#[derive(Debug, Clone, PartialEq)]
pub struct EmergenceDetector {
    baseline: Knowledge,
    /// Dispersion growth factor that triggers detection.
    pub factor: f64,
}

impl EmergenceDetector {
    /// A detector with the given trigger factor over a baseline window.
    pub fn new(window: usize, factor: f64) -> Self {
        EmergenceDetector { baseline: Knowledge::new(window), factor }
    }

    /// Feeds the per-interval dispersion (e.g. variance of per-node load)
    /// and returns true when emergence is detected.
    pub fn observe_dispersion(&mut self, dispersion: f64) -> bool {
        let trained = self.baseline.len() >= 8;
        let mean = self.baseline.mean();
        let emergent = trained && dispersion > mean * self.factor && mean > 1e-12;
        // Only absorb nominal observations into the baseline so a sustained
        // event does not normalize itself away.
        if !emergent {
            self.baseline.record(dispersion);
        }
        emergent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knowledge_window_is_bounded() {
        let mut k = Knowledge::new(4);
        for i in 0..10 {
            k.record(i as f64);
        }
        assert_eq!(k.len(), 4);
        assert!((k.mean() - 7.5).abs() < 1e-12); // 6,7,8,9
    }

    #[test]
    fn loop_holds_in_band() {
        let mut l = MapeLoop::new(0.3, 0.7);
        assert_eq!(l.observe(0.5), Action::Hold);
        assert_eq!(l.observe(0.9), Action::ScaleUp(1));
        assert_eq!(l.observe(0.1), Action::ScaleDown(1));
        assert_eq!(l.actions().len(), 3);
    }

    #[test]
    fn loop_converges_a_simple_plant() {
        // Plant: utilization = load / capacity; loop adjusts capacity.
        let mut l = MapeLoop::new(0.4, 0.8);
        let load = 40.0;
        let mut capacity = 10.0f64;
        for _ in 0..50 {
            let util = load / capacity;
            match l.observe(util) {
                Action::ScaleUp(s) => capacity += s as f64 * 10.0,
                Action::ScaleDown(s) => capacity -= s as f64 * 10.0,
                _ => {}
            }
            capacity = capacity.max(10.0);
        }
        let final_util = load / capacity;
        assert!(
            (0.4..=0.8).contains(&final_util),
            "did not converge: util {final_util}, capacity {capacity}"
        );
    }

    #[test]
    fn anomaly_raises_alert_not_scaling() {
        let mut l = MapeLoop::new(0.0, 100.0);
        for _ in 0..20 {
            l.observe(50.0 + 0.01 * (l.knowledge().len() as f64));
        }
        // A wild spike inside the band is still anomalous.
        assert_eq!(l.observe(99.0), Action::Alert);
    }

    #[test]
    #[should_panic(expected = "band must be non-empty")]
    fn empty_band_rejected() {
        let _ = MapeLoop::new(1.0, 1.0);
    }

    #[test]
    fn emergence_detected_only_after_training() {
        let mut d = EmergenceDetector::new(32, 3.0);
        // No detection while the baseline is untrained.
        assert!(!d.observe_dispersion(100.0));
        for _ in 0..16 {
            assert!(!d.observe_dispersion(1.0));
        }
        assert!(d.observe_dispersion(50.0), "50x dispersion must be flagged");
        // Nominal dispersion is still fine afterwards.
        assert!(!d.observe_dispersion(1.2));
    }

    #[test]
    fn sustained_emergence_keeps_firing() {
        let mut d = EmergenceDetector::new(32, 3.0);
        for _ in 0..16 {
            d.observe_dispersion(1.0);
        }
        for _ in 0..5 {
            assert!(d.observe_dispersion(10.0));
        }
    }
}
