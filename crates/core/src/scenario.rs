//! Composed ecosystem scenarios: every subsystem in one simulation.
//!
//! The paper's central claim is that clouds, grids, schedulers, and
//! serverless platforms are not isolated systems but one *ecosystem* whose
//! interesting behaviour is emergent (§2.1, P5). This module is that claim
//! made executable: a [`Scenario`] wires the batch scheduler (`mcs-rms`),
//! the autoscaling governor (`mcs-autoscale`), the FaaS platform
//! (`mcs-faas`), a correlated-failure injector (`mcs-failure`), a workload
//! arrival source (`mcs-workload`), the MapReduce/dataflow stack
//! (`mcs-bigdata`), the graph-analytics BSP engine (`mcs-graph`), and the
//! gaming virtual world (`mcs-gaming`) into a *single* [`Simulation`] over
//! one unified message type, [`EcosystemMsg`].
//!
//! Subsystems are opt-in: [`ScenarioConfig`] nests one sub-config per
//! subsystem (`Option`-gated), so one run can host anything from a single
//! actor (useful for standalone-vs-composed equivalence tests) to the full
//! stack. Cross-subsystem coupling is explicit: machine failures fan out to
//! every tenant of the shared fleet, and big-data shuffle windows exert
//! network pressure on graph supersteps and gaming zone capacity.
//!
//! Every component keeps its own seeded RNG stream (derived from the
//! scenario seed with a distinct label), so the composition is
//! deterministic: two runs with the same [`ScenarioConfig`] produce
//! byte-identical event traces. All cross-component coupling is visible on
//! the shared [`TraceBus`], which [`ScenarioOutcome`] returns for analysis.

use mcs_autoscale::autoscalers::{Autoscaler, React};
use mcs_autoscale::governor::{GovernorActor, GovernorMsg};
use mcs_autoscale::service::ServiceConfig;
use mcs_bigdata::actor::{BdPhase, BigdataMsg, DataflowActor};
use mcs_faas::actor::{CongestionConfig, FaasActor, FaasFault, FaasMsg};
use mcs_faas::platform::{FaasPlatform, FunctionSpec, KeepAlivePolicy, PlatformReport};
use mcs_failure::inject::{FailureEvent, FailureInjector, InjectorMsg};
use mcs_failure::model::{FailureModel, Fault, FaultKind, FaultMix, SpaceCorrelatedFailures};
use mcs_dag::actor::{DagActor, DagMsg};
use mcs_gaming::actor::{GamingMsg, SyncConfig as GamingSyncConfig, WorldActor};
use mcs_net::actor::{FlowOwner, FlowTag, NetActor, NetFault, NetMsg, TransferReq};
use mcs_net::topology::NetTopology;
use mcs_graph::actor::{BspActor, GraphMsg};
use mcs_infra::prelude::{Cluster, ClusterId, MachineSpec};
use mcs_rms::portfolio::{default_portfolio, Objective, PortfolioSelector};
use mcs_rms::scheduler::{ClusterScheduler, RmsMsg, ScheduleOutcome, SchedulerConfig};
use mcs_simcore::engine::{ActorId, MessageEnvelope, Simulation};
use mcs_simcore::error::McsError;
use mcs_simcore::resilience::ResilienceConfig;
use mcs_simcore::rng::RngStream;
use mcs_simcore::time::{SimDuration, SimTime};
use mcs_simcore::trace::{StreamConfig, TraceBus};
use mcs_workload::actor::{ArrivalActor, ArrivalMsg};
use mcs_workload::arrival::Poisson;
use mcs_workload::generator::{BatchWorkloadConfig, BatchWorkloadGenerator};

pub use mcs_bigdata::actor::BigdataConfig;
pub use mcs_dag::actor::{DagConfig, DagPolicy};
pub use mcs_gaming::actor::GamingConfig;
pub use mcs_graph::actor::GraphConfig;

/// The unified message type of a composed ecosystem simulation: one variant
/// per participating subsystem, each wrapping that subsystem's own message
/// vocabulary unchanged.
#[derive(Debug, Clone, PartialEq)]
pub enum EcosystemMsg {
    /// Workload arrival source.
    Arrival(ArrivalMsg),
    /// Batch cluster scheduler.
    Rms(RmsMsg),
    /// Autoscaling governor.
    Governor(GovernorMsg),
    /// FaaS platform.
    Faas(FaasMsg),
    /// Failure injector.
    Injector(InjectorMsg),
    /// MapReduce/dataflow stack.
    Bigdata(BigdataMsg),
    /// Graph-analytics BSP engine.
    Graph(GraphMsg),
    /// Gaming virtual world.
    Gaming(GamingMsg),
    /// DAG workflow engine.
    Dag(DagMsg),
    /// Flow-level network fabric.
    Net(NetMsg),
}

macro_rules! impl_envelope {
    ($variant:ident, $inner:ty) => {
        impl MessageEnvelope<$inner> for EcosystemMsg {
            fn wrap(inner: $inner) -> Self {
                EcosystemMsg::$variant(inner)
            }
            fn unwrap(self) -> Option<$inner> {
                match self {
                    EcosystemMsg::$variant(inner) => Some(inner),
                    _ => None,
                }
            }
        }
    };
}

impl_envelope!(Arrival, ArrivalMsg);
impl_envelope!(Rms, RmsMsg);
impl_envelope!(Governor, GovernorMsg);
impl_envelope!(Faas, FaasMsg);
impl_envelope!(Injector, InjectorMsg);
impl_envelope!(Bigdata, BigdataMsg);
impl_envelope!(Graph, GraphMsg);
impl_envelope!(Gaming, GamingMsg);
impl_envelope!(Dag, DagMsg);
impl_envelope!(Net, NetMsg);

/// One mebibyte, as the byte unit of the network sub-config.
const MIB: u64 = 1 << 20;

/// The batch-computing slice of a scenario: jobs through the RMS cluster
/// scheduler under portfolio policy selection.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchConfig {
    /// Batch jobs submitted over the horizon.
    pub jobs: usize,
    /// Cadence of portfolio-scheduler policy ticks.
    pub policy_interval: SimDuration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig { jobs: 60, policy_interval: SimDuration::from_secs(1800) }
    }
}

/// The serverless slice of a scenario: a Poisson invocation stream into the
/// autoscaled FaaS platform.
#[derive(Debug, Clone, PartialEq)]
pub struct FaasConfig {
    /// FaaS invocation arrival rate, per second.
    pub arrival_rate: f64,
    /// Hard cap on FaaS arrivals (guards pathological configurations).
    pub max_arrivals: usize,
    /// Keep-alive window of the FaaS warm pool.
    pub keep_alive: SimDuration,
    /// Initial FaaS concurrent-instance capacity.
    pub initial_capacity: usize,
    /// Autoscaling cadence and bounds (the governor's configuration).
    pub service: ServiceConfig,
    /// Optional FaaS congestion model (latency degrades over a utilization
    /// knee). `None` keeps the legacy congestion-free service.
    pub congestion: Option<CongestionConfig>,
}

impl Default for FaasConfig {
    fn default() -> Self {
        FaasConfig {
            arrival_rate: 0.5,
            max_arrivals: 100_000,
            keep_alive: SimDuration::from_secs(600),
            initial_capacity: 4,
            service: ServiceConfig {
                scaling_interval: SimDuration::from_secs(300),
                provisioning_delay_intervals: 1,
                min_instances: 1,
                max_instances: 64,
                ..ServiceConfig::default()
            },
            congestion: None,
        }
    }
}

/// The failure slice of a scenario: a space-correlated outage schedule with
/// a configurable fault-kind mix, fanned out to every subsystem sharing the
/// machine fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureConfig {
    /// Per-machine mean time between failures, seconds.
    pub mtbf_secs: f64,
    /// Machines per failure-correlation domain (rack/power segment).
    pub failure_domain: usize,
    /// Fraction of the idle FaaS warm pool killed per machine failure.
    pub kill_fraction: f64,
    /// Fault-kind mix of the failure schedule. Crash faults strike the batch
    /// cluster, the warm pool, and the bigdata/graph/gaming fleets;
    /// slowdown/gray/partition windows strike the FaaS service. Defaults to
    /// crash-only (the legacy vocabulary).
    pub fault_mix: FaultMix,
    /// Overrides the duration of non-crash (service-level) fault windows.
    /// Machine repairs take minutes, but the blips that slowdown/gray/
    /// partition faults model are typically much shorter; `None` keeps the
    /// outage's own repair instant.
    pub service_fault_secs: Option<f64>,
    /// An explicit, scripted fault schedule. When `Some`, the injector
    /// replays exactly these faults — the stochastic outage generator and
    /// the fault-mix assignment are bypassed entirely (chaos campaigns use
    /// this for reproducible adversarial runs). `None` (the default) keeps
    /// the legacy random schedule byte-identical.
    pub schedule: Option<Vec<Fault>>,
}

impl Default for FailureConfig {
    fn default() -> Self {
        FailureConfig {
            mtbf_secs: 6.0 * 3600.0,
            failure_domain: 8,
            kill_fraction: 0.5,
            fault_mix: FaultMix::crash_only(),
            service_fault_secs: None,
            schedule: None,
        }
    }
}

impl FailureConfig {
    /// A failure slice that replays exactly `faults` (scripted mode); the
    /// stochastic generator parameters keep their defaults but are unused.
    pub fn scripted(faults: Vec<Fault>) -> Self {
        FailureConfig { schedule: Some(faults), ..FailureConfig::default() }
    }
}

/// The network slice of a scenario: a two-level rack/uplink fabric shared
/// by every tenant, with max-min fair bandwidth allocation.
///
/// When attached (via [`ScenarioConfig::with_network`]), every
/// cross-component byte transfer becomes a flow on the shared fabric: FaaS
/// invocation payloads and responses, big-data map-input reads and shuffle
/// traffic, batch checkpoint restores, and gaming state syncs all contend
/// for the same links, so one tenant's burst is another tenant's stall.
/// Partition and gray faults from the failure mix strike the fabric itself
/// (cut and degraded access links) instead of opening FaaS service windows.
/// When absent (`None`, the default), every subsystem keeps its legacy
/// fixed-delay cost model byte-for-byte.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkConfig {
    /// Machines per rack in the two-level topology.
    pub nodes_per_rack: usize,
    /// Access-link capacity per machine, MiB/s.
    pub node_bandwidth_mbs: f64,
    /// Rack-uplink capacity, MiB/s.
    pub rack_bandwidth_mbs: f64,
    /// One-way propagation latency within a rack.
    pub same_rack_latency: SimDuration,
    /// One-way propagation latency across racks.
    pub cross_rack_latency: SimDuration,
    /// FaaS invocation request payload carried caller → platform, bytes.
    pub faas_payload_bytes: u64,
    /// FaaS response payload shipped back per successful invocation, bytes
    /// (`0` disables response flows).
    pub faas_response_bytes: u64,
    /// Checkpoint image fetched before a killed batch task re-enters the
    /// queue, MiB (only exercised when restart resilience is on).
    pub rms_checkpoint_mb: u64,
    /// Cadence of gaming world-state sync bursts.
    pub gaming_sync_interval: SimDuration,
    /// Fixed payload per gaming sync burst, bytes.
    pub gaming_sync_base_bytes: u64,
    /// Additional payload per online player, bytes.
    pub gaming_sync_per_player_bytes: u64,
    /// A sync burst that takes longer than this counts as lagged.
    pub gaming_lag_budget: SimDuration,
    /// How long a flow may sit at a zero fair share (its endpoint cut) before
    /// the fabric aborts it with a `net/flow_aborted` record and the owner is
    /// told to retry or fail fast. `None` restores the pre-timeout behaviour:
    /// stranded flows stall silently until the cut heals (or forever).
    pub flow_timeout: Option<SimDuration>,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            nodes_per_rack: 8,
            node_bandwidth_mbs: 100.0,
            rack_bandwidth_mbs: 400.0,
            same_rack_latency: SimDuration::from_micros(200),
            cross_rack_latency: SimDuration::from_millis(1),
            faas_payload_bytes: 64 * 1024,
            faas_response_bytes: 256 * 1024,
            rms_checkpoint_mb: 64,
            gaming_sync_interval: SimDuration::from_secs(5),
            gaming_sync_base_bytes: 256 * 1024,
            gaming_sync_per_player_bytes: 4 * 1024,
            gaming_lag_budget: SimDuration::from_millis(250),
            flow_timeout: Some(SimDuration::from_secs(60)),
        }
    }
}

impl NetworkConfig {
    /// Builds the link-capacity topology for a fleet of `machines`.
    fn topology(&self, machines: usize) -> NetTopology {
        NetTopology::new(
            machines as u32,
            self.nodes_per_rack as u32,
            self.node_bandwidth_mbs * MIB as f64,
            self.rack_bandwidth_mbs * MIB as f64,
            self.same_rack_latency,
            self.cross_rack_latency,
        )
    }
}

/// How the run's trace is retained.
///
/// `None` (the default) keeps the legacy full-retention [`TraceBus`]:
/// every event stored, byte-identical traces, unbounded memory. `Some`
/// switches the bus to streaming aggregation *before the first event is
/// emitted*: events are folded into per-`(component, event)` rollups
/// (counts, per-field [`mcs_simcore::metrics::OnlineStats`] and
/// [`mcs_simcore::metrics::QuantileSketch`]s, optional windowed counters)
/// and the events themselves are dropped, so trace memory stays flat no
/// matter how long the run is. Aggregate queries (`count`, `counts`,
/// `field_stats`, `field_quantile`, ...) keep working; per-event queries
/// (`select`, `series`) come back empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObservabilityConfig {
    /// Centroid budget of each per-field quantile sketch. Rank error is
    /// ~`2n / sketch_centroids`; memory is ~16 bytes per centroid.
    pub sketch_centroids: usize,
    /// When set, each rollup also counts events into fixed windows of this
    /// width (for load-over-time plots without retaining events).
    pub window: Option<SimDuration>,
}

impl Default for ObservabilityConfig {
    fn default() -> Self {
        let stream = StreamConfig::default();
        ObservabilityConfig { sketch_centroids: stream.sketch_centroids, window: stream.window }
    }
}

impl ObservabilityConfig {
    fn stream_config(&self) -> StreamConfig {
        StreamConfig { sketch_centroids: self.sketch_centroids, window: self.window }
    }
}

/// Parameters of a composed ecosystem run.
///
/// Subsystems are nested, `Option`-gated sub-configs: `Some` attaches the
/// subsystem to the run, `None` leaves it out. [`ScenarioConfig::default`]
/// reproduces the legacy five-actor composition (batch + FaaS + autoscale +
/// workload + failures) byte-for-byte; [`ScenarioConfig::bare`] starts from
/// an empty ecosystem for selective composition.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    /// Master seed; every component derives its own labelled stream.
    pub seed: u64,
    /// Virtual-time horizon of the run.
    pub horizon: SimTime,
    /// Machines in the shared fleet (batch cluster, failure-model
    /// population, and the bigdata/graph worker pool).
    pub machines: usize,
    /// Resilience mechanisms of the run. The default ([`ResilienceConfig::none`])
    /// reproduces the legacy fail-and-suffer behaviour exactly.
    pub resilience: ResilienceConfig,
    /// Batch computing through the RMS scheduler.
    pub batch: Option<BatchConfig>,
    /// Serverless platform plus its arrival stream and autoscaling governor.
    pub faas: Option<FaasConfig>,
    /// Correlated failures striking every subsystem on the fleet.
    pub failure: Option<FailureConfig>,
    /// MapReduce/dataflow stack (opt-in).
    pub bigdata: Option<BigdataConfig>,
    /// Graph-analytics BSP queries (opt-in).
    pub graph: Option<GraphConfig>,
    /// Gaming virtual world (opt-in).
    pub gaming: Option<GamingConfig>,
    /// DAG workflow engine with portfolio scheduling (opt-in).
    pub dag: Option<DagConfig>,
    /// Flow-level network fabric (opt-in). `None` keeps every subsystem's
    /// legacy fixed-delay cost model, byte-identically.
    pub network: Option<NetworkConfig>,
    /// Streaming trace aggregation (opt-in). `None` keeps the legacy
    /// full-retention trace, byte-identically.
    pub observability: Option<ObservabilityConfig>,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            seed: 42,
            horizon: SimTime::from_secs(4 * 3600),
            machines: 32,
            resilience: ResilienceConfig::none(),
            batch: Some(BatchConfig::default()),
            faas: Some(FaasConfig::default()),
            failure: Some(FailureConfig::default()),
            bigdata: None,
            graph: None,
            gaming: None,
            dag: None,
            network: None,
            observability: None,
        }
    }
}

impl ScenarioConfig {
    /// An empty ecosystem: no subsystems attached. Compose with the
    /// `with_*` builders; useful for single-subsystem equivalence runs.
    pub fn bare(seed: u64, horizon: SimTime, machines: usize) -> Self {
        ScenarioConfig {
            seed,
            horizon,
            machines,
            resilience: ResilienceConfig::none(),
            batch: None,
            faas: None,
            failure: None,
            bigdata: None,
            graph: None,
            gaming: None,
            dag: None,
            network: None,
            observability: None,
        }
    }

    /// Attaches (or replaces) the batch-computing subsystem.
    #[must_use]
    pub fn with_batch(mut self, batch: BatchConfig) -> Self {
        self.batch = Some(batch);
        self
    }

    /// Attaches (or replaces) the serverless subsystem.
    #[must_use]
    pub fn with_faas(mut self, faas: FaasConfig) -> Self {
        self.faas = Some(faas);
        self
    }

    /// Attaches (or replaces) the failure schedule.
    #[must_use]
    pub fn with_failures(mut self, failure: FailureConfig) -> Self {
        self.failure = Some(failure);
        self
    }

    /// Attaches (or replaces) the MapReduce/dataflow subsystem.
    #[must_use]
    pub fn with_bigdata(mut self, bigdata: BigdataConfig) -> Self {
        self.bigdata = Some(bigdata);
        self
    }

    /// Attaches (or replaces) the graph-analytics subsystem.
    #[must_use]
    pub fn with_graph(mut self, graph: GraphConfig) -> Self {
        self.graph = Some(graph);
        self
    }

    /// Attaches (or replaces) the gaming virtual world.
    #[must_use]
    pub fn with_gaming(mut self, gaming: GamingConfig) -> Self {
        self.gaming = Some(gaming);
        self
    }

    /// Attaches (or replaces) the DAG workflow engine.
    #[must_use]
    pub fn with_dag(mut self, dag: DagConfig) -> Self {
        self.dag = Some(dag);
        self
    }

    /// Attaches (or replaces) the flow-level network fabric.
    #[must_use]
    pub fn with_network(mut self, network: NetworkConfig) -> Self {
        self.network = Some(network);
        self
    }

    /// Sets the resilience mechanisms of the run.
    #[must_use]
    pub fn with_resilience(mut self, resilience: ResilienceConfig) -> Self {
        self.resilience = resilience;
        self
    }

    /// Switches the run's trace to bounded-memory streaming aggregation.
    #[must_use]
    pub fn with_observability(mut self, observability: ObservabilityConfig) -> Self {
        self.observability = Some(observability);
        self
    }

    /// Validates the configuration.
    ///
    /// Hard offences — the checks a mid-run panic or an infinite loop would
    /// otherwise surface (an empty fleet, non-finite or negative rates, a
    /// zero-sized failure-correlation domain) — come back as the first
    /// [`McsError::InvalidConfig`]. A valid configuration returns the list
    /// of *warnings*: legal-but-suspicious combinations (e.g. partition
    /// faults without a network model to cut) that binaries print to stderr
    /// and chaos campaigns assert on. An empty list means a clean config.
    pub fn validate(&self) -> Result<Vec<ScenarioWarning>, McsError> {
        fn finite_positive(field: &'static str, v: f64) -> Result<(), McsError> {
            if !v.is_finite() || v <= 0.0 {
                return Err(McsError::invalid_config(field, "must be finite and positive"));
            }
            Ok(())
        }
        fn finite_non_negative(field: &'static str, v: f64) -> Result<(), McsError> {
            if !v.is_finite() || v < 0.0 {
                return Err(McsError::invalid_config(field, "must be finite and non-negative"));
            }
            Ok(())
        }

        if self.machines == 0 {
            return Err(McsError::invalid_config("machines", "fleet must not be empty"));
        }
        if self.horizon == SimTime::ZERO {
            return Err(McsError::invalid_config("horizon", "must be positive"));
        }
        if let Some(faas) = &self.faas {
            finite_non_negative("faas.arrival_rate", faas.arrival_rate)?;
        }
        if let Some(failure) = &self.failure {
            finite_positive("failure.mtbf_secs", failure.mtbf_secs)?;
            if failure.failure_domain == 0 {
                return Err(McsError::invalid_config(
                    "failure.failure_domain",
                    "correlation domain must hold at least one machine",
                ));
            }
            if !failure.kill_fraction.is_finite()
                || !(0.0..=1.0).contains(&failure.kill_fraction)
            {
                return Err(McsError::invalid_config(
                    "failure.kill_fraction",
                    "must lie in [0, 1]",
                ));
            }
            if let Some(secs) = failure.service_fault_secs {
                finite_positive("failure.service_fault_secs", secs)?;
            }
        }
        if let Some(bigdata) = &self.bigdata {
            if bigdata.block_mb == 0 {
                return Err(McsError::invalid_config("bigdata.block_mb", "must be positive"));
            }
            finite_positive("bigdata.shuffle_bandwidth_mbs", bigdata.shuffle_bandwidth_mbs)?;
            finite_non_negative("bigdata.submit_interval_secs", bigdata.submit_interval_secs)?;
        }
        if let Some(graph) = &self.graph {
            if graph.vertices == 0 {
                return Err(McsError::invalid_config("graph.vertices", "graph must not be empty"));
            }
            finite_non_negative("graph.submit_interval_secs", graph.submit_interval_secs)?;
        }
        if let Some(gaming) = &self.gaming {
            if gaming.zone_capacity == 0 {
                return Err(McsError::invalid_config("gaming.zone_capacity", "must be positive"));
            }
            finite_non_negative("gaming.players.base_rate", gaming.players.base_rate)?;
        }
        if let Some(dag) = &self.dag {
            dag.validate()?;
        }
        if let Some(network) = &self.network {
            if network.nodes_per_rack == 0 {
                return Err(McsError::invalid_config(
                    "network.nodes_per_rack",
                    "racks must hold at least one machine",
                ));
            }
            finite_positive("network.node_bandwidth_mbs", network.node_bandwidth_mbs)?;
            finite_positive("network.rack_bandwidth_mbs", network.rack_bandwidth_mbs)?;
            if network.gaming_sync_interval.is_zero() {
                return Err(McsError::invalid_config(
                    "network.gaming_sync_interval",
                    "must be positive",
                ));
            }
            if !network.topology(self.machines).is_connected() {
                return Err(McsError::invalid_config(
                    "network",
                    "topology must be connected (every link needs positive capacity)",
                ));
            }
        }
        if let Some(obs) = &self.observability {
            if obs.sketch_centroids < 8 {
                return Err(McsError::invalid_config(
                    "observability.sketch_centroids",
                    "sketch needs at least 8 centroids",
                ));
            }
            if obs.window.is_some_and(|w| w.is_zero()) {
                return Err(McsError::invalid_config(
                    "observability.window",
                    "must be positive",
                ));
            }
        }
        Ok(self.warnings())
    }

    /// The legal-but-suspicious combinations in this configuration; see
    /// [`ScenarioConfig::validate`].
    fn warnings(&self) -> Vec<ScenarioWarning> {
        let mut warnings = Vec::new();
        if let (Some(failure), None) = (&self.failure, &self.network) {
            let scripted_partitions = failure.schedule.as_ref().is_some_and(|faults| {
                faults.iter().any(|f| matches!(f.kind, FaultKind::Partition))
            });
            if failure.schedule.is_none() && failure.fault_mix.partition > 0.0 {
                warnings.push(ScenarioWarning::new(
                    "failure.fault_mix.partition",
                    format!(
                        "fault_mix.partition = {} but no network model is attached; \
                         partition windows fall back to FaaS service faults — attach a \
                         NetworkConfig (with_network) to cut topology links instead",
                        failure.fault_mix.partition
                    ),
                ));
            }
            if scripted_partitions {
                warnings.push(ScenarioWarning::new(
                    "failure.schedule",
                    "scripted schedule contains partition faults but no network model \
                     is attached; they fall back to FaaS service faults — attach a \
                     NetworkConfig (with_network) to cut topology links instead"
                        .to_string(),
                ));
            }
        }
        if let (Some(dag), Some(network)) = (&self.dag, &self.network) {
            let racks = self.machines.div_ceil(network.nodes_per_rack.max(1));
            if racks < dag.locality_domains as usize {
                warnings.push(ScenarioWarning::new(
                    "dag.locality_domains",
                    format!(
                        "workload is laid out for {} locality domains but the fabric \
                         has only {racks} rack(s); locality-first placement degrades \
                         to blind best-fit beyond the rack count — widen the fleet or \
                         lower nodes_per_rack / locality_domains",
                        dag.locality_domains
                    ),
                ));
            }
        }
        if let (Some(failure), Some(network)) = (&self.failure, &self.network) {
            let has_partitions = failure.fault_mix.partition > 0.0
                || failure.schedule.as_ref().is_some_and(|faults| {
                    faults.iter().any(|f| matches!(f.kind, FaultKind::Partition))
                });
            if has_partitions && network.flow_timeout.is_none() {
                warnings.push(ScenarioWarning::new(
                    "network.flow_timeout",
                    "partition faults can strand in-flight flows and flow_timeout is \
                     None: a cut endpoint stalls its flows silently until the cut \
                     heals — set a timeout so owners are told to retry or fail fast"
                        .to_string(),
                ));
            }
        }
        warnings
    }
}

/// A legal-but-suspicious configuration combination surfaced by
/// [`ScenarioConfig::validate`]: binaries print these to stderr, chaos
/// campaigns assert on them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioWarning {
    /// Dotted path of the field (combination) the warning is about.
    pub field: &'static str,
    /// Human-readable advice.
    pub message: String,
}

impl ScenarioWarning {
    fn new(field: &'static str, message: String) -> Self {
        ScenarioWarning { field, message }
    }
}

impl std::fmt::Display for ScenarioWarning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "warning: {}: {}", self.field, self.message)
    }
}

/// What a composed run measured, per subsystem and across them.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// The batch scheduler's outcome (empty when batch is not attached).
    pub schedule: ScheduleOutcome,
    /// The FaaS platform's report (empty when FaaS is not attached).
    pub faas: PlatformReport,
    /// FaaS arrivals delivered by the workload source.
    pub arrivals: usize,
    /// Invocations admitted by the capacity cap.
    pub invoked: u64,
    /// Invocations rejected by the capacity cap.
    pub rejected: u64,
    /// Invocations that ended in failure (partition, gray, timeout, open
    /// breaker); zero in crash-only runs.
    pub invocations_failed: u64,
    /// Requests dropped by engaged load shedding.
    pub shed: u64,
    /// Retries scheduled by the FaaS retry policy.
    pub retries_scheduled: u64,
    /// FaaS capacity at the end of the run.
    pub final_capacity: usize,
    /// Outages in the generated schedule.
    pub outages_generated: usize,
    /// Outages that actually struck before the horizon.
    pub outages_delivered: usize,
    /// Scaling decisions the governor took.
    pub governor_decisions: usize,
    /// MapReduce jobs that ran all their stages to completion.
    pub bigdata_jobs: usize,
    /// Graph-analytics queries that ran to completion.
    pub graph_queries: usize,
    /// Graph supersteps executed slowed (worker loss or shuffle pressure).
    pub graph_stragglers: u64,
    /// Players admitted into the virtual world.
    pub gaming_admitted: u64,
    /// Players turned away at the door.
    pub gaming_rejected: u64,
    /// Players dropped mid-session by zone failures.
    pub gaming_disconnected: u64,
    /// Gaming state syncs that blew the lag budget (network runs only).
    pub gaming_laggy_syncs: u64,
    /// Workflows the DAG engine ran to completion.
    pub dag_jobs_finished: u64,
    /// Workflow tasks completed.
    pub dag_tasks_finished: u64,
    /// Mean workflow makespan (submit to last task), seconds.
    pub dag_mean_makespan_secs: f64,
    /// Total seconds workflow edge payloads spent in flight.
    pub dag_transfer_secs: f64,
    /// Workflow transfer seconds beyond the reference-bandwidth ideal.
    pub dag_stall_secs: f64,
    /// Flows started on the network fabric (zero without a network).
    pub net_flows_started: u64,
    /// Flows delivered by the network fabric.
    pub net_flows_delivered: u64,
    /// Flows aborted after stalling on a cut endpoint past the flow timeout.
    pub net_flows_aborted: u64,
    /// Total seconds flows lost to contention, faults, and degraded links.
    pub net_stall_secs: f64,
    /// Engine messages delivered across all actors.
    pub events_handled: u64,
    /// The cross-cutting event trace of the whole run.
    pub trace: TraceBus,
}

/// Builds and runs a composed ecosystem simulation.
///
/// ```
/// use mcs_core::scenario::{BatchConfig, Scenario, ScenarioConfig};
/// use mcs_simcore::time::SimTime;
///
/// let config = ScenarioConfig {
///     horizon: SimTime::from_secs(1800),
///     machines: 8,
///     ..ScenarioConfig::default()
/// }
/// .with_batch(BatchConfig { jobs: 10, ..BatchConfig::default() });
/// let outcome = Scenario::new(config).run();
/// assert!(outcome.arrivals > 0 && outcome.events_handled > 0);
/// ```
pub struct Scenario {
    config: ScenarioConfig,
    autoscaler: Box<dyn Autoscaler>,
    functions: Vec<FunctionSpec>,
}

impl Scenario {
    /// A scenario with the given configuration, a `React` autoscaler, and a
    /// two-function FaaS deployment (an API handler and a data processor).
    ///
    /// # Panics
    /// Panics when the configuration is invalid; use [`Scenario::try_new`]
    /// to handle the error instead.
    pub fn new(config: ScenarioConfig) -> Self {
        Scenario::try_new(config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// A scenario with the given configuration, validated at build time.
    ///
    /// # Errors
    /// Returns [`McsError::InvalidConfig`] when the configuration fails
    /// [`ScenarioConfig::validate`] (empty fleet, non-finite rates, ...).
    pub fn try_new(config: ScenarioConfig) -> Result<Self, McsError> {
        let warnings = config.validate()?;
        if !warnings.is_empty() {
            // Once per process: sweeps build hundreds of scenarios and the
            // advice does not change between them. Callers that want every
            // instance (chaos campaigns) call `validate()` themselves.
            static CONFIG_WARNINGS: std::sync::Once = std::sync::Once::new();
            CONFIG_WARNINGS.call_once(|| {
                for w in &warnings {
                    eprintln!("{w}");
                }
            });
        }
        Ok(Scenario {
            config,
            autoscaler: Box::new(React::default()),
            functions: vec![
                FunctionSpec::api_handler("api"),
                FunctionSpec::data_processor("etl"),
            ],
        })
    }

    /// The scenario's configuration.
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// Mutable access to the configuration — the hook
    /// [`crate::subsystem::Subsystem::attach`] implementations use to
    /// contribute their sub-config to a scenario under construction.
    pub fn config_mut(&mut self) -> &mut ScenarioConfig {
        &mut self.config
    }

    /// Replaces the autoscaler governing the FaaS platform.
    #[must_use]
    pub fn with_autoscaler(mut self, autoscaler: Box<dyn Autoscaler>) -> Self {
        self.autoscaler = autoscaler;
        self
    }

    /// Replaces the FaaS deployment (invocations round-robin across specs).
    ///
    /// # Panics
    /// Panics when `functions` is empty.
    #[must_use]
    pub fn with_functions(mut self, functions: Vec<FunctionSpec>) -> Self {
        assert!(!functions.is_empty(), "scenario needs at least one function");
        self.functions = functions;
        self
    }

    /// Runs the composed simulation to its horizon and returns the outcome.
    pub fn run(mut self) -> ScenarioOutcome {
        let cfg = self.config.clone();

        // Per-component RNG streams, all derived from the master seed. The
        // streams (and their draw order) are identical whether a subsystem
        // runs standalone or composed.
        let mut workload_rng = RngStream::new(cfg.seed, "workload");
        let mut failure_rng = RngStream::new(cfg.seed, "failures");

        // Subsystem state (owned here; actors borrow it below).
        let mut batch_jobs = cfg.batch.as_ref().map(|batch| {
            BatchWorkloadGenerator::new(BatchWorkloadConfig::default()).generate(
                cfg.horizon,
                batch.jobs,
                &mut workload_rng,
            )
        });

        let mut outages_generated = 0;
        let faults = cfg.failure.as_ref().map(|failure| match &failure.schedule {
            // Scripted mode: replay exactly the given faults; the stochastic
            // generator and the fault-mix assignment (and their RNG streams)
            // are never consulted.
            Some(scripted) => {
                outages_generated = scripted.len();
                scripted.clone()
            }
            None => {
                let outages = SpaceCorrelatedFailures::with_mtbf(
                    failure.mtbf_secs,
                    cfg.machines,
                    failure.failure_domain,
                )
                .generate(cfg.machines, cfg.horizon, &mut failure_rng);
                outages_generated = outages.len();
                let mut mix_rng = RngStream::new(cfg.seed, "fault-mix");
                failure.fault_mix.assign(outages, &mut mix_rng)
            }
        });

        let mut platform = cfg.faas.as_ref().map(|faas| {
            let mut platform =
                FaasPlatform::new(KeepAlivePolicy::Fixed(faas.keep_alive), cfg.seed);
            for spec in &self.functions {
                platform.deploy(spec.clone());
            }
            platform
        });
        let function_names: Vec<String> =
            self.functions.iter().map(|f| f.name.clone()).collect();

        let mut scheduler = cfg.batch.as_ref().map(|_| {
            let cluster = Cluster::homogeneous(
                ClusterId(0),
                "batch",
                MachineSpec::commodity("std-8", 8.0, 32.0),
                cfg.machines as u32,
            );
            ClusterScheduler::new(cluster, SchedulerConfig::default(), cfg.seed)
        });
        let mut selector = cfg
            .batch
            .as_ref()
            .map(|_| PortfolioSelector::new(default_portfolio(), Objective::Makespan, cfg.seed));
        let mut process = cfg.faas.as_ref().map(|faas| Poisson::new(faas.arrival_rate));

        // Actor ids are assigned in registration order; fix that order here
        // (skipping absent subsystems) so cross-actor callbacks can address
        // their peers up front. The legacy quintet keeps ids 0..=4.
        let mut next_index = 0usize;
        let mut alloc = |present: bool| {
            present.then(|| {
                let id = ActorId::from_index(next_index);
                next_index += 1;
                id
            })
        };
        let arrival_id = alloc(cfg.faas.is_some());
        let scheduler_id = alloc(cfg.batch.is_some());
        let governor_id = alloc(cfg.faas.is_some());
        let faas_id = alloc(cfg.faas.is_some());
        let injector_id = alloc(cfg.failure.is_some());
        let bigdata_id = alloc(cfg.bigdata.is_some());
        let graph_id = alloc(cfg.graph.is_some());
        let gaming_id = alloc(cfg.gaming.is_some());
        let dag_id = alloc(cfg.dag.is_some());
        // The network actor registers last so attaching it never renumbers
        // the tenants (and `network: None` keeps the legacy id layout).
        let net_id = alloc(cfg.network.is_some());

        let mut arrival = process.as_mut().map(|process| {
            let faas = cfg.faas.as_ref().expect("faas config present with process");
            let faas_id = faas_id.expect("faas id allocated");
            let function_names = function_names.clone();
            // With a network attached, the invocation payload travels as a
            // flow from the caller's node to the platform front-end (node 0);
            // the net completion router issues the Invoke on delivery.
            let payload_bytes =
                cfg.network.as_ref().map_or(0, |net| net.faas_payload_bytes.max(1));
            let machines = cfg.machines as u32;
            ArrivalActor::new(
                process,
                RngStream::new(cfg.seed, "arrivals"),
                cfg.horizon,
                faas.max_arrivals,
                move |ctx, index| {
                    if let Some(id) = net_id {
                        ctx.send(
                            id,
                            SimDuration::ZERO,
                            EcosystemMsg::Net(NetMsg::Transfer(TransferReq {
                                src: index as u32 % machines,
                                dst: 0,
                                bytes: payload_bytes,
                                tag: FlowTag { owner: FlowOwner::Faas, id: index as u64 },
                            })),
                        );
                    } else {
                        let function = function_names[index % function_names.len()].clone();
                        ctx.send(
                            faas_id,
                            SimDuration::ZERO,
                            EcosystemMsg::Faas(FaasMsg::Invoke { function }),
                        );
                    }
                },
            )
        });

        let mut scheduler_actor = scheduler.as_mut().map(|scheduler| {
            let batch = cfg.batch.as_ref().expect("batch config present with scheduler");
            let jobs = batch_jobs.take().expect("batch jobs generated");
            let selector = selector.as_mut().expect("selector present with scheduler");
            let mut actor = scheduler
                .actor(jobs, cfg.horizon)
                .with_selector(selector, batch.policy_interval);
            if let Some(restart) = cfg.resilience.restart {
                actor = actor.with_restart(restart);
            }
            // With a network attached, a killed task's checkpoint image is
            // fetched over the fabric before it re-enters the queue, so
            // recovery time tracks contention instead of a fixed backoff.
            if let (Some(nid), Some(net)) = (net_id, cfg.network.as_ref()) {
                let bytes = (net.rms_checkpoint_mb * MIB).max(1);
                let machines = cfg.machines as u32;
                actor = actor.with_checkpoint_hook(move |ctx, task, attempt| {
                    let src = task as u32 % machines;
                    let dst = (task as u32 + 1 + attempt) % machines;
                    ctx.send(
                        nid,
                        SimDuration::ZERO,
                        EcosystemMsg::Net(NetMsg::Transfer(TransferReq {
                            src,
                            dst,
                            bytes,
                            tag: FlowTag { owner: FlowOwner::Rms, id: task as u64 },
                        })),
                    );
                });
            }
            actor
        });

        let autoscaler = self.autoscaler.as_mut();
        let mut governor = cfg.faas.as_ref().map(|faas| {
            let faas_id = faas_id.expect("faas id allocated");
            let mut governor =
                GovernorActor::new(autoscaler, faas.service, move |ctx, delta| {
                    ctx.send(
                        faas_id,
                        SimDuration::ZERO,
                        EcosystemMsg::Faas(FaasMsg::Scale(delta)),
                    );
                });
            if cfg.resilience.shedder.is_some() {
                governor = governor.with_shedding(move |ctx, on| {
                    ctx.send(
                        faas_id,
                        SimDuration::ZERO,
                        EcosystemMsg::Faas(FaasMsg::SetShedding(on)),
                    );
                });
            }
            governor
        });

        let mut faas_actor = platform.as_mut().map(|platform| {
            let faas = cfg.faas.as_ref().expect("faas config present with platform");
            let governor_id = governor_id.expect("governor id allocated");
            let mut actor = FaasActor::new(platform)
                .with_capacity(faas.initial_capacity)
                .with_resilience(cfg.resilience)
                .with_observer(faas.service.scaling_interval, move |ctx, demand, supply| {
                    ctx.send(
                        governor_id,
                        SimDuration::ZERO,
                        EcosystemMsg::Governor(GovernorMsg::Observe { demand, supply }),
                    );
                });
            if let Some(congestion) = faas.congestion {
                actor = actor.with_congestion(congestion);
            }
            // Response payloads ride the fabric back to the callers; they
            // are fire-and-forget but still contend for bandwidth.
            if let (Some(nid), Some(net)) = (net_id, cfg.network.as_ref()) {
                if net.faas_response_bytes > 0 {
                    let bytes = net.faas_response_bytes;
                    let machines = cfg.machines as u32;
                    let mut seq = 0u64;
                    actor = actor.with_response_hook(move |ctx, _latency_secs| {
                        let dst = if machines > 1 {
                            1 + (seq % u64::from(machines - 1)) as u32
                        } else {
                            0
                        };
                        ctx.send(
                            nid,
                            SimDuration::ZERO,
                            EcosystemMsg::Net(NetMsg::Transfer(TransferReq {
                                src: 0,
                                dst,
                                bytes,
                                tag: FlowTag { owner: FlowOwner::FaasResp, id: seq },
                            })),
                        );
                        seq += 1;
                    });
                }
            }
            actor
        });

        // Crash faults strike every tenant of the shared fleet — the batch
        // cluster, the warm pool, and the bigdata/graph/gaming actors; the
        // other kinds open service-level fault windows on the FaaS platform.
        let mut injector = faults.map(|faults| {
            let failure = cfg.failure.as_ref().expect("failure config present with faults");
            let kill_fraction = failure.kill_fraction;
            let service_fault_secs = failure.service_fault_secs;
            let has_net = net_id.is_some();
            // With a network attached, partition and gray windows strike the
            // fabric itself (cut and degraded access links); without one they
            // fall back to the legacy FaaS service-fault windows.
            let service_fault = move |kind: FaultKind| -> Option<FaasFault> {
                match kind {
                    FaultKind::Crash => None,
                    FaultKind::Slowdown { factor } => Some(FaasFault::Slowdown { factor }),
                    FaultKind::Gray { error_rate } if !has_net => {
                        Some(FaasFault::Gray { error_rate })
                    }
                    FaultKind::Partition if !has_net => Some(FaasFault::Partition),
                    FaultKind::Gray { .. } | FaultKind::Partition => None,
                }
            };
            let topo_fault = move |kind: FaultKind, machine: u32| -> Option<NetFault> {
                if !has_net {
                    return None;
                }
                match kind {
                    FaultKind::Partition => Some(NetFault::Cut { node: machine }),
                    FaultKind::Gray { error_rate } => Some(NetFault::Degrade {
                        node: machine,
                        factor: (1.0 - error_rate).clamp(0.0, 1.0),
                    }),
                    _ => None,
                }
            };
            FailureInjector::with_faults(faults, move |ctx, event| match event {
                FailureEvent::Fail(fault) => {
                    let machine = fault.outage.machine as u32;
                    if let (Some(nf), Some(id)) = (topo_fault(fault.kind, machine), net_id) {
                        ctx.send(
                            id,
                            SimDuration::ZERO,
                            EcosystemMsg::Net(NetMsg::Fault(nf)),
                        );
                        if let Some(secs) = service_fault_secs {
                            ctx.send(
                                id,
                                SimDuration::from_secs_f64(secs),
                                EcosystemMsg::Net(NetMsg::FaultClear(nf)),
                            );
                        }
                        return;
                    }
                    match service_fault(fault.kind) {
                        None => {
                            if let Some(id) = scheduler_id {
                                ctx.send(
                                    id,
                                    SimDuration::ZERO,
                                    EcosystemMsg::Rms(RmsMsg::MachineFail(machine)),
                                );
                            }
                            if let Some(id) = faas_id {
                                ctx.send(
                                    id,
                                    SimDuration::ZERO,
                                    EcosystemMsg::Faas(FaasMsg::KillWarm {
                                        fraction: kill_fraction,
                                    }),
                                );
                            }
                            if let Some(id) = bigdata_id {
                                ctx.send(
                                    id,
                                    SimDuration::ZERO,
                                    EcosystemMsg::Bigdata(BigdataMsg::NodeFail(machine)),
                                );
                            }
                            if let Some(id) = graph_id {
                                ctx.send(
                                    id,
                                    SimDuration::ZERO,
                                    EcosystemMsg::Graph(GraphMsg::NodeFail(machine)),
                                );
                            }
                            if let Some(id) = gaming_id {
                                ctx.send(
                                    id,
                                    SimDuration::ZERO,
                                    EcosystemMsg::Gaming(GamingMsg::NodeFail(machine)),
                                );
                            }
                        }
                        Some(f) => {
                            if let Some(id) = faas_id {
                                ctx.send(
                                    id,
                                    SimDuration::ZERO,
                                    EcosystemMsg::Faas(FaasMsg::Fault(f)),
                                );
                                if let Some(secs) = service_fault_secs {
                                    ctx.send(
                                        id,
                                        SimDuration::from_secs_f64(secs),
                                        EcosystemMsg::Faas(FaasMsg::FaultClear(f)),
                                    );
                                }
                            }
                        }
                    }
                }
                FailureEvent::Repair(fault) => {
                    let machine = fault.outage.machine as u32;
                    if let (Some(nf), Some(id)) = (topo_fault(fault.kind, machine), net_id) {
                        // When the window length is overridden, the clear was
                        // already scheduled at fault-strike time.
                        if service_fault_secs.is_none() {
                            ctx.send(
                                id,
                                SimDuration::ZERO,
                                EcosystemMsg::Net(NetMsg::FaultClear(nf)),
                            );
                        }
                        return;
                    }
                    match service_fault(fault.kind) {
                        None => {
                            if let Some(id) = scheduler_id {
                                ctx.send(
                                    id,
                                    SimDuration::ZERO,
                                    EcosystemMsg::Rms(RmsMsg::MachineRepair(machine)),
                                );
                            }
                            if let Some(id) = bigdata_id {
                                ctx.send(
                                    id,
                                    SimDuration::ZERO,
                                    EcosystemMsg::Bigdata(BigdataMsg::NodeRepair(machine)),
                                );
                            }
                            if let Some(id) = graph_id {
                                ctx.send(
                                    id,
                                    SimDuration::ZERO,
                                    EcosystemMsg::Graph(GraphMsg::NodeRepair(machine)),
                                );
                            }
                            if let Some(id) = gaming_id {
                                ctx.send(
                                    id,
                                    SimDuration::ZERO,
                                    EcosystemMsg::Gaming(GamingMsg::NodeRepair(machine)),
                                );
                            }
                        }
                        Some(f) => {
                            // When the window length is overridden, the clear
                            // was already scheduled at fault-strike time.
                            if service_fault_secs.is_none() {
                                if let Some(id) = faas_id {
                                    ctx.send(
                                        id,
                                        SimDuration::ZERO,
                                        EcosystemMsg::Faas(FaasMsg::FaultClear(f)),
                                    );
                                }
                            }
                        }
                    }
                }
            })
            .with_horizon(cfg.horizon)
        });

        let mut bigdata_actor = cfg.bigdata.as_ref().map(|bigdata| {
            let mut actor: DataflowActor<'_, EcosystemMsg> = DataflowActor::new(
                bigdata.clone(),
                cfg.machines as u32,
                RngStream::new(cfg.seed, "bigdata"),
            );
            // The cross-tenant interference channel: each shuffle window
            // opens network pressure on the co-tenant subsystems.
            if graph_id.is_some() || gaming_id.is_some() {
                actor = actor.with_shuffle_hook(move |ctx, _job, active| {
                    if let Some(id) = graph_id {
                        ctx.send(
                            id,
                            SimDuration::ZERO,
                            EcosystemMsg::Graph(GraphMsg::Pressure(active)),
                        );
                    }
                    if let Some(id) = gaming_id {
                        ctx.send(
                            id,
                            SimDuration::ZERO,
                            EcosystemMsg::Gaming(GamingMsg::Pressure(active)),
                        );
                    }
                });
            }
            // With a network attached, map-input reads and shuffle traffic
            // become flows; the net router delivers the phase barriers.
            if let Some(nid) = net_id {
                actor = actor.with_transfer_hook(move |ctx, t| {
                    let owner = match t.phase {
                        BdPhase::Map => FlowOwner::BdMap,
                        BdPhase::Shuffle => FlowOwner::BdShuffle,
                    };
                    ctx.send(
                        nid,
                        SimDuration::ZERO,
                        EcosystemMsg::Net(NetMsg::Transfer(TransferReq {
                            src: t.src,
                            dst: t.dst,
                            bytes: t.bytes.max(1),
                            tag: FlowTag { owner, id: t.job as u64 },
                        })),
                    );
                });
            }
            actor
        });

        let mut graph_actor = cfg.graph.as_ref().map(|graph| {
            BspActor::new(graph.clone(), cfg.machines as u32, RngStream::new(cfg.seed, "graph"))
        });

        let mut gaming_actor = cfg.gaming.as_ref().map(|gaming| {
            let mut actor: WorldActor<'_, EcosystemMsg> =
                WorldActor::new(gaming.clone(), cfg.horizon, RngStream::new(cfg.seed, "gaming"));
            // With a network attached, world-state syncs ride the fabric and
            // lag whenever co-tenant traffic crowds their links.
            if let (Some(nid), Some(net)) = (net_id, cfg.network.as_ref()) {
                let machines = cfg.machines as u32;
                actor = actor.with_sync(
                    GamingSyncConfig {
                        interval: net.gaming_sync_interval,
                        base_bytes: net.gaming_sync_base_bytes,
                        per_player_bytes: net.gaming_sync_per_player_bytes,
                    },
                    move |ctx, seq, bytes| {
                        let src = if machines > 1 {
                            1 + (seq % u64::from(machines - 1)) as u32
                        } else {
                            0
                        };
                        ctx.send(
                            nid,
                            SimDuration::ZERO,
                            EcosystemMsg::Net(NetMsg::Transfer(TransferReq {
                                src,
                                dst: 0,
                                bytes: bytes.max(1),
                                tag: FlowTag { owner: FlowOwner::Game, id: seq },
                            })),
                        );
                    },
                );
            }
            actor
        });

        let mut dag_actor = cfg.dag.as_ref().map(|dag| {
            let mut rng = RngStream::new(cfg.seed, "dag");
            // With a network attached, the fabric's rack width dictates the
            // locality structure the locality-first policy reasons over.
            let mut actor: DagActor<'_, EcosystemMsg> = match cfg.network.as_ref() {
                Some(net) => DagActor::with_rack_width(
                    cfg.machines as u32,
                    dag.clone(),
                    &mut rng,
                    net.nodes_per_rack as u32,
                ),
                None => DagActor::new(cfg.machines as u32, dag.clone(), &mut rng),
            };
            // With a network attached, edge payloads ride the fabric; the
            // net completion router delivers the EdgeDone barriers.
            if let Some(nid) = net_id {
                actor = actor.with_edge_hook(move |ctx, t| {
                    ctx.send(
                        nid,
                        SimDuration::ZERO,
                        EcosystemMsg::Net(NetMsg::Transfer(TransferReq {
                            src: t.src,
                            dst: t.dst,
                            bytes: t.bytes.max(1),
                            tag: FlowTag {
                                owner: FlowOwner::Dag,
                                id: (u64::from(t.job) << 32) | u64::from(t.edge),
                            },
                        })),
                    );
                });
            }
            actor
        });

        // The shared fabric, with the completion router that turns finished
        // flows back into tenant messages. Aborted flows (stranded on a cut
        // endpoint past the flow timeout) take the retry-or-fail-fast
        // branch instead of the delivery branch.
        let mut net_actor = cfg.network.as_ref().map(|net| {
            let function_names = function_names.clone();
            let lag_budget = net.gaming_lag_budget.as_secs_f64();
            let nid = net_id.expect("net id allocated");
            NetActor::new(net.topology(cfg.machines))
                .with_flow_timeout(net.flow_timeout)
                .with_completion(move |ctx, done| {
                    if done.aborted {
                        match done.tag.owner {
                            // The invocation payload (or its response) is
                            // lost: the caller fails fast, nothing retries.
                            FlowOwner::Faas | FlowOwner::FaasResp => {}
                            // The checkpoint fetch is abandoned; the task
                            // re-enters the queue and restarts.
                            FlowOwner::Rms => {
                                if let Some(id) = scheduler_id {
                                    ctx.send(
                                        id,
                                        SimDuration::ZERO,
                                        EcosystemMsg::Rms(RmsMsg::Requeue(
                                            done.tag.id as usize,
                                        )),
                                    );
                                }
                            }
                            // Barriers would hang forever on a lost transfer:
                            // retry it (bounded by the timeout cadence until
                            // the cut heals or the run ends). Workflow input
                            // edges are barriers too — the consumer task
                            // cannot start without its bytes.
                            FlowOwner::BdMap | FlowOwner::BdShuffle | FlowOwner::Dag => {
                                ctx.send(
                                    nid,
                                    SimDuration::ZERO,
                                    EcosystemMsg::Net(NetMsg::Transfer(TransferReq {
                                        src: done.src,
                                        dst: done.dst,
                                        bytes: done.bytes,
                                        tag: done.tag,
                                    })),
                                );
                            }
                            // A lost world-state sync counts as (very) lagged.
                            FlowOwner::Game => {
                                if let Some(id) = gaming_id {
                                    ctx.send(
                                        id,
                                        SimDuration::ZERO,
                                        EcosystemMsg::Gaming(GamingMsg::SyncDone(true)),
                                    );
                                }
                            }
                            FlowOwner::Test => {
                                debug_assert!(false, "test flows never reach a scenario")
                            }
                        }
                        return;
                    }
                    match done.tag.owner {
                    FlowOwner::Faas => {
                        if let Some(id) = faas_id {
                            let function = function_names
                                [done.tag.id as usize % function_names.len()]
                            .clone();
                            ctx.send(
                                id,
                                SimDuration::ZERO,
                                EcosystemMsg::Faas(FaasMsg::Invoke { function }),
                            );
                        }
                    }
                    // Responses only contended for bandwidth; nothing waits
                    // on their delivery.
                    FlowOwner::FaasResp => {}
                    FlowOwner::Rms => {
                        if let Some(id) = scheduler_id {
                            ctx.send(
                                id,
                                SimDuration::ZERO,
                                EcosystemMsg::Rms(RmsMsg::Requeue(done.tag.id as usize)),
                            );
                        }
                    }
                    FlowOwner::BdMap => {
                        if let Some(id) = bigdata_id {
                            ctx.send(
                                id,
                                SimDuration::ZERO,
                                EcosystemMsg::Bigdata(BigdataMsg::MapXferDone(
                                    done.tag.id as usize,
                                )),
                            );
                        }
                    }
                    FlowOwner::BdShuffle => {
                        if let Some(id) = bigdata_id {
                            ctx.send(
                                id,
                                SimDuration::ZERO,
                                EcosystemMsg::Bigdata(BigdataMsg::ShuffleXferDone(
                                    done.tag.id as usize,
                                )),
                            );
                        }
                    }
                    FlowOwner::Game => {
                        if let Some(id) = gaming_id {
                            ctx.send(
                                id,
                                SimDuration::ZERO,
                                EcosystemMsg::Gaming(GamingMsg::SyncDone(
                                    done.secs > lag_budget,
                                )),
                            );
                        }
                    }
                    FlowOwner::Dag => {
                        if let Some(id) = dag_id {
                            ctx.send(
                                id,
                                SimDuration::ZERO,
                                EcosystemMsg::Dag(DagMsg::EdgeDone {
                                    job: (done.tag.id >> 32) as u32,
                                    edge: done.tag.id as u32,
                                }),
                            );
                        }
                    }
                    FlowOwner::Test => {
                        debug_assert!(false, "test flows never reach a scenario")
                    }
                    }
                })
        });

        let mut sim: Simulation<'_, EcosystemMsg> = Simulation::new(cfg.seed);
        sim.set_horizon(cfg.horizon);
        if let Some(obs) = &cfg.observability {
            // Must happen before the first emission: the sink folds events
            // as they are recorded, so a late switch would lose history.
            sim.set_trace(TraceBus::streaming(obs.stream_config()));
        }
        if let Some(actor) = arrival.as_mut() {
            let id = sim.add_actor(actor);
            debug_assert_eq!(Some(id), arrival_id, "registration order must match precomputed ids");
            let _ = id;
        }
        if let Some(actor) = scheduler_actor.as_mut() {
            let id = sim.add_actor(actor);
            debug_assert_eq!(Some(id), scheduler_id, "registration order must match precomputed ids");
            let _ = id;
        }
        if let Some(actor) = governor.as_mut() {
            let id = sim.add_actor(actor);
            debug_assert_eq!(Some(id), governor_id, "registration order must match precomputed ids");
            let _ = id;
        }
        if let Some(actor) = faas_actor.as_mut() {
            let id = sim.add_actor(actor);
            debug_assert_eq!(Some(id), faas_id, "registration order must match precomputed ids");
            let _ = id;
        }
        if let Some(actor) = injector.as_mut() {
            let id = sim.add_actor(actor);
            debug_assert_eq!(Some(id), injector_id, "registration order must match precomputed ids");
            let _ = id;
        }
        if let Some(actor) = bigdata_actor.as_mut() {
            let id = sim.add_actor(actor);
            debug_assert_eq!(Some(id), bigdata_id, "registration order must match precomputed ids");
            let _ = id;
        }
        if let Some(actor) = graph_actor.as_mut() {
            let id = sim.add_actor(actor);
            debug_assert_eq!(Some(id), graph_id, "registration order must match precomputed ids");
            let _ = id;
        }
        if let Some(actor) = gaming_actor.as_mut() {
            let id = sim.add_actor(actor);
            debug_assert_eq!(Some(id), gaming_id, "registration order must match precomputed ids");
            let _ = id;
        }
        if let Some(actor) = dag_actor.as_mut() {
            let id = sim.add_actor(actor);
            debug_assert_eq!(Some(id), dag_id, "registration order must match precomputed ids");
            let _ = id;
        }
        if let Some(actor) = net_actor.as_mut() {
            let id = sim.add_actor(actor);
            debug_assert_eq!(Some(id), net_id, "registration order must match precomputed ids");
            let _ = id;
        }

        if let Some(id) = arrival_id {
            sim.schedule(SimTime::ZERO, id, EcosystemMsg::Arrival(ArrivalMsg::Start));
        }
        if let Some(id) = scheduler_id {
            sim.schedule(SimTime::ZERO, id, EcosystemMsg::Rms(RmsMsg::Start));
        }
        if let Some(id) = injector_id {
            sim.schedule(SimTime::ZERO, id, EcosystemMsg::Injector(InjectorMsg::Start));
        }
        if let (Some(id), Some(faas)) = (faas_id, cfg.faas.as_ref()) {
            sim.schedule(
                SimTime::ZERO + faas.service.scaling_interval,
                id,
                EcosystemMsg::Faas(FaasMsg::Report),
            );
        }
        if let Some(id) = bigdata_id {
            sim.schedule(SimTime::ZERO, id, EcosystemMsg::Bigdata(BigdataMsg::Start));
        }
        if let Some(id) = graph_id {
            sim.schedule(SimTime::ZERO, id, EcosystemMsg::Graph(GraphMsg::Start));
        }
        if let Some(id) = gaming_id {
            sim.schedule(SimTime::ZERO, id, EcosystemMsg::Gaming(GamingMsg::Start));
        }
        if let Some(id) = dag_id {
            sim.schedule(SimTime::ZERO, id, EcosystemMsg::Dag(DagMsg::Start));
        }
        sim.run();

        let events_handled = sim.events_handled();
        let trace = sim.take_trace();
        drop(sim);

        let arrivals = arrival.as_ref().map_or(0, |a| a.count());
        let invoked = faas_actor.as_ref().map_or(0, |a| a.invoked());
        let rejected = faas_actor.as_ref().map_or(0, |a| a.rejected());
        let invocations_failed = faas_actor.as_ref().map_or(0, |a| a.failed());
        let shed = faas_actor.as_ref().map_or(0, |a| a.shed());
        let retries_scheduled = faas_actor.as_ref().map_or(0, |a| a.retries_scheduled());
        let final_capacity =
            faas_actor.as_ref().and_then(|a| a.capacity()).unwrap_or(0);
        let outages_delivered = injector.as_ref().map_or(0, |i| i.delivered());
        let governor_decisions = governor.as_ref().map_or(0, |g| g.decisions());
        let schedule = scheduler_actor
            .as_mut()
            .map(|a| a.outcome())
            .unwrap_or_else(empty_schedule_outcome);
        let bigdata_jobs = bigdata_actor.as_ref().map_or(0, |a| a.completed());
        let graph_queries = graph_actor.as_ref().map_or(0, |a| a.completed());
        let graph_stragglers = graph_actor.as_ref().map_or(0, |a| a.stragglers());
        let gaming_admitted = gaming_actor.as_ref().map_or(0, |a| a.admitted());
        let gaming_rejected = gaming_actor.as_ref().map_or(0, |a| a.rejected());
        let gaming_disconnected = gaming_actor.as_ref().map_or(0, |a| a.disconnected());
        let gaming_laggy_syncs = gaming_actor.as_ref().map_or(0, |a| a.laggy_syncs());
        let dag_jobs_finished = dag_actor.as_ref().map_or(0, |a| a.jobs_finished());
        let dag_tasks_finished = dag_actor.as_ref().map_or(0, |a| a.tasks_finished());
        let dag_mean_makespan_secs = dag_actor.as_ref().map_or(0.0, |a| a.mean_makespan_secs());
        let dag_transfer_secs = dag_actor.as_ref().map_or(0.0, |a| a.transfer_secs());
        let dag_stall_secs = dag_actor.as_ref().map_or(0.0, |a| a.stall_secs());
        let net_flows_started = net_actor.as_ref().map_or(0, |a| a.started());
        let net_flows_delivered = net_actor.as_ref().map_or(0, |a| a.delivered());
        let net_flows_aborted = net_actor.as_ref().map_or(0, |a| a.aborted());
        let net_stall_secs = net_actor.as_ref().map_or(0.0, |a| a.stall_secs());
        drop(arrival);
        drop(faas_actor);
        drop(governor);
        drop(injector);
        drop(scheduler_actor);
        let faas = platform.as_mut().map_or_else(empty_platform_report, |p| p.finish());

        ScenarioOutcome {
            schedule,
            faas,
            arrivals,
            invoked,
            rejected,
            invocations_failed,
            shed,
            retries_scheduled,
            final_capacity,
            outages_generated,
            outages_delivered,
            governor_decisions,
            bigdata_jobs,
            graph_queries,
            graph_stragglers,
            gaming_admitted,
            gaming_rejected,
            gaming_disconnected,
            gaming_laggy_syncs,
            dag_jobs_finished,
            dag_tasks_finished,
            dag_mean_makespan_secs,
            dag_transfer_secs,
            dag_stall_secs,
            net_flows_started,
            net_flows_delivered,
            net_flows_aborted,
            net_stall_secs,
            events_handled,
            trace,
        }
    }
}

/// The outcome of a run with no batch subsystem attached.
fn empty_schedule_outcome() -> ScheduleOutcome {
    ScheduleOutcome {
        completions: Vec::new(),
        makespan: SimDuration::ZERO,
        mean_utilization: 0.0,
        mean_queue_length: 0.0,
        peak_queue_length: 0.0,
        deadline_misses: 0,
        failure_requeues: 0,
        rejected: 0,
        abandoned: 0,
        unfinished: 0,
    }
}

/// The report of a run with no FaaS subsystem attached.
fn empty_platform_report() -> PlatformReport {
    PlatformReport {
        invocations: Vec::new(),
        cold_fraction: 0.0,
        latency: None,
        billed_gb_secs: 0.0,
        provider_gb_secs: 0.0,
        peak_instances: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_failure::model::Outage;

    fn small_config() -> ScenarioConfig {
        ScenarioConfig {
            seed: 7,
            horizon: SimTime::from_secs(3600),
            machines: 16,
            ..ScenarioConfig::default()
        }
        .with_batch(BatchConfig { jobs: 20, ..BatchConfig::default() })
        .with_faas(FaasConfig { arrival_rate: 0.4, ..FaasConfig::default() })
        .with_failures(FailureConfig { mtbf_secs: 1.5 * 3600.0, ..FailureConfig::default() })
    }

    #[test]
    fn composed_run_is_deterministic() {
        let a = Scenario::new(small_config()).run();
        let b = Scenario::new(small_config()).run();
        assert_eq!(a.trace.to_json_string(), b.trace.to_json_string());
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.faas, b.faas);
        assert_eq!(
            (a.arrivals, a.invoked, a.rejected, a.events_handled),
            (b.arrivals, b.invoked, b.rejected, b.events_handled)
        );
    }

    #[test]
    fn streaming_observability_matches_full_retention_aggregates() {
        let full = Scenario::new(small_config()).run();
        let streamed =
            Scenario::new(small_config().with_observability(ObservabilityConfig::default())).run();

        // Everything the simulation *did* is untouched by the sink choice.
        assert!(streamed.trace.is_streaming() && !full.trace.is_streaming());
        assert_eq!(streamed.schedule, full.schedule);
        assert_eq!(streamed.faas, full.faas);
        assert_eq!(
            (streamed.arrivals, streamed.invoked, streamed.rejected, streamed.events_handled),
            (full.arrivals, full.invoked, full.rejected, full.events_handled)
        );

        // Aggregate queries agree exactly; stats are bit-identical because
        // the streaming fold visits events in emission order.
        assert_eq!(streamed.trace.counts(), full.trace.counts());
        assert_eq!(streamed.trace.components(), full.trace.components());
        assert_eq!(
            streamed.trace.field_stats("faas", "invoke", "latency_secs"),
            full.trace.field_stats("faas", "invoke", "latency_secs")
        );
        assert_eq!(
            streamed.trace.time_span("workload", "arrival"),
            full.trace.time_span("workload", "arrival")
        );
        // The streaming bus dropped the events themselves.
        assert!(streamed.trace.select("faas", "invoke").is_empty());
        assert!(streamed.trace.approx_retained_bytes() < full.trace.approx_retained_bytes());
    }

    #[test]
    fn observability_config_is_validated() {
        let bad_centroids = small_config()
            .with_observability(ObservabilityConfig { sketch_centroids: 2, window: None });
        assert!(Scenario::try_new(bad_centroids).is_err());
        let bad_window = small_config().with_observability(ObservabilityConfig {
            sketch_centroids: 64,
            window: Some(SimDuration::ZERO),
        });
        assert!(Scenario::try_new(bad_window).is_err());
        let windowed = small_config().with_observability(ObservabilityConfig {
            sketch_centroids: 64,
            window: Some(SimDuration::from_secs(600)),
        });
        let out = Scenario::new(windowed).run();
        let windows = out.trace.window_counts("workload", "arrival").expect("windowed counters");
        assert_eq!(windows.iter().sum::<u64>() as usize, out.arrivals);
    }

    #[test]
    fn every_subsystem_emits_onto_the_shared_trace() {
        let out = Scenario::new(small_config()).run();
        let components = out.trace.components();
        for expected in ["autoscale", "faas", "failure", "rms", "workload"] {
            assert!(
                components.iter().any(|c| c == expected),
                "missing component {expected} in {components:?}"
            );
        }
        assert!(out.arrivals > 0);
        assert!(out.invoked > 0);
        assert!(out.outages_delivered > 0, "MTBF too long for the horizon?");
        assert!(out.governor_decisions > 0);
        assert!(!out.schedule.completions.is_empty());
    }

    #[test]
    fn failures_reach_both_scheduler_and_faas() {
        let out = Scenario::new(small_config()).run();
        let fails = out.trace.count("failure", "outage");
        assert_eq!(fails, out.outages_delivered);
        assert_eq!(out.trace.count("faas", "kill_warm"), fails);
        assert_eq!(out.trace.count("rms", "machine_fail"), fails);
    }

    #[test]
    fn resilient_run_with_mixed_faults_is_deterministic_and_traced() {
        let config = || {
            // Harsh failure regime so every fault kind gets drawn.
            small_config()
                .with_faas(FaasConfig {
                    arrival_rate: 0.4,
                    congestion: Some(CongestionConfig::default()),
                    ..FaasConfig::default()
                })
                .with_failures(FailureConfig {
                    mtbf_secs: 600.0,
                    fault_mix: FaultMix {
                        crash: 0.4,
                        slowdown: 0.2,
                        gray: 0.2,
                        partition: 0.2,
                        ..FaultMix::crash_only()
                    },
                    ..FailureConfig::default()
                })
                .with_resilience(ResilienceConfig::all_on())
        };
        let a = Scenario::new(config()).run();
        let b = Scenario::new(config()).run();
        assert_eq!(a.trace.to_json_string(), b.trace.to_json_string());
        // Non-crash fault windows reach the FaaS platform…
        assert!(a.trace.count("faas", "fault") > 0, "no service fault windows struck");
        // …and the resilience machinery leaves structured evidence behind.
        assert!(
            a.invocations_failed > 0 || a.retries_scheduled > 0,
            "mixed faults under all-on resilience produced no failures or retries"
        );
        assert_eq!(
            a.retries_scheduled,
            a.trace.count("faas", "retry_scheduled") as u64
        );
        assert_eq!(
            a.invocations_failed,
            a.trace.count("faas", "invoke_failed") as u64
        );
    }

    #[test]
    fn crash_only_defaults_leave_resilience_silent() {
        let out = Scenario::new(small_config()).run();
        assert_eq!(out.invocations_failed, 0);
        assert_eq!(out.shed, 0);
        assert_eq!(out.retries_scheduled, 0);
        assert_eq!(out.trace.count("faas", "fault"), 0);
        assert_eq!(out.trace.count("rms", "requeue_scheduled"), 0);
    }

    #[test]
    fn different_seeds_diverge() {
        let a = Scenario::new(small_config()).run();
        let mut cfg = small_config();
        cfg.seed = 8;
        let b = Scenario::new(cfg).run();
        assert_ne!(a.trace.to_json_string(), b.trace.to_json_string());
    }

    #[test]
    fn full_stack_composes_every_subsystem_on_one_simulation() {
        let out = Scenario::new(
            small_config()
                .with_bigdata(BigdataConfig { jobs: 2, ..BigdataConfig::default() })
                .with_graph(GraphConfig {
                    queries: 2,
                    vertices: 300,
                    edges: 1_200,
                    ..GraphConfig::default()
                })
                .with_gaming(GamingConfig::default()),
        )
        .run();
        let components = out.trace.components();
        for expected in
            ["autoscale", "bigdata", "faas", "failure", "gaming", "graph", "rms", "workload"]
        {
            assert!(
                components.iter().any(|c| c == expected),
                "missing component {expected} in {components:?}"
            );
        }
        // Crash faults fan out to every fleet tenant.
        let fails = out.trace.count("failure", "outage");
        assert!(fails > 0);
        assert_eq!(out.trace.count("bigdata", "node_fail"), fails);
        assert_eq!(out.trace.count("graph", "worker_fail"), fails);
        // Shuffle windows exert pressure on both co-tenants.
        let shuffles = out.trace.count("bigdata", "shuffle_start");
        assert!(shuffles > 0);
        assert_eq!(out.trace.count("graph", "pressure"), 2 * shuffles);
        assert_eq!(out.trace.count("gaming", "pressure"), 2 * shuffles);
        assert!(out.gaming_admitted > 0);
    }

    #[test]
    fn bare_config_composes_selectively() {
        let out = Scenario::new(
            ScenarioConfig::bare(3, SimTime::from_secs(3600), 8)
                .with_gaming(GamingConfig::default()),
        )
        .run();
        assert_eq!(out.trace.components(), vec!["gaming".to_owned()]);
        assert_eq!(out.arrivals, 0);
        assert!(out.gaming_admitted > 0);
        assert!(out.schedule.completions.is_empty());
    }

    #[test]
    fn network_attached_run_is_deterministic_and_carries_flows() {
        let config = || small_config().with_network(NetworkConfig::default());
        let a = Scenario::new(config()).run();
        let b = Scenario::new(config()).run();
        assert_eq!(a.trace.to_json_string(), b.trace.to_json_string());
        assert!(a.net_flows_started > 0, "no flows reached the fabric");
        assert!(a.net_flows_delivered > 0);
        assert!(a.net_flows_delivered <= a.net_flows_started);
        assert!(a.invoked > 0, "invocations must still arrive through the fabric");
        assert!(a.trace.components().iter().any(|c| c == "net"));
        assert_eq!(a.trace.count("net", "flow_start") as u64, a.net_flows_started);
    }

    #[test]
    fn every_tenant_ships_bytes_on_the_shared_fabric() {
        let out = Scenario::new(
            small_config()
                .with_bigdata(BigdataConfig { jobs: 2, ..BigdataConfig::default() })
                .with_graph(GraphConfig {
                    queries: 2,
                    vertices: 300,
                    edges: 1_200,
                    ..GraphConfig::default()
                })
                .with_gaming(GamingConfig::default())
                .with_resilience(ResilienceConfig::all_on())
                .with_network(NetworkConfig::default()),
        )
        .run();
        // FaaS payloads, bigdata phases, and gaming syncs all became flows…
        assert!(out.invoked > 0);
        assert!(out.bigdata_jobs > 0, "bigdata jobs must finish over the fabric");
        assert!(out.trace.count("gaming", "sync_done") > 0);
        // …and the fabric accounted for all of them.
        assert!(out.net_flows_delivered > 100);
    }

    #[test]
    fn partition_faults_cut_fabric_links_when_network_attached() {
        let out = Scenario::new(
            small_config()
                .with_failures(FailureConfig {
                    mtbf_secs: 900.0,
                    fault_mix: FaultMix {
                        crash: 0.0,
                        partition: 1.0,
                        ..FaultMix::crash_only()
                    },
                    ..FailureConfig::default()
                })
                .with_network(NetworkConfig::default()),
        )
        .run();
        assert!(out.trace.count("net", "link_cut") > 0, "no partitions struck the fabric");
        assert!(out.trace.count("net", "link_restored") > 0, "cuts were never repaired");
        // Partitions no longer open FaaS service windows.
        assert_eq!(out.trace.count("faas", "fault"), 0);
    }

    #[test]
    fn scripted_schedule_replays_exactly_and_deterministically() {
        let fault = |machine: usize, fail: u64, repair: u64, kind: FaultKind| Fault {
            outage: Outage {
                machine,
                fail_at: SimTime::from_secs(fail),
                repair_at: SimTime::from_secs(repair),
            },
            kind,
        };
        let schedule = vec![
            fault(3, 600, 1200, FaultKind::Crash),
            fault(7, 1800, 1860, FaultKind::Slowdown { factor: 4.0 }),
            fault(1, 2400, 2460, FaultKind::Crash),
        ];
        let mk = || {
            Scenario::new(
                small_config().with_failures(FailureConfig::scripted(schedule.clone())),
            )
            .run()
        };
        let out = mk();
        // Exactly the scripted faults strike — no stochastic extras.
        assert_eq!(out.outages_generated, 3);
        assert_eq!(out.outages_delivered, 3);
        let outages = out.trace.select("failure", "outage");
        assert_eq!(outages.len(), 3);
        let strike_secs: Vec<f64> = outages.iter().map(|e| e.at.as_secs_f64()).collect();
        assert_eq!(strike_secs, vec![600.0, 1800.0, 2400.0]);
        assert_eq!(out.trace.count("rms", "machine_fail"), 2, "crashes only");
        // Scripted runs replay byte-identically.
        assert_eq!(out.trace.to_json_string(), mk().trace.to_json_string());
    }

    #[test]
    fn scripted_partition_strands_flows_which_abort_on_timeout() {
        // A partition window over the whole bigdata transfer phase, with a
        // short flow timeout: stranded flows must abort (and the barrier
        // retries keep the run live until the cut heals).
        let schedule: Vec<Fault> = (0u32..8)
            .map(|m| Fault {
                outage: Outage {
                    machine: m as usize,
                    fail_at: SimTime::from_secs(5),
                    repair_at: SimTime::from_secs(3000),
                },
                kind: FaultKind::Partition,
            })
            .collect();
        let cfg = ScenarioConfig::bare(11, SimTime::from_secs(4 * 3600), 16)
            .with_bigdata(BigdataConfig::default())
            .with_failures(FailureConfig::scripted(schedule))
            .with_network(NetworkConfig {
                flow_timeout: Some(SimDuration::from_secs(30)),
                ..NetworkConfig::default()
            });
        let out = Scenario::new(cfg).run();
        assert!(out.trace.count("net", "link_cut") > 0, "partitions must cut links");
        assert!(out.net_flows_aborted > 0, "stranded flows must abort");
        assert_eq!(
            out.trace.count("net", "flow_aborted") as u64,
            out.net_flows_aborted
        );
        // Every abort is also visible to the flow-accounting identity:
        // started = delivered + aborted + still-in-flight-at-horizon.
        assert!(out.net_flows_delivered + out.net_flows_aborted <= out.net_flows_started);
    }

    #[test]
    fn validate_returns_structured_warnings() {
        // A clean default config warns about nothing.
        assert_eq!(ScenarioConfig::default().validate().unwrap(), Vec::new());

        // Partition weight without a network model.
        let cfg = ScenarioConfig::default().with_failures(FailureConfig {
            fault_mix: FaultMix { crash: 0.5, partition: 0.5, ..FaultMix::crash_only() },
            ..FailureConfig::default()
        });
        let warnings = cfg.validate().unwrap();
        assert_eq!(warnings.len(), 1);
        assert_eq!(warnings[0].field, "failure.fault_mix.partition");

        // A scripted schedule with partitions but no network.
        let scripted = ScenarioConfig::default().with_failures(FailureConfig::scripted(vec![
            Fault {
                outage: Outage {
                    machine: 0,
                    fail_at: SimTime::from_secs(1),
                    repair_at: SimTime::from_secs(2),
                },
                kind: FaultKind::Partition,
            },
        ]));
        let warnings = scripted.validate().unwrap();
        assert_eq!(warnings.len(), 1);
        assert_eq!(warnings[0].field, "failure.schedule");

        // Partitions plus a network, but flow aborts disabled: stranded
        // flows would stall silently — exactly the chaos-campaign seeded
        // violation, so the config warns about it.
        let stranded = scripted.with_network(NetworkConfig {
            flow_timeout: None,
            ..NetworkConfig::default()
        });
        let warnings = stranded.validate().unwrap();
        assert_eq!(warnings.len(), 1);
        assert_eq!(warnings[0].field, "network.flow_timeout");
    }

    #[test]
    fn checkpoint_restores_ride_the_fabric_under_restart_resilience() {
        let out = Scenario::new(
            small_config()
                .with_failures(FailureConfig {
                    mtbf_secs: 900.0,
                    ..FailureConfig::default()
                })
                .with_resilience(ResilienceConfig::all_on())
                .with_network(NetworkConfig::default()),
        )
        .run();
        let xfers = out.trace.count("rms", "checkpoint_xfer_start");
        assert!(xfers > 0, "no checkpoint traffic despite restarts and failures");
        // The fixed-backoff requeue path is fully replaced by flows.
        assert_eq!(out.trace.count("rms", "requeue_scheduled"), 0);
        assert!(out.schedule.failure_requeues > 0);
    }

    #[test]
    fn invalid_configs_are_rejected_at_build_time() {
        let invalid: Vec<(&str, ScenarioConfig)> = vec![
            ("machines", ScenarioConfig { machines: 0, ..ScenarioConfig::default() }),
            (
                "faas.arrival_rate",
                ScenarioConfig::default()
                    .with_faas(FaasConfig { arrival_rate: f64::NAN, ..FaasConfig::default() }),
            ),
            (
                "faas.arrival_rate",
                ScenarioConfig::default()
                    .with_faas(FaasConfig { arrival_rate: -1.0, ..FaasConfig::default() }),
            ),
            (
                "failure.mtbf_secs",
                ScenarioConfig::default().with_failures(FailureConfig {
                    mtbf_secs: f64::INFINITY,
                    ..FailureConfig::default()
                }),
            ),
            (
                "failure.failure_domain",
                ScenarioConfig::default().with_failures(FailureConfig {
                    failure_domain: 0,
                    ..FailureConfig::default()
                }),
            ),
            (
                "gaming.zone_capacity",
                ScenarioConfig::default()
                    .with_gaming(GamingConfig { zone_capacity: 0, ..GamingConfig::default() }),
            ),
            (
                "network.nodes_per_rack",
                ScenarioConfig::default().with_network(NetworkConfig {
                    nodes_per_rack: 0,
                    ..NetworkConfig::default()
                }),
            ),
            (
                "network.node_bandwidth_mbs",
                ScenarioConfig::default().with_network(NetworkConfig {
                    node_bandwidth_mbs: -1.0,
                    ..NetworkConfig::default()
                }),
            ),
            (
                "network.rack_bandwidth_mbs",
                ScenarioConfig::default().with_network(NetworkConfig {
                    rack_bandwidth_mbs: f64::NAN,
                    ..NetworkConfig::default()
                }),
            ),
        ];
        for (field, cfg) in invalid {
            match Scenario::try_new(cfg) {
                Err(McsError::InvalidConfig { field: f, .. }) => {
                    assert_eq!(f, field, "wrong field reported");
                }
                Err(other) => panic!("expected InvalidConfig for {field}, got {other:?}"),
                Ok(_) => panic!("expected InvalidConfig for {field}, got Ok"),
            }
        }
        assert!(ScenarioConfig::default().validate().is_ok());
    }
}
