//! Composed ecosystem scenarios: every subsystem in one simulation.
//!
//! The paper's central claim is that clouds, grids, schedulers, and
//! serverless platforms are not isolated systems but one *ecosystem* whose
//! interesting behaviour is emergent (§2.1, P5). This module is that claim
//! made executable: a [`Scenario`] wires the batch scheduler (`mcs-rms`),
//! the autoscaling governor (`mcs-autoscale`), the FaaS platform
//! (`mcs-faas`), a correlated-failure injector (`mcs-failure`), and a
//! workload arrival source (`mcs-workload`) into a *single*
//! [`Simulation`] over one unified message type, [`EcosystemMsg`].
//!
//! Every component keeps its own seeded RNG stream (derived from the
//! scenario seed with a distinct label), so the composition is
//! deterministic: two runs with the same [`ScenarioConfig`] produce
//! byte-identical event traces. All cross-component coupling is visible on
//! the shared [`TraceBus`], which [`ScenarioOutcome`] returns for analysis.

use mcs_autoscale::autoscalers::{Autoscaler, React};
use mcs_autoscale::governor::{GovernorActor, GovernorMsg};
use mcs_autoscale::service::ServiceConfig;
use mcs_faas::actor::{CongestionConfig, FaasActor, FaasFault, FaasMsg};
use mcs_faas::platform::{FaasPlatform, FunctionSpec, KeepAlivePolicy, PlatformReport};
use mcs_failure::inject::{FailureEvent, FailureInjector, InjectorMsg};
use mcs_failure::model::{FailureModel, FaultKind, FaultMix, SpaceCorrelatedFailures};
use mcs_simcore::resilience::ResilienceConfig;
use mcs_infra::prelude::{Cluster, ClusterId, MachineSpec};
use mcs_rms::portfolio::{default_portfolio, Objective, PortfolioSelector};
use mcs_rms::scheduler::{ClusterScheduler, RmsMsg, ScheduleOutcome, SchedulerConfig};
use mcs_simcore::engine::{ActorId, MessageEnvelope, Simulation};
use mcs_simcore::rng::RngStream;
use mcs_simcore::time::{SimDuration, SimTime};
use mcs_simcore::trace::TraceBus;
use mcs_workload::actor::{ArrivalActor, ArrivalMsg};
use mcs_workload::arrival::Poisson;
use mcs_workload::generator::{BatchWorkloadConfig, BatchWorkloadGenerator};

/// The unified message type of a composed ecosystem simulation: one variant
/// per participating subsystem, each wrapping that subsystem's own message
/// vocabulary unchanged.
#[derive(Debug, Clone, PartialEq)]
pub enum EcosystemMsg {
    /// Workload arrival source.
    Arrival(ArrivalMsg),
    /// Batch cluster scheduler.
    Rms(RmsMsg),
    /// Autoscaling governor.
    Governor(GovernorMsg),
    /// FaaS platform.
    Faas(FaasMsg),
    /// Failure injector.
    Injector(InjectorMsg),
}

macro_rules! impl_envelope {
    ($variant:ident, $inner:ty) => {
        impl MessageEnvelope<$inner> for EcosystemMsg {
            fn wrap(inner: $inner) -> Self {
                EcosystemMsg::$variant(inner)
            }
            fn unwrap(self) -> Option<$inner> {
                match self {
                    EcosystemMsg::$variant(inner) => Some(inner),
                    _ => None,
                }
            }
        }
    };
}

impl_envelope!(Arrival, ArrivalMsg);
impl_envelope!(Rms, RmsMsg);
impl_envelope!(Governor, GovernorMsg);
impl_envelope!(Faas, FaasMsg);
impl_envelope!(Injector, InjectorMsg);

/// Parameters of a composed ecosystem run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    /// Master seed; every component derives its own labelled stream.
    pub seed: u64,
    /// Virtual-time horizon of the run.
    pub horizon: SimTime,
    /// Machines in the batch cluster (also the failure-model population).
    pub machines: usize,
    /// Batch jobs submitted over the horizon.
    pub batch_jobs: usize,
    /// FaaS invocation arrival rate, per second.
    pub arrival_rate: f64,
    /// Hard cap on FaaS arrivals (guards pathological configurations).
    pub max_arrivals: usize,
    /// Keep-alive window of the FaaS warm pool.
    pub keep_alive: SimDuration,
    /// Initial FaaS concurrent-instance capacity.
    pub initial_capacity: usize,
    /// Autoscaling cadence and bounds (the governor's configuration).
    pub service: ServiceConfig,
    /// Cadence of portfolio-scheduler policy ticks.
    pub policy_interval: SimDuration,
    /// Per-machine mean time between failures, seconds.
    pub mtbf_secs: f64,
    /// Machines per failure-correlation domain (rack/power segment).
    pub failure_domain: usize,
    /// Fraction of the idle FaaS warm pool killed per machine failure.
    pub kill_fraction: f64,
    /// Resilience mechanisms of the run. The default ([`ResilienceConfig::none`])
    /// reproduces the legacy fail-and-suffer behaviour exactly.
    pub resilience: ResilienceConfig,
    /// Fault-kind mix of the failure schedule. Crash faults strike the batch
    /// cluster and the warm pool; slowdown/gray/partition windows strike the
    /// FaaS service. Defaults to crash-only (the legacy vocabulary).
    pub fault_mix: FaultMix,
    /// Optional FaaS congestion model (latency degrades over a utilization
    /// knee). `None` keeps the legacy congestion-free service.
    pub congestion: Option<CongestionConfig>,
    /// Overrides the duration of non-crash (service-level) fault windows.
    /// Machine repairs take minutes, but the blips that slowdown/gray/
    /// partition faults model are typically much shorter; `None` keeps the
    /// outage's own repair instant.
    pub service_fault_secs: Option<f64>,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            seed: 42,
            horizon: SimTime::from_secs(4 * 3600),
            machines: 32,
            batch_jobs: 60,
            arrival_rate: 0.5,
            max_arrivals: 100_000,
            keep_alive: SimDuration::from_secs(600),
            initial_capacity: 4,
            service: ServiceConfig {
                scaling_interval: SimDuration::from_secs(300),
                provisioning_delay_intervals: 1,
                min_instances: 1,
                max_instances: 64,
                ..ServiceConfig::default()
            },
            policy_interval: SimDuration::from_secs(1800),
            mtbf_secs: 6.0 * 3600.0,
            failure_domain: 8,
            kill_fraction: 0.5,
            resilience: ResilienceConfig::none(),
            fault_mix: FaultMix::crash_only(),
            congestion: None,
            service_fault_secs: None,
        }
    }
}

/// What a composed run measured, per subsystem and across them.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// The batch scheduler's outcome.
    pub schedule: ScheduleOutcome,
    /// The FaaS platform's report.
    pub faas: PlatformReport,
    /// FaaS arrivals delivered by the workload source.
    pub arrivals: usize,
    /// Invocations admitted by the capacity cap.
    pub invoked: u64,
    /// Invocations rejected by the capacity cap.
    pub rejected: u64,
    /// Invocations that ended in failure (partition, gray, timeout, open
    /// breaker); zero in crash-only runs.
    pub invocations_failed: u64,
    /// Requests dropped by engaged load shedding.
    pub shed: u64,
    /// Retries scheduled by the FaaS retry policy.
    pub retries_scheduled: u64,
    /// FaaS capacity at the end of the run.
    pub final_capacity: usize,
    /// Outages in the generated schedule.
    pub outages_generated: usize,
    /// Outages that actually struck before the horizon.
    pub outages_delivered: usize,
    /// Scaling decisions the governor took.
    pub governor_decisions: usize,
    /// Engine messages delivered across all actors.
    pub events_handled: u64,
    /// The cross-cutting event trace of the whole run.
    pub trace: TraceBus,
}

/// Builds and runs a composed ecosystem simulation.
///
/// ```
/// use mcs_core::scenario::{Scenario, ScenarioConfig};
/// use mcs_simcore::time::SimTime;
///
/// let config = ScenarioConfig {
///     horizon: SimTime::from_secs(1800),
///     machines: 8,
///     batch_jobs: 10,
///     ..ScenarioConfig::default()
/// };
/// let outcome = Scenario::new(config).run();
/// assert!(outcome.arrivals > 0 && outcome.events_handled > 0);
/// ```
pub struct Scenario {
    config: ScenarioConfig,
    autoscaler: Box<dyn Autoscaler>,
    functions: Vec<FunctionSpec>,
}

impl Scenario {
    /// A scenario with the given configuration, a `React` autoscaler, and a
    /// two-function FaaS deployment (an API handler and a data processor).
    pub fn new(config: ScenarioConfig) -> Self {
        Scenario {
            config,
            autoscaler: Box::new(React::default()),
            functions: vec![
                FunctionSpec::api_handler("api"),
                FunctionSpec::data_processor("etl"),
            ],
        }
    }

    /// Replaces the autoscaler governing the FaaS platform.
    #[must_use]
    pub fn with_autoscaler(mut self, autoscaler: Box<dyn Autoscaler>) -> Self {
        self.autoscaler = autoscaler;
        self
    }

    /// Replaces the FaaS deployment (invocations round-robin across specs).
    ///
    /// # Panics
    /// Panics when `functions` is empty.
    #[must_use]
    pub fn with_functions(mut self, functions: Vec<FunctionSpec>) -> Self {
        assert!(!functions.is_empty(), "scenario needs at least one function");
        self.functions = functions;
        self
    }

    /// Runs the composed simulation to its horizon and returns the outcome.
    pub fn run(mut self) -> ScenarioOutcome {
        let cfg = self.config.clone();

        // Per-component RNG streams, all derived from the master seed.
        let mut workload_rng = RngStream::new(cfg.seed, "workload");
        let mut failure_rng = RngStream::new(cfg.seed, "failures");
        let arrival_rng = RngStream::new(cfg.seed, "arrivals");

        // Subsystem state (owned here; actors borrow it below).
        let cluster = Cluster::homogeneous(
            ClusterId(0),
            "batch",
            MachineSpec::commodity("std-8", 8.0, 32.0),
            cfg.machines as u32,
        );
        let jobs = BatchWorkloadGenerator::new(BatchWorkloadConfig::default()).generate(
            cfg.horizon,
            cfg.batch_jobs,
            &mut workload_rng,
        );
        let outages = SpaceCorrelatedFailures::with_mtbf(
            cfg.mtbf_secs,
            cfg.machines,
            cfg.failure_domain,
        )
        .generate(cfg.machines, cfg.horizon, &mut failure_rng);
        let outages_generated = outages.len();
        let mut mix_rng = RngStream::new(cfg.seed, "fault-mix");
        let faults = cfg.fault_mix.assign(outages, &mut mix_rng);

        let mut platform = FaasPlatform::new(KeepAlivePolicy::Fixed(cfg.keep_alive), cfg.seed);
        for spec in &self.functions {
            platform.deploy(spec.clone());
        }
        let function_names: Vec<String> =
            self.functions.iter().map(|f| f.name.clone()).collect();

        let mut scheduler =
            ClusterScheduler::new(cluster, SchedulerConfig::default(), cfg.seed);
        let mut selector =
            PortfolioSelector::new(default_portfolio(), Objective::Makespan, cfg.seed);

        // Actor ids are assigned in registration order; fix that order here
        // so the cross-actor callbacks can address their peers up front.
        let arrival_id = ActorId::from_index(0);
        let scheduler_id = ActorId::from_index(1);
        let governor_id = ActorId::from_index(2);
        let faas_id = ActorId::from_index(3);
        let injector_id = ActorId::from_index(4);

        let mut process = Poisson::new(cfg.arrival_rate);
        let mut arrival = ArrivalActor::new(
            &mut process,
            arrival_rng,
            cfg.horizon,
            cfg.max_arrivals,
            move |ctx, index| {
                let function = function_names[index % function_names.len()].clone();
                ctx.send(
                    faas_id,
                    SimDuration::ZERO,
                    EcosystemMsg::Faas(FaasMsg::Invoke { function }),
                );
            },
        );

        let mut scheduler_actor = scheduler
            .actor(jobs, cfg.horizon)
            .with_selector(&mut selector, cfg.policy_interval);
        if let Some(restart) = cfg.resilience.restart {
            scheduler_actor = scheduler_actor.with_restart(restart);
        }

        let mut governor =
            GovernorActor::new(self.autoscaler.as_mut(), cfg.service, move |ctx, delta| {
                ctx.send(
                    faas_id,
                    SimDuration::ZERO,
                    EcosystemMsg::Faas(FaasMsg::Scale(delta)),
                );
            });
        if cfg.resilience.shedder.is_some() {
            governor = governor.with_shedding(move |ctx, on| {
                ctx.send(
                    faas_id,
                    SimDuration::ZERO,
                    EcosystemMsg::Faas(FaasMsg::SetShedding(on)),
                );
            });
        }

        let mut faas_actor = FaasActor::new(&mut platform)
            .with_capacity(cfg.initial_capacity)
            .with_resilience(cfg.resilience)
            .with_observer(cfg.service.scaling_interval, move |ctx, demand, supply| {
                ctx.send(
                    governor_id,
                    SimDuration::ZERO,
                    EcosystemMsg::Governor(GovernorMsg::Observe { demand, supply }),
                );
            });
        if let Some(congestion) = cfg.congestion {
            faas_actor = faas_actor.with_congestion(congestion);
        }

        // Crash faults strike the batch cluster and the warm pool; the other
        // kinds open service-level fault windows on the FaaS platform.
        let kill_fraction = cfg.kill_fraction;
        let service_fault_secs = cfg.service_fault_secs;
        let service_fault = |kind: FaultKind| -> Option<FaasFault> {
            match kind {
                FaultKind::Crash => None,
                FaultKind::Slowdown { factor } => Some(FaasFault::Slowdown { factor }),
                FaultKind::Gray { error_rate } => Some(FaasFault::Gray { error_rate }),
                FaultKind::Partition => Some(FaasFault::Partition),
            }
        };
        let mut injector = FailureInjector::with_faults(faults, move |ctx, event| match event {
            FailureEvent::Fail(fault) => match service_fault(fault.kind) {
                None => {
                    ctx.send(
                        scheduler_id,
                        SimDuration::ZERO,
                        EcosystemMsg::Rms(RmsMsg::MachineFail(fault.outage.machine as u32)),
                    );
                    ctx.send(
                        faas_id,
                        SimDuration::ZERO,
                        EcosystemMsg::Faas(FaasMsg::KillWarm { fraction: kill_fraction }),
                    );
                }
                Some(f) => {
                    ctx.send(faas_id, SimDuration::ZERO, EcosystemMsg::Faas(FaasMsg::Fault(f)));
                    if let Some(secs) = service_fault_secs {
                        ctx.send(
                            faas_id,
                            SimDuration::from_secs_f64(secs),
                            EcosystemMsg::Faas(FaasMsg::FaultClear(f)),
                        );
                    }
                }
            },
            FailureEvent::Repair(fault) => match service_fault(fault.kind) {
                None => {
                    ctx.send(
                        scheduler_id,
                        SimDuration::ZERO,
                        EcosystemMsg::Rms(RmsMsg::MachineRepair(fault.outage.machine as u32)),
                    );
                }
                Some(f) => {
                    // When the window length is overridden, the clear was
                    // already scheduled at fault-strike time.
                    if service_fault_secs.is_none() {
                        ctx.send(
                            faas_id,
                            SimDuration::ZERO,
                            EcosystemMsg::Faas(FaasMsg::FaultClear(f)),
                        );
                    }
                }
            },
        })
        .with_horizon(cfg.horizon);

        let mut sim: Simulation<'_, EcosystemMsg> = Simulation::new(cfg.seed);
        sim.set_horizon(cfg.horizon);
        let ids = (
            sim.add_actor(&mut arrival),
            sim.add_actor(&mut scheduler_actor),
            sim.add_actor(&mut governor),
            sim.add_actor(&mut faas_actor),
            sim.add_actor(&mut injector),
        );
        debug_assert_eq!(
            ids,
            (arrival_id, scheduler_id, governor_id, faas_id, injector_id),
            "actor registration order must match the precomputed ids"
        );
        sim.schedule(SimTime::ZERO, ids.0, EcosystemMsg::Arrival(ArrivalMsg::Start));
        sim.schedule(SimTime::ZERO, ids.1, EcosystemMsg::Rms(RmsMsg::Start));
        sim.schedule(SimTime::ZERO, ids.4, EcosystemMsg::Injector(InjectorMsg::Start));
        sim.schedule(
            SimTime::ZERO + cfg.service.scaling_interval,
            ids.3,
            EcosystemMsg::Faas(FaasMsg::Report),
        );
        sim.run();

        let events_handled = sim.events_handled();
        let trace = sim.take_trace();
        drop(sim);

        let arrivals = arrival.count();
        let invoked = faas_actor.invoked();
        let rejected = faas_actor.rejected();
        let invocations_failed = faas_actor.failed();
        let shed = faas_actor.shed();
        let retries_scheduled = faas_actor.retries_scheduled();
        let final_capacity = faas_actor.capacity().unwrap_or(0);
        let outages_delivered = injector.delivered();
        let governor_decisions = governor.decisions();
        let schedule = scheduler_actor.outcome();
        drop(arrival);
        drop(faas_actor);
        drop(governor);
        drop(injector);
        drop(scheduler_actor);
        let faas = platform.finish();

        ScenarioOutcome {
            schedule,
            faas,
            arrivals,
            invoked,
            rejected,
            invocations_failed,
            shed,
            retries_scheduled,
            final_capacity,
            outages_generated,
            outages_delivered,
            governor_decisions,
            events_handled,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> ScenarioConfig {
        ScenarioConfig {
            seed: 7,
            horizon: SimTime::from_secs(3600),
            machines: 16,
            batch_jobs: 20,
            arrival_rate: 0.4,
            mtbf_secs: 1.5 * 3600.0,
            ..ScenarioConfig::default()
        }
    }

    #[test]
    fn composed_run_is_deterministic() {
        let a = Scenario::new(small_config()).run();
        let b = Scenario::new(small_config()).run();
        assert_eq!(a.trace.to_json_string(), b.trace.to_json_string());
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.faas, b.faas);
        assert_eq!(
            (a.arrivals, a.invoked, a.rejected, a.events_handled),
            (b.arrivals, b.invoked, b.rejected, b.events_handled)
        );
    }

    #[test]
    fn every_subsystem_emits_onto_the_shared_trace() {
        let out = Scenario::new(small_config()).run();
        let components = out.trace.components();
        for expected in ["autoscale", "faas", "failure", "rms", "workload"] {
            assert!(
                components.iter().any(|c| c == expected),
                "missing component {expected} in {components:?}"
            );
        }
        assert!(out.arrivals > 0);
        assert!(out.invoked > 0);
        assert!(out.outages_delivered > 0, "MTBF too long for the horizon?");
        assert!(out.governor_decisions > 0);
        assert!(!out.schedule.completions.is_empty());
    }

    #[test]
    fn failures_reach_both_scheduler_and_faas() {
        let out = Scenario::new(small_config()).run();
        let fails = out.trace.count("failure", "outage");
        assert_eq!(fails, out.outages_delivered);
        assert_eq!(out.trace.count("faas", "kill_warm"), fails);
        assert_eq!(out.trace.count("rms", "machine_fail"), fails);
    }

    #[test]
    fn resilient_run_with_mixed_faults_is_deterministic_and_traced() {
        let config = || {
            let mut cfg = small_config();
            // Harsh failure regime so every fault kind gets drawn.
            cfg.mtbf_secs = 600.0;
            cfg.resilience = ResilienceConfig::all_on();
            cfg.fault_mix = FaultMix {
                crash: 0.4,
                slowdown: 0.2,
                gray: 0.2,
                partition: 0.2,
                ..FaultMix::crash_only()
            };
            cfg.congestion = Some(CongestionConfig::default());
            cfg
        };
        let a = Scenario::new(config()).run();
        let b = Scenario::new(config()).run();
        assert_eq!(a.trace.to_json_string(), b.trace.to_json_string());
        // Non-crash fault windows reach the FaaS platform…
        assert!(a.trace.count("faas", "fault") > 0, "no service fault windows struck");
        // …and the resilience machinery leaves structured evidence behind.
        assert!(
            a.invocations_failed > 0 || a.retries_scheduled > 0,
            "mixed faults under all-on resilience produced no failures or retries"
        );
        assert_eq!(
            a.retries_scheduled,
            a.trace.count("faas", "retry_scheduled") as u64
        );
        assert_eq!(
            a.invocations_failed,
            a.trace.count("faas", "invoke_failed") as u64
        );
    }

    #[test]
    fn crash_only_defaults_leave_resilience_silent() {
        let out = Scenario::new(small_config()).run();
        assert_eq!(out.invocations_failed, 0);
        assert_eq!(out.shed, 0);
        assert_eq!(out.retries_scheduled, 0);
        assert_eq!(out.trace.count("faas", "fault"), 0);
        assert_eq!(out.trace.count("rms", "requeue_scheduled"), 0);
    }

    #[test]
    fn different_seeds_diverge() {
        let a = Scenario::new(small_config()).run();
        let mut cfg = small_config();
        cfg.seed = 8;
        let b = Scenario::new(cfg).run();
        assert_ne!(a.trace.to_json_string(), b.trace.to_json_string());
    }
}
