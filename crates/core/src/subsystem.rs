//! One shape for every subsystem: attach to a scenario, report from the
//! trace.
//!
//! Before this module, each subsystem kept its own legacy driver with its
//! own signature — `faas::platform::FaasPlatform::run(Vec<Invocation>)`,
//! `rms::scheduler::ClusterScheduler::run(Vec<Job>, SimTime)`,
//! `rms::multicluster::Federation::run(Vec<Job>, SimTime)` — and its own
//! bespoke outcome struct. Composed and standalone runs therefore had
//! nothing in common: you could not take the batch slice of an ecosystem
//! run and compare it like-for-like with a standalone scheduler run.
//!
//! [`Subsystem`] is the unified surface. Every subsystem does exactly two
//! things:
//!
//! 1. [`Subsystem::attach`] — contribute its configuration to a
//!    [`Scenario`] under construction, so the composed engine run hosts it;
//! 2. [`Subsystem::report`] — reduce the shared [`TraceBus`] to its
//!    [`SubsystemReport`], a flat list of named metrics.
//!
//! Because `report` reads only the trace (never a subsystem-private
//! outcome), the same reporting code serves a standalone single-actor run,
//! a composed full-stack run, and — for the wide-area federation, whose
//! router remains a fluid model rather than an engine actor — a synthesized
//! trace produced by [`Federated::record_outcome`]. What a subsystem did is
//! exactly what it emitted; there is no side channel.

use crate::scenario::{
    BatchConfig, BigdataConfig, FaasConfig, FailureConfig, GamingConfig, GraphConfig, Scenario,
};
use mcs_rms::multicluster::FederationOutcome;
use mcs_simcore::time::SimTime;
use mcs_simcore::codec::Json;
use mcs_simcore::trace::{payload, TraceBus, TraceEvent};

/// What one subsystem measured, reduced from the shared trace: a flat list
/// of named metrics, uniform across subsystems so reports can be tabulated,
/// diffed, and asserted on without knowing which subsystem produced them.
#[derive(Debug, Clone, PartialEq)]
pub struct SubsystemReport {
    /// The reporting subsystem (its trace component name).
    pub name: &'static str,
    /// `(metric, value)` rows, in presentation order.
    pub metrics: Vec<(String, f64)>,
}

impl SubsystemReport {
    /// The value of `metric`, when present.
    pub fn get(&self, metric: &str) -> Option<f64> {
        self.metrics.iter().find(|(m, _)| m == metric).map(|&(_, v)| v)
    }
}

/// The unified subsystem surface: attach to a composed scenario, report
/// from the shared trace.
pub trait Subsystem {
    /// The subsystem's name — also its component name on the trace bus.
    fn name(&self) -> &'static str;

    /// Contributes this subsystem's configuration to `scenario`, so the
    /// composed run hosts it on the shared engine.
    fn attach(&self, scenario: &mut Scenario);

    /// Reduces the shared trace to this subsystem's metrics. Works on any
    /// trace that carries the subsystem's component records: a composed
    /// run, a standalone wrapper run, or a synthesized bus.
    fn report(&self, trace: &TraceBus) -> SubsystemReport;
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let (sum, n) = values.fold((0.0, 0usize), |(s, n), v| (s + v, n + 1));
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

fn mean_field(events: &[&TraceEvent], key: &str) -> f64 {
    mean(events.iter().filter_map(|e| e.field_f64(key)))
}

fn sum_field(events: &[&TraceEvent], key: &str) -> f64 {
    events.iter().filter_map(|e| e.field_f64(key)).sum()
}

/// The batch-computing subsystem (the legacy
/// `ClusterScheduler::run(jobs, horizon)` surface).
#[derive(Debug, Clone, Default)]
pub struct Batch(pub BatchConfig);

impl Subsystem for Batch {
    fn name(&self) -> &'static str {
        "rms"
    }

    fn attach(&self, scenario: &mut Scenario) {
        scenario.config_mut().batch = Some(self.0.clone());
    }

    fn report(&self, trace: &TraceBus) -> SubsystemReport {
        SubsystemReport {
            name: self.name(),
            metrics: vec![
                ("jobs_arrived".to_owned(), trace.count("rms", "job_arrival") as f64),
                ("tasks_started".to_owned(), trace.count("rms", "task_start") as f64),
                ("tasks_finished".to_owned(), trace.count("rms", "task_finish") as f64),
                ("machine_fails".to_owned(), trace.count("rms", "machine_fail") as f64),
                (
                    "failure_requeues".to_owned(),
                    trace.count("rms", "requeue_scheduled") as f64,
                ),
                ("policy_ticks".to_owned(), trace.count("rms", "policy_tick") as f64),
            ],
        }
    }
}

/// The serverless subsystem (the legacy
/// `FaasPlatform::run(invocations)` surface).
#[derive(Debug, Clone, Default)]
pub struct Serverless(pub FaasConfig);

impl Subsystem for Serverless {
    fn name(&self) -> &'static str {
        "faas"
    }

    fn attach(&self, scenario: &mut Scenario) {
        scenario.config_mut().faas = Some(self.0.clone());
    }

    fn report(&self, trace: &TraceBus) -> SubsystemReport {
        let invokes = trace.select("faas", "invoke");
        SubsystemReport {
            name: self.name(),
            metrics: vec![
                ("invocations".to_owned(), invokes.len() as f64),
                ("mean_latency_secs".to_owned(), mean_field(&invokes, "latency_secs")),
                ("rejected".to_owned(), trace.count("faas", "reject") as f64),
                ("failed".to_owned(), trace.count("faas", "invoke_failed") as f64),
                ("warm_pool_kills".to_owned(), trace.count("faas", "kill_warm") as f64),
                ("scale_actions".to_owned(), trace.count("faas", "scale") as f64),
            ],
        }
    }
}

/// The correlated-failure subsystem.
#[derive(Debug, Clone, Default)]
pub struct Failures(pub FailureConfig);

impl Subsystem for Failures {
    fn name(&self) -> &'static str {
        "failure"
    }

    fn attach(&self, scenario: &mut Scenario) {
        scenario.config_mut().failure = Some(self.0.clone());
    }

    fn report(&self, trace: &TraceBus) -> SubsystemReport {
        SubsystemReport {
            name: self.name(),
            metrics: vec![
                ("outages".to_owned(), trace.count("failure", "outage") as f64),
                ("repairs".to_owned(), trace.count("failure", "repair") as f64),
            ],
        }
    }
}

/// The MapReduce/dataflow subsystem.
#[derive(Debug, Clone, Default)]
pub struct Bigdata(pub BigdataConfig);

impl Subsystem for Bigdata {
    fn name(&self) -> &'static str {
        "bigdata"
    }

    fn attach(&self, scenario: &mut Scenario) {
        scenario.config_mut().bigdata = Some(self.0.clone());
    }

    fn report(&self, trace: &TraceBus) -> SubsystemReport {
        let stages = trace.select("bigdata", "stage_finish");
        let jobs = trace.select("bigdata", "job_finish");
        SubsystemReport {
            name: self.name(),
            metrics: vec![
                ("jobs_finished".to_owned(), jobs.len() as f64),
                ("mean_job_makespan_secs".to_owned(), mean_field(&jobs, "makespan_secs")),
                ("mean_stage_secs".to_owned(), mean_field(&stages, "secs")),
                ("node_fails".to_owned(), trace.count("bigdata", "node_fail") as f64),
                (
                    "re_replications".to_owned(),
                    trace.count("bigdata", "re_replicate") as f64,
                ),
            ],
        }
    }
}

/// The graph-analytics subsystem.
#[derive(Debug, Clone, Default)]
pub struct GraphAnalytics(pub GraphConfig);

impl Subsystem for GraphAnalytics {
    fn name(&self) -> &'static str {
        "graph"
    }

    fn attach(&self, scenario: &mut Scenario) {
        scenario.config_mut().graph = Some(self.0.clone());
    }

    fn report(&self, trace: &TraceBus) -> SubsystemReport {
        let queries = trace.select("graph", "query_finish");
        let supersteps = trace.select("graph", "superstep_start");
        let stragglers = supersteps
            .iter()
            .filter(|e| matches!(e.payload.get("straggler"), Some(Json::Bool(true))))
            .count();
        SubsystemReport {
            name: self.name(),
            metrics: vec![
                ("queries_finished".to_owned(), queries.len() as f64),
                (
                    "mean_query_makespan_secs".to_owned(),
                    mean_field(&queries, "makespan_secs"),
                ),
                ("supersteps".to_owned(), supersteps.len() as f64),
                ("straggler_supersteps".to_owned(), stragglers as f64),
                ("worker_fails".to_owned(), trace.count("graph", "worker_fail") as f64),
            ],
        }
    }
}

/// The gaming virtual-world subsystem.
#[derive(Debug, Clone, Default)]
pub struct Gaming(pub GamingConfig);

impl Subsystem for Gaming {
    fn name(&self) -> &'static str {
        "gaming"
    }

    fn attach(&self, scenario: &mut Scenario) {
        scenario.config_mut().gaming = Some(self.0.clone());
    }

    fn report(&self, trace: &TraceBus) -> SubsystemReport {
        let overload_windows = trace.select("gaming", "overload_end");
        SubsystemReport {
            name: self.name(),
            metrics: vec![
                ("players_admitted".to_owned(), trace.count("gaming", "join") as f64),
                ("players_rejected".to_owned(), trace.count("gaming", "reject") as f64),
                (
                    "players_disconnected".to_owned(),
                    trace.count("gaming", "disconnect") as f64,
                ),
                (
                    "overload_minutes".to_owned(),
                    sum_field(&overload_windows, "secs") / 60.0,
                ),
                ("zone_fails".to_owned(), trace.count("gaming", "zone_fail") as f64),
            ],
        }
    }
}

/// The wide-area federation (the legacy `Federation::run(jobs, horizon)`
/// surface).
///
/// The federation's router is a *fluid* backlog model, not an engine actor,
/// so it cannot attach additional actors to the composed run. Its unified
/// shape is therefore asymmetric by design: [`Subsystem::attach`]
/// contributes the federation's aggregate fleet as the scenario's batch
/// slice (the composed run schedules on the pooled capacity), while
/// standalone federated runs go through [`Federated::record_outcome`] to
/// synthesize `federation` trace records from a [`FederationOutcome`] —
/// after which [`Subsystem::report`] works identically on both kinds of
/// bus.
#[derive(Debug, Clone, Default)]
pub struct Federated(pub BatchConfig);

impl Federated {
    /// Synthesizes `federation` trace records from a fluid-model outcome,
    /// so standalone federated runs and composed engine runs share the
    /// [`Subsystem::report`] path.
    pub fn record_outcome(outcome: &FederationOutcome, trace: &mut TraceBus) {
        for (cluster, (per, jobs)) in
            outcome.per_cluster.iter().zip(&outcome.jobs_per_cluster).enumerate()
        {
            trace.record(
                SimTime::ZERO,
                "federation",
                "cluster_outcome",
                payload(vec![
                    ("cluster", Json::UInt(cluster as u64)),
                    ("jobs", Json::UInt(*jobs as u64)),
                    ("completions", Json::UInt(per.completions.len() as u64)),
                    ("makespan_secs", Json::Float(per.makespan.as_secs_f64())),
                    ("mean_utilization", Json::Float(per.mean_utilization)),
                ]),
            );
        }
        trace.record(
            SimTime::ZERO,
            "federation",
            "routing",
            payload(vec![
                ("offloaded_jobs", Json::UInt(outcome.offloaded_jobs as u64)),
                ("transfer_delay_secs", Json::Float(outcome.transfer_delay_secs)),
            ]),
        );
    }
}

impl Subsystem for Federated {
    fn name(&self) -> &'static str {
        "federation"
    }

    fn attach(&self, scenario: &mut Scenario) {
        scenario.config_mut().batch = Some(self.0.clone());
    }

    fn report(&self, trace: &TraceBus) -> SubsystemReport {
        let clusters = trace.select("federation", "cluster_outcome");
        let routing = trace.select("federation", "routing");
        SubsystemReport {
            name: self.name(),
            metrics: vec![
                ("clusters".to_owned(), clusters.len() as f64),
                ("jobs_routed".to_owned(), sum_field(&clusters, "jobs")),
                ("completions".to_owned(), sum_field(&clusters, "completions")),
                ("mean_utilization".to_owned(), mean_field(&clusters, "mean_utilization")),
                ("offloaded_jobs".to_owned(), sum_field(&routing, "offloaded_jobs")),
                (
                    "transfer_delay_secs".to_owned(),
                    sum_field(&routing, "transfer_delay_secs"),
                ),
            ],
        }
    }
}

/// Every subsystem of the full-stack scenario, in attach order. Convenience
/// for experiments that want the whole ecosystem reported uniformly.
pub fn full_stack() -> Vec<Box<dyn Subsystem>> {
    vec![
        Box::new(Batch::default()),
        Box::new(Serverless::default()),
        Box::new(Failures::default()),
        Box::new(Bigdata::default()),
        Box::new(GraphAnalytics::default()),
        Box::new(Gaming::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scenario, ScenarioConfig};
    use mcs_simcore::time::SimTime;

    fn attached_scenario() -> Scenario {
        let mut scenario = Scenario::new(ScenarioConfig::bare(
            11,
            SimTime::from_secs(2 * 3600),
            12,
        ));
        for subsystem in full_stack() {
            subsystem.attach(&mut scenario);
        }
        scenario
    }

    #[test]
    fn attach_composes_and_report_reads_the_shared_trace() {
        let out = attached_scenario().run();
        for subsystem in full_stack() {
            let report = subsystem.report(&out.trace);
            assert!(
                !report.metrics.is_empty(),
                "{} reported no metrics",
                report.name
            );
        }
        let batch = Batch::default().report(&out.trace);
        assert!(batch.get("tasks_finished").unwrap_or(0.0) > 0.0);
        let faas = Serverless::default().report(&out.trace);
        assert!(faas.get("invocations").unwrap_or(0.0) > 0.0);
        let gaming = Gaming::default().report(&out.trace);
        assert!(gaming.get("players_admitted").unwrap_or(0.0) > 0.0);
    }

    #[test]
    fn standalone_and_composed_reports_share_one_shape() {
        // A standalone single-subsystem run and the same subsystem's slice
        // of a composed run report through the identical code path.
        let standalone = mcs_gaming::actor::run_gaming_standalone(
            &crate::scenario::GamingConfig::default(),
            11,
            SimTime::from_secs(2 * 3600),
        );
        let solo = Gaming::default().report(&standalone);
        let composed = Gaming::default().report(&attached_scenario().run().trace);
        let names =
            |r: &SubsystemReport| r.metrics.iter().map(|(m, _)| m.clone()).collect::<Vec<_>>();
        assert_eq!(names(&solo), names(&composed));
        assert!(solo.get("players_admitted").unwrap_or(0.0) > 0.0);
    }

    #[test]
    fn federation_outcomes_synthesize_onto_the_bus() {
        use mcs_rms::multicluster::FederationOutcome;
        let outcome = FederationOutcome {
            per_cluster: vec![],
            jobs_per_cluster: vec![],
            offloaded_jobs: 7,
            transfer_delay_secs: 12.5,
        };
        let mut trace = TraceBus::default();
        Federated::record_outcome(&outcome, &mut trace);
        let report = Federated::default().report(&trace);
        assert_eq!(report.get("offloaded_jobs"), Some(7.0));
        assert_eq!(report.get("transfer_delay_secs"), Some(12.5));
    }
}
