//! The ecosystem model: recursive, autonomous constituents with collective
//! responsibility (§2.1 and principle P5, *super-distribution*).
//!
//! An [`Ecosystem`] is a named group of [`Constituent`]s; each constituent
//! is either a leaf [`SystemNode`] or, recursively, another ecosystem —
//! "distributed ecosystems comprised of distributed ecosystems". Leaves
//! advertise *capabilities* with measured NFR profiles; capabilities marked
//! *collective* only materialize when a quorum of providers participates
//! (§2.1: "at least some of the collective functions involve the
//! collaboration of a significant fraction of the ecosystem constituents").

use crate::nfr::NfrProfile;
use std::collections::BTreeSet;

/// A capability name (e.g. `"object-storage"`, `"pagerank"`).
pub type Capability = String;

/// A leaf system: one autonomously operated component.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemNode {
    /// System name.
    pub name: String,
    /// Operating organization (multi-ownership, C10).
    pub owner: String,
    /// Capabilities offered, with measured profiles.
    pub capabilities: Vec<(Capability, NfrProfile)>,
    /// Whether the system may act autonomously (§2.1 autonomy).
    pub autonomous: bool,
}

impl SystemNode {
    /// A system with one capability.
    pub fn new(name: &str, owner: &str, capability: &str, profile: NfrProfile) -> Self {
        SystemNode {
            name: name.to_owned(),
            owner: owner.to_owned(),
            capabilities: vec![(capability.to_owned(), profile)],
            autonomous: true,
        }
    }

    /// Adds a capability (builder style).
    pub fn with_capability(mut self, capability: &str, profile: NfrProfile) -> Self {
        self.capabilities.push((capability.to_owned(), profile));
        self
    }
}

/// A constituent: a leaf system or a nested ecosystem.
#[derive(Debug, Clone, PartialEq)]
pub enum Constituent {
    /// A leaf system.
    System(SystemNode),
    /// A nested ecosystem (super-distribution).
    Ecosystem(Ecosystem),
}

/// A collective function: only available when enough providers collaborate.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectiveFunction {
    /// The function's name.
    pub name: String,
    /// The capability each participant must provide.
    pub requires: Capability,
    /// Minimum fraction of constituents that must provide it, in `(0, 1]`.
    pub quorum_fraction: f64,
}

/// A computer ecosystem (the paper's §2.1 definition).
#[derive(Debug, Clone, PartialEq)]
pub struct Ecosystem {
    /// Ecosystem name.
    pub name: String,
    /// Direct constituents.
    pub constituents: Vec<Constituent>,
    /// Collective functions this ecosystem is responsible for.
    pub collective: Vec<CollectiveFunction>,
}

impl Ecosystem {
    /// An empty ecosystem.
    pub fn new(name: &str) -> Self {
        Ecosystem { name: name.to_owned(), constituents: Vec::new(), collective: Vec::new() }
    }

    /// Adds a leaf system (builder style).
    pub fn with_system(mut self, system: SystemNode) -> Self {
        self.constituents.push(Constituent::System(system));
        self
    }

    /// Nests another ecosystem (builder style).
    pub fn with_ecosystem(mut self, ecosystem: Ecosystem) -> Self {
        self.constituents.push(Constituent::Ecosystem(ecosystem));
        self
    }

    /// Declares a collective function (builder style).
    pub fn with_collective(mut self, f: CollectiveFunction) -> Self {
        self.collective.push(f);
        self
    }

    /// Total leaf systems, recursively.
    pub fn system_count(&self) -> usize {
        self.constituents
            .iter()
            .map(|c| match c {
                Constituent::System(_) => 1,
                Constituent::Ecosystem(e) => e.system_count(),
            })
            .sum()
    }

    /// Nesting depth: 1 for an ecosystem of only leaves.
    pub fn depth(&self) -> usize {
        1 + self
            .constituents
            .iter()
            .map(|c| match c {
                Constituent::System(_) => 0,
                Constituent::Ecosystem(e) => e.depth(),
            })
            .max()
            .unwrap_or(0)
    }

    /// Distinct owning organizations, recursively (multi-ownership, C10).
    pub fn owners(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_owners(&mut out);
        out
    }

    fn collect_owners(&self, out: &mut BTreeSet<String>) {
        for c in &self.constituents {
            match c {
                Constituent::System(s) => {
                    out.insert(s.owner.clone());
                }
                Constituent::Ecosystem(e) => e.collect_owners(out),
            }
        }
    }

    /// Every leaf provider of `capability`, recursively, with its profile.
    pub fn providers(&self, capability: &str) -> Vec<(&SystemNode, &NfrProfile)> {
        let mut out = Vec::new();
        self.collect_providers(capability, &mut out);
        out
    }

    fn collect_providers<'a>(
        &'a self,
        capability: &str,
        out: &mut Vec<(&'a SystemNode, &'a NfrProfile)>,
    ) {
        for c in &self.constituents {
            match c {
                Constituent::System(s) => {
                    for (cap, profile) in &s.capabilities {
                        if cap == capability {
                            out.push((s, profile));
                        }
                    }
                }
                Constituent::Ecosystem(e) => e.collect_providers(capability, out),
            }
        }
    }

    /// Whether a declared collective function currently materializes: a
    /// quorum of *direct* constituents must (recursively) provide the
    /// required capability.
    pub fn collective_available(&self, name: &str) -> Option<bool> {
        let f = self.collective.iter().find(|f| f.name == name)?;
        let providers = self
            .constituents
            .iter()
            .filter(|c| match c {
                Constituent::System(s) => {
                    s.capabilities.iter().any(|(cap, _)| cap == &f.requires)
                }
                Constituent::Ecosystem(e) => !e.providers(&f.requires).is_empty(),
            })
            .count();
        let total = self.constituents.len().max(1);
        Some(providers as f64 / total as f64 >= f.quorum_fraction)
    }

    /// The replicated profile of `capability`: all providers composed in
    /// parallel — the ecosystem-level guarantee that no single constituent
    /// can offer (§2.1 "collective responsibility", P3 composability).
    pub fn collective_profile(&self, capability: &str) -> Option<NfrProfile> {
        let providers = self.providers(capability);
        let mut iter = providers.into_iter().map(|(_, p)| p.clone());
        let first = iter.next()?;
        Some(iter.fold(first, |acc, p| acc.compose_parallel(&p)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfr::NfrKind;

    fn storage_profile(avail: f64) -> NfrProfile {
        NfrProfile::new()
            .with(NfrKind::Availability, avail)
            .with(NfrKind::Throughput, 100.0)
            .with(NfrKind::CostPerHour, 1.0)
    }

    fn sample() -> Ecosystem {
        let edge = Ecosystem::new("edge")
            .with_system(SystemNode::new("edge-a", "org-b", "object-storage", storage_profile(0.99)))
            .with_system(SystemNode::new("cdn", "org-c", "delivery", NfrProfile::new()));
        Ecosystem::new("cloud")
            .with_system(SystemNode::new("s3ish", "org-a", "object-storage", storage_profile(0.999)))
            .with_system(SystemNode::new("compute", "org-a", "vm", NfrProfile::new()))
            .with_ecosystem(edge)
            .with_collective(CollectiveFunction {
                name: "durable-storage".into(),
                requires: "object-storage".into(),
                quorum_fraction: 0.5,
            })
    }

    #[test]
    fn recursive_structure_queries() {
        let eco = sample();
        assert_eq!(eco.system_count(), 4);
        assert_eq!(eco.depth(), 2);
        let owners = eco.owners();
        assert_eq!(owners.len(), 3);
        assert!(owners.contains("org-b"));
    }

    #[test]
    fn providers_found_recursively() {
        let eco = sample();
        let providers = eco.providers("object-storage");
        assert_eq!(providers.len(), 2);
        let names: Vec<&str> = providers.iter().map(|(s, _)| s.name.as_str()).collect();
        assert!(names.contains(&"s3ish") && names.contains(&"edge-a"));
    }

    #[test]
    fn collective_quorum() {
        let eco = sample();
        // 2 of 3 direct constituents provide object-storage (s3ish and the
        // edge ecosystem, via edge-a): 0.66 >= 0.5.
        assert_eq!(eco.collective_available("durable-storage"), Some(true));
        assert_eq!(eco.collective_available("unknown"), None);
        // Raise the quorum: no longer materializes.
        let mut strict = sample();
        strict.collective[0].quorum_fraction = 0.9;
        assert_eq!(strict.collective_available("durable-storage"), Some(false));
    }

    #[test]
    fn collective_profile_beats_any_single_provider() {
        let eco = sample();
        let collective = eco.collective_profile("object-storage").unwrap();
        let a = collective.get(NfrKind::Availability).unwrap();
        assert!(a > 0.999, "collective availability {a}");
        assert_eq!(collective.get(NfrKind::Throughput), Some(200.0));
        assert!(eco.collective_profile("nope").is_none());
    }

    #[test]
    fn deep_nesting() {
        let mut eco = Ecosystem::new("l0")
            .with_system(SystemNode::new("leaf", "o", "x", NfrProfile::new()));
        for i in 1..5 {
            eco = Ecosystem::new(&format!("l{i}"))
                .with_ecosystem(eco)
                .with_system(SystemNode::new(&format!("leaf{i}"), "o", "x", NfrProfile::new()));
        }
        assert_eq!(eco.depth(), 5);
        assert_eq!(eco.system_count(), 5);
        assert_eq!(eco.providers("x").len(), 5);
    }
}
