//! # mcs-core — the Massivizing Computer Systems contribution, formalized
//!
//! The paper's primary contribution is conceptual: ecosystems as the unit
//! of study, NFRs as first-class citizens, self-awareness and RM&S as the
//! key building blocks, and a methodology spanning measurement, simulation,
//! and formal models. This crate turns each concept into an executable
//! artifact:
//!
//! - [`nfr`] — the P3 calculus: typed NFR targets, measured profiles,
//!   serial/parallel composition, time-varying requirement schedules (C3).
//! - [`sla`] — SLOs/SLAs with penalties evaluated against measured profiles.
//! - [`ecosystem`] — recursive, multi-owner ecosystems with collective
//!   functions and quorum semantics (P5 super-distribution, §2.1).
//! - [`selfaware`] — MAPE-K loops, anomaly detection, and an emergence
//!   detector (P4, P9, C6).
//! - [`navigation`] — the C9 Ecosystem Navigation challenge: select and
//!   compose components against NFR targets, with plain-text explanations.
//! - [`refarch`] — Figures 1/3/4/5 encoded as validated reference
//!   architectures with deployment-coverage checking.
//! - [`evolution`] — §3.2's Darwinian vs non-Darwinian technology dynamics
//!   and the component-evolution mechanisms.
//! - [`methods`] — the formal-model leg of Table 1: M/M/1, Erlang-C M/M/c,
//!   Little's Law.
//!
//! ## Example
//! ```
//! use mcs_core::prelude::*;
//!
//! let db = NfrProfile::new()
//!     .with(NfrKind::Availability, 0.99)
//!     .with(NfrKind::LatencyP95, 0.02);
//! // Triple replication: availability composes to three nines and beyond.
//! let replicated = db.compose_parallel(&db).compose_parallel(&db);
//! assert!(replicated.get(NfrKind::Availability).unwrap() > 0.999_99);
//! ```

pub mod ecosystem;
pub mod evolution;
pub mod methods;
pub mod navigation;
pub mod nfr;
pub mod refarch;
pub mod scenario;
pub mod selfaware;
pub mod sla;
pub mod subsystem;
pub mod transparency;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::ecosystem::{
        Capability, CollectiveFunction, Constituent, Ecosystem, SystemNode,
    };
    pub use crate::evolution::{
        evolve_inventory, simulate_adoption, upset_probability, AdoptionOutcome, Mechanism,
        Regime, Technology,
    };
    pub use crate::methods::{littles_law, mm1, mmc, QueueingPrediction, Roofline};
    pub use crate::navigation::{
        navigate, navigate_best_effort, Catalog, CatalogEntry, NavigationError, Selection,
    };
    pub use crate::nfr::{NfrKind, NfrProfile, NfrSchedule, NfrTarget};
    pub use crate::refarch::{
        all_refarchs, bigdata_refarch, datacenter_refarch, faas_refarch, gaming_refarch,
        Layer, ReferenceArchitecture,
    };
    pub use crate::scenario::{
        BatchConfig, EcosystemMsg, FaasConfig, FailureConfig, NetworkConfig,
        ObservabilityConfig, Scenario, ScenarioConfig, ScenarioOutcome,
    };
    pub use crate::selfaware::{Action, Analysis, EmergenceDetector, Knowledge, MapeLoop};
    pub use crate::sla::{Sla, SlaReport, Slo, SloOutcome};
    pub use crate::subsystem::{Subsystem, SubsystemReport};
    pub use crate::transparency::{Audience, OperationalReport};
}
