//! Analytical (formal) models: the "How?" row of Table 1.
//!
//! §3.3 of the paper envisions "a complex set of formal mathematical models,
//! validated and calibrated with long-term data". The entry point is
//! classical queueing theory: M/M/1 and M/M/c (Erlang C) response-time
//! models, plus Little's Law — explicitly named in §3.5 as a seminal result
//! MCS imports. The Table 1 experiment validates these against the
//! simulator: measurement, simulation, and analysis agreeing on the same
//! system is the paper's methodological triangle made executable.


/// The analytical prediction for a queueing station.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueingPrediction {
    /// Offered load ρ = λ/(cμ), in `[0, 1)` for stability.
    pub utilization: f64,
    /// Probability an arrival must wait (Erlang-C for M/M/c).
    pub wait_probability: f64,
    /// Mean waiting time in queue, seconds.
    pub mean_wait_secs: f64,
    /// Mean response (sojourn) time, seconds.
    pub mean_response_secs: f64,
    /// Mean number in system (Little's Law: L = λW).
    pub mean_in_system: f64,
}

/// M/M/1 analysis.
///
/// Returns `None` when unstable (λ ≥ μ) or parameters are non-positive.
pub fn mm1(lambda: f64, mu: f64) -> Option<QueueingPrediction> {
    if lambda <= 0.0 || mu <= 0.0 || lambda >= mu {
        return None;
    }
    let rho = lambda / mu;
    let mean_wait = rho / (mu - lambda);
    let mean_response = 1.0 / (mu - lambda);
    Some(QueueingPrediction {
        utilization: rho,
        wait_probability: rho,
        mean_wait_secs: mean_wait,
        mean_response_secs: mean_response,
        mean_in_system: lambda * mean_response,
    })
}

/// M/M/c analysis (Erlang C).
///
/// Returns `None` when unstable (λ ≥ cμ) or parameters are invalid.
pub fn mmc(lambda: f64, mu: f64, servers: u32) -> Option<QueueingPrediction> {
    if lambda <= 0.0 || mu <= 0.0 || servers == 0 {
        return None;
    }
    let c = servers as f64;
    let rho = lambda / (c * mu);
    if rho >= 1.0 {
        return None;
    }
    let a = lambda / mu; // offered load in Erlangs
    // Erlang C: P(wait) = (a^c / c!) / ((1-rho) * sum_{k<c} a^k/k! + a^c/c!)
    let mut sum = 0.0;
    let mut term = 1.0; // a^0 / 0!
    for k in 0..servers {
        sum += term;
        term *= a / (k as f64 + 1.0);
    }
    // After the loop, term = a^c / c!.
    let erlang_c = term / (term + (1.0 - rho) * sum);
    let mean_wait = erlang_c / (c * mu - lambda);
    let mean_response = mean_wait + 1.0 / mu;
    Some(QueueingPrediction {
        utilization: rho,
        wait_probability: erlang_c,
        mean_wait_secs: mean_wait,
        mean_response_secs: mean_response,
        mean_in_system: lambda * mean_response,
    })
}

/// Little's Law: mean number in system from throughput and mean response.
pub fn littles_law(throughput: f64, mean_response_secs: f64) -> f64 {
    throughput * mean_response_secs
}

/// The Roofline model (Williams et al. \[67\], cited in §3.5 as an effective
/// performance-prediction framework "using only modest numbers of
/// parameters").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Roofline {
    /// Peak compute throughput, GFLOP/s.
    pub peak_gflops: f64,
    /// Peak memory bandwidth, GB/s.
    pub mem_bandwidth_gbs: f64,
}

impl Roofline {
    /// Attainable performance (GFLOP/s) at the given operational intensity
    /// (FLOP per byte moved): `min(peak, bandwidth × intensity)`.
    pub fn attainable_gflops(&self, operational_intensity: f64) -> f64 {
        (self.mem_bandwidth_gbs * operational_intensity.max(0.0)).min(self.peak_gflops)
    }

    /// The ridge point: the operational intensity at which the machine
    /// stops being memory-bound.
    pub fn ridge_intensity(&self) -> f64 {
        if self.mem_bandwidth_gbs <= 0.0 {
            f64::INFINITY
        } else {
            self.peak_gflops / self.mem_bandwidth_gbs
        }
    }

    /// True when a kernel of this intensity is memory-bound on this machine.
    pub fn is_memory_bound(&self, operational_intensity: f64) -> bool {
        operational_intensity < self.ridge_intensity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mm1_textbook_example() {
        // λ = 2/s, μ = 3/s: ρ = 2/3, W = 1/(μ-λ) = 1 s, L = 2.
        let p = mm1(2.0, 3.0).unwrap();
        assert!((p.utilization - 2.0 / 3.0).abs() < 1e-12);
        assert!((p.mean_response_secs - 1.0).abs() < 1e-12);
        assert!((p.mean_in_system - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mm1_instability() {
        assert!(mm1(3.0, 3.0).is_none());
        assert!(mm1(4.0, 3.0).is_none());
        assert!(mm1(-1.0, 3.0).is_none());
    }

    #[test]
    fn mmc_reduces_to_mm1_at_c1() {
        let a = mm1(2.0, 3.0).unwrap();
        let b = mmc(2.0, 3.0, 1).unwrap();
        assert!((a.mean_response_secs - b.mean_response_secs).abs() < 1e-9);
        assert!((a.wait_probability - b.wait_probability).abs() < 1e-9);
    }

    #[test]
    fn mmc_textbook_example() {
        // λ = 3/s, μ = 2/s, c = 2: a = 1.5, ρ = 0.75.
        // Erlang C = (1.5²/2!)/( (1-0.75)(1 + 1.5) + 1.5²/2! ) = 1.125/1.75.
        let p = mmc(3.0, 2.0, 2).unwrap();
        let expected_c = 1.125 / (0.25 * 2.5 + 1.125);
        assert!((p.wait_probability - expected_c).abs() < 1e-12);
        assert!((p.utilization - 0.75).abs() < 1e-12);
        let expected_wait = expected_c / (2.0 * 2.0 - 3.0);
        assert!((p.mean_wait_secs - expected_wait).abs() < 1e-12);
    }

    #[test]
    fn more_servers_less_waiting() {
        let few = mmc(8.0, 1.0, 10).unwrap();
        let many = mmc(8.0, 1.0, 20).unwrap();
        assert!(many.mean_wait_secs < few.mean_wait_secs / 10.0);
    }

    #[test]
    fn littles_law_consistency() {
        let p = mmc(3.0, 2.0, 2).unwrap();
        assert!((littles_law(3.0, p.mean_response_secs) - p.mean_in_system).abs() < 1e-12);
    }

    #[test]
    fn roofline_regions() {
        // A machine like the paper's era GPUs: 10 TFLOP/s, 500 GB/s.
        let r = Roofline { peak_gflops: 10_000.0, mem_bandwidth_gbs: 500.0 };
        assert!((r.ridge_intensity() - 20.0).abs() < 1e-12);
        // Streaming kernel (0.25 FLOP/B): memory-bound at bw * oi.
        assert!(r.is_memory_bound(0.25));
        assert!((r.attainable_gflops(0.25) - 125.0).abs() < 1e-12);
        // Dense kernel (100 FLOP/B): compute-bound at peak.
        assert!(!r.is_memory_bound(100.0));
        assert_eq!(r.attainable_gflops(100.0), 10_000.0);
        // Degenerate inputs stay sane.
        assert_eq!(r.attainable_gflops(-1.0), 0.0);
        let broken = Roofline { peak_gflops: 1.0, mem_bandwidth_gbs: 0.0 };
        assert!(broken.ridge_intensity().is_infinite());
    }
}
