//! Non-functional requirements as first-class, composable data (P3).
//!
//! The paper's principle P3 demands that non-functional properties be
//! "first-class concerns, composable and portable, whose relative importance
//! and target values are dynamic". This module makes that an executable
//! calculus: a typed NFR vocabulary, targets with directions and weights,
//! measured profiles, a composition algebra over serial and parallel
//! assembly, and time-varying targets (C3's temporal fine-grained NFRs).

use std::collections::BTreeMap;
use std::fmt;

/// The NFR vocabulary (the paper's P3 list, plus cost).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NfrKind {
    /// 95th-percentile response latency, seconds (lower is better).
    LatencyP95,
    /// Sustained throughput, operations/second (higher is better).
    Throughput,
    /// Long-run availability in `[0, 1]` (higher is better).
    Availability,
    /// Money per hour of operation (lower is better).
    CostPerHour,
    /// Elasticity score in `[0, 1]` (higher is better;
    /// see `mcs_autoscale::elasticity`).
    Elasticity,
    /// Performance-isolation score in `[0, 1]` (higher is better).
    Isolation,
    /// Security/trust score in `[0, 1]` (higher is better).
    Security,
}

impl NfrKind {
    /// All kinds, in a stable order.
    pub const ALL: [NfrKind; 7] = [
        NfrKind::LatencyP95,
        NfrKind::Throughput,
        NfrKind::Availability,
        NfrKind::CostPerHour,
        NfrKind::Elasticity,
        NfrKind::Isolation,
        NfrKind::Security,
    ];

    /// True when larger measured values are better.
    pub fn higher_is_better(&self) -> bool {
        !matches!(self, NfrKind::LatencyP95 | NfrKind::CostPerHour)
    }

    /// Stable lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            NfrKind::LatencyP95 => "latency-p95",
            NfrKind::Throughput => "throughput",
            NfrKind::Availability => "availability",
            NfrKind::CostPerHour => "cost-per-hour",
            NfrKind::Elasticity => "elasticity",
            NfrKind::Isolation => "isolation",
            NfrKind::Security => "security",
        }
    }
}

impl fmt::Display for NfrKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One requirement: a bound on a kind, with a weight for trade-offs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NfrTarget {
    /// Which property.
    pub kind: NfrKind,
    /// The bound: an upper bound for lower-is-better kinds, a lower bound
    /// otherwise.
    pub bound: f64,
    /// Relative importance in `[0, 1]` for scoring and satisficing.
    pub weight: f64,
}

impl NfrTarget {
    /// A target with weight 1.
    pub fn new(kind: NfrKind, bound: f64) -> Self {
        NfrTarget { kind, bound, weight: 1.0 }
    }

    /// Whether a measured value satisfies this target.
    pub fn satisfied_by(&self, measured: f64) -> bool {
        if self.kind.higher_is_better() {
            measured >= self.bound
        } else {
            measured <= self.bound
        }
    }

    /// A satisfaction margin: positive when satisfied, scaled by the bound
    /// (dimension-free).
    pub fn margin(&self, measured: f64) -> f64 {
        let b = self.bound.abs().max(1e-12);
        if self.kind.higher_is_better() {
            (measured - self.bound) / b
        } else {
            (self.bound - measured) / b
        }
    }
}

/// A measured (or advertised) non-functional profile of a component.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NfrProfile {
    values: BTreeMap<NfrKind, f64>,
}

impl NfrProfile {
    /// An empty profile.
    pub fn new() -> Self {
        NfrProfile::default()
    }

    /// Sets one property (builder style).
    pub fn with(mut self, kind: NfrKind, value: f64) -> Self {
        self.values.insert(kind, value);
        self
    }

    /// The measured value of `kind`, if present.
    pub fn get(&self, kind: NfrKind) -> Option<f64> {
        self.values.get(&kind).copied()
    }

    /// Kinds present in the profile.
    pub fn kinds(&self) -> impl Iterator<Item = NfrKind> + '_ {
        self.values.keys().copied()
    }

    /// Serial composition: the profile of `self` followed by `other`
    /// (a pipeline). Latencies and costs add, throughput is the bottleneck
    /// minimum, availability multiplies, bounded scores take the minimum.
    pub fn compose_serial(&self, other: &NfrProfile) -> NfrProfile {
        self.compose_with(other, Assembly::Serial)
    }

    /// Parallel composition: `self` and `other` serve independently
    /// (replication). Latency is the maximum (fan-out join), throughput
    /// adds, availability is `1-(1-a)(1-b)` (either replica serves), cost
    /// adds, bounded scores take the minimum.
    pub fn compose_parallel(&self, other: &NfrProfile) -> NfrProfile {
        self.compose_with(other, Assembly::Parallel)
    }

    fn compose_with(&self, other: &NfrProfile, assembly: Assembly) -> NfrProfile {
        let mut out = NfrProfile::new();
        for kind in NfrKind::ALL {
            let (a, b) = (self.get(kind), other.get(kind));
            let value = match (a, b) {
                (None, None) => continue,
                // A missing side is treated as neutral for that kind.
                (Some(v), None) | (None, Some(v)) => v,
                (Some(a), Some(b)) => combine(kind, a, b, assembly),
            };
            out.values.insert(kind, value);
        }
        out
    }

    /// Whether every target in `targets` is met by this profile; targets on
    /// kinds the profile does not report are unmet (unknown is not good
    /// enough for a guarantee — P3's composability of *guarantees*).
    pub fn satisfies(&self, targets: &[NfrTarget]) -> bool {
        targets.iter().all(|t| self.get(t.kind).map(|m| t.satisfied_by(m)).unwrap_or(false))
    }

    /// Weighted satisfaction score: mean of clamped margins, in `[-1, 1]`-ish
    /// territory; used for ranking alternatives during navigation (C9).
    pub fn score(&self, targets: &[NfrTarget]) -> f64 {
        if targets.is_empty() {
            return 0.0;
        }
        let total_weight: f64 = targets.iter().map(|t| t.weight).sum();
        targets
            .iter()
            .map(|t| {
                let margin = self
                    .get(t.kind)
                    .map(|m| t.margin(m).clamp(-1.0, 1.0))
                    .unwrap_or(-1.0);
                t.weight * margin
            })
            .sum::<f64>()
            / total_weight.max(1e-12)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Assembly {
    Serial,
    Parallel,
}

fn combine(kind: NfrKind, a: f64, b: f64, assembly: Assembly) -> f64 {
    match (kind, assembly) {
        (NfrKind::LatencyP95, Assembly::Serial) => a + b,
        (NfrKind::LatencyP95, Assembly::Parallel) => a.max(b),
        (NfrKind::Throughput, Assembly::Serial) => a.min(b),
        (NfrKind::Throughput, Assembly::Parallel) => a + b,
        (NfrKind::Availability, Assembly::Serial) => a * b,
        (NfrKind::Availability, Assembly::Parallel) => 1.0 - (1.0 - a) * (1.0 - b),
        (NfrKind::CostPerHour, _) => a + b,
        // Bounded scores: the weakest link in either assembly.
        (NfrKind::Elasticity | NfrKind::Isolation | NfrKind::Security, _) => a.min(b),
    }
}

/// A time-varying requirement set: C3's *temporal fine-grained NFRs* —
/// "expressing NFRs that change over time possibly dynamically".
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NfrSchedule {
    /// `(from_second, targets)` entries, sorted by activation time.
    phases: Vec<(f64, Vec<NfrTarget>)>,
}

impl NfrSchedule {
    /// An empty schedule (no requirements ever).
    pub fn new() -> Self {
        NfrSchedule::default()
    }

    /// Adds a phase starting at `from_secs` (builder style).
    pub fn phase(mut self, from_secs: f64, targets: Vec<NfrTarget>) -> Self {
        self.phases.push((from_secs, targets));
        self.phases.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        self
    }

    /// The targets in force at `at_secs` (the latest phase started).
    pub fn targets_at(&self, at_secs: f64) -> &[NfrTarget] {
        self.phases
            .iter()
            .rev()
            .find(|(from, _)| *from <= at_secs)
            .map(|(_, t)| t.as_slice())
            .unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn web_tier() -> NfrProfile {
        NfrProfile::new()
            .with(NfrKind::LatencyP95, 0.050)
            .with(NfrKind::Throughput, 1_000.0)
            .with(NfrKind::Availability, 0.999)
            .with(NfrKind::CostPerHour, 1.0)
    }

    fn db_tier() -> NfrProfile {
        NfrProfile::new()
            .with(NfrKind::LatencyP95, 0.020)
            .with(NfrKind::Throughput, 600.0)
            .with(NfrKind::Availability, 0.995)
            .with(NfrKind::CostPerHour, 3.0)
    }

    #[test]
    fn serial_composition_rules() {
        let app = web_tier().compose_serial(&db_tier());
        assert!((app.get(NfrKind::LatencyP95).unwrap() - 0.070).abs() < 1e-12);
        assert_eq!(app.get(NfrKind::Throughput), Some(600.0));
        assert!((app.get(NfrKind::Availability).unwrap() - 0.999 * 0.995).abs() < 1e-12);
        assert_eq!(app.get(NfrKind::CostPerHour), Some(4.0));
    }

    #[test]
    fn parallel_composition_rules() {
        let replicated = db_tier().compose_parallel(&db_tier());
        assert_eq!(replicated.get(NfrKind::LatencyP95), Some(0.020));
        assert_eq!(replicated.get(NfrKind::Throughput), Some(1_200.0));
        let a = replicated.get(NfrKind::Availability).unwrap();
        assert!((a - (1.0 - 0.005 * 0.005)).abs() < 1e-12);
        assert_eq!(replicated.get(NfrKind::CostPerHour), Some(6.0));
    }

    #[test]
    fn replication_improves_availability_composition_shows_it() {
        // The P3 claim in numbers: composing guarantees without re-measuring.
        let single = db_tier();
        let tri = single.compose_parallel(&single).compose_parallel(&single);
        assert!(tri.get(NfrKind::Availability).unwrap() > 0.9999);
    }

    #[test]
    fn targets_and_satisfaction() {
        let t = NfrTarget::new(NfrKind::LatencyP95, 0.1);
        assert!(t.satisfied_by(0.05));
        assert!(!t.satisfied_by(0.2));
        let t2 = NfrTarget::new(NfrKind::Availability, 0.99);
        assert!(t2.satisfied_by(0.999));
        assert!(!t2.satisfied_by(0.95));
    }

    #[test]
    fn profile_satisfies_and_unknown_kind_fails() {
        let app = web_tier();
        assert!(app.satisfies(&[
            NfrTarget::new(NfrKind::LatencyP95, 0.1),
            NfrTarget::new(NfrKind::Throughput, 500.0),
        ]));
        // Target on a kind the profile does not report: not satisfied.
        assert!(!app.satisfies(&[NfrTarget::new(NfrKind::Security, 0.5)]));
    }

    #[test]
    fn score_ranks_better_profiles_higher() {
        let targets = vec![
            NfrTarget::new(NfrKind::LatencyP95, 0.1),
            NfrTarget::new(NfrKind::CostPerHour, 5.0),
        ];
        let cheap_fast = NfrProfile::new()
            .with(NfrKind::LatencyP95, 0.02)
            .with(NfrKind::CostPerHour, 1.0);
        let slow_pricey = NfrProfile::new()
            .with(NfrKind::LatencyP95, 0.09)
            .with(NfrKind::CostPerHour, 4.9);
        assert!(cheap_fast.score(&targets) > slow_pricey.score(&targets));
    }

    #[test]
    fn margins_signed_correctly() {
        let lat = NfrTarget::new(NfrKind::LatencyP95, 0.1);
        assert!(lat.margin(0.05) > 0.0);
        assert!(lat.margin(0.2) < 0.0);
        let thr = NfrTarget::new(NfrKind::Throughput, 100.0);
        assert!(thr.margin(150.0) > 0.0);
        assert!(thr.margin(50.0) < 0.0);
    }

    #[test]
    fn schedule_switches_targets_over_time() {
        let schedule = NfrSchedule::new()
            .phase(0.0, vec![NfrTarget::new(NfrKind::LatencyP95, 0.5)])
            .phase(3600.0, vec![NfrTarget::new(NfrKind::LatencyP95, 0.05)]);
        assert_eq!(schedule.targets_at(10.0)[0].bound, 0.5);
        assert_eq!(schedule.targets_at(4000.0)[0].bound, 0.05);
        assert!(NfrSchedule::new().targets_at(1.0).is_empty());
    }

    #[test]
    fn composition_handles_one_sided_kinds() {
        let a = NfrProfile::new().with(NfrKind::Security, 0.8);
        let b = NfrProfile::new().with(NfrKind::LatencyP95, 0.1);
        let c = a.compose_serial(&b);
        assert_eq!(c.get(NfrKind::Security), Some(0.8));
        assert_eq!(c.get(NfrKind::LatencyP95), Some(0.1));
    }
}
