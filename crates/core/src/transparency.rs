//! Operational transparency (C13): "support for showing and explaining the
//! operation of the ecosystem to all stakeholders, continuously".
//!
//! The paper envisions operators with "a duty, possibly legislated, to
//! continuously and transparently inform stakeholders on a variety of
//! operational properties, including risk … cost … and legal aspects".
//! [`OperationalReport`] aggregates the platform's measured quantities into
//! one structure with a plain-language rendering per stakeholder audience.

use crate::sla::SlaReport;

/// Who the explanation is for; wording and selection change per audience
/// (the C13 requirement to address "stakeholders with different levels of
/// sophistication").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Audience {
    /// Site reliability / operations engineers: everything, precise.
    Operator,
    /// Paying customers: SLOs, incidents, credits.
    Customer,
    /// The general public / regulators: availability, incidents, energy.
    Public,
}

/// One reporting window's operational facts.
#[derive(Debug, Clone, PartialEq)]
pub struct OperationalReport {
    /// Reporting window length, hours.
    pub window_hours: f64,
    /// Measured availability in `[0, 1]`.
    pub availability: f64,
    /// Number of user-visible incidents (outages crossing the degradation
    /// threshold).
    pub incidents: usize,
    /// Longest single degradation, minutes.
    pub longest_incident_mins: f64,
    /// Energy consumed, kWh.
    pub energy_kwh: f64,
    /// Money spent operating, currency units.
    pub cost: f64,
    /// The SLA evaluation of the window, if an SLA is in force.
    pub sla: Option<SlaReport>,
}

mcs_simcore::impl_json!(enum Audience { Operator, Customer, Public });
mcs_simcore::impl_json!(struct OperationalReport {
    window_hours, availability, incidents, longest_incident_mins, energy_kwh, cost, sla,
});

impl OperationalReport {
    /// Renders the report for an audience.
    pub fn render(&self, audience: Audience) -> String {
        let nines = |a: f64| format!("{:.4}%", a * 100.0);
        match audience {
            Audience::Operator => {
                let mut s = format!(
                    "window {:.0}h: availability {}, {} incident(s), longest {:.1} min, \
                     {:.1} kWh, cost {:.2}",
                    self.window_hours,
                    nines(self.availability),
                    self.incidents,
                    self.longest_incident_mins,
                    self.energy_kwh,
                    self.cost,
                );
                if let Some(sla) = &self.sla {
                    s.push_str(&format!(
                        "; SLA: {} violation(s), penalty {:.2}",
                        sla.violations, sla.penalty
                    ));
                    for o in &sla.outcomes {
                        s.push_str(&format!(
                            " [{} {} margin {:+.3}]",
                            o.name,
                            if o.met { "met" } else { "MISSED" },
                            o.margin
                        ));
                    }
                }
                s
            }
            Audience::Customer => {
                let mut s = format!(
                    "In the last {:.0} hours the service was available {} of the time",
                    self.window_hours,
                    nines(self.availability),
                );
                if self.incidents > 0 {
                    s.push_str(&format!(
                        ", with {} incident(s); the longest lasted {:.0} minutes",
                        self.incidents, self.longest_incident_mins
                    ));
                }
                match &self.sla {
                    Some(sla) if !sla.compliant => s.push_str(&format!(
                        ". Your agreement was missed; a service credit of {:.2} applies.",
                        sla.penalty
                    )),
                    Some(_) => s.push_str(". All service-level objectives were met."),
                    None => s.push('.'),
                }
                s
            }
            Audience::Public => format!(
                "Service availability: {}. Incidents: {}. Energy used: {:.0} kWh.",
                nines(self.availability),
                self.incidents,
                self.energy_kwh,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfr::{NfrKind, NfrProfile, NfrTarget};
    use crate::sla::{Sla, Slo};

    fn report(compliant: bool) -> OperationalReport {
        let sla = Sla {
            name: "t".into(),
            slos: vec![Slo {
                name: "availability".into(),
                target: NfrTarget::new(NfrKind::Availability, 0.999),
                penalty: 42.0,
            }],
            penalty_cap: 100.0,
        };
        let measured = NfrProfile::new()
            .with(NfrKind::Availability, if compliant { 0.9995 } else { 0.99 });
        OperationalReport {
            window_hours: 720.0,
            availability: if compliant { 0.9995 } else { 0.99 },
            incidents: if compliant { 0 } else { 3 },
            longest_incident_mins: if compliant { 0.0 } else { 47.0 },
            energy_kwh: 1234.0,
            cost: 5678.0,
            sla: Some(sla.evaluate(&measured)),
        }
    }

    #[test]
    fn operator_view_has_everything() {
        let s = report(false).render(Audience::Operator);
        assert!(s.contains("kWh"));
        assert!(s.contains("penalty 42.00"));
        assert!(s.contains("MISSED"));
        assert!(s.contains("cost"));
    }

    #[test]
    fn customer_view_mentions_credit_only_when_missed() {
        let missed = report(false).render(Audience::Customer);
        assert!(missed.contains("service credit of 42.00"));
        let met = report(true).render(Audience::Customer);
        assert!(met.contains("All service-level objectives were met"));
        assert!(!met.contains("credit"));
    }

    #[test]
    fn public_view_is_minimal() {
        let s = report(false).render(Audience::Public);
        assert!(s.contains("availability"));
        assert!(s.contains("Energy"));
        assert!(!s.contains("penalty"));
        assert!(!s.contains("cost"));
    }

    #[test]
    fn json_round_trip() {
        let r = report(true);
        let json = mcs_simcore::codec::to_string(&r);
        let back: OperationalReport = mcs_simcore::codec::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
