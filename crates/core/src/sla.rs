//! Service-level agreements over the NFR vocabulary.
//!
//! The paper (P3, C3) distinguishes service-level *objectives* (per-property
//! targets) from the overall *agreement* (objectives + penalties + review
//! window). An SLA here is evaluated against a measured [`NfrProfile`],
//! producing a violation report and penalty — the machinery the banking use
//! case (§6.4, PSD2 deadlines) exercises.

use crate::nfr::{NfrProfile, NfrTarget};

/// One objective inside an agreement.
#[derive(Debug, Clone, PartialEq)]
pub struct Slo {
    /// Human-readable name ("p95 latency under 100 ms").
    pub name: String,
    /// The measurable target.
    pub target: NfrTarget,
    /// Penalty charged per review window when violated.
    pub penalty: f64,
}

/// A service-level agreement: objectives plus a service credit cap.
#[derive(Debug, Clone, PartialEq)]
pub struct Sla {
    /// Agreement name.
    pub name: String,
    /// The objectives.
    pub slos: Vec<Slo>,
    /// Cap on total penalty per review window.
    pub penalty_cap: f64,
}

/// One objective's evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct SloOutcome {
    /// The objective's name.
    pub name: String,
    /// The measured value, when the profile reported one.
    pub measured: Option<f64>,
    /// Whether the objective was met.
    pub met: bool,
    /// The satisfaction margin (positive = met with room).
    pub margin: f64,
}

/// The agreement-level evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct SlaReport {
    /// Per-objective outcomes.
    pub outcomes: Vec<SloOutcome>,
    /// Number of violated objectives.
    pub violations: usize,
    /// Penalty due (capped).
    pub penalty: f64,
    /// True when every objective was met.
    pub compliant: bool,
}

mcs_simcore::impl_json!(struct SloOutcome { name, measured, met, margin });
mcs_simcore::impl_json!(struct SlaReport { outcomes, violations, penalty, compliant });

impl Sla {
    /// Evaluates the agreement against a measured profile.
    pub fn evaluate(&self, measured: &NfrProfile) -> SlaReport {
        let mut outcomes = Vec::with_capacity(self.slos.len());
        let mut penalty = 0.0;
        for slo in &self.slos {
            let value = measured.get(slo.target.kind);
            let met = value.map(|v| slo.target.satisfied_by(v)).unwrap_or(false);
            let margin = value.map(|v| slo.target.margin(v)).unwrap_or(-1.0);
            if !met {
                penalty += slo.penalty;
            }
            outcomes.push(SloOutcome { name: slo.name.clone(), measured: value, met, margin });
        }
        let violations = outcomes.iter().filter(|o| !o.met).count();
        SlaReport {
            violations,
            penalty: penalty.min(self.penalty_cap),
            compliant: violations == 0,
            outcomes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfr::NfrKind;

    fn sla() -> Sla {
        Sla {
            name: "gold".into(),
            slos: vec![
                Slo {
                    name: "p95 < 100ms".into(),
                    target: NfrTarget::new(NfrKind::LatencyP95, 0.1),
                    penalty: 100.0,
                },
                Slo {
                    name: "availability ≥ 99.9%".into(),
                    target: NfrTarget::new(NfrKind::Availability, 0.999),
                    penalty: 500.0,
                },
            ],
            penalty_cap: 450.0,
        }
    }

    #[test]
    fn compliant_profile() {
        let measured = NfrProfile::new()
            .with(NfrKind::LatencyP95, 0.05)
            .with(NfrKind::Availability, 0.9995);
        let report = sla().evaluate(&measured);
        assert!(report.compliant);
        assert_eq!(report.violations, 0);
        assert_eq!(report.penalty, 0.0);
        assert!(report.outcomes.iter().all(|o| o.met && o.margin > 0.0));
    }

    #[test]
    fn violations_accumulate_penalty_with_cap() {
        let measured = NfrProfile::new()
            .with(NfrKind::LatencyP95, 0.3)
            .with(NfrKind::Availability, 0.98);
        let report = sla().evaluate(&measured);
        assert_eq!(report.violations, 2);
        // 100 + 500 capped at 450.
        assert_eq!(report.penalty, 450.0);
        assert!(!report.compliant);
    }

    #[test]
    fn missing_measurement_is_a_violation() {
        let measured = NfrProfile::new().with(NfrKind::LatencyP95, 0.05);
        let report = sla().evaluate(&measured);
        assert_eq!(report.violations, 1);
        let avail = report.outcomes.iter().find(|o| o.name.contains("availability")).unwrap();
        assert!(avail.measured.is_none());
        assert!(!avail.met);
    }
}
