//! Ecosystem evolution: Darwinian and non-Darwinian technology dynamics
//! (§3.2, and the history of Figure 2).
//!
//! The paper, following Arthur, distinguishes *Darwinian* evolution —
//! incremental variation and selection of closely related technology — from
//! *non-Darwinian* evolution, where "seemingly random events — which
//! ecosystem adopted the technology first … and other soft lock-in
//! elements — contribute to the propagation of the technology". This
//! module simulates a population of adopters choosing among competing
//! technologies; the Figure 2 experiment uses it to regenerate
//! adoption-timeline series and measure lock-in sensitivity.

use mcs_simcore::rng::RngStream;

/// A competing technology in one generation.
#[derive(Debug, Clone, PartialEq)]
pub struct Technology {
    /// Technology name.
    pub name: String,
    /// Intrinsic quality (Darwinian fitness); higher attracts adopters.
    pub fitness: f64,
}

/// The adoption regime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Regime {
    /// Darwinian: adopters pick proportionally to intrinsic fitness only.
    Darwinian,
    /// Non-Darwinian: adopters weight fitness by the installed base raised
    /// to `lock_in` (network effects; `lock_in = 0` reduces to Darwinian).
    NonDarwinian {
        /// Strength of increasing returns (≥ 0).
        lock_in: f64,
    },
}

/// The result of one adoption race.
#[derive(Debug, Clone, PartialEq)]
pub struct AdoptionOutcome {
    /// Adoption share per technology per step: `series[tech][step]`.
    pub series: Vec<Vec<f64>>,
    /// Index of the technology with the largest final share.
    pub winner: usize,
    /// Final share of the winner.
    pub winner_share: f64,
}

/// Simulates `steps` adopters arriving one at a time and choosing among
/// `technologies` under `regime`.
///
/// # Panics
/// Panics when `technologies` is empty.
pub fn simulate_adoption(
    technologies: &[Technology],
    regime: Regime,
    steps: usize,
    rng: &mut RngStream,
) -> AdoptionOutcome {
    assert!(!technologies.is_empty(), "need at least one technology");
    let k = technologies.len();
    let mut installed = vec![1.0f64; k]; // seed base of 1 each
    let mut series = vec![Vec::with_capacity(steps); k];
    for _ in 0..steps {
        let weights: Vec<f64> = technologies
            .iter()
            .zip(&installed)
            .map(|(t, base)| {
                let w = match regime {
                    Regime::Darwinian => t.fitness,
                    Regime::NonDarwinian { lock_in } => t.fitness * base.powf(lock_in),
                };
                w.max(1e-12)
            })
            .collect();
        let total: f64 = weights.iter().sum();
        let mut pick = rng.next_f64() * total;
        let mut chosen = k - 1;
        for (i, w) in weights.iter().enumerate() {
            pick -= w;
            if pick <= 0.0 {
                chosen = i;
                break;
            }
        }
        installed[chosen] += 1.0;
        let base_total: f64 = installed.iter().sum();
        for (i, s) in series.iter_mut().enumerate() {
            s.push(installed[i] / base_total);
        }
    }
    let (winner, &final_base) = installed
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
        .expect("non-empty");
    AdoptionOutcome {
        winner,
        winner_share: final_base / installed.iter().sum::<f64>(),
        series,
    }
}

/// Lock-in sensitivity: the fraction of seeds (of `trials`) in which the
/// *intrinsically best* technology loses the race. Near zero under
/// Darwinian selection, substantial under strong lock-in — the paper's
/// non-Darwinian claim as a number.
pub fn upset_probability(
    technologies: &[Technology],
    regime: Regime,
    steps: usize,
    trials: usize,
    seed: u64,
) -> f64 {
    let best = technologies
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| {
            a.fitness.partial_cmp(&b.fitness).unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|(i, _)| i)
        .expect("non-empty");
    let mut upsets = 0;
    for t in 0..trials {
        let mut rng = RngStream::new(seed, &format!("adoption-trial-{t}"));
        let outcome = simulate_adoption(technologies, regime, steps, &mut rng);
        if outcome.winner != best {
            upsets += 1;
        }
    }
    upsets as f64 / trials.max(1) as f64
}

/// The evolution mechanisms of §3.2, applied to a component inventory.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Mechanism {
    /// Combine two components into a larger assembly.
    Combine {
        /// First input component.
        a: String,
        /// Second input component.
        b: String,
        /// Name of the assembly.
        into: String,
    },
    /// Remove a redundant or useless component.
    Remove {
        /// Component to remove.
        name: String,
    },
    /// Replace a component with a more advanced one.
    Replace {
        /// Outgoing component.
        old: String,
        /// Incoming component.
        new: String,
    },
    /// Add a new component for a new function.
    Add {
        /// Component to add.
        name: String,
    },
}

/// Applies a sequence of evolution mechanisms to a component inventory,
/// returning the resulting inventory; unknown references are ignored
/// (evolution is permissive, not transactional).
pub fn evolve_inventory(initial: &[&str], mechanisms: &[Mechanism]) -> Vec<String> {
    let mut inv: Vec<String> = initial.iter().map(|s| (*s).to_owned()).collect();
    for m in mechanisms {
        match m {
            Mechanism::Add { name } => {
                if !inv.contains(name) {
                    inv.push(name.clone());
                }
            }
            Mechanism::Remove { name } => inv.retain(|c| c != name),
            Mechanism::Replace { old, new } => {
                if let Some(slot) = inv.iter_mut().find(|c| *c == old) {
                    *slot = new.clone();
                }
            }
            Mechanism::Combine { a, b, into } => {
                if inv.contains(a) && inv.contains(b) {
                    inv.retain(|c| c != a && c != b);
                    inv.push(into.clone());
                }
            }
        }
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;

    fn techs() -> Vec<Technology> {
        vec![
            Technology { name: "better".into(), fitness: 1.2 },
            Technology { name: "worse".into(), fitness: 1.0 },
        ]
    }

    #[test]
    fn darwinian_rarely_upsets() {
        let p = upset_probability(&techs(), Regime::Darwinian, 2_000, 40, 1);
        assert!(p < 0.15, "Darwinian upset probability {p}");
    }

    #[test]
    fn lock_in_raises_upsets() {
        let p_dar = upset_probability(&techs(), Regime::Darwinian, 2_000, 40, 2);
        let p_lock =
            upset_probability(&techs(), Regime::NonDarwinian { lock_in: 1.5 }, 2_000, 40, 2);
        assert!(
            p_lock > p_dar + 0.1,
            "lock-in {p_lock} should upset far more than Darwinian {p_dar}"
        );
    }

    #[test]
    fn shares_sum_to_one_each_step() {
        let mut rng = RngStream::new(3, "adoption");
        let out = simulate_adoption(&techs(), Regime::Darwinian, 100, &mut rng);
        for step in 0..100 {
            let total: f64 = out.series.iter().map(|s| s[step]).sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
        assert!(out.winner_share > 0.0 && out.winner_share <= 1.0);
    }

    #[test]
    fn strong_lock_in_locks_early_leader() {
        // With extreme lock-in, the final winner share approaches 1.
        let mut rng = RngStream::new(4, "adoption");
        let out = simulate_adoption(
            &techs(),
            Regime::NonDarwinian { lock_in: 3.0 },
            3_000,
            &mut rng,
        );
        assert!(out.winner_share > 0.9, "share {}", out.winner_share);
    }

    #[test]
    fn inventory_mechanisms() {
        let result = evolve_inventory(
            &["batch-queue", "nfs", "perl-scripts"],
            &[
                Mechanism::Replace { old: "nfs".into(), new: "hdfs".into() },
                Mechanism::Add { name: "mapreduce".into() },
                Mechanism::Combine {
                    a: "batch-queue".into(),
                    b: "mapreduce".into(),
                    into: "yarn".into(),
                },
                Mechanism::Remove { name: "perl-scripts".into() },
                // Unknown references are ignored.
                Mechanism::Remove { name: "ghost".into() },
                Mechanism::Replace { old: "ghost".into(), new: "x".into() },
            ],
        );
        assert_eq!(result, vec!["hdfs".to_owned(), "yarn".to_owned()]);
    }

    #[test]
    #[should_panic(expected = "need at least one technology")]
    fn empty_race_rejected() {
        let mut rng = RngStream::new(1, "x");
        let _ = simulate_adoption(&[], Regime::Darwinian, 10, &mut rng);
    }
}
